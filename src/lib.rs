//! `tpcc-suite` — umbrella crate for the reproduction of Leutenegger &
//! Dias, *A Modeling Study of the TPC-C Benchmark* (SIGMOD 1993).
//!
//! Re-exports every workspace crate under a short path. The typical
//! entry points:
//!
//! * [`model`] — experiment drivers that regenerate every table and
//!   figure of the paper.
//! * [`workload`] + [`buffer`] — the trace generator and the two LRU
//!   miss-rate engines (direct simulation, stack-distance sweep).
//! * [`cost`] — the throughput / price-performance / scale-up model.
//! * [`storage`] + [`db`] — the page-based engine and the executable
//!   TPC-C database built on it.
//! * [`lock`] + [`db::parallel`] — strict-2PL concurrency control and
//!   the multi-terminal driver.
//!
//! ```
//! use tpcc_suite::nurand::{LorenzCurve, NuRand, Pmf};
//!
//! // the paper's §3 skew analysis in three lines (scaled down):
//! let pmf = Pmf::exact_nurand(&NuRand::new(1023, 1, 12_000));
//! let curve = LorenzCurve::from_pmf(&pmf);
//! // strongly skewed: the hottest fifth draws the bulk of the accesses
//! assert!(curve.access_share_of_hottest(0.20) > 0.75);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use tpcc_buffer as buffer;
pub use tpcc_cost as cost;
pub use tpcc_db as db;
pub use tpcc_lock as lock;
pub use tpcc_model as model;
pub use tpcc_rand as nurand;
pub use tpcc_schema as schema;
pub use tpcc_storage as storage;
pub use tpcc_workload as workload;
