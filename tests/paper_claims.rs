//! End-to-end checks of the paper's headline claims at smoke scale.
//! (The `--quality paper` binaries reproduce the full-scale numbers;
//! these tests pin the *shape* of every claim in CI time.)

use tpcc_suite::model::experiments::{scaleup, skew, tables, throughput};
use tpcc_suite::model::{ExperimentContext, Quality};

fn ctx() -> ExperimentContext {
    ExperimentContext::new(Quality::Smoke)
}

#[test]
fn claim_i_skew_quantification() {
    // Abstract claim (i): what fraction of accesses go to what fraction
    // of the data — 84%/20% at tuple level, 75%/20% at 4K pages.
    let c = ctx();
    let curves = skew::fig5(&c);
    let tuple = curves[0].curve.access_share_of_hottest(0.20);
    let page = curves[1].curve.access_share_of_hottest(0.20);
    assert!((tuple - 0.84).abs() < 0.05, "tuple-level 20% share {tuple}");
    assert!((page - 0.75).abs() < 0.05, "page-level 20% share {page}");
    assert!(tuple > page, "pages smear the skew");
}

#[test]
fn claim_ii_buffer_hit_ratios_by_relation() {
    // Claim (ii): per-relation miss-rate curves; customer > stock > item
    // at equal buffer sizes (paper Figure 8 ordering).
    let c = ctx();
    let fig8 = tpcc_suite::model::experiments::buffer::fig8(&c);
    use tpcc_suite::schema::packing::Packing;
    use tpcc_suite::schema::relation::Relation;
    let at = 32 * 1024 * 1024;
    let cust = fig8.miss_rate(Packing::Sequential, Relation::Customer, at);
    let stock = fig8.miss_rate(Packing::Sequential, Relation::Stock, at);
    let item = fig8.miss_rate(Packing::Sequential, Relation::Item, at);
    assert!(cust > stock, "customer {cust} vs stock {stock}");
    assert!(stock > item, "stock {stock} vs item {item}");
}

#[test]
fn claim_iii_near_linear_scaleup() {
    // Claim (iii): close to linear scale-up with a replicated Item
    // relation (about 3% from ideal).
    let c = ctx();
    let f = scaleup::fig11(&c, &[30]);
    let p = &f.points[0];
    let loss = 1.0 - p.replicated_tpm / p.ideal_tpm;
    assert!((0.0..0.06).contains(&loss), "loss from ideal {loss}");
}

#[test]
fn claim_iv_packing_improves_price_performance() {
    // Claim (iv): packing hot tuples into pages buys significant
    // price/performance.
    let c = ctx();
    let f10 = throughput::fig10(&c);
    let improvement = f10.optimum_improvement(false);
    assert!(
        improvement > 0.02,
        "optimized packing should win clearly without storage-capacity \
         binding; got {improvement:.3}"
    );
}

#[test]
fn claim_v_optimal_configurations_exist() {
    // Claim (v): the $/tpm curve has an interior optimum (adding memory
    // first pays for itself, then stops paying).
    let c = ctx();
    let f10 = throughput::fig10(&c);
    let (_, curve, opt) = &f10.curves[0];
    let first = curve.first().expect("nonempty");
    let last = curve.last().expect("nonempty");
    assert!(opt.dollars_per_tpm <= first.dollars_per_tpm + 1e-9);
    assert!(opt.dollars_per_tpm <= last.dollars_per_tpm + 1e-9);
}

#[test]
fn distributed_gaps_match_published_ladder() {
    // §5.3's 10 / 30 / 39 % replicated-vs-partitioned ladder comes from
    // closed-form Appendix A math — exact at any quality.
    let c = ctx();
    let f = scaleup::fig11(&c, &[2, 10, 30]);
    let gaps: Vec<f64> = f
        .points
        .iter()
        .map(|p| p.replicated_tpm / p.partitioned_tpm - 1.0)
        .collect();
    assert!((gaps[0] - 0.10).abs() < 0.05, "N=2 gap {}", gaps[0]);
    assert!((gaps[1] - 0.30).abs() < 0.06, "N=10 gap {}", gaps[1]);
    assert!((gaps[2] - 0.39).abs() < 0.06, "N=30 gap {}", gaps[2]);
}

#[test]
fn tables_derive_paper_values() {
    let t2 = tables::table2();
    let delivery = t2.rows.iter().find(|r| r[0] == "Delivery").expect("row");
    assert_eq!(delivery[3], "130.0");
    assert_eq!(delivery[4], "120");
    let t1 = tables::table1();
    let neworder = t1.rows.iter().find(|r| r[0] == "new-order").expect("row");
    assert_eq!(neworder[3], "512");
}
