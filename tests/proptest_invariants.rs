//! Property-based tests on the core data structures and invariants,
//! spanning crates.

use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeMap;
use tpcc_suite::buffer::{LruBuffer, MissCurve, StackDistance};
use tpcc_suite::nurand::{AliasTable, LorenzCurve, NuRand, Pmf, Xoshiro256};
use tpcc_suite::storage::{BTree, BufferManager, DiskManager, Replacement, SlottedPage};

proptest! {
    /// NURand samples always stay inside the closed interval, for any
    /// parameterization.
    #[test]
    fn nurand_stays_in_bounds(
        a in 0u64..20_000,
        x in 0u64..1000,
        span in 0u64..20_000,
        seed in any::<u64>(),
    ) {
        let nu = NuRand::new(a, x, x + span);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        for _ in 0..200 {
            let v = nu.sample(&mut rng);
            prop_assert!((x..=x + span).contains(&v));
        }
    }

    /// Setting the constant `C` rotates the NURand PMF within its range
    /// (Appendix A.3's `+C` term), leaving the multiset of
    /// probabilities — and therefore every skew statistic — unchanged.
    #[test]
    fn c_rotates_pmf(a in 1u64..32, span in 1u64..200, c_frac in 0.0f64..1.0) {
        let base = NuRand::new(a, 0, span);
        let c = (c_frac * a as f64) as u64;
        let shifted = Pmf::exact_nurand(&base.with_c(c));
        let unshifted = Pmf::exact_nurand(&base);
        let range = span + 1;
        for v in 0..range {
            let rotated = (v + c) % range;
            prop_assert!(
                (unshifted.prob(v) - shifted.prob(rotated)).abs() < 1e-12,
                "v={} c={}", v, c
            );
        }
    }

    /// The exact NURand PMF is a genuine distribution: non-negative and
    /// summing to one.
    #[test]
    fn exact_pmf_is_normalized(a in 1u64..64, x in 0u64..50, span in 1u64..400) {
        let pmf = Pmf::exact_nurand(&NuRand::new(a, x, x + span));
        let sum: f64 = pmf.probs().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(pmf.probs().iter().all(|&p| p >= 0.0));
        prop_assert_eq!(pmf.len() as u64, span + 1);
    }

    /// Page-level aggregation preserves total probability regardless of
    /// page size and packing strategy.
    #[test]
    fn packing_preserves_mass(a in 1u64..64, span in 1u64..500, tpp in 1usize..40) {
        let pmf = Pmf::exact_nurand(&NuRand::new(a, 1, 1 + span));
        for packed in [pmf.pack_sequential(tpp), pmf.pack_hotness_sorted(tpp)] {
            let sum: f64 = packed.probs().iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert_eq!(packed.len(), (span as usize + 1).div_ceil(tpp));
        }
    }

    /// Hotness-sorted packing never yields a *less* concentrated page
    /// distribution than sequential packing (same access share cannot
    /// drop at any hot fraction).
    #[test]
    fn hotness_packing_dominates_sequential(a in 1u64..128, span in 20u64..500, tpp in 2usize..20) {
        let pmf = Pmf::exact_nurand(&NuRand::new(a, 1, 1 + span));
        let seq = LorenzCurve::from_pmf(&pmf.pack_sequential(tpp));
        let opt = LorenzCurve::from_pmf(&pmf.pack_hotness_sorted(tpp));
        for f in [0.1, 0.25, 0.5, 0.75] {
            prop_assert!(
                opt.access_share_of_hottest(f) >= seq.access_share_of_hottest(f) - 1e-9,
                "fraction {}: opt {} < seq {}",
                f,
                opt.access_share_of_hottest(f),
                seq.access_share_of_hottest(f)
            );
        }
    }

    /// Lorenz curves are monotone and bounded by the diagonal-to-one
    /// envelope.
    #[test]
    fn lorenz_curve_invariants(weights in vec(0.0f64..100.0, 2..200)) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let curve = LorenzCurve::from_pmf(&Pmf::from_weights(0, &weights));
        let series = curve.series(33);
        let mut prev = 0.0;
        for (f, acc) in series {
            prop_assert!(acc >= prev - 1e-12, "monotone");
            prop_assert!(acc <= f + 1e-9, "coldest-first curve sits under the diagonal");
            prev = acc;
        }
        prop_assert!((0.0..=1.0).contains(&curve.gini()));
    }

    /// The alias table reproduces its PMF's support exactly: zero-weight
    /// ids never appear, in-support ids stay in range.
    #[test]
    fn alias_table_respects_support(weights in vec(0.0f64..10.0, 1..100), seed in any::<u64>()) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let table = AliasTable::from_weights(5, &weights);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        for _ in 0..300 {
            let id = table.sample(&mut rng);
            let idx = (id - 5) as usize;
            prop_assert!(idx < weights.len());
            prop_assert!(weights[idx] > 0.0, "sampled zero-weight id {}", id);
        }
    }

    /// The Che/IRM analytic model agrees with a direct LRU simulation
    /// on IRM traces, for arbitrary skews and cache sizes.
    #[test]
    fn che_tracks_irm_lru(a in 3u64..200, cache_frac in 0.05f64..0.8, seed in any::<u64>()) {
        let pmf = Pmf::exact_nurand(&NuRand::new(a, 1, 600));
        let mut model = tpcc_suite::buffer::CheModel::new();
        model.add_group(1.0, pmf.probs());
        model.finalize();
        let cache = ((600.0 * cache_frac) as usize).max(1);
        let table = AliasTable::from_pmf(&pmf);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut lru = LruBuffer::new(cache);
        for _ in 0..20_000 {
            lru.access(table.sample(&mut rng));
        }
        let n = 60_000;
        let misses = (0..n).filter(|_| lru.access(table.sample(&mut rng))).count();
        let simulated = misses as f64 / f64::from(n);
        let predicted = model.miss_ratio(cache as f64);
        prop_assert!(
            (simulated - predicted).abs() < 0.05,
            "Che {} vs simulated {} (cache {})", predicted, simulated, cache
        );
    }

    /// Mattson stack distances agree with a direct LRU simulation at
    /// arbitrary capacities on arbitrary traces (the inclusion
    /// property, end to end).
    #[test]
    fn stack_distance_equals_direct_lru(
        trace in vec(0u64..60, 1..800),
        capacity in 1usize..70,
    ) {
        let mut analyzer = StackDistance::new(16);
        let mut curve = MissCurve::new();
        let mut lru = LruBuffer::new(capacity);
        let mut direct = 0u64;
        for &k in &trace {
            curve.record(analyzer.access(k));
            if lru.access(k) {
                direct += 1;
            }
        }
        prop_assert_eq!(curve.misses_at(capacity as u64), direct);
    }

    /// The page-based B+Tree behaves exactly like a BTreeMap under an
    /// arbitrary interleaving of inserts, deletes and lookups.
    #[test]
    fn btree_matches_std_model(ops in vec((0u8..3, 0u64..500), 1..400)) {
        let disk = DiskManager::new(256);
        let mut bm = BufferManager::new(disk, 16, Replacement::Lru);
        let mut tree = BTree::create(&mut bm);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for (op, key) in ops {
            match op {
                0 => {
                    let got = tree.insert(&mut bm, key, key * 3);
                    prop_assert_eq!(got, model.insert(key, key * 3));
                }
                1 => {
                    let got = tree.delete(&mut bm, key);
                    prop_assert_eq!(got, model.remove(&key));
                }
                _ => {
                    prop_assert_eq!(tree.get(&mut bm, key), model.get(&key).copied());
                }
            }
        }
        // final range scan agrees with the model's ordered iteration
        let mut scanned = Vec::new();
        tree.scan_range(&mut bm, 0, u64::MAX, |k, v| {
            scanned.push((k, v));
            true
        });
        let expect: Vec<(u64, u64)> = model.into_iter().collect();
        prop_assert_eq!(scanned, expect);
    }

    /// Slotted pages never lose or corrupt live records across an
    /// arbitrary insert/delete workload with compaction.
    #[test]
    fn slotted_page_preserves_live_records(ops in vec((0u8..2, 1usize..40), 1..120)) {
        let mut buf = vec![0u8; 2048];
        let mut page = SlottedPage::init(&mut buf);
        let mut live: Vec<(u16, Vec<u8>)> = Vec::new();
        let mut stamp = 0u8;
        for (op, len) in ops {
            if op == 0 {
                stamp = stamp.wrapping_add(1);
                let rec = vec![stamp; len];
                if let Some(slot) = page.insert(&rec) {
                    live.push((slot, rec));
                }
            } else if !live.is_empty() {
                let (slot, _) = live.remove(live.len() / 2);
                prop_assert!(page.delete(slot));
            }
            for (slot, rec) in &live {
                prop_assert_eq!(page.get(*slot), Some(rec.as_slice()));
            }
        }
        prop_assert_eq!(page.live_records(), live.len());
    }
}
