//! Randomized-but-deterministic tests on the core data structures and
//! invariants, spanning crates.
//!
//! Formerly written with `proptest`; rewritten as seeded case loops so
//! the suite builds with no external dependencies. Each test draws many
//! random cases from a fixed-seed [`Xoshiro256`], so failures are
//! reproducible and the explored space stays broad.

use std::collections::BTreeMap;
use tpcc_suite::buffer::{LruBuffer, MissCurve, StackDistance};
use tpcc_suite::nurand::{AliasTable, LorenzCurve, NuRand, Pmf, Xoshiro256};
use tpcc_suite::storage::{BTree, BufferManager, DiskManager, Replacement, SlottedPage};

/// Uniform draw in `[lo, hi)` — half-open like proptest's ranges.
fn draw(rng: &mut Xoshiro256, lo: u64, hi: u64) -> u64 {
    assert!(lo < hi);
    lo + rng.uniform_inclusive(0, hi - lo - 1)
}

/// NURand samples always stay inside the closed interval, for any
/// parameterization.
#[test]
fn nurand_stays_in_bounds() {
    let mut rng = Xoshiro256::seed_from_u64(0xA11CE);
    for _ in 0..48 {
        let a = draw(&mut rng, 0, 20_000);
        let x = draw(&mut rng, 0, 1000);
        let span = draw(&mut rng, 0, 20_000);
        let nu = NuRand::new(a, x, x + span);
        let mut sample_rng = Xoshiro256::seed_from_u64(rng.next_u64());
        for _ in 0..200 {
            let v = nu.sample(&mut sample_rng);
            assert!((x..=x + span).contains(&v), "a={a} x={x} span={span} v={v}");
        }
    }
}

/// Setting the constant `C` rotates the NURand PMF within its range
/// (Appendix A.3's `+C` term), leaving the multiset of probabilities —
/// and therefore every skew statistic — unchanged.
#[test]
fn c_rotates_pmf() {
    let mut rng = Xoshiro256::seed_from_u64(0xB0B);
    for _ in 0..24 {
        let a = draw(&mut rng, 1, 32);
        let span = draw(&mut rng, 1, 200);
        let c_frac = rng.f64();
        let base = NuRand::new(a, 0, span);
        let c = (c_frac * a as f64) as u64;
        let shifted = Pmf::exact_nurand(&base.with_c(c));
        let unshifted = Pmf::exact_nurand(&base);
        let range = span + 1;
        for v in 0..range {
            let rotated = (v + c) % range;
            assert!(
                (unshifted.prob(v) - shifted.prob(rotated)).abs() < 1e-12,
                "v={v} c={c}"
            );
        }
    }
}

/// The exact NURand PMF is a genuine distribution: non-negative and
/// summing to one.
#[test]
fn exact_pmf_is_normalized() {
    let mut rng = Xoshiro256::seed_from_u64(0xC0FFEE);
    for _ in 0..32 {
        let a = draw(&mut rng, 1, 64);
        let x = draw(&mut rng, 0, 50);
        let span = draw(&mut rng, 1, 400);
        let pmf = Pmf::exact_nurand(&NuRand::new(a, x, x + span));
        let sum: f64 = pmf.probs().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "a={a} x={x} span={span}");
        assert!(pmf.probs().iter().all(|&p| p >= 0.0));
        assert_eq!(pmf.len() as u64, span + 1);
    }
}

/// Page-level aggregation preserves total probability regardless of
/// page size and packing strategy.
#[test]
fn packing_preserves_mass() {
    let mut rng = Xoshiro256::seed_from_u64(0xD1CE);
    for _ in 0..32 {
        let a = draw(&mut rng, 1, 64);
        let span = draw(&mut rng, 1, 500);
        let tpp = draw(&mut rng, 1, 40) as usize;
        let pmf = Pmf::exact_nurand(&NuRand::new(a, 1, 1 + span));
        for packed in [pmf.pack_sequential(tpp), pmf.pack_hotness_sorted(tpp)] {
            let sum: f64 = packed.probs().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "a={a} span={span} tpp={tpp}");
            assert_eq!(packed.len(), (span as usize + 1).div_ceil(tpp));
        }
    }
}

/// Hotness-sorted packing never yields a *less* concentrated page
/// distribution than sequential packing (same access share cannot drop
/// at any hot fraction).
#[test]
fn hotness_packing_dominates_sequential() {
    let mut rng = Xoshiro256::seed_from_u64(0xE66);
    for _ in 0..24 {
        let a = draw(&mut rng, 1, 128);
        let span = draw(&mut rng, 20, 500);
        let tpp = draw(&mut rng, 2, 20) as usize;
        let pmf = Pmf::exact_nurand(&NuRand::new(a, 1, 1 + span));
        let seq = LorenzCurve::from_pmf(&pmf.pack_sequential(tpp));
        let opt = LorenzCurve::from_pmf(&pmf.pack_hotness_sorted(tpp));
        for f in [0.1, 0.25, 0.5, 0.75] {
            assert!(
                opt.access_share_of_hottest(f) >= seq.access_share_of_hottest(f) - 1e-9,
                "fraction {}: opt {} < seq {} (a={a} span={span} tpp={tpp})",
                f,
                opt.access_share_of_hottest(f),
                seq.access_share_of_hottest(f)
            );
        }
    }
}

/// Lorenz curves are monotone and bounded by the diagonal-to-one
/// envelope.
#[test]
fn lorenz_curve_invariants() {
    let mut rng = Xoshiro256::seed_from_u64(0xF00D);
    for _ in 0..32 {
        let n = draw(&mut rng, 2, 200) as usize;
        let weights: Vec<f64> = (0..n).map(|_| rng.f64() * 100.0).collect();
        if weights.iter().sum::<f64>() <= 0.0 {
            continue;
        }
        let curve = LorenzCurve::from_pmf(&Pmf::from_weights(0, &weights));
        let series = curve.series(33);
        let mut prev = 0.0;
        for (f, acc) in series {
            assert!(acc >= prev - 1e-12, "monotone");
            assert!(
                acc <= f + 1e-9,
                "coldest-first curve sits under the diagonal"
            );
            prev = acc;
        }
        assert!((0.0..=1.0).contains(&curve.gini()));
    }
}

/// The alias table reproduces its PMF's support exactly: zero-weight
/// ids never appear, in-support ids stay in range.
#[test]
fn alias_table_respects_support() {
    let mut rng = Xoshiro256::seed_from_u64(0xABBA);
    for _ in 0..32 {
        let n = draw(&mut rng, 1, 100) as usize;
        // mix zero and positive weights so the support test bites
        let weights: Vec<f64> = (0..n)
            .map(|_| {
                if rng.chance(0.3) {
                    0.0
                } else {
                    rng.f64() * 10.0
                }
            })
            .collect();
        if weights.iter().sum::<f64>() <= 0.0 {
            continue;
        }
        let table = AliasTable::from_weights(5, &weights);
        let mut sample_rng = Xoshiro256::seed_from_u64(rng.next_u64());
        for _ in 0..300 {
            let id = table.sample(&mut sample_rng);
            let idx = (id - 5) as usize;
            assert!(idx < weights.len());
            assert!(weights[idx] > 0.0, "sampled zero-weight id {id}");
        }
    }
}

/// The Che/IRM analytic model agrees with a direct LRU simulation on
/// IRM traces, for arbitrary skews and cache sizes.
#[test]
fn che_tracks_irm_lru() {
    let mut rng = Xoshiro256::seed_from_u64(0xCAFE);
    for _ in 0..8 {
        let a = draw(&mut rng, 3, 200);
        let cache_frac = 0.05 + rng.f64() * 0.75;
        let pmf = Pmf::exact_nurand(&NuRand::new(a, 1, 600));
        let mut model = tpcc_suite::buffer::CheModel::new();
        model.add_group(1.0, pmf.probs());
        model.finalize();
        let cache = ((600.0 * cache_frac) as usize).max(1);
        let table = AliasTable::from_pmf(&pmf);
        let mut sample_rng = Xoshiro256::seed_from_u64(rng.next_u64());
        let mut lru = LruBuffer::new(cache);
        for _ in 0..20_000 {
            lru.access(table.sample(&mut sample_rng));
        }
        let n = 60_000;
        let misses = (0..n)
            .filter(|_| lru.access(table.sample(&mut sample_rng)))
            .count();
        let simulated = misses as f64 / f64::from(n);
        let predicted = model.miss_ratio(cache as f64);
        assert!(
            (simulated - predicted).abs() < 0.05,
            "Che {predicted} vs simulated {simulated} (a={a} cache {cache})"
        );
    }
}

/// Mattson stack distances agree with a direct LRU simulation at
/// arbitrary capacities on arbitrary traces (the inclusion property,
/// end to end).
#[test]
fn stack_distance_equals_direct_lru() {
    let mut rng = Xoshiro256::seed_from_u64(0x57AC);
    for _ in 0..40 {
        let len = draw(&mut rng, 1, 800) as usize;
        let capacity = draw(&mut rng, 1, 70) as usize;
        let trace: Vec<u64> = (0..len).map(|_| draw(&mut rng, 0, 60)).collect();
        let mut analyzer = StackDistance::new(16);
        let mut curve = MissCurve::new();
        let mut lru = LruBuffer::new(capacity);
        let mut direct = 0u64;
        for &k in &trace {
            curve.record(analyzer.access(k));
            if lru.access(k) {
                direct += 1;
            }
        }
        assert_eq!(
            curve.misses_at(capacity as u64),
            direct,
            "len={len} capacity={capacity}"
        );
    }
}

/// The page-based B+Tree behaves exactly like a BTreeMap under an
/// arbitrary interleaving of inserts, deletes and lookups.
#[test]
fn btree_matches_std_model() {
    let mut rng = Xoshiro256::seed_from_u64(0xB7EE);
    for _ in 0..24 {
        let ops = draw(&mut rng, 1, 400) as usize;
        let disk = DiskManager::new(256);
        let bm = BufferManager::new(disk, 16, Replacement::Lru);
        let tree = BTree::create(&bm);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for _ in 0..ops {
            let op = draw(&mut rng, 0, 3);
            let key = draw(&mut rng, 0, 500);
            match op {
                0 => {
                    let got = tree.insert(&bm, key, key * 3);
                    assert_eq!(got, model.insert(key, key * 3));
                }
                1 => {
                    let got = tree.delete(&bm, key);
                    assert_eq!(got, model.remove(&key));
                }
                _ => {
                    assert_eq!(tree.get(&bm, key), model.get(&key).copied());
                }
            }
        }
        // final range scan agrees with the model's ordered iteration
        let mut scanned = Vec::new();
        tree.scan_range(&bm, 0, u64::MAX, |k, v| {
            scanned.push((k, v));
            true
        });
        let expect: Vec<(u64, u64)> = model.into_iter().collect();
        assert_eq!(scanned, expect);
    }
}

/// Slotted pages never lose or corrupt live records across an arbitrary
/// insert/delete workload with compaction.
#[test]
fn slotted_page_preserves_live_records() {
    let mut rng = Xoshiro256::seed_from_u64(0x510D);
    for _ in 0..24 {
        let ops = draw(&mut rng, 1, 120) as usize;
        let mut buf = vec![0u8; 2048];
        let mut page = SlottedPage::init(&mut buf);
        let mut live: Vec<(u16, Vec<u8>)> = Vec::new();
        let mut stamp = 0u8;
        for _ in 0..ops {
            let op = draw(&mut rng, 0, 2);
            let len = draw(&mut rng, 1, 40) as usize;
            if op == 0 {
                stamp = stamp.wrapping_add(1);
                let rec = vec![stamp; len];
                if let Some(slot) = page.insert(&rec) {
                    live.push((slot, rec));
                }
            } else if !live.is_empty() {
                let (slot, _) = live.remove(live.len() / 2);
                assert!(page.delete(slot));
            }
            for (slot, rec) in &live {
                assert_eq!(page.get(*slot), Some(rec.as_slice()));
            }
        }
        assert_eq!(page.live_records(), live.len());
    }
}
