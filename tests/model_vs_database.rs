//! Cross-validation: the abstract page-reference model (the paper's
//! simulator) against the executable TPC-C database on the storage
//! engine.
//!
//! The two stacks are independent implementations — one synthesizes
//! page ids from layout arithmetic, the other faults real slotted
//! pages through a real buffer pool (including index pages the model
//! deliberately ignores). We therefore validate *qualitative* paper
//! claims on both: relative miss-rate orderings, buffer-size
//! monotonicity, and the stability of the New-Order relation under the
//! paper's mix.

use tpcc_suite::buffer::{BufferSim, BufferSimConfig};
use tpcc_suite::db::driver::DriverConfig;
use tpcc_suite::db::{DbConfig, Driver, TpccDb};
use tpcc_suite::schema::packing::Packing;
use tpcc_suite::schema::relation::Relation;
use tpcc_suite::workload::TraceConfig;

fn loaded_db(frames: usize) -> TpccDb {
    let mut cfg = DbConfig::small();
    cfg.warehouses = 2;
    cfg.customers_per_district = 120;
    cfg.items = 2000;
    cfg.initial_orders_per_district = 80;
    cfg.initial_pending_per_district = 20;
    cfg.buffer_frames = frames;
    tpcc_suite::db::loader::load(cfg, 42)
}

fn run_driver(frames: usize, transactions: u64) -> tpcc_suite::db::DriverReport {
    let mut db = loaded_db(frames);
    let mut driver = Driver::new(&db, DriverConfig::default(), 7);
    // warm up, then measure
    let _ = driver.run(&mut db, transactions / 4);
    db.reset_stats();
    driver.run(&mut db, transactions)
}

#[test]
fn database_miss_rates_drop_with_buffer_size() {
    let small = run_driver(128, 4000);
    let large = run_driver(1024, 4000);
    for rel in [Relation::Stock, Relation::Customer] {
        assert!(
            large.miss_ratio(rel) < small.miss_ratio(rel) + 1e-9,
            "{}: small-pool {} vs large-pool {}",
            rel.name(),
            small.miss_ratio(rel),
            large.miss_ratio(rel)
        );
    }
}

#[test]
fn database_and_model_agree_on_hot_relations() {
    // Warehouse and district must be effectively always-hot in both
    // stacks; item is small and hot; stock/customer carry real misses
    // when the pool is scarce.
    let report = run_driver(256, 5000);
    assert!(
        report.miss_ratio(Relation::Warehouse) < 0.02,
        "warehouse miss {}",
        report.miss_ratio(Relation::Warehouse)
    );
    assert!(
        report.miss_ratio(Relation::District) < 0.02,
        "district miss {}",
        report.miss_ratio(Relation::District)
    );

    let trace = {
        let mut t = TraceConfig::paper_default(2, Packing::Sequential);
        t.initial_orders_per_district = 80;
        t.initial_pending_per_district = 20;
        t
    };
    let sim = BufferSim::run(
        &BufferSimConfig {
            batches: 2,
            batch_transactions: 2500,
            warmup_transactions: 1000,
            ..BufferSimConfig::quick(trace, 256, 7)
        },
        None,
    );
    // a 256-page pool under Stock-Level's 400-page sweeps can evict even
    // the single warehouse page occasionally; "effectively always hot"
    // is the claim, in both stacks
    assert!(sim.miss_rate(Relation::Warehouse) < 0.02);
    assert!(sim.miss_rate(Relation::District) < 0.02);
}

#[test]
fn database_respects_paper_mix_stability() {
    // The paper's §2.1 warning, verified on the physical system: with
    // the 43/5 mix the New-Order relation stays near its initial size.
    let mut db = loaded_db(512);
    let pages_before = db.relation_pages(Relation::NewOrder);
    let mut driver = Driver::new(&db, DriverConfig::default(), 99);
    let report = driver.run(&mut db, 6000);
    let pages_after = db.relation_pages(Relation::NewOrder);
    assert!(report.new_orders > 2000);
    assert!(
        pages_after <= pages_before + 6,
        "new-order pages {pages_before} -> {pages_after}"
    );
    // and deliveries kept pace with placements
    let placed = report.new_orders;
    let delivered = report.deliveries;
    assert!(
        delivered as f64 > placed as f64 * 0.8,
        "placed {placed}, delivered {delivered}"
    );
}

#[test]
fn stock_level_join_scans_paper_scale_rows() {
    // §2.2: "an average of 200 Order-Line and Stock tuples each being
    // fetched" — the executable join must touch the same scale.
    let db = loaded_db(512);
    let r = db.stock_level(0, 0, 15);
    assert!(
        (100..=320).contains(&r.lines_scanned),
        "scanned {} lines",
        r.lines_scanned
    );
}

#[test]
fn payment_by_name_matches_three_rows_on_average() {
    // The spec's load rule (3000 customers, 1000 names) is what makes
    // the paper model a by-name select as 3 selects; verify the
    // executable path reproduces that average.
    let db = loaded_db(512);
    let mut total_rows = 0usize;
    let n = 300;
    for k in 0..n {
        let name = k % db.config().name_count();
        let r = db.payment(
            0,
            0,
            0,
            0,
            tpcc_suite::db::txns::CustomerSelector::ByName(name),
            10.0,
        );
        total_rows += r.rows_matched;
    }
    let avg = total_rows as f64 / n as f64;
    assert!(
        (2.0..=4.5).contains(&avg),
        "average by-name matches {avg} (paper assumes ~3)"
    );
}
