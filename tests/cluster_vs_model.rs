//! Cross-validation: the executed cluster (`tpcc_db::cluster`) against
//! the §5.3 distributed model (`tpcc_cost::distributed`, figures
//! 11–12).
//!
//! The model's scale-up curve is built from the Appendix A remote-call
//! expectations; the executed cluster generates those calls from the
//! actual clause probabilities, routed through a real message layer
//! and committed with real 2PC. These tests compare the two at the
//! point where they must meet — remote calls per transaction — which
//! is host-independent (wall-clock scale-up itself needs real cores
//! and lives in the `cluster_scaling` bench, gated in CI).

use tpcc_suite::cost::distributed::{DistributedModel, ItemPlacement, RemoteExpectations};
use tpcc_suite::cost::single::SingleNodeModel;
use tpcc_suite::cost::source::TableMissSource;
use tpcc_suite::db::cluster::{Cluster, ClusterConfig, MsgKind};
use tpcc_suite::schema::relation::Relation;
use tpcc_suite::workload::TxType;

/// The workspace's standard miss-rate fixture.
fn misses() -> TableMissSource {
    TableMissSource::new_order_rates(0.4, 0.02, 0.25)
        .with(Relation::Customer, TxType::Payment, 0.9)
        .with(Relation::OrderLine, TxType::Delivery, 10.0)
        .with(Relation::Stock, TxType::StockLevel, 60.0)
}

/// Appendix A expectations adjusted to the executed topology. The
/// model's `(N−1)/N` node-remoteness factor assumes many warehouses
/// per node; the executed cluster here runs 1 warehouse per node, so a
/// clause-remote *warehouse* (uniform over the `W−1` others) is on a
/// remote *node* with probability `(W−wpn)/(W−1)`. Feeding the clause
/// probabilities scaled by the ratio of those factors makes
/// `compute`'s internal `p·(N−1)/N` come out at the executed rate.
fn expectations(nodes: u64, wpn: u64, placement: ItemPlacement) -> RemoteExpectations {
    let w = (nodes * wpn) as f64;
    let node_remote = (w - wpn as f64) / (w - 1.0);
    let c = node_remote * nodes as f64 / (nodes - 1) as f64;
    RemoteExpectations::compute(nodes, 0.01 * c, 0.15 * c, 10, 0.6, 3.0, placement)
}

/// Executed remote stock and customer calls per transaction match the
/// Appendix A expectations (`RC_stock`, `RC_cust`) that drive the
/// figure 11 curve.
#[test]
fn executed_remote_calls_per_txn_match_appendix_a() {
    let nodes = 2;
    let cl = Cluster::new(ClusterConfig::small(nodes), 42);
    let report = cl.run_serial(8_000, 43);
    let e = expectations(nodes, 1, ItemPlacement::Replicated);

    let msg_total = |kind: MsgKind| -> f64 {
        (0..nodes as usize)
            .map(|n| cl.inbox_count(n, kind))
            .sum::<u64>() as f64
    };

    // RC_stock counts one read + one write-back per remote stock line
    let new_orders = report.executed[0] as f64;
    let rc_stock = (msg_total(MsgKind::StockRead) + msg_total(MsgKind::StockWrite)) / new_orders;
    assert!(
        (rc_stock / e.rc_stock - 1.0).abs() < 0.40,
        "executed RC_stock {rc_stock:.4} vs model {:.4}",
        e.rc_stock
    );

    // RC_cust counts the rows the selection touches + one write-back
    let payments = report.executed[1] as f64;
    let rc_cust = (msg_total(MsgKind::CustomerRead) + msg_total(MsgKind::CustomerWrite)) / payments;
    assert!(
        (rc_cust / e.rc_cust - 1.0).abs() < 0.25,
        "executed RC_cust {rc_cust:.4} vs model {:.4}",
        e.rc_cust
    );

    // replicated items never cross the network
    assert_eq!(msg_total(MsgKind::ItemRead), 0.0);
    assert!(cl.consistent());
}

/// Partitioned item placement generates the `RC_item ≈ m·(N−1)/N`
/// fetches per New-Order that figure 12 charges it for.
#[test]
fn executed_partitioned_item_fetches_match_appendix_a() {
    let nodes = 2;
    let cfg = ClusterConfig {
        placement: ItemPlacement::Partitioned,
        ..ClusterConfig::small(nodes)
    };
    let cl = Cluster::new(cfg, 44);
    let report = cl.run_serial(6_000, 45);
    let e = expectations(nodes, 1, ItemPlacement::Partitioned);

    let item_reads: u64 = (0..nodes as usize)
        .map(|n| cl.inbox_count(n, MsgKind::ItemRead))
        .sum();
    let rc_item = item_reads as f64 / report.executed[0] as f64;
    assert!(
        (rc_item / e.rc_item - 1.0).abs() < 0.20,
        "executed RC_item {rc_item:.4} vs model {:.4}",
        e.rc_item
    );
    assert!(cl.consistent());
}

/// Figure 12's direction, on both sides of the fence: the model says
/// replicated beats partitioned at every N ≥ 2, and the executed
/// cluster's message volume agrees about why — partitioning adds an
/// order of magnitude more remote calls.
#[test]
fn replicated_beats_partitioned_in_model_and_messages() {
    let misses = misses();
    let single = SingleNodeModel::paper_default();
    for nodes in [2u64, 4] {
        let repl = DistributedModel::new(single.clone(), ItemPlacement::Replicated)
            .cluster_tpm(nodes, &misses);
        let part = DistributedModel::new(single.clone(), ItemPlacement::Partitioned)
            .cluster_tpm(nodes, &misses);
        assert!(repl > part, "model: N={nodes} replicated must win");
    }

    let txns = 3_000;
    let run = |placement| {
        let cfg = ClusterConfig {
            placement,
            ..ClusterConfig::small(2)
        };
        let cl = Cluster::new(cfg, 46);
        let _ = cl.run_serial(txns, 47);
        (0..2)
            .map(|n| {
                MsgKind::ALL
                    .iter()
                    .map(|&k| cl.inbox_count(n, k))
                    .sum::<u64>()
            })
            .sum::<u64>()
    };
    let repl_msgs = run(ItemPlacement::Replicated);
    let part_msgs = run(ItemPlacement::Partitioned);
    assert!(
        part_msgs > 2 * repl_msgs,
        "partitioned {part_msgs} msgs vs replicated {repl_msgs}"
    );
}

/// The 1-node degenerate case on both axes at once: the model's
/// expectations are all zero and the executed cluster sends zero
/// messages — under either placement.
#[test]
fn one_node_cluster_is_degenerate_in_model_and_execution() {
    for placement in [ItemPlacement::Replicated, ItemPlacement::Partitioned] {
        let e = RemoteExpectations::compute(1, 0.01, 0.15, 10, 0.6, 3.0, placement);
        assert_eq!(e.rc_stock, 0.0);
        assert_eq!(e.rc_cust, 0.0);
        assert_eq!(e.rc_item, 0.0);

        let cfg = ClusterConfig {
            placement,
            ..ClusterConfig::small(1)
        };
        let cl = Cluster::new(cfg, 48);
        let report = cl.run_serial(1_000, 49);
        assert_eq!(report.messages(), 0, "{placement:?}");
        assert_eq!(report.remote_new_orders + report.remote_payments, 0);
        assert_eq!(report.prepares, 0);
    }
}
