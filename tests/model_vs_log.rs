//! Cross-validation: the executable WAL and its group-commit pipeline
//! against the §5 "separate log disk" model (`tpcc_cost::logdisk`).
//!
//! The model predicts redo volume analytically from Table 1 tuple
//! lengths — full after-images plus 24-byte record headers and a
//! 16-byte commit marker per writing transaction. The engine logs
//! physical page deltas (segmented changed byte ranges of slotted
//! pages) plus allocation records, for the heaps *and* for the ten
//! B+Tree indexes the model does not account for. Heap deltas track
//! tuple bytes closely (the segmented encoder skips the untouched
//! span between a page's slot directory and its record area), but an
//! index insert shifts the tail of a sorted node array and logs the
//! shifted suffix — measured, that index maintenance roughly doubles
//! the §5 tuple-only volume. We therefore hold the executed volume to
//! a stated factor-of-three band around the §5 prediction; the
//! `probe_volume_composition` probe (ignored by default) prints the
//! per-file breakdown behind that number.
//!
//! Group-commit batching is cross-checked twice: the deterministic
//! inline schedule must match its configured group size exactly, and a
//! threaded multi-terminal run must batch more than one commit per
//! flush while staying inside the model's utilization band.

use tpcc_suite::cost::logdisk::LogDiskModel;
use tpcc_suite::db::driver::DriverConfig;
use tpcc_suite::db::{loader, DbConfig, Driver, GroupCommitConfig, ParallelDriver};
use tpcc_suite::workload::TransactionMix;

/// The band (as a factor) within which the executed bytes-per-txn must
/// track the §5 after-image accounting. Heap deltas can undershoot a
/// full after-image (only the touched range is logged); B+Tree
/// node-array shifts — outside the model's tuple-only accounting —
/// overshoot it. Measured: ~2.3x at the paper mix.
const VOLUME_BAND: f64 = 3.0;

/// Deep pending queue so Delivery never skips a district (the model
/// assumes all ten districts deliver), plus WAL on.
fn log_cfg() -> DbConfig {
    let mut cfg = DbConfig::small();
    cfg.enable_wal = true;
    cfg.initial_pending_per_district = 150;
    cfg.initial_orders_per_district = 210;
    cfg
}

/// Measured encoded redo bytes per driver transaction over a seeded
/// run (full serialized volume: payloads, headers, commit markers,
/// allocation records).
fn executed_bytes_per_txn(cfg: DbConfig, transactions: u64, seed: u64) -> f64 {
    let mut db = loader::load(cfg, seed);
    let mut driver = Driver::new(&db, DriverConfig::default(), seed ^ 0xabcd);
    driver.run(&mut db, transactions);
    db.flush_log();
    let wal = db.take_wal().expect("WAL enabled");
    wal.encoded_bytes() as f64 / transactions as f64
}

#[test]
fn executed_log_volume_tracks_the_section5_model() {
    let model = LogDiskModel::paper_default();
    let mix = TransactionMix::paper_default();
    let predicted = model.avg_bytes_per_txn(&mix);
    let executed = executed_bytes_per_txn(log_cfg(), 2_000, 42);
    let ratio = executed / predicted;
    assert!(
        (1.0 / VOLUME_BAND..=VOLUME_BAND).contains(&ratio),
        "executed {executed:.0} B/txn vs §5 prediction {predicted:.0} B/txn \
         (ratio {ratio:.2}, band {VOLUME_BAND}x)"
    );
}

#[test]
fn inline_group_commit_matches_its_configured_group_size() {
    let mut cfg = log_cfg();
    cfg.group_commit = Some(GroupCommitConfig::inline_every(8));
    let mut db = loader::load(cfg, 7);
    let mut driver = Driver::new(&db, DriverConfig::default(), 11);
    driver.run(&mut db, 1_500);
    db.flush_log();
    let stats = db.group_commit_stats().expect("group commit on");
    let commits = db.wal_stats().expect("WAL on").2;
    assert_eq!(stats.commits_flushed, commits, "every commit flushed once");
    // flush every 8th commit, plus one final partial flush at quiesce
    let expected_flushes = commits / 8 + u64::from(!commits.is_multiple_of(8));
    assert_eq!(stats.flushes, expected_flushes, "{stats:?}");
    assert!(
        stats.commits_per_flush() > 7.0 && stats.commits_per_flush() <= 8.0,
        "inline schedule must average its group size: {stats:?}"
    );
}

/// The ISSUE's acceptance run: 8 terminals through the threaded
/// batcher. Commits per flush must exceed one (grouping is real), the
/// p95 commit wait must stay bounded by the flush window plus the
/// simulated device write, and the executed log utilization at the
/// measured throughput must sit in the §5 band.
#[test]
fn threaded_group_commit_batches_and_stays_on_the_section5_curve() {
    let gc = GroupCommitConfig::new(500, 64, 100);
    let mut cfg = log_cfg();
    cfg.warehouses = 2;
    cfg.buffer_frames = 2048;
    cfg.group_commit = Some(gc);
    let mut db = loader::load(cfg, 61);
    let report = ParallelDriver::new(DriverConfig::default(), 8, 62).run(&db, 4_000);
    db.flush_log();

    let stats = db.group_commit_stats().expect("group commit on");
    assert!(
        stats.commits_per_flush() > 1.0,
        "8 terminals must share flushes: {stats:?}"
    );

    // bounded commit wait: a ticket waits at most one full window plus
    // the device write plus scheduling slack (generous 20x headroom so
    // a loaded CI machine cannot flake this)
    let waits = db.commit_wait_sketch().expect("group commit on");
    let bound_us = (gc.flush_window_us + gc.log_io_delay_us) as f64 * 20.0;
    let p95_us = waits.quantile(0.95) / 1e3;
    assert!(
        p95_us < bound_us,
        "p95 commit wait {p95_us:.0}µs exceeds {bound_us:.0}µs"
    );

    // executed utilization vs the §5 curve at the measured throughput
    let model = LogDiskModel::paper_default();
    let mix = TransactionMix::paper_default();
    let bytes = db.take_wal().expect("WAL on").encoded_bytes();
    let elapsed = report.elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
    let executed_util = bytes as f64 / elapsed / model.bandwidth_bytes_per_sec;
    let lambda = report.total() as f64 / elapsed;
    let predicted_util = model.utilization(&mix, lambda);
    let ratio = executed_util / predicted_util;
    assert!(
        (1.0 / VOLUME_BAND..=VOLUME_BAND).contains(&ratio),
        "executed log utilization {executed_util:.4} vs §5 {predicted_util:.4} \
         at {lambda:.0} txn/s (ratio {ratio:.2}, band {VOLUME_BAND}x)"
    );
}

/// Prints the per-file WAL volume breakdown behind [`VOLUME_BAND`]:
/// run with `--ignored --nocapture`. Low file ids are heaps (deltas a
/// few tens of bytes — tuple-sized), high ids are B+Tree indexes
/// (hundreds of bytes — node-array shifts).
#[test]
#[ignore]
fn probe_volume_composition() {
    let mut db = loader::load(log_cfg(), 42);
    let mut driver = Driver::new(&db, DriverConfig::default(), 42 ^ 0xabcd);
    driver.run(&mut db, 2_000);
    db.flush_log();
    let wal = db.take_wal().expect("WAL");
    let mut per_file: std::collections::HashMap<u32, (u64, u64)> = Default::default();
    let mut commits = 0u64;
    let mut other = 0u64;
    for e in wal.entries() {
        match e {
            tpcc_suite::storage::WalEntry::PageDelta { file, data, .. } => {
                let ent = per_file.entry(file.0).or_default();
                ent.0 += 1;
                ent.1 += e.encoded_len() as u64;
                let _ = data;
            }
            tpcc_suite::storage::WalEntry::Commit { .. } => commits += 1,
            _ => other += e.encoded_len() as u64,
        }
    }
    eprintln!(
        "total encoded {} commits {} other {}",
        wal.encoded_bytes(),
        commits,
        other
    );
    let mut files: Vec<_> = per_file.into_iter().collect();
    files.sort();
    for (f, (n, b)) in files {
        eprintln!(
            "file {f:>3} deltas {n:>7} bytes {b:>10} avg {:.0}",
            b as f64 / n as f64
        );
    }
}
