//! Materialized views vs the §3.3.2 consistency verifier, workspace
//! level: a ~20k-transaction mixed workload split across a serial run,
//! an 8-terminal parallel run (group commit + MVCC + spec-rate
//! rollbacks), and a 2-node 2PC cluster. After each phase the base
//! tables must pass all four TPC-C consistency conditions **and** the
//! incrementally-maintained views must byte-equal a rescan of those
//! same (verified) tables — so the views inherit the §3.3.2
//! invariants, and Stock-Level answered from the view matches the
//! database's 200-row join.

use tpcc_suite::db::cluster::{Cluster, ClusterConfig};
use tpcc_suite::db::db::DbConfig;
use tpcc_suite::db::{
    loader, CdcPipeline, Driver, DriverConfig, GroupCommitConfig, MaterializedViews,
    ParallelDriver, TpccDb,
};

fn wal_cfg(warehouses: u64) -> DbConfig {
    let mut cfg = DbConfig::small();
    cfg.warehouses = warehouses;
    cfg.buffer_frames = 4096 * warehouses as usize;
    cfg.buffer_shards = 4;
    cfg.enable_wal = true;
    cfg.group_commit = Some(GroupCommitConfig::inline_every(8));
    cfg.mvcc = true;
    cfg
}

/// The full cross-check at one quiesced harvest point.
fn verify_views_against_base(db: &TpccDb, pipeline: &mut CdcPipeline, label: &str) {
    db.flush_log();
    pipeline.poll(db).expect("no lag bound configured");

    // 1. the base tables satisfy §3.3.2 (conditions 1–4)
    let consistency = db.verify_consistency();
    assert!(
        consistency.is_consistent(),
        "{label}: base tables violate §3.3.2: {:?}",
        consistency.violations
    );

    // 2. the views equal a rescan of those verified tables
    let rescan = MaterializedViews::rescan_live(db, &pipeline.registry().clone());
    assert_eq!(
        pipeline.views().encode(),
        rescan.encode(),
        "{label}: views must equal a rescan of the verified base tables"
    );

    // 3. Stock-Level answered from the view == the base-table join
    for w in 0..db.config().warehouses {
        for d in 0..10 {
            for threshold in [12, 18] {
                assert_eq!(
                    pipeline
                        .views()
                        .stock_threshold
                        .stock_level(w, d, threshold),
                    db.stock_level(w, d, threshold).low_stock,
                    "{label}: view-answered Stock-Level diverged (w {w}, d {d}, t {threshold})"
                );
            }
        }
    }
}

#[test]
fn views_match_verifier_across_serial_parallel_and_cluster() {
    let seed = 42;

    // Phase 1: serial, 6k transactions.
    let mut db = loader::load(wal_cfg(1), seed);
    let mut pipeline = CdcPipeline::new(&db);
    let mut driver = Driver::new(&db, DriverConfig::default(), seed);
    for chunk in 0..3 {
        driver.run(&mut db, 2_000);
        verify_views_against_base(&db, &mut pipeline, &format!("serial chunk {chunk}"));
    }
    assert!(pipeline.stats().events > 0);
    drop(db);

    // Phase 2: 8 terminals, 8k transactions, spec-rate rollbacks.
    let db = loader::load(wal_cfg(2), seed);
    let mut pipeline = CdcPipeline::new(&db);
    let driver = ParallelDriver::new(DriverConfig::default().with_spec_rollbacks(), 8, seed);
    for chunk in 0..2 {
        driver.run(&db, 4_000);
        verify_views_against_base(&db, &mut pipeline, &format!("parallel chunk {chunk}"));
    }
    drop(db);

    // Phase 3: a 2-node cluster (2PC commits, MVCC pre-images), 6k
    // transactions — one pipeline per node over that node's WAL.
    let mut ccfg = ClusterConfig::small(2);
    ccfg.node_db.enable_wal = true;
    let cluster = Cluster::new(ccfg, seed);
    let mut pipelines: Vec<CdcPipeline> = (0..2)
        .map(|n| CdcPipeline::new(cluster.node_db(n)))
        .collect();
    let report = cluster.run(4, 6_000, seed);
    assert_eq!(report.total(), 6_000);
    for (n, pipeline) in pipelines.iter_mut().enumerate() {
        verify_views_against_base(cluster.node_db(n), pipeline, &format!("cluster node {n}"));
    }
}
