//! Windowed time-series telemetry: one JSON line per flush window, so
//! a run produces a *series* (`results/timeseries.jsonl`) instead of a
//! single end-of-run row — warmup transients, the I/O-bound knee, and
//! fault-retry storms become visible.
//!
//! The writer is schema-generic: the driving layer assembles a
//! [`TimeSeriesPoint`] per window (per-transaction-type sketch
//! quantiles, counter deltas, derived gauges) and the writer stamps it
//! with a monotonically increasing `seq` and a **run-relative
//! monotonic timestamp** `t_ms`, then appends one JSON line. Like
//! [`SnapshotWriter`](crate::SnapshotWriter), it flushes on drop —
//! including during a panic unwind — so a crashed or fault-injected
//! run keeps its last complete window on disk.

use std::io::{self, Write};
use std::time::Instant;

use crate::export::json_f64;

/// Per-series (e.g. per transaction type) window statistics, taken
/// from a window-delta quantile sketch.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SeriesStat {
    /// Completions in the window.
    pub txns: u64,
    /// Completions per second over the window.
    pub tps: f64,
    /// Median latency in microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency in microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: f64,
}

/// One flush window's payload, assembled by the driving layer.
#[derive(Debug, Clone, Default)]
pub struct TimeSeriesPoint {
    /// Window length in milliseconds (wall clock).
    pub window_ms: f64,
    /// Transactions completed in the window (all series).
    pub txns: u64,
    /// Per-series rows, e.g. one per transaction type.
    pub series: Vec<(&'static str, SeriesStat)>,
    /// Monotonic-counter deltas over the window (e.g. `buf_misses`,
    /// `wal_bytes`, `lock_wounds`).
    pub counters: Vec<(&'static str, u64)>,
    /// Derived instantaneous values (e.g. `miss_ppm`).
    pub gauges: Vec<(&'static str, f64)>,
}

/// Appends one JSON line per window, stamped with `seq` and the
/// run-relative monotonic `t_ms`.
#[derive(Debug)]
pub struct TimeSeriesWriter<W: Write> {
    out: Option<W>,
    start: Instant,
    seq: u64,
}

impl<W: Write> TimeSeriesWriter<W> {
    /// A writer whose `t_ms` clock starts now.
    pub fn new(out: W) -> Self {
        Self {
            out: Some(out),
            start: Instant::now(),
            seq: 0,
        }
    }

    /// Milliseconds since the writer's creation (the run-relative
    /// clock every emitted point is stamped with).
    #[must_use]
    pub fn t_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Appends one point as a JSON line, stamping `seq` and `t_ms`.
    ///
    /// # Errors
    /// Propagates write errors from the underlying sink.
    pub fn emit(&mut self, point: &TimeSeriesPoint) -> io::Result<()> {
        let t_ms = self.t_ms();
        let mut line = String::with_capacity(512);
        let window_s = (point.window_ms / 1e3).max(f64::MIN_POSITIVE);
        line.push_str(&format!(
            "{{\"seq\":{},\"t_ms\":{:.3},\"window_ms\":{:.3},\"txns\":{},\"tps\":{}",
            self.seq,
            t_ms,
            point.window_ms,
            point.txns,
            json_f64(point.txns as f64 / window_s),
        ));
        line.push_str(",\"types\":{");
        for (i, (name, s)) in point.series.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!(
                "\"{name}\":{{\"txns\":{},\"tps\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
                s.txns,
                json_f64(s.tps),
                json_f64(s.p50_us),
                json_f64(s.p95_us),
                json_f64(s.p99_us),
            ));
        }
        line.push_str("},\"counters\":{");
        for (i, (name, v)) in point.counters.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("\"{name}\":{v}"));
        }
        line.push_str("},\"gauges\":{");
        for (i, (name, v)) in point.gauges.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("\"{name}\":{}", json_f64(*v)));
        }
        line.push_str("}}");
        let out = self.out.as_mut().expect("writer not consumed");
        writeln!(out, "{line}")?;
        self.seq += 1;
        Ok(())
    }

    /// Points emitted so far.
    #[must_use]
    pub fn points_written(&self) -> u64 {
        self.seq
    }

    /// Flushes the underlying sink.
    ///
    /// # Errors
    /// Propagates flush errors from the underlying sink.
    pub fn finish(&mut self) -> io::Result<()> {
        self.out.as_mut().expect("writer not consumed").flush()
    }

    /// Consumes the writer, returning the underlying sink (flushed).
    pub fn into_inner(mut self) -> W {
        let mut out = self.out.take().expect("writer not consumed");
        let _ = out.flush();
        out
    }
}

impl<W: Write> Drop for TimeSeriesWriter<W> {
    /// Best-effort flush so buffered windows survive panics and early
    /// returns; errors are ignored (there is no one left to tell).
    fn drop(&mut self) {
        if let Some(out) = self.out.as_mut() {
            let _ = out.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_point() -> TimeSeriesPoint {
        TimeSeriesPoint {
            window_ms: 50.0,
            txns: 120,
            series: vec![(
                "new_order",
                SeriesStat {
                    txns: 50,
                    tps: 1000.0,
                    p50_us: 80.0,
                    p95_us: 410.0,
                    p99_us: 900.5,
                },
            )],
            counters: vec![("buf_misses", 17), ("wal_bytes", 4096)],
            gauges: vec![("miss_ppm", 1234.0)],
        }
    }

    #[test]
    fn emitted_lines_are_stamped_and_wellformed() {
        let mut w = TimeSeriesWriter::new(Vec::new());
        w.emit(&sample_point()).unwrap();
        w.emit(&sample_point()).unwrap();
        assert_eq!(w.points_written(), 2);
        let out = String::from_utf8(w.into_inner()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"seq\":0,\"t_ms\":"));
        assert!(lines[1].starts_with("{\"seq\":1,\"t_ms\":"));
        for l in &lines {
            assert!(l.contains("\"window_ms\":50.000"));
            assert!(l.contains("\"tps\":2400"));
            assert!(l.contains("\"new_order\":{\"txns\":50,"));
            assert!(l.contains("\"p95_us\":410"));
            assert!(l.contains("\"buf_misses\":17"));
            assert!(l.contains("\"miss_ppm\":1234"));
            assert_eq!(l.matches('{').count(), l.matches('}').count());
        }
    }

    #[test]
    fn t_ms_is_monotonic() {
        let mut w = TimeSeriesWriter::new(Vec::new());
        let a = w.t_ms();
        w.emit(&sample_point()).unwrap();
        let b = w.t_ms();
        assert!(b >= a);
    }

    /// A sink that only counts as "persisted" what was flushed.
    struct FlushGate {
        buffered: Vec<u8>,
        persisted: std::sync::Arc<std::sync::Mutex<Vec<u8>>>,
    }

    impl Write for FlushGate {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.buffered.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            self.persisted
                .lock()
                .unwrap()
                .extend_from_slice(&self.buffered);
            self.buffered.clear();
            Ok(())
        }
    }

    #[test]
    fn drop_flushes_even_through_panic_unwind() {
        let persisted = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = FlushGate {
            buffered: Vec::new(),
            persisted: persisted.clone(),
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut w = TimeSeriesWriter::new(sink);
            w.emit(&sample_point()).unwrap();
            panic!("simulated fault-injected crash");
        }));
        assert!(result.is_err());
        let got = String::from_utf8(persisted.lock().unwrap().clone()).unwrap();
        assert!(
            got.contains("\"seq\":0"),
            "the emitted window survived the panic: {got:?}"
        );
    }
}
