//! Pre-resolved metric handles: the hot-path answer to the recorder's
//! shared slot maps.
//!
//! `Obs::counter(..)` and friends look the `(name, label)` slot up in a
//! read-mostly `RwLock<HashMap>` on *every* call. That is fine for cold
//! paths, but the multi-threaded driver hits counters from every
//! terminal thread and the shared read lock becomes the bottleneck
//! (measured at ~+48% single-threaded, worse under contention — see
//! EXPERIMENTS.md). A handle resolves the slot **once** and afterwards
//! records straight into the shared atomic (or per-histogram mutex)
//! with no name hashing and no map lock.
//!
//! Handles degrade gracefully: resolved against a disabled [`Obs`] they
//! are inert one-branch no-ops, and against a recorder that does not
//! expose slots (e.g. a custom sink) they fall back to the dynamic
//! call. Instrumented code therefore never needs to know which case it
//! holds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::recorder::{Label, Obs, Recorder};
use crate::sketch::QuantileSketch;
use crate::trace::TraceCollector;

/// A pre-resolved counter. `add` is one branch plus one relaxed
/// `fetch_add` in the slot-backed case.
#[derive(Clone, Default)]
pub struct CounterHandle {
    inner: Option<CounterInner>,
}

#[derive(Clone)]
enum CounterInner {
    Slot(Arc<AtomicU64>),
    Dynamic(Arc<dyn Recorder>, &'static str, Label),
}

impl std::fmt::Debug for CounterHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.inner {
            None => "disabled",
            Some(CounterInner::Slot(_)) => "slot",
            Some(CounterInner::Dynamic(..)) => "dynamic",
        };
        f.debug_struct("CounterHandle")
            .field("kind", &kind)
            .finish()
    }
}

impl CounterHandle {
    /// A handle that records nothing.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Adds `delta` to the counter.
    #[inline]
    pub fn add(&self, delta: u64) {
        match &self.inner {
            None => {}
            Some(CounterInner::Slot(slot)) => {
                slot.fetch_add(delta, Ordering::Relaxed);
            }
            Some(CounterInner::Dynamic(r, name, label)) => r.counter_add(name, *label, delta),
        }
    }
}

/// A pre-resolved gauge (f64 stored as bits in a shared atomic).
#[derive(Clone, Default)]
pub struct GaugeHandle {
    inner: Option<GaugeInner>,
}

#[derive(Clone)]
enum GaugeInner {
    Slot(Arc<AtomicU64>),
    Dynamic(Arc<dyn Recorder>, &'static str, Label),
}

impl std::fmt::Debug for GaugeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GaugeHandle")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl GaugeHandle {
    /// A handle that records nothing.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Sets the gauge to `value`.
    #[inline]
    pub fn set(&self, value: f64) {
        match &self.inner {
            None => {}
            Some(GaugeInner::Slot(slot)) => slot.store(value.to_bits(), Ordering::Relaxed),
            Some(GaugeInner::Dynamic(r, name, label)) => r.gauge_set(name, *label, value),
        }
    }
}

/// A pre-resolved histogram.
#[derive(Clone, Default)]
pub struct HistogramHandle {
    inner: Option<HistInner>,
}

#[derive(Clone)]
enum HistInner {
    Slot(Arc<Mutex<QuantileSketch>>),
    Dynamic(Arc<dyn Recorder>, &'static str, Label),
}

impl std::fmt::Debug for HistogramHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramHandle")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl HistogramHandle {
    /// A handle that records nothing.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        match &self.inner {
            None => {}
            Some(HistInner::Slot(slot)) => slot.lock().expect("obs hist lock").record(value),
            Some(HistInner::Dynamic(r, name, label)) => r.observe(name, *label, value),
        }
    }

    /// Merges a locally-accumulated sketch into this histogram in one
    /// lock acquisition — the per-thread-sketch hand-off.
    pub fn merge(&self, sketch: &QuantileSketch) {
        match &self.inner {
            None => {}
            Some(HistInner::Slot(slot)) => slot.lock().expect("obs hist lock").merge(sketch),
            Some(HistInner::Dynamic(r, name, label)) => r.histogram_merge(name, *label, sketch),
        }
    }

    /// Starts a timer that records elapsed nanoseconds into this
    /// histogram when dropped. A disabled handle never reads the clock.
    #[inline]
    #[must_use]
    pub fn start(&self) -> HandleTimer {
        HandleTimer {
            active: self.inner.as_ref().map(|_| (self.clone(), Instant::now())),
        }
    }
}

/// A pre-resolved trace-event emitter for one category. Inert unless a
/// [`TraceCollector`] was installed on the recorder **before** the
/// handle was resolved.
#[derive(Clone, Default)]
pub struct TraceHandle {
    inner: Option<(Arc<TraceCollector>, &'static str)>,
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl TraceHandle {
    /// A handle that records nothing.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether events will actually be recorded.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Reads the clock only when enabled — lets call sites guard the
    /// `Instant::now()` they need for [`TraceHandle::record`].
    #[inline]
    #[must_use]
    pub fn now(&self) -> Option<Instant> {
        self.inner.as_ref().map(|_| Instant::now())
    }

    /// Records a completed occurrence `start → now` on the calling
    /// thread's timeline.
    #[inline]
    pub fn record(&self, name: &'static str, start: Instant) {
        if let Some((tc, cat)) = &self.inner {
            tc.record(name, cat, start);
        }
    }

    /// Like [`TraceHandle::record`] with the `Option<Instant>` that
    /// [`TraceHandle::now`] produced; a `None` start is a no-op.
    #[inline]
    pub fn record_opt(&self, name: &'static str, start: Option<Instant>) {
        if let Some(start) = start {
            self.record(name, start);
        }
    }
}

/// RAII timer for [`HistogramHandle::start`]; records on drop.
pub struct HandleTimer {
    active: Option<(HistogramHandle, Instant)>,
}

impl HandleTimer {
    /// Stops the timer without recording.
    pub fn cancel(mut self) {
        self.active = None;
    }
}

impl Drop for HandleTimer {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.active.take() {
            let nanos = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            hist.record(nanos);
        }
    }
}

impl Obs {
    /// Resolves a counter handle for `(name, label)`. Resolve once at
    /// attach time, then call [`CounterHandle::add`] on the hot path.
    #[must_use]
    pub fn counter_handle(&self, name: &'static str, label: Label) -> CounterHandle {
        CounterHandle {
            inner: self.recorder().map(|r| match r.counter_slot(name, label) {
                Some(slot) => CounterInner::Slot(slot),
                None => CounterInner::Dynamic(Arc::clone(r), name, label),
            }),
        }
    }

    /// Resolves a gauge handle for `(name, label)`.
    #[must_use]
    pub fn gauge_handle(&self, name: &'static str, label: Label) -> GaugeHandle {
        GaugeHandle {
            inner: self.recorder().map(|r| match r.gauge_slot(name, label) {
                Some(slot) => GaugeInner::Slot(slot),
                None => GaugeInner::Dynamic(Arc::clone(r), name, label),
            }),
        }
    }

    /// Resolves a histogram handle for `(name, label)`.
    #[must_use]
    pub fn histogram_handle(&self, name: &'static str, label: Label) -> HistogramHandle {
        HistogramHandle {
            inner: self
                .recorder()
                .map(|r| match r.histogram_slot(name, label) {
                    Some(slot) => HistInner::Slot(slot),
                    None => HistInner::Dynamic(Arc::clone(r), name, label),
                }),
        }
    }

    /// Resolves a trace handle for category `cat`. Enabled only when
    /// the recorder carries an installed trace collector at resolve
    /// time (`MemoryRecorder::install_trace` first, then attach).
    #[must_use]
    pub fn trace_handle(&self, cat: &'static str) -> TraceHandle {
        TraceHandle {
            inner: self
                .recorder()
                .and_then(|r| r.trace_sink())
                .map(|tc| (tc, cat)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryRecorder;
    use crate::recorder::NoopRecorder;

    #[test]
    fn slot_handles_share_state_with_dynamic_calls() {
        let rec = Arc::new(MemoryRecorder::new());
        let obs = Obs::new(rec.clone());
        let h = obs.counter_handle("txn_total", Label::Name("payment"));
        h.add(2);
        obs.counter("txn_total", Label::Name("payment"), 3);
        h.add(1);
        assert_eq!(rec.counter_value("txn_total", Label::Name("payment")), 6);

        let g = obs.gauge_handle("pool", Label::None);
        g.set(17.0);
        assert_eq!(rec.gauge_value("pool", Label::None), Some(17.0));

        let hist = obs.histogram_handle("lat", Label::Idx(3));
        hist.record(100);
        obs.observe("lat", Label::Idx(3), 300);
        let snap = rec.histogram("lat", Label::Idx(3)).unwrap();
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.max(), 300);
    }

    #[test]
    fn disabled_obs_yields_inert_handles() {
        let obs = Obs::disabled();
        let c = obs.counter_handle("c", Label::None);
        let g = obs.gauge_handle("g", Label::None);
        let h = obs.histogram_handle("h", Label::None);
        c.add(1);
        g.set(1.0);
        h.record(1);
        let t = h.start();
        drop(t);
        // nothing to assert beyond "did not panic / did not allocate a
        // recorder"; the Default impls must match disabled()
        CounterHandle::default().add(1);
        GaugeHandle::default().set(0.0);
        HistogramHandle::default().record(0);
    }

    #[test]
    fn slotless_recorder_falls_back_to_dynamic_dispatch() {
        let obs = Obs::new(Arc::new(NoopRecorder));
        let c = obs.counter_handle("c", Label::None);
        assert!(matches!(c.inner, Some(CounterInner::Dynamic(..))));
        c.add(5); // discards through the trait object
    }

    #[test]
    fn handle_timer_records_and_cancels() {
        let rec = Arc::new(MemoryRecorder::new());
        let obs = Obs::new(rec.clone());
        let h = obs.histogram_handle("lat", Label::None);
        {
            let _t = h.start();
        }
        h.start().cancel();
        assert_eq!(rec.histogram("lat", Label::None).unwrap().count(), 1);
    }
}
