//! Mergeable quantile sketches with a bounded **relative** rank error.
//!
//! The layout follows the DDSketch idea: a value `v ≥ 1` lands in the
//! bucket `i = ⌈log_γ v⌉` with `γ = (1+α)/(1−α)`, so bucket `i` covers
//! `(γ^(i−1), γ^i]` and the bucket's representative value
//! `2·γ^i/(γ+1)` is within relative error `α` of *every* value in the
//! bucket. Quantile extraction walks the cumulative counts to the
//! requested rank and returns that bucket's representative, so the
//! estimate for quantile `q` is within `α` (relative) of the exact
//! sample at rank `⌈q·n⌉`.
//!
//! Unlike the fixed 256-bucket [`LogHistogram`](crate::LogHistogram)
//! (25% bucket width), the default `α = 1%` sketch resolves p95/p99
//! tail movement that the coarse buckets smear, and merging is a
//! bucket-wise add — **lossless**: merging per-thread sketches yields
//! bit-identical state to recording every sample through one sketch,
//! in any merge order. That is what lets the parallel driver keep a
//! private sketch per terminal and combine them only at snapshot or
//! window boundaries instead of funneling every sample through a
//! shared slot.
//!
//! Memory: bucket count is `⌈64·ln2 / lnγ⌉ + 2` (≈ 2 221 `u64`s
//! ≈ 17 KiB at `α = 1%`) and covers the whole `u64` range — no
//! collapsing, no reallocation, `record` is one `ln` plus an
//! increment.

/// Default relative accuracy of recorder-managed sketches.
pub const DEFAULT_SKETCH_ALPHA: f64 = 0.01;

/// A mergeable DDSketch-style quantile sketch over `u64` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    /// Relative accuracy bound `α`.
    alpha: f64,
    /// `1 / ln γ`, precomputed for `record`.
    inv_ln_gamma: f64,
    /// `γ = (1+α)/(1−α)`.
    gamma: f64,
    /// Count of zero-valued samples (index −∞ in log space).
    zero: u64,
    /// Counts for buckets `0..`, bucket `i` covering `(γ^(i−1), γ^i]`.
    counts: Box<[u64]>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new(DEFAULT_SKETCH_ALPHA)
    }
}

/// Number of buckets needed to cover `u64` at accuracy `alpha`.
fn bucket_count(inv_ln_gamma: f64) -> usize {
    // ⌈ln(2^64) / ln γ⌉, plus one for the i = 0 bucket
    (64.0 * std::f64::consts::LN_2 * inv_ln_gamma).ceil() as usize + 1
}

impl QuantileSketch {
    /// An empty sketch with relative accuracy `alpha` (clamped to
    /// `[0.0001, 0.25]`).
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        let alpha = alpha.clamp(0.0001, 0.25);
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        let inv_ln_gamma = 1.0 / gamma.ln();
        Self {
            alpha,
            inv_ln_gamma,
            gamma,
            zero: 0,
            counts: vec![0; bucket_count(inv_ln_gamma)].into_boxed_slice(),
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The sketch's relative accuracy bound `α`: quantile estimates are
    /// within `α·v` of the exact sample `v` at the requested rank.
    #[must_use]
    pub fn relative_accuracy(&self) -> f64 {
        self.alpha
    }

    /// Bucket index for a nonzero value.
    #[inline]
    fn index_of(&self, v: u64) -> usize {
        // ⌈log_γ v⌉; v = 1 maps to bucket 0, and the table is sized so
        // u64::MAX stays in range. f64 rounding can shift a value that
        // sits exactly on a bucket boundary by one bucket; the
        // representative of the neighbouring bucket is still within α
        // of such a value, so the error bound survives.
        let i = ((v as f64).ln() * self.inv_ln_gamma).ceil() as isize;
        i.clamp(0, self.counts.len() as isize - 1) as usize
    }

    /// Representative value of bucket `i`, within `α` (relative) of
    /// every value the bucket covers.
    fn value_of(&self, i: usize) -> f64 {
        2.0 * self.gamma.powi(i as i32) / (self.gamma + 1.0)
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        if v == 0 {
            self.zero += 1;
        } else {
            self.counts[self.index_of(v)] += 1;
        }
        self.total += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True before the first sample.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact mean of all samples; NaN when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return f64::NAN;
        }
        self.sum as f64 / self.total as f64
    }

    /// Exact sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact maximum sample; 0 when empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact minimum sample; `u64::MAX` when empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        self.min
    }

    /// The estimated value at quantile `q ∈ [0, 1]`: within relative
    /// error `α` of the exact sample at rank `⌈q·n⌉`, clamped to the
    /// exact observed `[min, max]` (so `quantile(1.0) == max()` and
    /// `quantile(0.0) == min()` exactly). NaN when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return f64::NAN;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        // the extreme ranks are tracked exactly; return them as-is
        // rather than a bucket representative
        if rank == self.total {
            return self.max as f64;
        }
        if rank == 1 {
            return self.min as f64;
        }
        let mut seen = self.zero;
        if seen >= rank {
            return 0.0;
        }
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.value_of(i).clamp(self.min as f64, self.max as f64);
            }
        }
        unreachable!("rank <= total implies a bucket is found");
    }

    /// Merges another sketch into this one. Lossless and
    /// order-independent: the result is bit-identical to recording both
    /// sketches' samples into one, whatever the merge order.
    ///
    /// # Panics
    /// Panics when the accuracies differ (buckets would not align).
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            (self.alpha - other.alpha).abs() < f64::EPSILON,
            "merging sketches of different accuracy ({} vs {})",
            self.alpha,
            other.alpha
        );
        self.zero += other.zero;
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The window delta `newer − older`, where `older` is an earlier
    /// copy of the same monotonically-growing sketch: bucket-wise
    /// subtraction of counts. The delta's quantiles are exact for the
    /// samples recorded between the two copies (same `α` bound);
    /// its `min`/`max` are bucket-resolution estimates (an earlier
    /// extreme cannot be subtracted out), and its `mean` is exact.
    ///
    /// # Panics
    /// Panics when accuracies differ or `older` is not a prefix of
    /// `self` (some bucket would go negative).
    #[must_use]
    pub fn delta_since(&self, older: &QuantileSketch) -> QuantileSketch {
        assert!(
            (self.alpha - older.alpha).abs() < f64::EPSILON,
            "delta between sketches of different accuracy"
        );
        let mut out = QuantileSketch::new(self.alpha);
        out.zero = self
            .zero
            .checked_sub(older.zero)
            .expect("older sketch is a prefix");
        for ((o, &a), &b) in out
            .counts
            .iter_mut()
            .zip(self.counts.iter())
            .zip(older.counts.iter())
        {
            *o = a.checked_sub(b).expect("older sketch is a prefix");
        }
        out.total = self.total - older.total;
        out.sum = self.sum - older.sum;
        // exact extremes are not recoverable from a subtraction; use
        // the delta's own bucket range (still within α of the true
        // window extremes when they fall in surviving buckets)
        if out.zero > 0 {
            out.min = 0;
        }
        for (i, &c) in out.counts.iter().enumerate() {
            if c > 0 {
                let v = out.value_of(i);
                if (v as u64) < out.min {
                    out.min = out.min.min(v as u64);
                }
                out.max = out.max.max(v.ceil() as u64);
            }
        }
        if out.zero > 0 && out.total == out.zero {
            out.max = 0;
        }
        out
    }

    /// Raw `(bucket_index, count)` pairs for nonempty buckets (the
    /// zero bucket reports as index 0 value via [`Self::quantile`],
    /// not here).
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }
}

/// The summary row exported for one histogram/sketch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSummary {
    /// Samples recorded.
    pub count: u64,
    /// Exact mean.
    pub mean: f64,
    /// Median estimate (within the sketch's relative accuracy).
    pub p50: f64,
    /// 95th percentile estimate.
    pub p95: f64,
    /// 99th percentile estimate.
    pub p99: f64,
    /// Exact maximum.
    pub max: u64,
}

impl HistSummary {
    /// Summarizes a sketch.
    #[must_use]
    pub fn of(s: &QuantileSketch) -> Self {
        Self {
            count: s.count(),
            mean: s.mean(),
            p50: s.quantile(0.50),
            p95: s.quantile(0.95),
            p99: s.quantile(0.99),
            max: s.max(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// splitmix64: tiny, seedable, good enough for test sample streams.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn f64(&mut self) -> f64 {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Asserts every probed quantile of `samples` is within the
    /// sketch's documented relative bound of the exact sample quantile.
    fn assert_rank_error_bound(samples: &mut [u64], alpha: f64, what: &str) {
        let mut s = QuantileSketch::new(alpha);
        for &v in samples.iter() {
            s.record(v);
        }
        samples.sort_unstable();
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999] {
            let exact = exact_quantile(samples, q) as f64;
            let approx = s.quantile(q);
            let err = (approx - exact).abs() / exact.max(1.0);
            assert!(
                err <= alpha * 1.0001,
                "{what} q={q}: approx {approx} vs exact {exact} (err {err:.5} > α {alpha})"
            );
        }
        assert_eq!(s.quantile(1.0), *samples.last().unwrap() as f64);
        assert_eq!(s.quantile(0.0), samples[0] as f64);
        let exact_mean = samples.iter().map(|&v| v as f64).sum::<f64>() / samples.len() as f64;
        assert!((s.mean() - exact_mean).abs() / exact_mean.max(1.0) < 1e-9);
    }

    fn uniform_samples(rng: &mut Rng, n: usize) -> Vec<u64> {
        (0..n).map(|_| rng.next() % 1_000_000).collect()
    }

    fn exponential_samples(rng: &mut Rng, n: usize) -> Vec<u64> {
        // mean 50 µs in ns, a latency-shaped heavy tail
        (0..n)
            .map(|_| (-rng.f64().max(1e-18).ln() * 50_000.0) as u64)
            .collect()
    }

    fn bimodal_samples(rng: &mut Rng, n: usize) -> Vec<u64> {
        // hit-vs-miss latencies: tight cluster at ~2 µs, wide at ~1 ms
        (0..n)
            .map(|_| {
                if rng.f64() < 0.8 {
                    1_500 + rng.next() % 1_000
                } else {
                    800_000 + rng.next() % 400_000
                }
            })
            .collect()
    }

    #[test]
    fn rank_error_bound_holds_across_distributions() {
        let mut rng = Rng(42);
        for alpha in [0.01, 0.02] {
            assert_rank_error_bound(&mut uniform_samples(&mut rng, 20_000), alpha, "uniform");
            assert_rank_error_bound(
                &mut exponential_samples(&mut rng, 20_000),
                alpha,
                "exponential",
            );
            assert_rank_error_bound(&mut bimodal_samples(&mut rng, 20_000), alpha, "bimodal");
        }
    }

    /// CI's seed-matrix variant (`--ignored stress`, TPCC_STRESS_SEED).
    #[test]
    #[ignore = "stress: run with --ignored, seeded via TPCC_STRESS_SEED"]
    fn stress_sketch_rank_error_bound_seed_matrix() {
        let seed = std::env::var("TPCC_STRESS_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(42u64);
        let mut rng = Rng(seed);
        for _ in 0..5 {
            assert_rank_error_bound(&mut uniform_samples(&mut rng, 100_000), 0.01, "uniform");
            assert_rank_error_bound(
                &mut exponential_samples(&mut rng, 100_000),
                0.01,
                "exponential",
            );
            assert_rank_error_bound(&mut bimodal_samples(&mut rng, 100_000), 0.01, "bimodal");
        }
    }

    #[test]
    fn merge_is_lossless_and_order_independent() {
        let mut rng = Rng(7);
        let xs = exponential_samples(&mut rng, 5_000);
        let ys = bimodal_samples(&mut rng, 5_000);
        let (mut a, mut b, mut one) = (
            QuantileSketch::new(0.01),
            QuantileSketch::new(0.01),
            QuantileSketch::new(0.01),
        );
        for &v in &xs {
            a.record(v);
            one.record(v);
        }
        for &v in &ys {
            b.record(v);
            one.record(v);
        }
        // merge(a,b) ≡ merge(b,a) ≡ recording everything in one sketch
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge commutes bit-for-bit");
        assert_eq!(ab, one, "merge is lossless vs. single-sketch record");
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(ab.quantile(q), one.quantile(q), "q={q}");
        }
    }

    #[test]
    fn merge_is_associative() {
        let mut rng = Rng(13);
        let parts: Vec<Vec<u64>> = (0..3).map(|_| uniform_samples(&mut rng, 2_000)).collect();
        let sketch_of = |samples: &[u64]| {
            let mut s = QuantileSketch::new(0.01);
            for &v in samples {
                s.record(v);
            }
            s
        };
        let (a, b, c) = (
            sketch_of(&parts[0]),
            sketch_of(&parts[1]),
            sketch_of(&parts[2]),
        );
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "(a·b)·c == a·(b·c)");
    }

    #[test]
    fn delta_since_recovers_window_quantiles() {
        let mut rng = Rng(21);
        let first = exponential_samples(&mut rng, 4_000);
        let mut second = exponential_samples(&mut rng, 4_000);
        let mut cumulative = QuantileSketch::new(0.01);
        for &v in &first {
            cumulative.record(v);
        }
        let checkpoint = cumulative.clone();
        for &v in &second {
            cumulative.record(v);
        }
        let window = cumulative.delta_since(&checkpoint);
        assert_eq!(window.count(), second.len() as u64);
        second.sort_unstable();
        for q in [0.5, 0.95, 0.99] {
            let exact = exact_quantile(&second, q) as f64;
            let err = (window.quantile(q) - exact).abs() / exact.max(1.0);
            assert!(err <= 0.0101, "window q={q} err {err}");
        }
        let exact_mean = second.iter().map(|&v| v as f64).sum::<f64>() / second.len() as f64;
        assert!((window.mean() - exact_mean).abs() / exact_mean < 1e-9);
    }

    #[test]
    fn zero_and_extreme_values_are_handled() {
        let mut s = QuantileSketch::new(0.01);
        for v in [0u64, 0, 1, u64::MAX] {
            s.record(v);
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.quantile(0.25), 0.0, "zeros occupy the low ranks");
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), u64::MAX);
        assert_eq!(s.quantile(1.0), u64::MAX as f64, "clamped to exact max");
        // a value of 1 must not be distorted below the exact minimum…
        let one_rank = s.quantile(0.75);
        assert!((one_rank - 1.0).abs() <= 0.011, "v=1 estimate {one_rank}");
    }

    #[test]
    fn empty_sketch_is_nan() {
        let s = QuantileSketch::default();
        assert!(s.mean().is_nan());
        assert!(s.quantile(0.5).is_nan());
        assert_eq!(s.count(), 0);
        assert_eq!(s.max(), 0);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "different accuracy")]
    fn merging_mismatched_accuracies_panics() {
        let mut a = QuantileSketch::new(0.01);
        a.merge(&QuantileSketch::new(0.02));
    }
}
