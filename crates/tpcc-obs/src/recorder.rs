//! The recording interface: a [`Recorder`] trait, the no-op
//! implementation, and the cheap cloneable [`Obs`] handle that
//! instrumented code holds.
//!
//! Instrumented crates never talk to a concrete sink; they call through
//! [`Obs`], which is `Option<Arc<dyn Recorder>>` under the hood. A
//! disabled handle (`Obs::disabled()`) is a `None` and every method is
//! an inlined early return — the zero-cost-when-disabled path the rest
//! of the workspace relies on.

use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// A metric label: most metrics are unlabelled (`None`), per-relation
/// metrics carry the relation's [`FileId`]-style index (`Idx`), and a
/// few carry a static name (`Name`).
///
/// `Idx` labels render through the recorder's index-name registry (see
/// [`Recorder::register_index`]) so exports show `stock` instead of
/// `file7`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Label {
    /// No label; the metric name stands alone.
    None,
    /// A numeric index, typically a storage `FileId`.
    Idx(u32),
    /// A static string label, e.g. a transaction type.
    Name(&'static str),
}

/// A sink for metrics and span timings.
///
/// Implementations must be cheap and thread-safe: counters are hit from
/// the buffer-manager fault path. The workspace ships two: the unit
/// struct [`NoopRecorder`] and the aggregating
/// [`MemoryRecorder`](crate::MemoryRecorder).
pub trait Recorder: Send + Sync {
    /// Adds `delta` to a monotonic counter.
    fn counter_add(&self, name: &'static str, label: Label, delta: u64);
    /// Sets a gauge to an instantaneous value.
    fn gauge_set(&self, name: &'static str, label: Label, value: f64);
    /// Records a sample into a log-scale histogram.
    fn observe(&self, name: &'static str, label: Label, value: u64);
    /// Records one completed span occurrence. `path` is the
    /// `/`-separated chain of enclosing span names.
    fn span_record(&self, path: &str, nanos: u64);
    /// Associates a human-readable name with a numeric label index.
    fn register_index(&self, idx: u32, name: &str);

    /// The shared atomic behind a counter, if this recorder exposes
    /// slots (see [`Obs::counter_handle`](crate::CounterHandle)). The
    /// default (`None`) makes handles fall back to dynamic dispatch.
    fn counter_slot(
        &self,
        name: &'static str,
        label: Label,
    ) -> Option<std::sync::Arc<std::sync::atomic::AtomicU64>> {
        let _ = (name, label);
        None
    }

    /// The shared atomic (f64 bits) behind a gauge, if exposed.
    fn gauge_slot(
        &self,
        name: &'static str,
        label: Label,
    ) -> Option<std::sync::Arc<std::sync::atomic::AtomicU64>> {
        let _ = (name, label);
        None
    }

    /// The shared quantile sketch behind `(name, label)`, if exposed.
    fn histogram_slot(
        &self,
        name: &'static str,
        label: Label,
    ) -> Option<std::sync::Arc<std::sync::Mutex<crate::QuantileSketch>>> {
        let _ = (name, label);
        None
    }

    /// Merges a locally-accumulated sketch into the histogram behind
    /// `(name, label)`. This is how per-thread sketches reach the
    /// shared recorder **losslessly at merge points** (window flushes,
    /// end of run) instead of funneling every sample through the
    /// shared slot. The default discards.
    fn histogram_merge(&self, name: &'static str, label: Label, sketch: &crate::QuantileSketch) {
        let _ = (name, label, sketch);
    }

    /// The installed trace collector, if this recorder carries one
    /// (see `MemoryRecorder::install_trace`). Components resolve this
    /// once at attach time into a `TraceHandle`.
    fn trace_sink(&self) -> Option<std::sync::Arc<crate::TraceCollector>> {
        None
    }
}

/// A recorder that discards everything. Used to measure (and to keep
/// negligible) the overhead of instrumentation call sites themselves.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn counter_add(&self, _: &'static str, _: Label, _: u64) {}
    fn gauge_set(&self, _: &'static str, _: Label, _: f64) {}
    fn observe(&self, _: &'static str, _: Label, _: u64) {}
    fn span_record(&self, _: &str, _: u64) {}
    fn register_index(&self, _: u32, _: &str) {}
}

thread_local! {
    /// The active span-name stack for this thread; spans nest
    /// lexically, so a thread-local suffices and no locking is needed
    /// to build paths.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// The handle instrumented code holds. Cloning is a pointer copy; a
/// disabled handle makes every call a no-op without virtual dispatch.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<dyn Recorder>>,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl Obs {
    /// A handle that records nothing and costs one branch per call.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A handle recording into `recorder`.
    #[must_use]
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        Self {
            inner: Some(recorder),
        }
    }

    /// Whether a recorder is attached.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The attached recorder, if any (used by handle resolution).
    pub(crate) fn recorder(&self) -> Option<&Arc<dyn Recorder>> {
        self.inner.as_ref()
    }

    /// Adds `delta` to a counter.
    #[inline]
    pub fn counter(&self, name: &'static str, label: Label, delta: u64) {
        if let Some(r) = &self.inner {
            r.counter_add(name, label, delta);
        }
    }

    /// Sets a gauge.
    #[inline]
    pub fn gauge(&self, name: &'static str, label: Label, value: f64) {
        if let Some(r) = &self.inner {
            r.gauge_set(name, label, value);
        }
    }

    /// Records a histogram sample.
    #[inline]
    pub fn observe(&self, name: &'static str, label: Label, value: u64) {
        if let Some(r) = &self.inner {
            r.observe(name, label, value);
        }
    }

    /// Registers a display name for a numeric label index.
    pub fn register_index(&self, idx: u32, name: &str) {
        if let Some(r) = &self.inner {
            r.register_index(idx, name);
        }
    }

    /// Merges a locally-accumulated sketch into the shared histogram
    /// behind `(name, label)` — the lossless hand-off point for
    /// per-thread sketches.
    pub fn merge_sketch(&self, name: &'static str, label: Label, sketch: &crate::QuantileSketch) {
        if let Some(r) = &self.inner {
            r.histogram_merge(name, label, sketch);
        }
    }

    /// Opens a tracing span. The returned guard records the span's
    /// wall-clock duration (keyed by the full nesting path, e.g.
    /// `new_order/btree_lookup`) when dropped. Disabled handles return
    /// an inert guard and never touch the thread-local stack.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        match &self.inner {
            None => SpanGuard { active: None },
            Some(r) => {
                let path = SPAN_STACK.with(|s| {
                    let mut s = s.borrow_mut();
                    s.push(name);
                    s.join("/")
                });
                SpanGuard {
                    active: Some(ActiveSpan {
                        recorder: Arc::clone(r),
                        path,
                        start: Instant::now(),
                    }),
                }
            }
        }
    }

    /// Starts a latency timer that records into the named histogram
    /// when dropped. Lighter than a span: no nesting path, no
    /// thread-local traffic.
    #[inline]
    pub fn timer(&self, name: &'static str, label: Label) -> LatencyTimer {
        LatencyTimer {
            active: self
                .inner
                .as_ref()
                .map(|r| (Arc::clone(r), name, label, Instant::now())),
        }
    }
}

struct ActiveSpan {
    recorder: Arc<dyn Recorder>,
    path: String,
    start: Instant,
}

/// RAII guard for a span opened with [`Obs::span`]; records on drop.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(span) = self.active.take() {
            let nanos = span.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            SPAN_STACK.with(|s| {
                s.borrow_mut().pop();
            });
            span.recorder.span_record(&span.path, nanos);
        }
    }
}

/// RAII guard for a histogram timer opened with [`Obs::timer`].
pub struct LatencyTimer {
    active: Option<(Arc<dyn Recorder>, &'static str, Label, Instant)>,
}

impl LatencyTimer {
    /// Stops the timer without recording.
    pub fn cancel(mut self) {
        self.active = None;
    }
}

impl Drop for LatencyTimer {
    fn drop(&mut self) {
        if let Some((recorder, name, label, start)) = self.active.take() {
            let nanos = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            recorder.observe(name, label, nanos);
        }
    }
}
