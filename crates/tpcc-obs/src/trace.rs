//! Cross-thread trace timelines: per-thread ring buffers of timed
//! events, exportable as chrome://tracing JSON.
//!
//! A [`TraceCollector`] is installed on a recorder (see
//! `MemoryRecorder::install_trace`) *before* instrumented components
//! resolve their handles; each recording thread then lazily registers
//! a private [`ThreadBuf`] — a bounded ring it alone pushes to, so the
//! per-event cost is an uncontended mutex plus a `VecDeque` push, and
//! a full ring drops the **oldest** events (the tail of a run is what
//! post-mortems want).
//!
//! Timestamps are run-relative: nanoseconds since the collector's
//! creation instant, so timelines from different threads align without
//! any cross-thread clock traffic. [`TraceCollector::export_chrome`]
//! renders the standard Trace Event Format (`ph:"X"` complete events
//! plus thread-name metadata), which loads directly in
//! `chrome://tracing` or <https://ui.perfetto.dev>.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default per-thread ring capacity (events kept per thread).
pub const DEFAULT_TRACE_RING: usize = 65_536;

/// Collector identity source: lets a long-lived thread-local slot
/// recognise that a *new* collector replaced the one it registered
/// with.
static NEXT_COLLECTOR_ID: AtomicU64 = AtomicU64::new(1);

/// One timed occurrence on one thread's timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (shown on the timeline slice).
    pub name: &'static str,
    /// Category, e.g. `txn`, `lock`, `io` (colour/filter group).
    pub cat: &'static str,
    /// Start, in nanoseconds since the collector's epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// One thread's bounded event ring. Only the owning thread pushes;
/// the exporter locks briefly to copy.
#[derive(Debug)]
pub struct ThreadBuf {
    tid: u32,
    capacity: usize,
    ring: Mutex<VecDeque<TraceEvent>>,
    dropped: AtomicU64,
}

impl ThreadBuf {
    fn push(&self, ev: TraceEvent) {
        let mut ring = self.ring.lock().expect("trace ring");
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(ev);
    }
}

thread_local! {
    /// This thread's registered buffer per collector id. A plain pair:
    /// threads in this workspace only ever record into one collector
    /// at a time, and a stale entry is replaced on id mismatch.
    static THREAD_BUF: RefCell<Option<(u64, Arc<ThreadBuf>)>> = const { RefCell::new(None) };
}

/// A shared registry of per-thread trace rings with a common epoch.
#[derive(Debug)]
pub struct TraceCollector {
    id: u64,
    epoch: Instant,
    per_thread_capacity: usize,
    next_tid: AtomicU32,
    threads: Mutex<Vec<Arc<ThreadBuf>>>,
}

impl TraceCollector {
    /// A collector whose per-thread rings keep the most recent
    /// `per_thread_capacity` events (clamped to ≥ 16).
    #[must_use]
    pub fn new(per_thread_capacity: usize) -> Self {
        Self {
            id: NEXT_COLLECTOR_ID.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            per_thread_capacity: per_thread_capacity.max(16),
            next_tid: AtomicU32::new(0),
            threads: Mutex::new(Vec::new()),
        }
    }

    /// The collector's epoch: all event timestamps are relative to it.
    #[must_use]
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Nanoseconds from the epoch to `at` (0 if `at` predates it).
    #[must_use]
    pub fn rel_ns(&self, at: Instant) -> u64 {
        at.checked_duration_since(self.epoch)
            .map_or(0, |d| d.as_nanos().min(u128::from(u64::MAX)) as u64)
    }

    /// This thread's ring, registering it on first use (or when the
    /// thread last recorded into a different collector).
    fn local_buf(self: &Arc<Self>) -> Arc<ThreadBuf> {
        THREAD_BUF.with(|slot| {
            let mut slot = slot.borrow_mut();
            if let Some((id, buf)) = slot.as_ref() {
                if *id == self.id {
                    return Arc::clone(buf);
                }
            }
            let buf = Arc::new(ThreadBuf {
                tid: self.next_tid.fetch_add(1, Ordering::Relaxed),
                capacity: self.per_thread_capacity,
                ring: Mutex::new(VecDeque::with_capacity(self.per_thread_capacity.min(1024))),
                dropped: AtomicU64::new(0),
            });
            self.threads
                .lock()
                .expect("trace threads")
                .push(Arc::clone(&buf));
            *slot = Some((self.id, Arc::clone(&buf)));
            buf
        })
    }

    /// Records a completed occurrence that started at `start` and ends
    /// now, on the calling thread's timeline.
    pub fn record(self: &Arc<Self>, name: &'static str, cat: &'static str, start: Instant) {
        let ts_ns = self.rel_ns(start);
        let dur_ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        self.local_buf().push(TraceEvent {
            name,
            cat,
            ts_ns,
            dur_ns,
        });
    }

    /// Total events dropped to ring bounds, across all threads.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.threads
            .lock()
            .expect("trace threads")
            .iter()
            .map(|b| b.dropped.load(Ordering::Relaxed))
            .sum()
    }

    /// A copy of every thread's events as `(tid, events)` rows, sorted
    /// by tid; each thread's events are in record order.
    #[must_use]
    pub fn timelines(&self) -> Vec<(u32, Vec<TraceEvent>)> {
        let mut rows: Vec<(u32, Vec<TraceEvent>)> = self
            .threads
            .lock()
            .expect("trace threads")
            .iter()
            .map(|b| {
                (
                    b.tid,
                    b.ring.lock().expect("trace ring").iter().cloned().collect(),
                )
            })
            .collect();
        rows.sort_by_key(|(tid, _)| *tid);
        rows
    }

    /// Renders every thread's ring as chrome://tracing JSON (Trace
    /// Event Format). Events are ordered by `(tid, ts, name)` so the
    /// export is stable for a given set of recorded events; timestamps
    /// are microseconds with nanosecond decimals.
    #[must_use]
    pub fn export_chrome(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for (tid, events) in self.timelines() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"terminal-{tid}\"}}}}"
            ));
            let mut events = events;
            events.sort_by(|a, b| a.ts_ns.cmp(&b.ts_ns).then(a.name.cmp(b.name)));
            for ev in events {
                out.push_str(&format!(
                    ",{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"name\":\"{}\",\"cat\":\"{}\",\
                     \"ts\":{:.3},\"dur\":{:.3}}}",
                    ev.name,
                    ev.cat,
                    ev.ts_ns as f64 / 1e3,
                    ev.dur_ns as f64 / 1e3,
                ));
            }
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_land_on_per_thread_timelines() {
        let tc = Arc::new(TraceCollector::new(64));
        let t0 = Instant::now();
        tc.record("alpha", "txn", t0);
        tc.record("beta", "lock", t0);
        let tc2 = Arc::clone(&tc);
        std::thread::spawn(move || {
            tc2.record("gamma", "io", Instant::now());
        })
        .join()
        .expect("thread");
        let rows = tc.timelines();
        assert_eq!(rows.len(), 2, "two threads registered");
        let main = &rows.iter().find(|(_, evs)| evs.len() == 2).expect("main").1;
        assert_eq!(main[0].name, "alpha");
        assert_eq!(main[1].name, "beta");
        assert!(main[1].ts_ns >= main[0].ts_ns);
    }

    #[test]
    fn ring_is_bounded_and_drops_oldest() {
        let tc = Arc::new(TraceCollector::new(16));
        for i in 0..40u64 {
            // names must be 'static; reuse two and count
            let name = if i % 2 == 0 { "even" } else { "odd" };
            tc.record(name, "t", Instant::now());
        }
        let rows = tc.timelines();
        assert_eq!(rows[0].1.len(), 16);
        assert_eq!(tc.dropped(), 24);
    }

    #[test]
    fn chrome_export_is_wellformed() {
        let tc = Arc::new(TraceCollector::new(64));
        tc.record("new_order", "txn", Instant::now());
        let json = tc.export_chrome();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"new_order\""));
        assert!(json.contains("\"cat\":\"txn\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn a_new_collector_replaces_the_thread_slot() {
        let a = Arc::new(TraceCollector::new(64));
        a.record("one", "t", Instant::now());
        let b = Arc::new(TraceCollector::new(64));
        b.record("two", "t", Instant::now());
        assert_eq!(a.timelines()[0].1.len(), 1, "a kept its event");
        assert_eq!(b.timelines()[0].1.len(), 1, "b registered fresh");
        a.record("three", "t", Instant::now());
        // returning to a re-registers under a *new* tid: acceptable —
        // the workspace installs one collector per run
        assert!(a.timelines().iter().map(|(_, e)| e.len()).sum::<usize>() == 2);
    }
}
