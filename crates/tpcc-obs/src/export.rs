//! Exporters: a JSON-lines snapshot writer, a human-readable table
//! printer, and a flame-style span summary.
//!
//! JSON is emitted by hand (the workspace carries no external
//! dependencies); the schema is documented in DESIGN.md. One snapshot
//! is one line, so a run's output is greppable and trivially parsed by
//! any JSON reader line by line.

use std::io::{self, Write};
use std::time::Instant;

use crate::memory::{MemoryRecorder, Snapshot, SpanStat};

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number; NaN and infinities become
/// `null` (JSON has no representation for them).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl Snapshot {
    /// Serializes this snapshot as a single JSON line (no trailing
    /// newline). `seq` is the snapshot's ordinal, `transactions` the
    /// number of transactions completed when it was taken, and `t_ms`
    /// the run-relative monotonic timestamp in milliseconds (pass 0.0
    /// for one-shot end-of-run snapshots with no run clock).
    #[must_use]
    pub fn to_json_line(&self, seq: u64, transactions: u64, t_ms: f64) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&format!(
            "{{\"seq\":{seq},\"t_ms\":{:.3},\"transactions\":{transactions},\"counters\":{{",
            if t_ms.is_finite() { t_ms } else { 0.0 },
        ));
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", json_escape(k)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json_escape(k), json_f64(*v)));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
                json_escape(k),
                h.count,
                json_f64(h.mean),
                json_f64(h.p50),
                json_f64(h.p95),
                json_f64(h.p99),
                h.max
            ));
        }
        out.push_str("},\"spans\":{");
        for (i, (path, s)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"total_ns\":{},\"max_ns\":{}}}",
                json_escape(path),
                s.count,
                s.total_ns,
                s.max_ns
            ));
        }
        out.push_str("}}");
        out
    }

    /// Renders the snapshot as aligned, sectioned plain text.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let key_width = self
            .counters
            .iter()
            .map(|(k, _)| k.len())
            .chain(self.gauges.iter().map(|(k, _)| k.len()))
            .chain(self.histograms.iter().map(|(k, _)| k.len()))
            .max()
            .unwrap_or(8)
            .max(8);
        if !self.counters.is_empty() {
            out.push_str("counters\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k:<key_width$} {v:>14}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges\n");
            for (k, v) in &self.gauges {
                out.push_str(&format!("  {k:<key_width$} {v:>14.3}\n"));
            }
        }
        if !self.histograms.is_empty() {
            // values are whatever unit the metric records (the name
            // carries it, e.g. `txn_latency_ns`, `batch_miss_ppm`)
            out.push_str("histograms\n");
            out.push_str(&format!(
                "  {:<key_width$} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
                "name", "count", "mean", "p50", "p95", "p99", "max"
            ));
            for (k, h) in &self.histograms {
                out.push_str(&format!(
                    "  {:<key_width$} {:>10} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>12}\n",
                    k, h.count, h.mean, h.p50, h.p95, h.p99, h.max
                ));
            }
        }
        if !self.spans.is_empty() {
            out.push_str(&self.render_flame());
        }
        out
    }

    /// Renders the span aggregates as a flame-style indented summary:
    /// one row per path, indented by nesting depth, with inclusive
    /// time, self time (inclusive minus direct children), call count
    /// and mean.
    #[must_use]
    pub fn render_flame(&self) -> String {
        let mut out = String::new();
        if self.spans.is_empty() {
            return out;
        }
        // spans are sorted by path, so a child row follows its parent;
        // pre-compute each path's direct-children total for self time
        let child_total = |parent: &str| -> u64 {
            self.spans
                .iter()
                .filter(|(p, _)| {
                    p.len() > parent.len()
                        && p.starts_with(parent)
                        && p.as_bytes()[parent.len()] == b'/'
                        && !p[parent.len() + 1..].contains('/')
                })
                .map(|(_, s)| s.total_ns)
                .sum()
        };
        let path_width = self
            .spans
            .iter()
            .map(|(p, _)| p.len() + 2 * p.matches('/').count())
            .max()
            .unwrap_or(8)
            .max(8);
        out.push_str("spans (flame summary, ms inclusive)\n");
        out.push_str(&format!(
            "  {:<path_width$} {:>10} {:>10} {:>10} {:>12}\n",
            "span", "total", "self", "count", "mean µs"
        ));
        for (path, stat) in &self.spans {
            let depth = path.matches('/').count();
            let leaf = path.rsplit('/').next().unwrap_or(path);
            let self_ns = stat.total_ns.saturating_sub(child_total(path));
            out.push_str(&format!(
                "  {:<path_width$} {:>10.2} {:>10.2} {:>10} {:>12.1}\n",
                format!("{}{}", "  ".repeat(depth), leaf),
                stat.total_ns as f64 / 1e6,
                self_ns as f64 / 1e6,
                stat.count,
                stat.total_ns as f64 / 1e3 / stat.count.max(1) as f64,
            ));
        }
        out
    }
}

/// Convenience: aggregate span statistics rooted at depth 0, i.e. the
/// top-level spans, with their total inclusive time. Useful for quick
/// "where did the time go" assertions in tests and demos.
#[must_use]
pub fn top_level_totals(snapshot: &Snapshot) -> Vec<(String, SpanStat)> {
    snapshot
        .spans
        .iter()
        .filter(|(p, _)| !p.contains('/'))
        .cloned()
        .collect()
}

/// Writes one JSON-lines snapshot every `every` transactions (plus a
/// final one on [`SnapshotWriter::finish`]).
///
/// The driver calls [`tick`](SnapshotWriter::tick) after each
/// transaction; the writer decides when a snapshot is due, takes it
/// from the recorder, and appends it to the underlying writer. Each
/// line carries `t_ms`, the run-relative monotonic milliseconds since
/// the writer was created. Dropping the writer flushes the sink —
/// including during a panic unwind — so fault-injected runs keep
/// their emitted snapshots.
#[derive(Debug)]
pub struct SnapshotWriter<W: Write> {
    out: Option<W>,
    start: Instant,
    every: u64,
    seq: u64,
    last_emitted_at: u64,
}

impl<W: Write> SnapshotWriter<W> {
    /// A writer emitting one snapshot per `every` transactions
    /// (`every` of 0 is treated as 1). The `t_ms` run clock starts
    /// now.
    pub fn new(out: W, every: u64) -> Self {
        Self {
            out: Some(out),
            start: Instant::now(),
            every: every.max(1),
            seq: 0,
            last_emitted_at: 0,
        }
    }

    /// Notes that `transactions_done` transactions have now completed;
    /// emits a snapshot if a period boundary was crossed.
    ///
    /// # Errors
    /// Propagates write errors from the underlying sink.
    pub fn tick(&mut self, recorder: &MemoryRecorder, transactions_done: u64) -> io::Result<()> {
        if transactions_done - self.last_emitted_at >= self.every {
            self.emit(recorder, transactions_done)?;
        }
        Ok(())
    }

    /// Unconditionally emits a final snapshot and flushes.
    ///
    /// # Errors
    /// Propagates write errors from the underlying sink.
    pub fn finish(&mut self, recorder: &MemoryRecorder, transactions_done: u64) -> io::Result<()> {
        if transactions_done != self.last_emitted_at || self.seq == 0 {
            self.emit(recorder, transactions_done)?;
        }
        self.out.as_mut().expect("writer not consumed").flush()
    }

    fn emit(&mut self, recorder: &MemoryRecorder, transactions_done: u64) -> io::Result<()> {
        let t_ms = self.start.elapsed().as_secs_f64() * 1e3;
        let line = recorder
            .snapshot()
            .to_json_line(self.seq, transactions_done, t_ms);
        writeln!(self.out.as_mut().expect("writer not consumed"), "{line}")?;
        self.seq += 1;
        self.last_emitted_at = transactions_done;
        Ok(())
    }

    /// Snapshots emitted so far.
    #[must_use]
    pub fn snapshots_written(&self) -> u64 {
        self.seq
    }

    /// Consumes the writer, returning the underlying sink (flushed).
    pub fn into_inner(mut self) -> W {
        let mut out = self.out.take().expect("writer not consumed");
        let _ = out.flush();
        out
    }
}

impl<W: Write> Drop for SnapshotWriter<W> {
    /// Best-effort flush so emitted snapshots survive panics and early
    /// returns; errors are ignored (there is no one left to tell).
    fn drop(&mut self) {
        if let Some(out) = self.out.as_mut() {
            let _ = out.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Label, Obs, Recorder};
    use std::sync::Arc;

    fn sample_recorder() -> Arc<MemoryRecorder> {
        let rec = Arc::new(MemoryRecorder::new());
        let obs = Obs::new(rec.clone());
        obs.counter("buf_hits", Label::Name("stock"), 10);
        obs.gauge("pool", Label::None, 64.0);
        obs.observe("lat/new_order", Label::None, 1500);
        obs.observe("lat/new_order", Label::None, 2500);
        rec.span_record("new_order", 4000);
        rec.span_record("new_order/lookup", 1000);
        rec
    }

    #[test]
    fn json_line_is_wellformed_and_complete() {
        let line = sample_recorder().snapshot().to_json_line(3, 2000, 1250.5);
        assert!(line.starts_with("{\"seq\":3,\"t_ms\":1250.500,\"transactions\":2000,"));
        assert!(line.contains("\"buf_hits/stock\":10"));
        assert!(line.contains("\"pool\":64"));
        assert!(line.contains("\"lat/new_order\":{\"count\":2,"));
        assert!(line.contains("\"p50\":"));
        assert!(line.contains("\"new_order/lookup\":{\"count\":1,\"total_ns\":1000,"));
        assert!(!line.contains('\n'));
        // braces balance (no quoting subtleties in these keys)
        let opens = line.matches('{').count();
        let closes = line.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn json_escapes_and_nan_to_null() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }

    #[test]
    fn table_and_flame_render() {
        let snap = sample_recorder().snapshot();
        let table = snap.render_table();
        assert!(table.contains("counters"));
        assert!(table.contains("buf_hits/stock"));
        assert!(table.contains("histograms"));
        let flame = snap.render_flame();
        assert!(flame.contains("new_order"));
        // child indented under parent, self time subtracted
        assert!(flame.contains("  lookup") || flame.contains("    lookup"));
        let tops = top_level_totals(&snap);
        assert_eq!(tops.len(), 1);
        assert_eq!(tops[0].1.total_ns, 4000);
    }

    #[test]
    fn snapshot_writer_emits_every_n() {
        let rec = sample_recorder();
        let mut w = SnapshotWriter::new(Vec::new(), 100);
        for done in 1..=250u64 {
            w.tick(&rec, done).unwrap();
        }
        w.finish(&rec, 250).unwrap();
        let out = String::from_utf8(w.into_inner()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "at 100, 200, and final 250");
        assert!(lines[0].starts_with("{\"seq\":0,\"t_ms\":"));
        assert!(lines[0].contains("\"transactions\":100"));
        assert!(lines[2].contains("\"seq\":2"));
        assert!(lines[2].contains("\"transactions\":250"));
    }

    /// A sink that only counts as "persisted" what was flushed.
    struct FlushGate {
        buffered: Vec<u8>,
        persisted: Arc<std::sync::Mutex<Vec<u8>>>,
    }

    impl Write for FlushGate {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.buffered.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            self.persisted
                .lock()
                .unwrap()
                .extend_from_slice(&self.buffered);
            self.buffered.clear();
            Ok(())
        }
    }

    #[test]
    fn snapshot_writer_flushes_on_panic_unwind() {
        let rec = sample_recorder();
        let persisted = Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = FlushGate {
            buffered: Vec::new(),
            persisted: persisted.clone(),
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut w = SnapshotWriter::new(sink, 10);
            w.tick(&rec, 10).unwrap();
            panic!("simulated fault-injected crash");
        }));
        assert!(result.is_err());
        let got = String::from_utf8(persisted.lock().unwrap().clone()).unwrap();
        assert!(
            got.contains("\"transactions\":10"),
            "the emitted snapshot survived the panic: {got:?}"
        );
    }
}
