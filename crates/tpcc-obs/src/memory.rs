//! The in-memory aggregating recorder and its snapshot type.
//!
//! [`MemoryRecorder`] keeps counters as shared atomics behind a
//! read-mostly map (the write lock is only taken the first time a new
//! `(metric, label)` pair appears), histogram **quantile sketches**
//! behind per-slot mutexes, and completed spans in a bounded ring
//! buffer plus a running per-path aggregate. Taking a [`Snapshot`]
//! never disturbs recording threads beyond those same short locks.
//! Hot multi-threaded paths avoid even the per-slot mutex by keeping
//! thread-local sketches and handing them over through
//! [`Recorder::histogram_merge`] at merge points.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::recorder::{Label, Recorder};
use crate::sketch::{HistSummary, QuantileSketch};
use crate::trace::TraceCollector;

/// Default capacity of the completed-span ring buffer.
pub const DEFAULT_SPAN_RING: usize = 4096;

/// One completed span occurrence, as kept in the ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Full nesting path, e.g. `new_order/btree_lookup`.
    pub path: String,
    /// Wall-clock duration in nanoseconds.
    pub nanos: u64,
}

/// Running aggregate for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Occurrences recorded.
    pub count: u64,
    /// Total inclusive wall-clock nanoseconds.
    pub total_ns: u64,
    /// Longest single occurrence.
    pub max_ns: u64,
}

#[derive(Debug)]
struct SpanStore {
    ring: VecDeque<SpanEvent>,
    capacity: usize,
    agg: HashMap<String, SpanStat>,
}

/// A read-mostly map from `(metric, label)` to a shared slot.
type SlotMap<V> = RwLock<HashMap<(&'static str, Label), V>>;

/// An aggregating, thread-safe recorder that holds everything in
/// memory until a [`Snapshot`] is taken.
pub struct MemoryRecorder {
    counters: SlotMap<Arc<AtomicU64>>,
    gauges: SlotMap<Arc<AtomicU64>>, // f64 bits
    hists: SlotMap<Arc<Mutex<QuantileSketch>>>,
    spans: Mutex<SpanStore>,
    index_names: RwLock<HashMap<u32, String>>,
    trace: RwLock<Option<Arc<TraceCollector>>>,
}

impl Default for MemoryRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for MemoryRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryRecorder").finish_non_exhaustive()
    }
}

/// Runs `f` against the slot for `key`, inserting it first if absent.
/// The steady-state path holds only the read lock and never clones the
/// slot's `Arc` — counters on the buffer-fault path go through here.
fn with_slot<V, R>(
    map: &SlotMap<V>,
    key: (&'static str, Label),
    mk: impl FnOnce() -> V,
    f: impl FnOnce(&V) -> R,
) -> R {
    if let Some(v) = map.read().expect("obs map lock").get(&key) {
        return f(v);
    }
    f(map
        .write()
        .expect("obs map lock")
        .entry(key)
        .or_insert_with(mk))
}

impl MemoryRecorder {
    /// A recorder with the default span-ring capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_span_capacity(DEFAULT_SPAN_RING)
    }

    /// A recorder whose span ring holds the most recent
    /// `span_capacity` completed spans (the per-path aggregate is
    /// unbounded and unaffected).
    #[must_use]
    pub fn with_span_capacity(span_capacity: usize) -> Self {
        Self {
            counters: RwLock::new(HashMap::new()),
            gauges: RwLock::new(HashMap::new()),
            hists: RwLock::new(HashMap::new()),
            spans: Mutex::new(SpanStore {
                ring: VecDeque::with_capacity(span_capacity.min(1024)),
                capacity: span_capacity.max(1),
                agg: HashMap::new(),
            }),
            index_names: RwLock::new(HashMap::new()),
            trace: RwLock::new(None),
        }
    }

    /// Current value of a counter (0 if never touched).
    #[must_use]
    pub fn counter_value(&self, name: &'static str, label: Label) -> u64 {
        self.counters
            .read()
            .expect("obs map lock")
            .get(&(name, label))
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Sum of a counter across **all** labels — e.g. total
    /// `buf_misses` over every per-relation `Idx` label. Used by the
    /// time-series flusher to compute window deltas of metrics that
    /// are naturally per-file.
    #[must_use]
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .read()
            .expect("obs map lock")
            .iter()
            .filter(|((n, _), _)| *n == name)
            .map(|(_, c)| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Installs (replacing any previous) a [`TraceCollector`] with the
    /// given per-thread ring capacity and returns it. Install **before**
    /// attaching the recorder to instrumented components: trace handles
    /// are resolved once, at attach time.
    pub fn install_trace(&self, per_thread_capacity: usize) -> Arc<TraceCollector> {
        let tc = Arc::new(TraceCollector::new(per_thread_capacity));
        *self.trace.write().expect("obs trace lock") = Some(Arc::clone(&tc));
        tc
    }

    /// Current value of a gauge, if ever set.
    #[must_use]
    pub fn gauge_value(&self, name: &'static str, label: Label) -> Option<f64> {
        self.gauges
            .read()
            .expect("obs map lock")
            .get(&(name, label))
            .map(|g| f64::from_bits(g.load(Ordering::Relaxed)))
    }

    /// A copy of the named histogram sketch, if the slot exists.
    #[must_use]
    pub fn histogram(&self, name: &'static str, label: Label) -> Option<QuantileSketch> {
        self.hists
            .read()
            .expect("obs map lock")
            .get(&(name, label))
            .map(|h| h.lock().expect("obs hist lock").clone())
    }

    /// Aggregate for one span path, if it ever completed.
    #[must_use]
    pub fn span_stat(&self, path: &str) -> Option<SpanStat> {
        self.spans
            .lock()
            .expect("obs span lock")
            .agg
            .get(path)
            .copied()
    }

    /// The most recent completed spans, oldest first (bounded by the
    /// ring capacity).
    #[must_use]
    pub fn recent_spans(&self) -> Vec<SpanEvent> {
        self.spans
            .lock()
            .expect("obs span lock")
            .ring
            .iter()
            .cloned()
            .collect()
    }

    /// Renders a display key for a metric: `name` alone, or
    /// `name/label` with `Idx` labels resolved through the registered
    /// index names.
    fn render_key(&self, name: &str, label: Label) -> String {
        match label {
            Label::None => name.to_string(),
            Label::Name(l) => format!("{name}/{l}"),
            Label::Idx(i) => {
                let names = self.index_names.read().expect("obs map lock");
                match names.get(&i) {
                    Some(n) => format!("{name}/{n}"),
                    None => format!("{name}/file{i}"),
                }
            }
        }
    }

    /// Takes a consistent-enough point-in-time snapshot of every
    /// metric and span aggregate, with labels resolved and rows sorted
    /// by key.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .read()
            .expect("obs map lock")
            .iter()
            .map(|((n, l), v)| (self.render_key(n, *l), v.load(Ordering::Relaxed)))
            .collect();
        counters.sort();
        let mut gauges: Vec<(String, f64)> = self
            .gauges
            .read()
            .expect("obs map lock")
            .iter()
            .map(|((n, l), v)| {
                (
                    self.render_key(n, *l),
                    f64::from_bits(v.load(Ordering::Relaxed)),
                )
            })
            .collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histograms: Vec<(String, HistSummary)> = self
            .hists
            .read()
            .expect("obs map lock")
            .iter()
            .map(|((n, l), h)| {
                (
                    self.render_key(n, *l),
                    HistSummary::of(&h.lock().expect("obs hist lock")),
                )
            })
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        let mut spans: Vec<(String, SpanStat)> = self
            .spans
            .lock()
            .expect("obs span lock")
            .agg
            .iter()
            .map(|(p, s)| (p.clone(), *s))
            .collect();
        spans.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot {
            counters,
            gauges,
            histograms,
            spans,
        }
    }
}

impl Recorder for MemoryRecorder {
    fn counter_add(&self, name: &'static str, label: Label, delta: u64) {
        with_slot(
            &self.counters,
            (name, label),
            || Arc::new(AtomicU64::new(0)),
            |c| c.fetch_add(delta, Ordering::Relaxed),
        );
    }

    fn gauge_set(&self, name: &'static str, label: Label, value: f64) {
        with_slot(
            &self.gauges,
            (name, label),
            || Arc::new(AtomicU64::new(0)),
            |g| g.store(value.to_bits(), Ordering::Relaxed),
        );
    }

    fn observe(&self, name: &'static str, label: Label, value: u64) {
        with_slot(
            &self.hists,
            (name, label),
            || Arc::new(Mutex::new(QuantileSketch::default())),
            |h| h.lock().expect("obs hist lock").record(value),
        );
    }

    fn histogram_merge(&self, name: &'static str, label: Label, sketch: &QuantileSketch) {
        with_slot(
            &self.hists,
            (name, label),
            || Arc::new(Mutex::new(QuantileSketch::default())),
            |h| h.lock().expect("obs hist lock").merge(sketch),
        );
    }

    fn trace_sink(&self) -> Option<Arc<TraceCollector>> {
        self.trace.read().expect("obs trace lock").clone()
    }

    fn span_record(&self, path: &str, nanos: u64) {
        let mut store = self.spans.lock().expect("obs span lock");
        if store.ring.len() == store.capacity {
            store.ring.pop_front();
        }
        store.ring.push_back(SpanEvent {
            path: path.to_string(),
            nanos,
        });
        // get_mut first: the steady state touches an existing path and
        // must not pay `entry`'s unconditional key allocation
        match store.agg.get_mut(path) {
            Some(stat) => {
                stat.count += 1;
                stat.total_ns += nanos;
                stat.max_ns = stat.max_ns.max(nanos);
            }
            None => {
                store.agg.insert(
                    path.to_string(),
                    SpanStat {
                        count: 1,
                        total_ns: nanos,
                        max_ns: nanos,
                    },
                );
            }
        }
    }

    fn register_index(&self, idx: u32, name: &str) {
        self.index_names
            .write()
            .expect("obs map lock")
            .insert(idx, name.to_string());
    }

    fn counter_slot(&self, name: &'static str, label: Label) -> Option<Arc<AtomicU64>> {
        Some(with_slot(
            &self.counters,
            (name, label),
            || Arc::new(AtomicU64::new(0)),
            Arc::clone,
        ))
    }

    fn gauge_slot(&self, name: &'static str, label: Label) -> Option<Arc<AtomicU64>> {
        Some(with_slot(
            &self.gauges,
            (name, label),
            || Arc::new(AtomicU64::new(0)),
            Arc::clone,
        ))
    }

    fn histogram_slot(
        &self,
        name: &'static str,
        label: Label,
    ) -> Option<Arc<Mutex<QuantileSketch>>> {
        Some(with_slot(
            &self.hists,
            (name, label),
            || Arc::new(Mutex::new(QuantileSketch::default())),
            Arc::clone,
        ))
    }
}

/// A point-in-time copy of everything a [`MemoryRecorder`] holds, with
/// labels resolved to display keys and rows sorted. This is the input
/// to both exporters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(key, value)` counter rows.
    pub counters: Vec<(String, u64)>,
    /// `(key, value)` gauge rows.
    pub gauges: Vec<(String, f64)>,
    /// `(key, summary)` histogram rows.
    pub histograms: Vec<(String, HistSummary)>,
    /// `(path, aggregate)` span rows, sorted by path — so children
    /// immediately follow their parents.
    pub spans: Vec<(String, SpanStat)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Obs;
    use std::sync::Arc;

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let rec = Arc::new(MemoryRecorder::new());
        let obs = Obs::new(rec.clone());
        obs.counter("txn_total", Label::Name("new_order"), 2);
        obs.counter("txn_total", Label::Name("new_order"), 3);
        obs.gauge("pool_pages", Label::None, 128.0);
        obs.observe("lat", Label::None, 100);
        obs.observe("lat", Label::None, 300);
        assert_eq!(rec.counter_value("txn_total", Label::Name("new_order")), 5);
        assert_eq!(rec.gauge_value("pool_pages", Label::None), Some(128.0));
        let h = rec.histogram("lat", Label::None).unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 300);
    }

    #[test]
    fn nested_spans_build_paths_and_sum() {
        let rec = Arc::new(MemoryRecorder::new());
        let obs = Obs::new(rec.clone());
        for _ in 0..3 {
            let _outer = obs.span("new_order");
            {
                let _inner = obs.span("btree_lookup");
            }
            {
                let _inner = obs.span("btree_lookup");
            }
        }
        let outer = rec.span_stat("new_order").unwrap();
        let inner = rec.span_stat("new_order/btree_lookup").unwrap();
        assert_eq!(outer.count, 3);
        assert_eq!(inner.count, 6);
        // the parent's inclusive time covers its children's
        assert!(outer.total_ns >= inner.total_ns);
        assert!(rec.span_stat("btree_lookup").is_none(), "path is nested");
        // ring buffer saw all 9 completions, children before parents
        let ring = rec.recent_spans();
        assert_eq!(ring.len(), 9);
        assert_eq!(ring[0].path, "new_order/btree_lookup");
        assert_eq!(ring[2].path, "new_order");
    }

    #[test]
    fn span_ring_is_bounded_but_aggregate_is_not() {
        let rec = Arc::new(MemoryRecorder::with_span_capacity(4));
        let obs = Obs::new(rec.clone());
        for _ in 0..10 {
            let _g = obs.span("tick");
        }
        assert_eq!(rec.recent_spans().len(), 4);
        assert_eq!(rec.span_stat("tick").unwrap().count, 10);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        // none of these should panic or allocate recorder state; a
        // nested span on a disabled handle must leave the thread-local
        // stack untouched for later enabled spans on the same thread
        obs.counter("c", Label::None, 1);
        obs.gauge("g", Label::Idx(3), 1.0);
        obs.observe("h", Label::None, 42);
        {
            let _dead = obs.span("ghost");
            let rec = Arc::new(MemoryRecorder::new());
            let live = Obs::new(rec.clone());
            {
                let _g = live.span("real");
            }
            assert!(rec.span_stat("real").is_some());
            assert!(rec.span_stat("ghost/real").is_none());
        }
        let _t = obs.timer("lat", Label::None);
    }

    #[test]
    fn idx_labels_resolve_registered_names() {
        let rec = Arc::new(MemoryRecorder::new());
        let obs = Obs::new(rec.clone());
        obs.register_index(7, "stock");
        obs.counter("buf_hits", Label::Idx(7), 4);
        obs.counter("buf_hits", Label::Idx(9), 1);
        let snap = rec.snapshot();
        let keys: Vec<&str> = snap.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["buf_hits/file9", "buf_hits/stock"]);
    }

    #[test]
    fn timer_cancel_discards_sample() {
        let rec = Arc::new(MemoryRecorder::new());
        let obs = Obs::new(rec.clone());
        obs.timer("lat", Label::None).cancel();
        assert!(rec.histogram("lat", Label::None).is_none());
        {
            let _t = obs.timer("lat", Label::None);
        }
        assert_eq!(rec.histogram("lat", Label::None).unwrap().count(), 1);
    }
}
