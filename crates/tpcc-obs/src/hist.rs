//! Fixed-bucket log-scale histograms for latency (or any `u64`)
//! samples.
//!
//! The bucket layout follows the HdrHistogram idea at coarse
//! resolution: values `0..16` get exact unit buckets; above that, each
//! power of two is split into 4 sub-buckets (2 significant bits), so
//! the relative width of any bucket is at most 25%. 256 buckets cover
//! the full `u64` range, the whole structure is a flat 2 KiB array,
//! and recording is branch-plus-increment — cheap enough for per-
//! transaction latencies.
//!
//! The recorder's managed histograms use the finer-grained
//! [`QuantileSketch`](crate::QuantileSketch) (1% relative error)
//! instead; `LogHistogram` remains for callers that want a fixed
//! 2 KiB footprint over sketch accuracy.

/// Exact unit buckets for values below this bound.
const LINEAR: u64 = 16;
/// Total bucket count (16 linear + 60 powers × 4 sub-buckets).
pub const BUCKETS: usize = 256;

/// A log-scale histogram with p50/p95/p99/max extraction.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    sum: u128,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a value.
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v < LINEAR {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize; // >= 4
    let sub = ((v >> (msb - 2)) & 3) as usize;
    16 + (msb - 4) * 4 + sub
}

/// Half-open value range `[lo, hi)` covered by bucket `idx`.
///
/// # Panics
/// Panics when `idx >= BUCKETS`.
#[must_use]
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    assert!(idx < BUCKETS, "bucket index out of range");
    if idx < LINEAR as usize {
        return (idx as u64, idx as u64 + 1);
    }
    let msb = 4 + (idx - 16) / 4;
    let sub = ((idx - 16) % 4) as u64;
    let width = 1u64 << (msb - 2);
    let lo = (1u64 << msb) + sub * width;
    // the topmost bucket's upper bound saturates instead of wrapping
    (lo, lo.saturating_add(width))
}

impl LogHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: Box::new([0; BUCKETS]),
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.total += 1;
        self.sum += u128::from(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True before the first sample.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact mean of all samples; NaN when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return f64::NAN;
        }
        self.sum as f64 / self.total as f64
    }

    /// Exact maximum sample; 0 when empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in `[0, 1]`: the bucket midpoint of
    /// the sample at rank `ceil(q · count)`, clamped to the observed
    /// maximum (so `quantile(1.0) == max()` exactly). NaN when empty.
    ///
    /// Bucket resolution bounds the relative error at 25% (12.5% to
    /// the midpoint); values below 16 are exact.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return f64::NAN;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        if rank == self.total {
            return self.max as f64;
        }
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(idx);
                let mid = lo as f64 + (hi - lo) as f64 / 2.0 - 0.5;
                return mid.min(self.max as f64).max(lo as f64);
            }
        }
        unreachable!("rank <= total implies a bucket is found");
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Raw `(bucket_lo, count)` pairs for nonempty buckets.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_bounds(i).0, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_partition_the_axis() {
        // consecutive buckets tile the line with no gaps or overlaps
        let mut expect_lo = 0u64;
        for idx in 0..BUCKETS - 1 {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(lo, expect_lo, "bucket {idx} starts where the last ended");
            assert!(hi > lo, "bucket {idx} nonempty");
            expect_lo = hi;
        }
        // every value maps into the bucket whose bounds contain it
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1000,
            123_456_789,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            let (lo, hi) = bucket_bounds(idx);
            assert!(
                lo <= v && (v < hi || hi == u64::MAX),
                "value {v} in bucket {idx}"
            );
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        for q in [0.1, 0.5, 0.9] {
            let rank = ((q * 16.0_f64).ceil() as u64).clamp(1, 16);
            assert_eq!(h.quantile(q), (rank - 1) as f64, "q={q}");
        }
    }

    #[test]
    fn percentiles_track_sorted_reference_within_bucket_error() {
        // deterministic pseudo-random skewed samples
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut samples: Vec<u64> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % 1_000_000
            })
            .collect();
        let mut h = LogHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for q in [0.5, 0.95, 0.99] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1] as f64;
            let approx = h.quantile(q);
            let err = (approx - exact).abs() / exact.max(1.0);
            assert!(
                err <= 0.25,
                "q={q}: approx {approx} vs exact {exact} (err {err})"
            );
        }
        assert_eq!(h.max(), *samples.last().unwrap());
        assert_eq!(h.quantile(1.0), *samples.last().unwrap() as f64);
        let exact_mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!((h.mean() - exact_mean).abs() < 1e-6, "mean is exact");
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let (mut a, mut b, mut both) = (
            LogHistogram::new(),
            LogHistogram::new(),
            LogHistogram::new(),
        );
        for v in [3u64, 17, 900, 65_000, 1] {
            a.record(v);
            both.record(v);
        }
        for v in [250u64, 8, 1_000_000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.max(), both.max());
        for q in [0.25, 0.5, 0.75, 0.95, 1.0] {
            assert_eq!(a.quantile(q), both.quantile(q), "q={q}");
        }
        assert!((a.mean() - both.mean()).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_nan() {
        let h = LogHistogram::new();
        assert!(h.mean().is_nan());
        assert!(h.quantile(0.5).is_nan());
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
    }
}
