//! Observability for the TPC-C modeling suite: a lock-cheap metrics
//! registry, hierarchical tracing spans, mergeable quantile sketches
//! for latency, cross-thread trace timelines, and exporters.
//!
//! The design has three layers:
//!
//! - **Handle** — instrumented code holds an [`Obs`], a cloneable
//!   `Option<Arc<dyn Recorder>>`. There is no global state: the handle
//!   is threaded through constructors/configs, and `Obs::disabled()`
//!   turns every call site into an inlined branch-on-`None` (measured
//!   overhead is reported in EXPERIMENTS.md). Hot paths pre-resolve
//!   [`CounterHandle`]/[`GaugeHandle`]/[`HistogramHandle`]/
//!   [`TraceHandle`] once at attach time.
//! - **Sink** — the [`Recorder`] trait with two implementations:
//!   [`NoopRecorder`] and [`MemoryRecorder`], which aggregates
//!   counters (shared atomics), gauges, [`QuantileSketch`]es (bounded
//!   relative rank error, lossless merge — per-thread sketches hand
//!   off via [`Obs::merge_sketch`]), completed spans (bounded ring +
//!   per-path totals), and an optional [`TraceCollector`] of
//!   per-thread event rings.
//! - **Export** — [`Snapshot`] serializes as one JSON line
//!   ([`Snapshot::to_json_line`]) or renders as aligned text
//!   ([`Snapshot::render_table`], [`Snapshot::render_flame`]);
//!   [`SnapshotWriter`] emits one JSON line every N transactions;
//!   [`TimeSeriesWriter`] emits one windowed telemetry point per
//!   flush; [`TraceCollector::export_chrome`] renders
//!   chrome://tracing JSON.
//!
//! ```
//! use std::sync::Arc;
//! use tpcc_obs::{Label, MemoryRecorder, Obs};
//!
//! let recorder = Arc::new(MemoryRecorder::new());
//! let obs = Obs::new(recorder.clone());
//! {
//!     let _txn = obs.span("new_order");
//!     let _lookup = obs.span("btree_lookup"); // path: new_order/btree_lookup
//!     obs.counter("node_visits", Label::None, 3);
//! }
//! obs.observe("latency_ns", Label::Name("new_order"), 12_345);
//! println!("{}", recorder.snapshot().render_table());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod handle;
mod hist;
mod memory;
mod recorder;
mod sketch;
mod timeseries;
mod trace;

pub use export::{top_level_totals, SnapshotWriter};
pub use handle::{CounterHandle, GaugeHandle, HandleTimer, HistogramHandle, TraceHandle};
pub use hist::{bucket_bounds, bucket_index, LogHistogram, BUCKETS};
pub use memory::{MemoryRecorder, Snapshot, SpanEvent, SpanStat, DEFAULT_SPAN_RING};
pub use recorder::{Label, LatencyTimer, NoopRecorder, Obs, Recorder, SpanGuard};
pub use sketch::{HistSummary, QuantileSketch, DEFAULT_SKETCH_ALPHA};
pub use timeseries::{SeriesStat, TimeSeriesPoint, TimeSeriesWriter};
pub use trace::{TraceCollector, TraceEvent, DEFAULT_TRACE_RING};
