//! Random-number foundations for the TPC-C modeling study.
//!
//! This crate implements the benchmark's non-uniform random number
//! function `NURand` exactly as clause 2.1.6 of the TPC-C specification
//! defines it, together with three independent ways of obtaining its
//! probability mass function:
//!
//! 1. **Monte-Carlo estimation** ([`Pmf::monte_carlo`]) — what the paper
//!    did with 10⁹ samples (Figures 3, 4, 6).
//! 2. **Exact enumeration** ([`Pmf::exact_nurand`]) — an `O(A · range)`
//!    pass over every `(rand(0,A), rand(x,y))` pair, giving the exact
//!    distribution with no sampling noise.
//! 3. **Closed form** ([`analytic`]) — the paper's Appendix A.3 result for
//!    power-of-two parameters, used as an oracle in property tests.
//!
//! On top of the PMFs, [`lorenz`] provides the cumulative-access-versus-
//! cumulative-data ("80/20") skew curves of Figure 5 and Figure 7, and
//! [`alias`] provides O(1) sampling from arbitrary discrete distributions
//! for the trace-driven simulators downstream.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alias;
pub mod analytic;
pub mod lorenz;
pub mod mixture;
pub mod nurand;
pub mod pmf;
pub mod rng;

pub use alias::AliasTable;
pub use analytic::pow2_pmf;
pub use lorenz::LorenzCurve;
pub use mixture::Mixture;
pub use nurand::NuRand;
pub use pmf::Pmf;
pub use rng::Xoshiro256;
