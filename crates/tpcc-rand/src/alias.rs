//! Walker alias method: O(1) sampling from an arbitrary discrete
//! distribution.
//!
//! The trace-driven buffer simulator needs millions of draws from
//! page-level PMFs (whose shape depends on the packing strategy), so a
//! constant-time sampler matters. Construction is O(n) by the classic
//! two-queue (small/large) algorithm.

use crate::pmf::Pmf;
use crate::rng::Xoshiro256;

/// Pre-processed alias table over indices `0 .. n`.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance threshold per column, scaled to `[0, 1]`.
    accept: Vec<f64>,
    /// Alias target per column.
    alias: Vec<u32>,
    first_id: u64,
}

impl AliasTable {
    /// Builds a table from non-negative weights (renormalized internally).
    ///
    /// # Panics
    /// Panics if `weights` is empty, longer than `u32::MAX`, contains a
    /// negative/non-finite weight, or sums to zero.
    #[must_use]
    pub fn from_weights(first_id: u64, weights: &[f64]) -> Self {
        let n = weights.len();
        assert!(n > 0, "alias table needs at least one outcome");
        assert!(u32::try_from(n).is_ok(), "too many outcomes");
        let mut total = 0.0;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "invalid weight {w}");
            total += w;
        }
        assert!(total > 0.0, "weights sum to zero");

        // scaled[i] = p_i * n; columns with scaled < 1 borrow from > 1.
        let mut accept: Vec<f64> = weights.iter().map(|&w| w / total * n as f64).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &s) in accept.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            let leftover = accept[l as usize] - (1.0 - accept[s as usize]);
            accept[l as usize] = leftover;
            if leftover < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // numerical slack: leftovers are full columns
        for i in small.into_iter().chain(large) {
            accept[i as usize] = 1.0;
        }
        Self {
            accept,
            alias,
            first_id,
        }
    }

    /// Builds a table that samples ids according to `pmf`.
    #[must_use]
    pub fn from_pmf(pmf: &Pmf) -> Self {
        Self::from_weights(pmf.first_id(), pmf.probs())
    }

    /// Number of outcomes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.accept.len()
    }

    /// Always false: constructors reject empty tables.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.accept.is_empty()
    }

    /// Draws one id in `first_id .. first_id + len`.
    #[inline]
    pub fn sample(&self, rng: &mut Xoshiro256) -> u64 {
        let n = self.accept.len() as u64;
        let col = rng.uniform_inclusive(0, n - 1) as usize;
        let id = if rng.f64() < self.accept[col] {
            col
        } else {
            self.alias[col] as usize
        };
        self.first_id + id as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nurand::NuRand;

    #[test]
    fn reproduces_simple_distribution() {
        let t = AliasTable::from_weights(0, &[0.5, 0.25, 0.25]);
        let mut rng = Xoshiro256::seed_from_u64(21);
        let mut counts = [0u64; 3];
        let n = 300_000;
        for _ in 0..n {
            counts[t.sample(&mut rng) as usize] += 1;
        }
        let freq: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        assert!((freq[0] - 0.5).abs() < 0.01);
        assert!((freq[1] - 0.25).abs() < 0.01);
        assert!((freq[2] - 0.25).abs() < 0.01);
    }

    #[test]
    fn honors_first_id_offset() {
        let t = AliasTable::from_weights(100, &[1.0, 1.0]);
        let mut rng = Xoshiro256::seed_from_u64(2);
        for _ in 0..1000 {
            let v = t.sample(&mut rng);
            assert!(v == 100 || v == 101);
        }
    }

    #[test]
    fn single_outcome_always_returned() {
        let t = AliasTable::from_weights(7, &[3.0]);
        let mut rng = Xoshiro256::seed_from_u64(4);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 7);
        }
    }

    #[test]
    fn zero_weight_outcomes_never_sampled() {
        let t = AliasTable::from_weights(0, &[0.0, 1.0, 0.0, 1.0]);
        let mut rng = Xoshiro256::seed_from_u64(5);
        for _ in 0..100_000 {
            let v = t.sample(&mut rng);
            assert!(v == 1 || v == 3, "sampled zero-probability id {v}");
        }
    }

    #[test]
    fn matches_pmf_sampling() {
        let pmf = Pmf::exact_nurand(&NuRand::new(15, 1, 100));
        let t = AliasTable::from_pmf(&pmf);
        let mut rng = Xoshiro256::seed_from_u64(6);
        let mut counts = vec![0u64; 100];
        let n = 1_000_000;
        for _ in 0..n {
            counts[(t.sample(&mut rng) - 1) as usize] += 1;
        }
        let empirical = Pmf::from_counts(1, &counts);
        assert!(pmf.total_variation(&empirical) < 0.01);
    }

    #[test]
    #[should_panic(expected = "weights sum to zero")]
    fn all_zero_rejected() {
        let _ = AliasTable::from_weights(0, &[0.0, 0.0]);
    }
}
