//! The TPC-C non-uniform random number function `NURand` (paper §3, Eq. 1).
//!
//! ```text
//! NURand(A, x, y) = (((rand(0, A) | rand(x, y)) + C) % (y − x + 1)) + x
//! ```
//!
//! The bitwise OR of a narrow and a wide uniform variable biases the low
//! `⌈log₂ A⌉` bits towards 1, producing a periodic "hot band" pattern with
//! `⌊(y − x + 1) / (A + 1)⌋` cycles across the id range (12 cycles for the
//! stock/item distribution `NU(8191, 1, 100000)`).
//!
//! The paper's Eq. 1 prints the modulus as `(y − x)`; the TPC-C
//! specification — and the paper's own use of ids spanning the full
//! closed interval — require `(y − x + 1)`. We implement the spec form by
//! default and keep the paper's literal form available behind
//! [`NuRand::with_paper_modulus`] so the difference can be measured.

use crate::rng::Xoshiro256;

/// A fully-specified `NURand(A, x, y)` distribution with constant `C`.
///
/// ```
/// use tpcc_rand::{NuRand, Xoshiro256};
///
/// let nu = NuRand::item_id(); // NU(8191, 1, 100000)
/// let mut rng = Xoshiro256::seed_from_u64(7);
/// let id = nu.sample(&mut rng);
/// assert!((1..=100_000).contains(&id));
/// assert_eq!(nu.cycles(), 12); // the 12 hot bands of Figure 3
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NuRand {
    /// Bit-mask-ish width constant `A` (8191 for items, 1023 for
    /// customer ids, 255 for customer last names).
    pub a: u64,
    /// Inclusive lower bound of the id range.
    pub x: u64,
    /// Inclusive upper bound of the id range.
    pub y: u64,
    /// The run-time constant `C ∈ [0, A]`; the paper fixes `C = 0`.
    pub c: u64,
    /// Use the paper's literal `% (y − x)` instead of the spec's
    /// `% (y − x + 1)`.
    paper_modulus: bool,
}

impl NuRand {
    /// Creates `NURand(a, x, y)` with `C = 0`, the paper's choice.
    ///
    /// # Panics
    /// Panics if `x > y` or if the paper-modulus variant would divide by
    /// zero (`x == y`).
    #[must_use]
    pub fn new(a: u64, x: u64, y: u64) -> Self {
        assert!(x <= y, "NURand requires x <= y, got [{x}, {y}]");
        Self {
            a,
            x,
            y,
            c: 0,
            paper_modulus: false,
        }
    }

    /// The stock/item id distribution `NU(8191, 1, 100000)` (§2.2).
    #[must_use]
    pub fn item_id() -> Self {
        Self::new(8191, 1, 100_000)
    }

    /// The customer-id distribution `NU(1023, 1, 3000)` (§2.2).
    #[must_use]
    pub fn customer_id() -> Self {
        Self::new(1023, 1, 3000)
    }

    /// One of the paper's three by-name distributions
    /// `NU(255, lbound, ubound)` with `(lbound, ubound)` ∈
    /// {(1,1000), (1001,2000), (2001,3000)} chosen by `third` ∈ {0,1,2}.
    ///
    /// # Panics
    /// Panics if `third > 2`.
    #[must_use]
    pub fn customer_name_band(third: u8) -> Self {
        let (lo, hi) = match third {
            0 => (1, 1000),
            1 => (1001, 2000),
            2 => (2001, 3000),
            _ => panic!("customer name band must be 0, 1 or 2, got {third}"),
        };
        Self::new(255, lo, hi)
    }

    /// Sets the constant `C` (clause 2.1.6 allows any value in `[0, A]`).
    ///
    /// # Panics
    /// Panics if `c > a`.
    #[must_use]
    pub fn with_c(mut self, c: u64) -> Self {
        assert!(
            c <= self.a,
            "C must lie in [0, A] = [0, {}], got {c}",
            self.a
        );
        self.c = c;
        self
    }

    /// Switches to the paper's literal `% (y − x)` modulus (Eq. 1).
    ///
    /// # Panics
    /// Panics if `x == y` (modulo zero).
    #[must_use]
    pub fn with_paper_modulus(mut self) -> Self {
        assert!(
            self.y > self.x,
            "paper modulus (y - x) is zero for degenerate range"
        );
        self.paper_modulus = true;
        self
    }

    /// Number of ids in the range (`y − x + 1`).
    #[must_use]
    pub fn range_len(&self) -> u64 {
        self.y - self.x + 1
    }

    /// Number of full hot/cold cycles the PMF exhibits,
    /// `⌊range / (A + 1)⌋` (the paper reports 12 for the stock relation).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.range_len() / (self.a + 1)
    }

    /// Draws one id.
    #[inline]
    pub fn sample(&self, rng: &mut Xoshiro256) -> u64 {
        let narrow = rng.uniform_inclusive(0, self.a);
        let wide = rng.uniform_inclusive(self.x, self.y);
        self.combine(narrow, wide)
    }

    /// The deterministic core of NURand: combines the two uniform draws.
    ///
    /// Exposed so the exact-PMF enumerator can iterate every `(narrow,
    /// wide)` pair without duplicating the formula.
    #[inline]
    #[must_use]
    pub fn combine(&self, narrow: u64, wide: u64) -> u64 {
        let modulus = if self.paper_modulus {
            self.y - self.x
        } else {
            self.y - self.x + 1
        };
        ((narrow | wide) + self.c) % modulus + self.x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256 {
        Xoshiro256::seed_from_u64(0xDEAD_BEEF)
    }

    #[test]
    fn samples_stay_in_range() {
        let nu = NuRand::item_id();
        let mut r = rng();
        for _ in 0..100_000 {
            let v = nu.sample(&mut r);
            assert!((1..=100_000).contains(&v));
        }
    }

    #[test]
    fn customer_bands_cover_their_third() {
        let mut r = rng();
        for band in 0..3u8 {
            let nu = NuRand::customer_name_band(band);
            let lo = u64::from(band) * 1000 + 1;
            let hi = lo + 999;
            for _ in 0..10_000 {
                let v = nu.sample(&mut r);
                assert!((lo..=hi).contains(&v), "band {band} produced {v}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "band must be 0, 1 or 2")]
    fn invalid_band_panics() {
        let _ = NuRand::customer_name_band(3);
    }

    #[test]
    fn cycles_match_paper() {
        assert_eq!(NuRand::item_id().cycles(), 12);
        assert_eq!(NuRand::customer_id().cycles(), 2);
    }

    #[test]
    fn skew_favors_high_or_density_ids() {
        // Id 8192 maps back to OR-value 8191 = 0x1FFF (all 13 low bits
        // set — maximal OR density), while id 8193 maps to 8192 = 0x2000
        // (13 low zero bits — minimal density). The former must dominate.
        let nu = NuRand::item_id();
        let mut r = rng();
        let (mut hot, mut cold) = (0u32, 0u32);
        for _ in 0..2_000_000 {
            match nu.sample(&mut r) {
                8192 => hot += 1,
                8193 => cold += 1,
                _ => {}
            }
        }
        assert!(
            hot > 10 * cold.max(1),
            "expected strong skew, got hot={hot} cold={cold}"
        );
    }

    #[test]
    fn c_shifts_the_distribution() {
        let base = NuRand::new(15, 0, 63);
        let shifted = NuRand::new(15, 0, 63).with_c(5);
        // combine is a pure shift mod range
        for narrow in 0..=15 {
            for wide in 0..=63 {
                let b = base.combine(narrow, wide);
                let s = shifted.combine(narrow, wide);
                assert_eq!((b + 5) % 64, s);
            }
        }
    }

    #[test]
    #[should_panic(expected = "C must lie in [0, A]")]
    fn c_above_a_rejected() {
        let _ = NuRand::new(15, 0, 63).with_c(16);
    }

    #[test]
    fn paper_modulus_never_yields_y() {
        // With `% (y - x)` the value y is unreachable when C = 0 —
        // exactly the off-by-one the spec's +1 fixes.
        let nu = NuRand::new(7, 1, 100).with_paper_modulus();
        let mut r = rng();
        for _ in 0..200_000 {
            assert_ne!(nu.sample(&mut r), 100);
        }
    }
}
