//! Weighted mixtures of NURand components.
//!
//! The customer relation is accessed through two superimposed patterns
//! (paper §3): by customer-id via `NU(1023, 1, 3000)` and by last name
//! via one of three banded `NU(255, ·, ·)` distributions chosen with
//! equal probability. Given the paper's assumed mix, 41.86% of customer
//! accesses use the id distribution and 58.14% the name distributions.

use crate::nurand::NuRand;
use crate::pmf::Pmf;
use crate::rng::Xoshiro256;

/// A finite mixture of NURand distributions over a common id space.
#[derive(Debug, Clone)]
pub struct Mixture {
    components: Vec<(f64, NuRand)>,
    support_lo: u64,
    support_hi: u64,
}

impl Mixture {
    /// Builds a mixture from `(weight, component)` pairs; weights are
    /// renormalized.
    ///
    /// # Panics
    /// Panics if `components` is empty, any weight is negative or
    /// non-finite, or all weights are zero.
    #[must_use]
    pub fn new(components: Vec<(f64, NuRand)>) -> Self {
        assert!(!components.is_empty(), "mixture needs components");
        let total: f64 = components
            .iter()
            .map(|(w, _)| {
                assert!(w.is_finite() && *w >= 0.0, "invalid mixture weight {w}");
                w
            })
            .sum();
        assert!(total > 0.0, "mixture weights sum to zero");
        let support_lo = components
            .iter()
            .map(|(_, nu)| nu.x)
            .min()
            .expect("nonempty");
        let support_hi = components
            .iter()
            .map(|(_, nu)| nu.y)
            .max()
            .expect("nonempty");
        let components = components
            .into_iter()
            .map(|(w, nu)| (w / total, nu))
            .collect();
        Self {
            components,
            support_lo,
            support_hi,
        }
    }

    /// The paper's customer-access mixture for one district.
    ///
    /// `by_id_weight` and `by_name_weight` are the relative frequencies of
    /// id-keyed and name-keyed accesses. With the assumed transaction mix
    /// (43/44/4/5/4) these are 0.622 and 0.864 — i.e. 41.86% / 58.14% —
    /// which [`Mixture::customer_default`] encodes.
    ///
    /// # Panics
    /// Panics on non-positive total weight.
    #[must_use]
    pub fn customer(by_id_weight: f64, by_name_weight: f64) -> Self {
        let per_band = by_name_weight / 3.0;
        Self::new(vec![
            (by_id_weight, NuRand::customer_id()),
            (per_band, NuRand::customer_name_band(0)),
            (per_band, NuRand::customer_name_band(1)),
            (per_band, NuRand::customer_name_band(2)),
        ])
    }

    /// [`Mixture::customer`] with the paper's §3 weights (41.86% by id).
    #[must_use]
    pub fn customer_default() -> Self {
        Self::customer(0.4186, 0.5814)
    }

    /// Inclusive support bounds (union over components).
    #[must_use]
    pub fn support(&self) -> (u64, u64) {
        (self.support_lo, self.support_hi)
    }

    /// The normalized component list.
    #[must_use]
    pub fn components(&self) -> &[(f64, NuRand)] {
        &self.components
    }

    /// Draws one id: picks a component by weight, then samples it.
    pub fn sample(&self, rng: &mut Xoshiro256) -> u64 {
        let mut u = rng.f64();
        for (w, nu) in &self.components {
            if u < *w {
                return nu.sample(rng);
            }
            u -= w;
        }
        // floating-point slack: fall through to the last component
        self.components.last().expect("nonempty").1.sample(rng)
    }

    /// Exact mixture PMF over the union support (weighted sum of exact
    /// component PMFs) — what Figure 6 plots, without sampling noise.
    #[must_use]
    pub fn exact_pmf(&self) -> Pmf {
        let len = (self.support_hi - self.support_lo + 1) as usize;
        let mut weights = vec![0.0f64; len];
        for (w, nu) in &self.components {
            let pmf = Pmf::exact_nurand(nu);
            for (id, p) in pmf.iter() {
                weights[(id - self.support_lo) as usize] += w * p;
            }
        }
        Pmf::from_weights(self.support_lo, &weights)
    }

    /// Monte-Carlo PMF estimate, mirroring the paper's methodology.
    #[must_use]
    pub fn monte_carlo_pmf(&self, samples: u64, rng: &mut Xoshiro256) -> Pmf {
        let len = (self.support_hi - self.support_lo + 1) as usize;
        let mut counts = vec![0u64; len];
        for _ in 0..samples {
            counts[(self.sample(rng) - self.support_lo) as usize] += 1;
        }
        Pmf::from_counts(self.support_lo, &counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lorenz::LorenzCurve;

    #[test]
    fn customer_support_spans_district() {
        let m = Mixture::customer_default();
        assert_eq!(m.support(), (1, 3000));
        let mut rng = Xoshiro256::seed_from_u64(3);
        for _ in 0..50_000 {
            let v = m.sample(&mut rng);
            assert!((1..=3000).contains(&v));
        }
    }

    #[test]
    fn weights_renormalize() {
        let m = Mixture::new(vec![
            (2.0, NuRand::new(1, 0, 3)),
            (6.0, NuRand::new(1, 0, 3)),
        ]);
        let w: Vec<f64> = m.components().iter().map(|(w, _)| *w).collect();
        assert!((w[0] - 0.25).abs() < 1e-12);
        assert!((w[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "weights sum to zero")]
    fn zero_weights_rejected() {
        let _ = Mixture::new(vec![(0.0, NuRand::new(1, 0, 3))]);
    }

    #[test]
    fn exact_pmf_is_weighted_sum() {
        let a = NuRand::new(3, 0, 7);
        let b = NuRand::new(1, 4, 15);
        let m = Mixture::new(vec![(0.3, a), (0.7, b)]);
        let pmf = m.exact_pmf();
        let pa = Pmf::exact_nurand(&a);
        let pb = Pmf::exact_nurand(&b);
        for id in 0..=15u64 {
            let expect = 0.3 * pa.prob(id) + 0.7 * pb.prob(id);
            assert!((pmf.prob(id) - expect).abs() < 1e-12, "id={id}");
        }
    }

    #[test]
    fn monte_carlo_tracks_exact() {
        let m = Mixture::new(vec![
            (0.5, NuRand::new(7, 1, 100)),
            (0.5, NuRand::new(3, 50, 150)),
        ]);
        let exact = m.exact_pmf();
        let mut rng = Xoshiro256::seed_from_u64(11);
        let mc = m.monte_carlo_pmf(500_000, &mut rng);
        assert!(exact.total_variation(&mc) < 0.02);
    }

    #[test]
    fn customer_is_less_skewed_than_stock() {
        // Paper §3: "considerably less skew for the customer relation
        // than for the Stock relation". Compare Gini coefficients.
        let customer = LorenzCurve::from_pmf(&Mixture::customer_default().exact_pmf());
        // scaled-down stock-style distribution to keep the test fast
        let stock_like = LorenzCurve::from_pmf(&Pmf::exact_nurand(&NuRand::new(1023, 1, 12000)));
        assert!(
            customer.gini() < stock_like.gini(),
            "customer gini {} should be below stock-like gini {}",
            customer.gini(),
            stock_like.gini()
        );
    }
}
