//! A small, fast, deterministic PRNG for the simulators.
//!
//! Every simulation in this workspace must be reproducible from a single
//! `u64` seed so that the batch-means confidence intervals of the paper's
//! buffer study (§4) can be re-run bit-for-bit. We therefore carry our own
//! xoshiro256** implementation instead of depending on the `rand` crate's
//! unspecified stream stability across versions. The `rand` crate is still
//! used in tests as an independent reference.

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation), seeded through SplitMix64 as the authors recommend.
///
/// Passes BigCrush; period 2²⁵⁶ − 1. Plenty for the ~10⁸–10⁹ draws the
/// paper's experiments make.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The four words of state are produced by SplitMix64 so that even
    /// seeds 0, 1, 2, … yield well-mixed, independent-looking streams.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64 { state: seed };
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in the closed interval `[lo, hi]`.
    ///
    /// This is the `rand(x, y)` primitive of TPC-C clause 2.1.4. Uses
    /// Lemire's multiply-shift rejection method, so the result is exactly
    /// uniform (no modulo bias).
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    #[inline]
    pub fn uniform_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform_inclusive: empty range {lo}..={hi}");
        let span = hi - lo; // inclusive span - 1
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.bounded(span + 1)
    }

    /// Uniform integer in `[0, n)` via Lemire's method.
    #[inline]
    fn bounded(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// `p` outside `[0, 1]` is clamped (a `p >= 1` always returns `true`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Splits off an independent generator for a parallel sub-task.
    ///
    /// The child is seeded from the parent's stream, so a single root seed
    /// still determines the entire experiment deterministically.
    #[must_use]
    pub fn split(&mut self) -> Self {
        Self::seed_from_u64(self.next_u64())
    }
}

/// SplitMix64: only used to expand seeds.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector_xoshiro() {
        // First outputs for the all-SplitMix64(0) seed; locked in so the
        // stream can never silently change between releases.
        let mut r = Xoshiro256::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let again: Vec<u64> = {
            let mut r2 = Xoshiro256::seed_from_u64(0);
            (0..4).map(|_| r2.next_u64()).collect()
        };
        assert_eq!(first, again, "stream must be deterministic");
        // distinct seeds diverge immediately
        let mut r3 = Xoshiro256::seed_from_u64(1);
        assert_ne!(first[0], r3.next_u64());
    }

    #[test]
    fn uniform_inclusive_covers_endpoints() {
        let mut r = Xoshiro256::seed_from_u64(42);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.uniform_inclusive(3, 10);
            assert!((3..=10).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 10;
        }
        assert!(seen_lo && seen_hi, "both endpoints must be reachable");
    }

    #[test]
    fn uniform_inclusive_degenerate_range() {
        let mut r = Xoshiro256::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(r.uniform_inclusive(5, 5), 5);
        }
    }

    #[test]
    fn uniform_inclusive_full_range_does_not_panic() {
        let mut r = Xoshiro256::seed_from_u64(9);
        let _ = r.uniform_inclusive(0, u64::MAX);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn uniform_inclusive_rejects_inverted_range() {
        let mut r = Xoshiro256::seed_from_u64(1);
        let _ = r.uniform_inclusive(10, 3);
    }

    #[test]
    fn uniform_is_roughly_flat() {
        let mut r = Xoshiro256::seed_from_u64(123);
        let mut counts = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[r.uniform_inclusive(0, 7) as usize] += 1;
        }
        let expect = n as f64 / 8.0;
        for (i, &c) in counts.iter().enumerate() {
            let rel = (f64::from(c) - expect).abs() / expect;
            assert!(rel < 0.05, "bucket {i} off by {rel:.3}");
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_matches_probability() {
        let mut r = Xoshiro256::seed_from_u64(77);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.chance(0.15)).count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.15).abs() < 0.01, "observed {p}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = Xoshiro256::seed_from_u64(8);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let mut a = Xoshiro256::seed_from_u64(100);
        let mut b = Xoshiro256::seed_from_u64(100);
        let mut ca = a.split();
        let mut cb = b.split();
        assert_eq!(ca.next_u64(), cb.next_u64());
        assert_ne!(ca.next_u64(), a.next_u64());
    }
}
