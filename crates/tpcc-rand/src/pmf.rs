//! Probability mass functions over contiguous id ranges.
//!
//! The paper characterizes NURand by its PMF (Figures 3, 4, 6). We
//! support both the paper's Monte-Carlo route and exact enumeration, and
//! the tuple→page aggregations that turn a tuple-level PMF into a
//! page-level one (§3: sequential packing smears the skew; hotness-sorted
//! packing preserves it).

use crate::nurand::NuRand;
use crate::rng::Xoshiro256;

/// A discrete distribution over the ids `first_id ..= first_id + len − 1`.
///
/// Probabilities are kept normalized; constructors renormalize from raw
/// counts or weights.
///
/// ```
/// use tpcc_rand::{NuRand, Pmf};
///
/// // the exact distribution, no sampling noise
/// let pmf = Pmf::exact_nurand(&NuRand::new(15, 1, 64));
/// assert!((pmf.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// // page-level view: 8 tuples per page, sequential load order
/// let pages = pmf.pack_sequential(8);
/// assert_eq!(pages.len(), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Pmf {
    first_id: u64,
    probs: Vec<f64>,
}

impl Pmf {
    /// Builds a PMF from raw observation counts starting at `first_id`.
    ///
    /// # Panics
    /// Panics if `counts` is empty or sums to zero.
    #[must_use]
    pub fn from_counts(first_id: u64, counts: &[u64]) -> Self {
        assert!(!counts.is_empty(), "PMF needs at least one id");
        let total: u128 = counts.iter().map(|&c| u128::from(c)).sum();
        assert!(total > 0, "PMF counts sum to zero");
        let probs = counts.iter().map(|&c| c as f64 / total as f64).collect();
        Self { first_id, probs }
    }

    /// Builds a PMF from non-negative weights, renormalizing.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    #[must_use]
    pub fn from_weights(first_id: u64, weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "PMF needs at least one id");
        let mut total = 0.0;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "invalid PMF weight {w}");
            total += w;
        }
        assert!(total > 0.0, "PMF weights sum to zero");
        let probs = weights.iter().map(|&w| w / total).collect();
        Self { first_id, probs }
    }

    /// The uniform distribution over `len` ids — the TPC-A baseline the
    /// paper contrasts against.
    ///
    /// # Panics
    /// Panics if `len == 0`.
    #[must_use]
    pub fn uniform(first_id: u64, len: usize) -> Self {
        assert!(len > 0, "PMF needs at least one id");
        Self {
            first_id,
            probs: vec![1.0 / len as f64; len],
        }
    }

    /// Exact PMF of a NURand distribution by enumerating every
    /// `(rand(0,A), rand(x,y))` pair — `O(A · range)` time, zero noise.
    ///
    /// For the paper's `NU(8191, 1, 100000)` this is ~8.2 × 10⁸ cheap
    /// iterations (a few seconds in release mode); prefer it over
    /// [`Pmf::monte_carlo`] whenever exactness matters.
    #[must_use]
    pub fn exact_nurand(nu: &NuRand) -> Self {
        let len = nu.range_len() as usize;
        let mut counts = vec![0u64; len];
        for narrow in 0..=nu.a {
            for wide in nu.x..=nu.y {
                let v = nu.combine(narrow, wide);
                counts[(v - nu.x) as usize] += 1;
            }
        }
        Self::from_counts(nu.x, &counts)
    }

    /// Monte-Carlo PMF estimate from `samples` draws (the paper used 10⁹).
    #[must_use]
    pub fn monte_carlo(nu: &NuRand, samples: u64, rng: &mut Xoshiro256) -> Self {
        let len = nu.range_len() as usize;
        let mut counts = vec![0u64; len];
        for _ in 0..samples {
            let v = nu.sample(rng);
            counts[(v - nu.x) as usize] += 1;
        }
        Self::from_counts(nu.x, &counts)
    }

    /// First id of the support.
    #[must_use]
    pub fn first_id(&self) -> u64 {
        self.first_id
    }

    /// Number of ids in the support.
    #[must_use]
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Always false: constructors reject empty supports.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Probability of drawing `id`; zero outside the support.
    #[must_use]
    pub fn prob(&self, id: u64) -> f64 {
        if id < self.first_id {
            return 0.0;
        }
        self.probs
            .get((id - self.first_id) as usize)
            .copied()
            .unwrap_or(0.0)
    }

    /// The normalized probability vector, indexed from `first_id`.
    #[must_use]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Iterator of `(id, probability)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.probs
            .iter()
            .enumerate()
            .map(move |(i, &p)| (self.first_id + i as u64, p))
    }

    /// Aggregates ids into groups (e.g. tuples into pages) via `group_of`,
    /// producing a PMF over group indices `0 .. n_groups`.
    ///
    /// # Panics
    /// Panics if `group_of` maps any id outside `0 .. n_groups`.
    #[must_use]
    pub fn aggregate<F>(&self, n_groups: usize, mut group_of: F) -> Pmf
    where
        F: FnMut(u64) -> usize,
    {
        assert!(n_groups > 0, "aggregation needs at least one group");
        let mut weights = vec![0.0f64; n_groups];
        for (id, p) in self.iter() {
            let g = group_of(id);
            assert!(
                g < n_groups,
                "group_of({id}) = {g} out of range 0..{n_groups}"
            );
            weights[g] += p;
        }
        Pmf::from_weights(0, &weights)
    }

    /// Page-level PMF under *sequential packing*: id `k` (0-based within
    /// the support) goes to page `k / tuples_per_page`.
    ///
    /// # Panics
    /// Panics if `tuples_per_page == 0`.
    #[must_use]
    pub fn pack_sequential(&self, tuples_per_page: usize) -> Pmf {
        assert!(tuples_per_page > 0, "tuples_per_page must be positive");
        let n_pages = self.len().div_ceil(tuples_per_page);
        let first = self.first_id;
        self.aggregate(n_pages, |id| ((id - first) as usize) / tuples_per_page)
    }

    /// Page-level PMF under *optimized packing*: tuples are sorted from
    /// hottest to coldest before being packed, so each page holds tuples
    /// of similar hotness (§3, bottom curve of Figure 5).
    ///
    /// # Panics
    /// Panics if `tuples_per_page == 0`.
    #[must_use]
    pub fn pack_hotness_sorted(&self, tuples_per_page: usize) -> Pmf {
        assert!(tuples_per_page > 0, "tuples_per_page must be positive");
        let mut sorted = self.probs.clone();
        // hottest first
        sorted.sort_unstable_by(|a, b| b.partial_cmp(a).expect("finite probs"));
        let n_pages = sorted.len().div_ceil(tuples_per_page);
        let mut weights = vec![0.0f64; n_pages];
        for (k, p) in sorted.iter().enumerate() {
            weights[k / tuples_per_page] += p;
        }
        Pmf::from_weights(0, &weights)
    }

    /// The permutation that sorts the support from hottest to coldest;
    /// `result[rank] = id`. This is the tuple→slot assignment a DBA would
    /// use to load the relation in optimized order.
    #[must_use]
    pub fn hotness_ranking(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = (self.first_id..self.first_id + self.len() as u64).collect();
        ids.sort_by(|&a, &b| {
            self.prob(b)
                .partial_cmp(&self.prob(a))
                .expect("finite probs")
                .then(a.cmp(&b))
        });
        ids
    }

    /// Total-variation distance to another PMF on the same support,
    /// `½ Σ |p_i − q_i|` — used by tests to compare Monte-Carlo runs to
    /// exact enumerations.
    ///
    /// # Panics
    /// Panics if the supports differ.
    #[must_use]
    pub fn total_variation(&self, other: &Pmf) -> f64 {
        assert_eq!(self.first_id, other.first_id, "support mismatch");
        assert_eq!(self.len(), other.len(), "support mismatch");
        0.5 * self
            .probs
            .iter()
            .zip(&other.probs)
            .map(|(p, q)| (p - q).abs())
            .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_normalized(p: &Pmf) {
        let s: f64 = p.probs().iter().sum();
        assert!((s - 1.0).abs() < 1e-9, "sum = {s}");
    }

    #[test]
    fn from_counts_normalizes() {
        let p = Pmf::from_counts(1, &[1, 3]);
        assert_normalized(&p);
        assert!((p.prob(1) - 0.25).abs() < 1e-12);
        assert!((p.prob(2) - 0.75).abs() < 1e-12);
        assert_eq!(p.prob(0), 0.0);
        assert_eq!(p.prob(3), 0.0);
    }

    #[test]
    #[should_panic(expected = "sum to zero")]
    fn zero_counts_rejected() {
        let _ = Pmf::from_counts(0, &[0, 0]);
    }

    #[test]
    fn uniform_is_flat() {
        let p = Pmf::uniform(10, 4);
        assert_normalized(&p);
        for id in 10..14 {
            assert!((p.prob(id) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn exact_enumeration_small_case() {
        // NU(1, 0, 1): narrow ∈ {0,1}, wide ∈ {0,1}; OR = 0 once, 1 thrice.
        let nu = NuRand::new(1, 0, 1);
        let p = Pmf::exact_nurand(&nu);
        assert!((p.prob(0) - 0.25).abs() < 1e-12);
        assert!((p.prob(1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_approaches_exact() {
        let nu = NuRand::new(15, 1, 64);
        let exact = Pmf::exact_nurand(&nu);
        let mut rng = Xoshiro256::seed_from_u64(4);
        let mc = Pmf::monte_carlo(&nu, 400_000, &mut rng);
        assert!(
            exact.total_variation(&mc) < 0.01,
            "tv = {}",
            exact.total_variation(&mc)
        );
    }

    #[test]
    fn sequential_packing_sums_chunks() {
        let p = Pmf::from_weights(1, &[0.1, 0.2, 0.3, 0.4]);
        let pages = p.pack_sequential(2);
        assert_eq!(pages.len(), 2);
        assert!((pages.prob(0) - 0.3).abs() < 1e-12);
        assert!((pages.prob(1) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn sequential_packing_partial_last_page() {
        let p = Pmf::uniform(0, 5);
        let pages = p.pack_sequential(2);
        assert_eq!(pages.len(), 3);
        assert!((pages.prob(2) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn hotness_packing_concentrates_mass() {
        // Alternating hot/cold tuples: sequential packing flattens the
        // page distribution; hotness packing keeps it skewed.
        let weights: Vec<f64> = (0..8).map(|i| if i % 2 == 0 { 0.9 } else { 0.1 }).collect();
        let p = Pmf::from_weights(0, &weights);
        let seq = p.pack_sequential(2);
        let opt = p.pack_hotness_sorted(2);
        let seq_max = seq.probs().iter().cloned().fold(0.0, f64::max);
        let opt_max = opt.probs().iter().cloned().fold(0.0, f64::max);
        assert!(opt_max > seq_max, "opt {opt_max} vs seq {seq_max}");
        assert_normalized(&seq);
        assert_normalized(&opt);
    }

    #[test]
    fn hotness_ranking_is_a_permutation_sorted_by_prob() {
        let p = Pmf::from_weights(5, &[0.1, 0.4, 0.2, 0.3]);
        let rank = p.hotness_ranking();
        assert_eq!(rank, vec![6, 8, 7, 5]);
    }

    #[test]
    fn aggregate_panics_on_bad_group() {
        let p = Pmf::uniform(0, 4);
        let r = std::panic::catch_unwind(|| p.aggregate(2, |_| 2));
        assert!(r.is_err());
    }

    #[test]
    fn total_variation_zero_on_self() {
        let nu = NuRand::new(7, 1, 32);
        let p = Pmf::exact_nurand(&nu);
        assert_eq!(p.total_variation(&p), 0.0);
    }
}
