//! Closed-form NURand PMF for power-of-two parameters (paper Appendix A.3).
//!
//! For `NURand(2^a − 1, 0, 2^b − 1)` with `C = 0` and `b ≥ a`, the OR of
//! the two uniform draws never exceeds `2^b − 1`, so the modulus is a
//! no-op and each bit of the result is independent:
//!
//! * low `a` bits are set with probability 3/4 (either draw sets them),
//! * the next `b − a` bits are set with probability 1/2.
//!
//! Hence `P(v) = (3/4)^i (1/4)^(a−i) (1/2)^(b−a)` where `i` is the number
//! of set bits among the low `a` bits of `v`. The PMF is exactly periodic
//! with period `2^a` — the idealized version of the 12 cycles visible in
//! Figure 3.

use crate::pmf::Pmf;

/// Probability of drawing `v` from `NURand(2^a − 1, 0, 2^b − 1)`.
///
/// # Panics
/// Panics if `a_bits > b_bits`, `b_bits == 0` or `b_bits >= 63`, or if
/// `v >= 2^b`.
#[must_use]
pub fn pow2_prob(v: u64, a_bits: u32, b_bits: u32) -> f64 {
    validate(a_bits, b_bits);
    assert!(v < 1u64 << b_bits, "value {v} outside [0, 2^{b_bits})");
    let low_mask = (1u64 << a_bits) - 1;
    let ones = (v & low_mask).count_ones();
    let zeros = a_bits - ones;
    0.75f64.powi(ones as i32) * 0.25f64.powi(zeros as i32) * 0.5f64.powi((b_bits - a_bits) as i32)
}

/// The full closed-form PMF over `[0, 2^b − 1]`.
///
/// # Panics
/// As [`pow2_prob`]; additionally requires `b_bits <= 26` so the vector
/// stays reasonably sized.
#[must_use]
pub fn pow2_pmf(a_bits: u32, b_bits: u32) -> Pmf {
    validate(a_bits, b_bits);
    assert!(b_bits <= 26, "refusing to materialize 2^{b_bits} entries");
    let n = 1usize << b_bits;
    let weights: Vec<f64> = (0..n as u64)
        .map(|v| pow2_prob(v, a_bits, b_bits))
        .collect();
    Pmf::from_weights(0, &weights)
}

/// The exact period of the closed-form PMF: `2^a`.
#[must_use]
pub fn pow2_period(a_bits: u32) -> u64 {
    1u64 << a_bits
}

fn validate(a_bits: u32, b_bits: u32) {
    assert!(b_bits > 0 && b_bits < 63, "b_bits must be in 1..63");
    assert!(
        a_bits <= b_bits,
        "requires a <= b, got a={a_bits} b={b_bits}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nurand::NuRand;

    #[test]
    fn closed_form_matches_exact_enumeration() {
        for (a, b) in [(1u32, 3u32), (3, 5), (4, 4), (5, 8)] {
            let analytic = pow2_pmf(a, b);
            let exact = Pmf::exact_nurand(&NuRand::new((1 << a) - 1, 0, (1 << b) - 1));
            let tv = analytic.total_variation(&exact);
            assert!(tv < 1e-12, "a={a} b={b}: tv = {tv}");
        }
    }

    #[test]
    fn pmf_is_periodic_with_period_two_pow_a() {
        let (a, b) = (3u32, 7u32);
        let p = pow2_pmf(a, b);
        let period = pow2_period(a) as usize;
        for v in 0..(1usize << b) - period {
            let diff = (p.prob(v as u64) - p.prob((v + period) as u64)).abs();
            assert!(diff < 1e-15, "v={v} breaks periodicity");
        }
    }

    #[test]
    fn all_ones_low_bits_is_the_mode() {
        let (a, b) = (4u32, 8u32);
        let p = pow2_pmf(a, b);
        let mode = p.prob((1 << a) - 1);
        for v in 0..(1u64 << b) {
            assert!(p.prob(v) <= mode + 1e-15);
        }
        // and the mode appears exactly 2^(b-a) times
        let count = (0..(1u64 << b))
            .filter(|&v| (p.prob(v) - mode).abs() < 1e-18)
            .count();
        assert_eq!(count, 1 << (b - a));
    }

    #[test]
    fn probabilities_sum_to_one() {
        let p = pow2_pmf(6, 10);
        let s: f64 = p.probs().iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "requires a <= b")]
    fn a_greater_than_b_rejected() {
        let _ = pow2_prob(0, 5, 3);
    }
}
