//! Lorenz ("skew") curves: cumulative access probability versus
//! cumulative fraction of the data (paper §3, Figures 5 and 7).
//!
//! The paper orders tuples by increasing hotness and plots Σαᵢ against
//! Σβᵢ. We store the curve in that orientation and expose the two queries
//! the paper reads off it: *what share of accesses go to the hottest f of
//! the data* (e.g. 84% → 20% for stock tuples) and the inverse.

use crate::pmf::Pmf;

/// A Lorenz curve: `access_cum[k]` is the probability mass carried by the
/// `k + 1` coldest items, with items sorted coldest → hottest.
///
/// ```
/// use tpcc_rand::{LorenzCurve, NuRand, Pmf};
///
/// let curve = LorenzCurve::from_pmf(&Pmf::exact_nurand(&NuRand::new(63, 1, 1000)));
/// // skewed: the hottest 20% of tuples absorb well over 20% of accesses
/// assert!(curve.access_share_of_hottest(0.20) > 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct LorenzCurve {
    access_cum: Vec<f64>,
}

impl LorenzCurve {
    /// Builds the curve for a PMF (each item carries an equal data share,
    /// matching the paper's fixed-length-tuple assumption).
    #[must_use]
    pub fn from_pmf(pmf: &Pmf) -> Self {
        let mut probs = pmf.probs().to_vec();
        probs.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite probs"));
        let mut cum = 0.0;
        let access_cum = probs
            .iter()
            .map(|p| {
                cum += p;
                cum
            })
            .collect();
        Self { access_cum }
    }

    /// Number of items underlying the curve.
    #[must_use]
    pub fn len(&self) -> usize {
        self.access_cum.len()
    }

    /// Always false: built from non-empty PMFs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.access_cum.is_empty()
    }

    /// Share of all accesses that go to the **hottest** `data_fraction`
    /// of the items (linear interpolation between items).
    ///
    /// `access_share_of_hottest(0.20) ≈ 0.84` reproduces the paper's
    /// "84% of the accesses go to about 20% of the tuples".
    ///
    /// # Panics
    /// Panics if `data_fraction` is outside `[0, 1]`.
    #[must_use]
    pub fn access_share_of_hottest(&self, data_fraction: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&data_fraction),
            "fraction must be in [0,1], got {data_fraction}"
        );
        // hottest f of the data = everything above the (1-f) point of the
        // coldest-first cumulative curve
        1.0 - self.cold_cum_at(1.0 - data_fraction)
    }

    /// Share of accesses carried by the **coldest** `data_fraction` of
    /// the items.
    ///
    /// # Panics
    /// Panics if `data_fraction` is outside `[0, 1]`.
    #[must_use]
    pub fn access_share_of_coldest(&self, data_fraction: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&data_fraction),
            "fraction must be in [0,1], got {data_fraction}"
        );
        self.cold_cum_at(data_fraction)
    }

    /// Smallest fraction of (hottest) data that captures at least
    /// `access_fraction` of the accesses.
    ///
    /// # Panics
    /// Panics if `access_fraction` is outside `[0, 1]`.
    #[must_use]
    pub fn data_share_for_hottest_access(&self, access_fraction: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&access_fraction),
            "fraction must be in [0,1], got {access_fraction}"
        );
        let n = self.len();
        let mut captured = 0.0;
        for (taken, j) in (0..n).rev().enumerate() {
            let below = if j == 0 { 0.0 } else { self.access_cum[j - 1] };
            captured += self.access_cum[j] - below;
            if captured >= access_fraction - 1e-12 {
                return (taken + 1) as f64 / n as f64;
            }
        }
        1.0
    }

    /// The Gini coefficient of the access distribution: 0 for uniform
    /// access (TPC-A), approaching 1 for extreme skew.
    #[must_use]
    pub fn gini(&self) -> f64 {
        // G = 1 - 2 * area under the Lorenz curve (trapezoid rule over
        // equally spaced data fractions).
        let n = self.len() as f64;
        let mut area = 0.0;
        let mut prev = 0.0;
        for &c in &self.access_cum {
            area += (prev + c) / 2.0 / n;
            prev = c;
        }
        1.0 - 2.0 * area
    }

    /// Evenly spaced `(data_fraction, access_fraction)` points (coldest
    /// first), suitable for plotting Figure 5 / Figure 7 series.
    ///
    /// # Panics
    /// Panics if `points < 2`.
    #[must_use]
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least two points");
        (0..points)
            .map(|i| {
                let f = i as f64 / (points - 1) as f64;
                (f, self.cold_cum_at(f))
            })
            .collect()
    }

    /// Interpolated coldest-first cumulative access at data fraction `f`.
    fn cold_cum_at(&self, f: f64) -> f64 {
        let n = self.len() as f64;
        let pos = f * n; // data fraction expressed in items
        if pos <= 0.0 {
            return 0.0;
        }
        let full = pos.floor() as usize;
        if full >= self.len() {
            return 1.0;
        }
        let below = if full == 0 {
            0.0
        } else {
            self.access_cum[full - 1]
        };
        let item_mass = self.access_cum[full] - below;
        below + (pos - full as f64) * item_mass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nurand::NuRand;

    #[test]
    fn uniform_curve_is_diagonal() {
        let c = LorenzCurve::from_pmf(&Pmf::uniform(0, 100));
        for f in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert!((c.access_share_of_coldest(f) - f).abs() < 1e-9, "f={f}");
            assert!((c.access_share_of_hottest(f) - f).abs() < 1e-9, "f={f}");
        }
        assert!(c.gini().abs() < 1e-9);
    }

    #[test]
    fn skewed_curve_is_convex_and_monotone() {
        let p = Pmf::exact_nurand(&NuRand::new(15, 1, 256));
        let c = LorenzCurve::from_pmf(&p);
        let series = c.series(50);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12, "monotone");
        }
        // convexity: increments grow
        for w in series.windows(3) {
            let d1 = w[1].1 - w[0].1;
            let d2 = w[2].1 - w[1].1;
            assert!(d2 >= d1 - 1e-9, "convex");
        }
    }

    #[test]
    fn hottest_and_coldest_shares_are_complementary() {
        let p = Pmf::exact_nurand(&NuRand::new(31, 1, 200));
        let c = LorenzCurve::from_pmf(&p);
        for f in [0.1, 0.3, 0.5, 0.9] {
            let sum = c.access_share_of_hottest(f) + c.access_share_of_coldest(1.0 - f);
            assert!((sum - 1.0).abs() < 1e-9, "f={f}: sum={sum}");
        }
    }

    #[test]
    fn extreme_point_mass() {
        // one item carries everything
        let mut w = vec![0.0; 10];
        w[3] = 1.0;
        let c = LorenzCurve::from_pmf(&Pmf::from_weights(0, &w));
        assert!((c.access_share_of_hottest(0.1) - 1.0).abs() < 1e-9);
        assert!(c.access_share_of_coldest(0.9) < 1e-9);
        assert!(c.gini() > 0.89);
    }

    #[test]
    fn data_share_for_access_inverts() {
        let p = Pmf::exact_nurand(&NuRand::new(63, 1, 500));
        let c = LorenzCurve::from_pmf(&p);
        let f = c.data_share_for_hottest_access(0.8);
        let back = c.access_share_of_hottest(f);
        assert!(back >= 0.8 - 1e-9, "f={f} captures only {back}");
        // and one item less should not suffice
        let f_minus = f - 1.0 / p.len() as f64;
        if f_minus > 0.0 {
            assert!(c.access_share_of_hottest(f_minus) < 0.8 + 1e-9);
        }
    }

    #[test]
    fn series_endpoints() {
        let p = Pmf::exact_nurand(&NuRand::new(7, 1, 64));
        let s = LorenzCurve::from_pmf(&p).series(11);
        assert_eq!(s.len(), 11);
        assert!((s[0].1 - 0.0).abs() < 1e-12);
        assert!((s[10].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0,1]")]
    fn fraction_out_of_range_panics() {
        let c = LorenzCurve::from_pmf(&Pmf::uniform(0, 3));
        let _ = c.access_share_of_hottest(1.5);
    }
}
