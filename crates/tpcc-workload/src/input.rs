//! Input-value generation for the five transactions (paper §2.2).
//!
//! Terminal effects are not modeled: warehouse and district ids are
//! uniform, as the paper assumes ("each terminal is submitting requests
//! at the same rate"). Customer and item ids come from the NURand
//! distributions; remote-warehouse probabilities follow clause 2.4
//! (1% remote stock) and 2.5 (15% remote payments).

use crate::mix::TxType;
use tpcc_rand::{NuRand, Xoshiro256};
use tpcc_schema::relation::DISTRICTS_PER_WAREHOUSE;

/// How many items a New-Order transaction orders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemsPerOrder {
    /// The paper's simplification: always exactly `n` items (§2.2 fixes
    /// n = 10; "this assumption has no effect since we only report mean
    /// miss rates and throughputs").
    Fixed(u64),
    /// The specification's uniform(lo, hi) item count.
    Uniform(u64, u64),
}

impl ItemsPerOrder {
    /// Expected number of items per order.
    #[must_use]
    pub fn mean(self) -> f64 {
        match self {
            ItemsPerOrder::Fixed(n) => n as f64,
            ItemsPerOrder::Uniform(lo, hi) => (lo + hi) as f64 / 2.0,
        }
    }

    fn sample(self, rng: &mut Xoshiro256) -> u64 {
        match self {
            ItemsPerOrder::Fixed(n) => n,
            ItemsPerOrder::Uniform(lo, hi) => rng.uniform_inclusive(lo, hi),
        }
    }
}

/// Tunable workload parameters with paper defaults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InputConfig {
    /// Number of warehouses `W`.
    pub warehouses: u64,
    /// Items per New-Order (paper: fixed 10).
    pub items_per_order: ItemsPerOrder,
    /// Probability an ordered item is supplied by a remote warehouse
    /// (clause: 0.01).
    pub remote_stock_prob: f64,
    /// Probability a payment goes through a non-home warehouse (0.15).
    pub remote_payment_prob: f64,
    /// Probability a customer is selected by last name rather than id
    /// (0.60), in Payment and Order-Status.
    pub by_name_prob: f64,
    /// Replace every NURand draw with a uniform draw (`A = 0` makes
    /// `NURand` degenerate to `rand(x, y)`) — the TPC-A-style baseline
    /// the paper contrasts against in §6.
    pub uniform_access: bool,
}

impl InputConfig {
    /// Paper defaults at the given scale.
    ///
    /// # Panics
    /// Panics if `warehouses == 0`.
    #[must_use]
    pub fn paper_default(warehouses: u64) -> Self {
        assert!(warehouses > 0, "need at least one warehouse");
        Self {
            warehouses,
            items_per_order: ItemsPerOrder::Fixed(10),
            remote_stock_prob: 0.01,
            remote_payment_prob: 0.15,
            by_name_prob: 0.60,
            uniform_access: false,
        }
    }

    /// The same workload with uniform (unskewed) tuple selection.
    #[must_use]
    pub fn uniform(mut self) -> Self {
        self.uniform_access = true;
        self
    }
}

/// One ordered item: which item, supplied from which warehouse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItemOrder {
    /// 0-based item id.
    pub item: u64,
    /// Supplying warehouse (equal to the home warehouse 99% of the time).
    pub supply_warehouse: u64,
}

/// How Payment / Order-Status pick the customer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaymentSelector {
    /// Unique select by customer id (40% of the time).
    ById {
        /// 0-based customer within the district.
        customer: u64,
    },
    /// Non-unique select by last name (60%): on average three rows
    /// match; the row with the median first name is the one updated.
    /// Under the paper's banded simplification the three matches are
    /// three independent draws from one `NU(255, band)` distribution.
    ByName {
        /// The three matching 0-based customer ids; `matches[1]` plays
        /// the role of the middle row.
        matches: [u64; 3],
    },
}

impl PaymentSelector {
    /// Customer ids this selector touches (1 or 3).
    #[must_use]
    pub fn touched(&self) -> &[u64] {
        match self {
            PaymentSelector::ById { customer } => std::slice::from_ref(customer),
            PaymentSelector::ByName { matches } => matches,
        }
    }

    /// The customer that ends up selected/updated.
    #[must_use]
    pub fn chosen(&self) -> u64 {
        match self {
            PaymentSelector::ById { customer } => *customer,
            PaymentSelector::ByName { matches } => matches[1],
        }
    }
}

/// Fully-generated transaction input.
#[derive(Debug, Clone, PartialEq)]
pub enum TxInput {
    /// New-Order input (§2.2).
    NewOrder {
        /// Terminal's (home) warehouse.
        warehouse: u64,
        /// Terminal's district.
        district: u64,
        /// Ordering customer (0-based within district).
        customer: u64,
        /// The ordered items.
        items: Vec<ItemOrder>,
    },
    /// Payment input (§2.2).
    Payment {
        /// Warehouse the payment is made through.
        warehouse: u64,
        /// District the payment is made through.
        district: u64,
        /// Customer's home warehouse (≠ `warehouse` for 15%).
        customer_warehouse: u64,
        /// Customer's home district.
        customer_district: u64,
        /// Customer selection.
        selector: PaymentSelector,
    },
    /// Order-Status input.
    OrderStatus {
        /// Customer's warehouse.
        warehouse: u64,
        /// Customer's district.
        district: u64,
        /// Customer selection.
        selector: PaymentSelector,
    },
    /// Delivery input: one warehouse, all ten districts processed.
    Delivery {
        /// Target warehouse.
        warehouse: u64,
    },
    /// Stock-Level input.
    StockLevel {
        /// Target warehouse.
        warehouse: u64,
        /// Target district.
        district: u64,
        /// Stock-quantity threshold (uniform 10–20 per the spec).
        threshold: u64,
    },
}

impl TxInput {
    /// The transaction type of this input.
    #[must_use]
    pub fn tx_type(&self) -> TxType {
        match self {
            TxInput::NewOrder { .. } => TxType::NewOrder,
            TxInput::Payment { .. } => TxType::Payment,
            TxInput::OrderStatus { .. } => TxType::OrderStatus,
            TxInput::Delivery { .. } => TxType::Delivery,
            TxInput::StockLevel { .. } => TxType::StockLevel,
        }
    }
}

/// Generates transaction inputs according to an [`InputConfig`].
#[derive(Debug, Clone)]
pub struct InputGenerator {
    config: InputConfig,
    customer_nu: NuRand,
    item_nu: NuRand,
    name_bands: [NuRand; 3],
}

impl InputGenerator {
    /// Creates a generator.
    #[must_use]
    pub fn new(config: InputConfig) -> Self {
        let flatten = |nu: NuRand| {
            if config.uniform_access {
                NuRand::new(0, nu.x, nu.y)
            } else {
                nu
            }
        };
        Self {
            config,
            customer_nu: flatten(NuRand::customer_id()),
            item_nu: flatten(NuRand::item_id()),
            name_bands: [
                flatten(NuRand::customer_name_band(0)),
                flatten(NuRand::customer_name_band(1)),
                flatten(NuRand::customer_name_band(2)),
            ],
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &InputConfig {
        &self.config
    }

    /// Generates an input for the given transaction type.
    pub fn generate(&self, tx: TxType, rng: &mut Xoshiro256) -> TxInput {
        match tx {
            TxType::NewOrder => self.new_order(rng),
            TxType::Payment => self.payment(rng),
            TxType::OrderStatus => self.order_status(rng),
            TxType::Delivery => TxInput::Delivery {
                warehouse: self.uniform_warehouse(rng),
            },
            TxType::StockLevel => TxInput::StockLevel {
                warehouse: self.uniform_warehouse(rng),
                district: self.uniform_district(rng),
                threshold: rng.uniform_inclusive(10, 20),
            },
        }
    }

    fn new_order(&self, rng: &mut Xoshiro256) -> TxInput {
        let warehouse = self.uniform_warehouse(rng);
        let n_items = self.config.items_per_order.sample(rng);
        let items = (0..n_items)
            .map(|_| ItemOrder {
                item: self.item_nu.sample(rng) - 1,
                supply_warehouse: self.maybe_remote(warehouse, self.config.remote_stock_prob, rng),
            })
            .collect();
        TxInput::NewOrder {
            warehouse,
            district: self.uniform_district(rng),
            customer: self.customer_nu.sample(rng) - 1,
            items,
        }
    }

    fn payment(&self, rng: &mut Xoshiro256) -> TxInput {
        let warehouse = self.uniform_warehouse(rng);
        let district = self.uniform_district(rng);
        let customer_warehouse = self.maybe_remote(warehouse, self.config.remote_payment_prob, rng);
        let customer_district = if customer_warehouse == warehouse {
            district
        } else {
            self.uniform_district(rng)
        };
        TxInput::Payment {
            warehouse,
            district,
            customer_warehouse,
            customer_district,
            selector: self.selector(rng),
        }
    }

    fn order_status(&self, rng: &mut Xoshiro256) -> TxInput {
        TxInput::OrderStatus {
            warehouse: self.uniform_warehouse(rng),
            district: self.uniform_district(rng),
            selector: self.selector(rng),
        }
    }

    /// By-id (40%) or by-name (60%) customer selection.
    fn selector(&self, rng: &mut Xoshiro256) -> PaymentSelector {
        if rng.chance(self.config.by_name_prob) {
            let band = &self.name_bands[rng.uniform_inclusive(0, 2) as usize];
            PaymentSelector::ByName {
                matches: [
                    band.sample(rng) - 1,
                    band.sample(rng) - 1,
                    band.sample(rng) - 1,
                ],
            }
        } else {
            PaymentSelector::ById {
                customer: self.customer_nu.sample(rng) - 1,
            }
        }
    }

    fn uniform_warehouse(&self, rng: &mut Xoshiro256) -> u64 {
        rng.uniform_inclusive(0, self.config.warehouses - 1)
    }

    fn uniform_district(&self, rng: &mut Xoshiro256) -> u64 {
        rng.uniform_inclusive(0, DISTRICTS_PER_WAREHOUSE - 1)
    }

    /// With probability `prob`, a uniformly chosen warehouse other than
    /// `home` (or `home` itself when W = 1).
    fn maybe_remote(&self, home: u64, prob: f64, rng: &mut Xoshiro256) -> u64 {
        if self.config.warehouses > 1 && rng.chance(prob) {
            let other = rng.uniform_inclusive(0, self.config.warehouses - 2);
            if other >= home {
                other + 1
            } else {
                other
            }
        } else {
            home
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpcc_schema::relation::CUSTOMERS_PER_DISTRICT;

    fn generator(w: u64) -> InputGenerator {
        InputGenerator::new(InputConfig::paper_default(w))
    }

    #[test]
    fn new_order_shape() {
        let g = generator(20);
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..1000 {
            let TxInput::NewOrder {
                warehouse,
                district,
                customer,
                items,
            } = g.generate(TxType::NewOrder, &mut rng)
            else {
                panic!("wrong variant");
            };
            assert!(warehouse < 20);
            assert!(district < 10);
            assert!(customer < CUSTOMERS_PER_DISTRICT);
            assert_eq!(items.len(), 10);
            for it in &items {
                assert!(it.item < 100_000);
                assert!(it.supply_warehouse < 20);
            }
        }
    }

    #[test]
    fn remote_stock_probability_matches() {
        let g = generator(20);
        let mut rng = Xoshiro256::seed_from_u64(2);
        let mut remote = 0u64;
        let mut total = 0u64;
        for _ in 0..20_000 {
            if let TxInput::NewOrder {
                warehouse, items, ..
            } = g.generate(TxType::NewOrder, &mut rng)
            {
                total += items.len() as u64;
                remote += items
                    .iter()
                    .filter(|i| i.supply_warehouse != warehouse)
                    .count() as u64;
            }
        }
        let p = remote as f64 / total as f64;
        assert!((p - 0.01).abs() < 0.003, "remote stock p = {p}");
    }

    #[test]
    fn payment_remote_and_by_name_probabilities() {
        let g = generator(10);
        let mut rng = Xoshiro256::seed_from_u64(3);
        let (mut remote, mut by_name) = (0u64, 0u64);
        let n = 50_000;
        for _ in 0..n {
            if let TxInput::Payment {
                warehouse,
                customer_warehouse,
                selector,
                ..
            } = g.generate(TxType::Payment, &mut rng)
            {
                if customer_warehouse != warehouse {
                    remote += 1;
                }
                if matches!(selector, PaymentSelector::ByName { .. }) {
                    by_name += 1;
                }
            }
        }
        assert!((remote as f64 / n as f64 - 0.15).abs() < 0.01);
        assert!((by_name as f64 / n as f64 - 0.60).abs() < 0.01);
    }

    #[test]
    fn by_name_matches_share_a_band() {
        let g = generator(5);
        let mut rng = Xoshiro256::seed_from_u64(4);
        for _ in 0..5000 {
            if let TxInput::OrderStatus {
                selector: PaymentSelector::ByName { matches },
                ..
            } = g.generate(TxType::OrderStatus, &mut rng)
            {
                let band = matches[0] / 1000;
                assert!(matches.iter().all(|&m| m / 1000 == band), "{matches:?}");
            }
        }
    }

    #[test]
    fn single_warehouse_never_remote() {
        let g = generator(1);
        let mut rng = Xoshiro256::seed_from_u64(5);
        for _ in 0..2000 {
            if let TxInput::NewOrder {
                warehouse, items, ..
            } = g.generate(TxType::NewOrder, &mut rng)
            {
                assert!(items.iter().all(|i| i.supply_warehouse == warehouse));
            }
        }
    }

    #[test]
    fn stock_level_threshold_in_spec_range() {
        let g = generator(3);
        let mut rng = Xoshiro256::seed_from_u64(6);
        for _ in 0..2000 {
            if let TxInput::StockLevel { threshold, .. } = g.generate(TxType::StockLevel, &mut rng)
            {
                assert!((10..=20).contains(&threshold));
            }
        }
    }

    #[test]
    fn uniform_access_flattens_item_distribution() {
        let g = InputGenerator::new(InputConfig::paper_default(1).uniform());
        let mut rng = Xoshiro256::seed_from_u64(31);
        // under NURand, items with all-ones low bits dominate; uniform
        // access should give every id roughly equal mass
        let mut hot = 0u64;
        let mut n = 0u64;
        for _ in 0..5000 {
            if let TxInput::NewOrder { items, .. } = g.generate(TxType::NewOrder, &mut rng) {
                for it in items {
                    n += 1;
                    // 1-based id 8192 is the NURand mode; 0-based 8191
                    if it.item == 8191 {
                        hot += 1;
                    }
                }
            }
        }
        // uniform: P = 1e-5, expect ~0.5 hits in 50k draws; NURand
        // would give ~60x that
        assert!(hot <= 5, "mode id drawn {hot} times out of {n}");
    }

    #[test]
    fn uniform_items_per_order() {
        let mut cfg = InputConfig::paper_default(2);
        cfg.items_per_order = ItemsPerOrder::Uniform(5, 15);
        let g = InputGenerator::new(cfg);
        let mut rng = Xoshiro256::seed_from_u64(7);
        let mut sum = 0u64;
        let n = 20_000;
        for _ in 0..n {
            if let TxInput::NewOrder { items, .. } = g.generate(TxType::NewOrder, &mut rng) {
                assert!((5..=15).contains(&(items.len() as u64)));
                sum += items.len() as u64;
            }
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean items {mean}");
    }
}
