//! Analytic call and access counts: the paper's Table 2 ("Summary of
//! Transactions") and Table 3 ("Summary of Relation Accesses"), derived
//! from the transaction definitions of §2.2 rather than hard-coded.
//!
//! Known paper quirks, reproduced faithfully by the comparison columns:
//! Table 2 prints 11.4 selects for Order Status while its own Table 4
//! uses 13.2 (= 2.2 customer + 1 order + 10 order-line rows); Table 3's
//! "Average" column is inconsistent with the stated mix for some
//! relations. We always *derive* our numbers and expose the paper's
//! printed constants separately.

use crate::mix::{TransactionMix, TxType};
use tpcc_schema::relation::Relation;

/// Workload knobs the counts depend on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CallConfig {
    /// Mean items per New-Order (paper: 10).
    pub items_per_order: f64,
    /// Probability of by-name customer selection (0.6).
    pub by_name_prob: f64,
    /// Average rows matching a by-name select (3).
    pub name_matches: f64,
    /// Orders scanned by Stock-Level (20).
    pub stock_level_orders: f64,
}

impl CallConfig {
    /// The paper's parameter values.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            items_per_order: 10.0,
            by_name_prob: 0.6,
            name_matches: 3.0,
            stock_level_orders: 20.0,
        }
    }

    /// Expected customer-tuple selects for Payment/Order-Status:
    /// `0.4 × 1 + 0.6 × 3 = 2.2`.
    #[must_use]
    pub fn customer_selects(&self) -> f64 {
        (1.0 - self.by_name_prob) + self.by_name_prob * self.name_matches
    }
}

impl Default for CallConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Expected SQL calls per transaction (Table 2 columns 4–9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CallProfile {
    /// Unique-key selects.
    pub selects: f64,
    /// Updates.
    pub updates: f64,
    /// Inserts.
    pub inserts: f64,
    /// Deletes.
    pub deletes: f64,
    /// Non-unique (by-name) select events.
    pub non_unique_selects: f64,
    /// Joins.
    pub joins: f64,
}

impl CallProfile {
    /// Derives the profile for a transaction type.
    #[must_use]
    pub fn for_tx(tx: TxType, cfg: &CallConfig) -> Self {
        let m = cfg.items_per_order;
        match tx {
            TxType::NewOrder => Self {
                selects: 3.0 + 2.0 * m,
                updates: 1.0 + m,
                inserts: 2.0 + m,
                deletes: 0.0,
                non_unique_selects: 0.0,
                joins: 0.0,
            },
            TxType::Payment => Self {
                selects: 2.0 + cfg.customer_selects(),
                updates: 3.0,
                inserts: 1.0,
                deletes: 0.0,
                non_unique_selects: cfg.by_name_prob,
                joins: 0.0,
            },
            TxType::OrderStatus => Self {
                selects: cfg.customer_selects() + 1.0 + m,
                updates: 0.0,
                inserts: 0.0,
                deletes: 0.0,
                non_unique_selects: cfg.by_name_prob,
                joins: 0.0,
            },
            TxType::Delivery => Self {
                selects: 10.0 * (3.0 + m),
                updates: 10.0 * (2.0 + m),
                inserts: 0.0,
                deletes: 10.0,
                non_unique_selects: 0.0,
                joins: 0.0,
            },
            TxType::StockLevel => Self {
                selects: 1.0,
                updates: 0.0,
                inserts: 0.0,
                deletes: 0.0,
                non_unique_selects: 0.0,
                joins: 1.0,
            },
        }
    }

    /// Total SQL calls (all six kinds).
    #[must_use]
    pub fn total_calls(&self) -> f64 {
        self.selects
            + self.updates
            + self.inserts
            + self.deletes
            + self.non_unique_selects
            + self.joins
    }
}

/// How a transaction selects tuples from a relation (Table 3 notation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessClass {
    /// `U(x)`: uniformly random tuples.
    Uniform,
    /// `NU(x)`: NURand-distributed tuples.
    NuRand,
    /// `A(x)`: appended tuples.
    Append,
    /// `P(x)`: tuples selected by recent past behaviour (temporal
    /// locality from earlier New-Order transactions).
    Past,
}

impl AccessClass {
    /// Table 3's one-letter prefix.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            AccessClass::Uniform => "U",
            AccessClass::NuRand => "NU",
            AccessClass::Append => "A",
            AccessClass::Past => "P",
        }
    }
}

/// One Table 3 cell: how many tuples, selected how.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelationAccess {
    /// Selection pattern.
    pub class: AccessClass,
    /// Expected tuples touched per transaction of this type.
    pub count: f64,
}

/// Derives Table 3: per-transaction, per-relation tuple access counts.
#[derive(Debug, Clone, Copy)]
pub struct RelationAccessProfile {
    cfg: CallConfig,
}

impl RelationAccessProfile {
    /// Profile under the given knobs.
    #[must_use]
    pub fn new(cfg: CallConfig) -> Self {
        Self { cfg }
    }

    /// The Table 3 cell for `(tx, relation)`, or `None` when that
    /// transaction never touches the relation.
    #[must_use]
    pub fn access(&self, tx: TxType, relation: Relation) -> Option<RelationAccess> {
        use AccessClass::{Append, NuRand, Past, Uniform};
        let m = self.cfg.items_per_order;
        let cell = |class, count| Some(RelationAccess { class, count });
        match (tx, relation) {
            (TxType::NewOrder, Relation::Warehouse) => cell(Uniform, 1.0),
            (TxType::NewOrder, Relation::District) => cell(Uniform, 1.0),
            (TxType::NewOrder, Relation::Customer) => cell(NuRand, 1.0),
            (TxType::NewOrder, Relation::Stock) => cell(NuRand, m),
            (TxType::NewOrder, Relation::Item) => cell(NuRand, m),
            (TxType::NewOrder, Relation::Order) => cell(Append, 1.0),
            (TxType::NewOrder, Relation::NewOrder) => cell(Append, 1.0),
            (TxType::NewOrder, Relation::OrderLine) => cell(Append, m),

            (TxType::Payment, Relation::Warehouse) => cell(Uniform, 1.0),
            (TxType::Payment, Relation::District) => cell(Uniform, 1.0),
            (TxType::Payment, Relation::Customer) => cell(NuRand, self.cfg.customer_selects()),
            (TxType::Payment, Relation::History) => cell(Append, 1.0),

            (TxType::OrderStatus, Relation::Customer) => cell(NuRand, self.cfg.customer_selects()),
            (TxType::OrderStatus, Relation::Order) => cell(Past, 1.0),
            (TxType::OrderStatus, Relation::OrderLine) => cell(Past, m),

            (TxType::Delivery, Relation::Customer) => cell(Past, 10.0),
            (TxType::Delivery, Relation::Order) => cell(Past, 10.0),
            (TxType::Delivery, Relation::NewOrder) => cell(Past, 10.0),
            (TxType::Delivery, Relation::OrderLine) => cell(Past, 10.0 * m),

            (TxType::StockLevel, Relation::District) => cell(Uniform, 1.0),
            (TxType::StockLevel, Relation::OrderLine) => {
                cell(Past, self.cfg.stock_level_orders * m)
            }
            (TxType::StockLevel, Relation::Stock) => cell(Past, self.cfg.stock_level_orders * m),

            _ => None,
        }
    }

    /// Mix-weighted average tuple accesses per transaction to a relation
    /// (Table 3's final column, derived from first principles).
    #[must_use]
    pub fn average(&self, mix: &TransactionMix, relation: Relation) -> f64 {
        TxType::ALL
            .iter()
            .map(|&tx| mix.fraction(tx) * self.access(tx, relation).map_or(0.0, |a| a.count))
            .sum()
    }
}

/// The averages as printed in the paper's Table 3 (for side-by-side
/// comparison; several entries disagree with the mix-weighted values).
#[must_use]
pub fn paper_table3_averages() -> [(Relation, f64); 9] {
    [
        (Relation::Warehouse, 0.87),
        (Relation::District, 0.93),
        (Relation::Customer, 1.524),
        (Relation::Stock, 12.4),
        (Relation::Item, 4.4),
        (Relation::Order, 0.53),
        (Relation::NewOrder, 0.49),
        (Relation::OrderLine, 13.3),
        (Relation::History, 0.43),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> RelationAccessProfile {
        RelationAccessProfile::new(CallConfig::paper_default())
    }

    #[test]
    fn table2_new_order_row() {
        let p = CallProfile::for_tx(TxType::NewOrder, &CallConfig::paper_default());
        assert_eq!(p.selects, 23.0);
        assert_eq!(p.updates, 11.0);
        assert_eq!(p.inserts, 12.0);
        assert_eq!(p.deletes, 0.0);
    }

    #[test]
    fn table2_payment_row() {
        let p = CallProfile::for_tx(TxType::Payment, &CallConfig::paper_default());
        assert!((p.selects - 4.2).abs() < 1e-12);
        assert_eq!(p.updates, 3.0);
        assert_eq!(p.inserts, 1.0);
        assert!((p.non_unique_selects - 0.6).abs() < 1e-12);
    }

    #[test]
    fn table2_delivery_row() {
        let p = CallProfile::for_tx(TxType::Delivery, &CallConfig::paper_default());
        assert_eq!(p.selects, 130.0);
        assert_eq!(p.updates, 120.0);
        assert_eq!(p.deletes, 10.0);
    }

    #[test]
    fn table2_stock_level_row() {
        let p = CallProfile::for_tx(TxType::StockLevel, &CallConfig::paper_default());
        assert_eq!(p.selects, 1.0);
        assert_eq!(p.joins, 1.0);
    }

    #[test]
    fn order_status_selects_match_table4_not_table2() {
        // Table 4's CPU-select visit count for Order Status is 13.2; the
        // printed Table 2 value of 11.4 is inconsistent with §2.2.
        let p = CallProfile::for_tx(TxType::OrderStatus, &CallConfig::paper_default());
        assert!((p.selects - 13.2).abs() < 1e-12);
    }

    #[test]
    fn table3_cells_match_paper_notation() {
        let p = profile();
        let stock_no = p.access(TxType::NewOrder, Relation::Stock).expect("cell");
        assert_eq!(stock_no.class, AccessClass::NuRand);
        assert_eq!(stock_no.count, 10.0);
        let sl = p.access(TxType::StockLevel, Relation::Stock).expect("cell");
        assert_eq!(sl.class, AccessClass::Past);
        assert_eq!(sl.count, 200.0);
        assert!(p.access(TxType::StockLevel, Relation::Warehouse).is_none());
        let pay_cust = p.access(TxType::Payment, Relation::Customer).expect("cell");
        assert!((pay_cust.count - 2.2).abs() < 1e-12);
    }

    #[test]
    fn warehouse_average_matches_paper() {
        // 0.43 + 0.44 = 0.87 — one of the rows where the paper's average
        // agrees with the mix-weighted derivation.
        let avg = profile().average(&TransactionMix::paper_default(), Relation::Warehouse);
        assert!((avg - 0.87).abs() < 1e-9);
    }

    #[test]
    fn stock_average_near_paper() {
        // 0.43·10 + 0.04·200 = 12.3 (paper prints 12.4)
        let avg = profile().average(&TransactionMix::paper_default(), Relation::Stock);
        assert!((avg - 12.3).abs() < 1e-9);
    }

    #[test]
    fn history_average_matches_payment_share() {
        let avg = profile().average(&TransactionMix::paper_default(), Relation::History);
        assert!((avg - 0.44).abs() < 1e-9);
    }
}
