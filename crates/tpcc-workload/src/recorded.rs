//! Compact binary recording and replay of page-reference traces.
//!
//! Generating the trace costs NURand sampling and state upkeep; the
//! buffer engines only need the reference stream. Recording lets one
//! generation feed many consumers (every replacement policy, many
//! buffer sizes, external tools) and makes runs archivable: a recorded
//! trace replays bit-identically forever.
//!
//! Format (little-endian):
//!
//! ```text
//! magic "TPCCTRC1" (8 bytes)
//! per transaction:
//!   u8  transaction type (0..5)
//!   u16 reference count
//!   per reference: u64 = (page-id raw << 1) | write-bit
//! ```

use crate::mix::TxType;
use crate::trace::{PageId, PageRef, TraceGenerator};

const MAGIC: &[u8; 8] = b"TPCCTRC1";

/// Errors replaying a recorded trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The buffer does not start with the format magic.
    BadMagic,
    /// The stream ended mid-record.
    Truncated,
    /// An unknown transaction-type tag.
    BadTxType(u8),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::BadMagic => write!(f, "not a TPCCTRC1 trace"),
            ReplayError::Truncated => write!(f, "trace truncated mid-record"),
            ReplayError::BadTxType(t) => write!(f, "unknown transaction type tag {t}"),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Accumulates transactions into the binary format.
#[derive(Debug)]
pub struct TraceRecorder {
    buf: Vec<u8>,
    transactions: u64,
}

impl TraceRecorder {
    /// Empty recorder.
    #[must_use]
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(1 << 20);
        buf.extend_from_slice(MAGIC);
        Self {
            buf,
            transactions: 0,
        }
    }

    /// Appends one transaction's references.
    ///
    /// # Panics
    /// Panics on more than `u16::MAX` references (no TPC-C transaction
    /// comes anywhere near).
    pub fn record(&mut self, tx: TxType, refs: &[PageRef]) {
        self.buf.push(tx.index() as u8);
        self.buf.extend_from_slice(
            &u16::try_from(refs.len())
                .expect("transaction fits u16 refs")
                .to_le_bytes(),
        );
        for r in refs {
            debug_assert!(r.page.raw() < (1 << 63));
            self.buf
                .extend_from_slice(&((r.page.raw() << 1) | u64::from(r.write)).to_le_bytes());
        }
        self.transactions += 1;
    }

    /// Transactions recorded so far.
    #[must_use]
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Finishes and returns the immutable buffer.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Convenience: generate-and-record `transactions` transactions
    /// from a live generator.
    #[must_use]
    pub fn capture(gen: &mut TraceGenerator, transactions: u64) -> Vec<u8> {
        let mut rec = Self::new();
        let mut refs = Vec::with_capacity(512);
        for _ in 0..transactions {
            let tx = gen.next_transaction(&mut refs);
            rec.record(tx, &refs);
        }
        rec.finish()
    }
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

/// Replays a recorded trace.
#[derive(Debug, Clone)]
pub struct TraceReplay {
    data: Vec<u8>,
}

impl TraceReplay {
    /// Validates the header and wraps the buffer.
    pub fn new(data: Vec<u8>) -> Result<Self, ReplayError> {
        if data.len() < MAGIC.len() || &data[..MAGIC.len()] != MAGIC {
            return Err(ReplayError::BadMagic);
        }
        Ok(Self { data })
    }

    /// Streams every transaction to `visit`; fails fast on corruption.
    pub fn for_each(&self, mut visit: impl FnMut(TxType, &[PageRef])) -> Result<u64, ReplayError> {
        let mut cur = &self.data[MAGIC.len()..];
        let mut refs: Vec<PageRef> = Vec::with_capacity(512);
        let mut transactions = 0;
        while !cur.is_empty() {
            if cur.len() < 3 {
                return Err(ReplayError::Truncated);
            }
            let tag = cur[0];
            let tx = *TxType::ALL
                .get(tag as usize)
                .ok_or(ReplayError::BadTxType(tag))?;
            let n = u16::from_le_bytes([cur[1], cur[2]]) as usize;
            cur = &cur[3..];
            if cur.len() < n * 8 {
                return Err(ReplayError::Truncated);
            }
            refs.clear();
            for chunk in cur[..n * 8].chunks_exact(8) {
                let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
                refs.push(PageRef {
                    page: PageId::from_raw(word >> 1),
                    write: word & 1 == 1,
                });
            }
            cur = &cur[n * 8..];
            visit(tx, &refs);
            transactions += 1;
        }
        Ok(transactions)
    }

    /// Size of the recording in bytes.
    #[must_use]
    pub fn len_bytes(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceConfig;
    use tpcc_schema::packing::Packing;

    fn generator(seed: u64) -> TraceGenerator {
        let mut cfg = TraceConfig::paper_default(1, Packing::Sequential);
        cfg.initial_orders_per_district = 50;
        cfg.initial_pending_per_district = 20;
        TraceGenerator::new(cfg, None, seed)
    }

    #[test]
    fn capture_and_replay_round_trips() {
        let recorded = TraceRecorder::capture(&mut generator(5), 500);
        // regenerate the same trace live for comparison
        let mut gen = generator(5);
        let mut live_refs = Vec::new();
        let replay = TraceReplay::new(recorded).expect("valid header");
        let mut mismatches = 0;
        let n = replay
            .for_each(|tx, refs| {
                let live_tx = gen.next_transaction(&mut live_refs);
                if live_tx != tx || live_refs.as_slice() != refs {
                    mismatches += 1;
                }
            })
            .expect("replay succeeds");
        assert_eq!(n, 500);
        assert_eq!(
            mismatches, 0,
            "replay must be bit-identical to the generator"
        );
    }

    #[test]
    fn replay_preserves_write_flags() {
        let recorded = TraceRecorder::capture(&mut generator(6), 50);
        let replay = TraceReplay::new(recorded).expect("valid header");
        let mut writes = 0u64;
        let mut reads = 0u64;
        replay
            .for_each(|_, refs| {
                for r in refs {
                    if r.write {
                        writes += 1;
                    } else {
                        reads += 1;
                    }
                }
            })
            .expect("replay succeeds");
        assert!(writes > 0 && reads > 0);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            TraceReplay::new(b"NOTATRACE".to_vec()).err(),
            Some(ReplayError::BadMagic)
        );
    }

    #[test]
    fn truncation_detected() {
        let recorded = TraceRecorder::capture(&mut generator(7), 10);
        let cut = recorded[..recorded.len() - 3].to_vec();
        let replay = TraceReplay::new(cut).expect("header intact");
        let result = replay.for_each(|_, _| {});
        assert_eq!(result, Err(ReplayError::Truncated));
    }

    #[test]
    fn bad_tx_type_detected() {
        let mut raw = MAGIC.to_vec();
        raw.push(9); // invalid tag
        raw.extend_from_slice(&0u16.to_le_bytes());
        let replay = TraceReplay::new(raw).expect("header intact");
        assert_eq!(replay.for_each(|_, _| {}), Err(ReplayError::BadTxType(9)));
    }

    #[test]
    fn recording_is_compact() {
        let recorded = TraceRecorder::capture(&mut generator(8), 1000);
        // ~50 mix-average refs/txn × 8 bytes + 3-byte header ≈ 420 B/txn
        let per_txn = recorded.len() as f64 / 1000.0;
        assert!(per_txn < 600.0, "bytes per transaction: {per_txn}");
    }
}
