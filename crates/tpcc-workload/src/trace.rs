//! Page-reference trace generation (paper §4).
//!
//! Transactions enter sequentially; each one turns its database calls
//! (§2.2) into an ordered list of page references against the physical
//! layout chosen by the [`Packing`] strategy. The stream of references
//! drives the LRU buffer simulators in `tpcc-buffer`.

use crate::input::{InputConfig, InputGenerator, PaymentSelector, TxInput};
use crate::mix::{TransactionMix, TxType};
use crate::state::WorkloadState;
use tpcc_rand::{Pmf, Xoshiro256};
use tpcc_schema::keys::{CustomerKey, DistrictKey, StockKey, WarehouseKey};
use tpcc_schema::packing::{Packing, RelationLayout};
use tpcc_schema::relation::{PageSize, Relation, SchemaConfig};

/// A page identifier unique across all nine relations: the relation tag
/// lives in the top bits, the per-relation page index in the low 48.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(u64);

impl PageId {
    const PAGE_BITS: u32 = 48;

    /// Composes a page id.
    ///
    /// # Panics
    /// Panics if `page >= 2^48`.
    #[must_use]
    pub fn new(relation: Relation, page: u64) -> Self {
        assert!(page < (1 << Self::PAGE_BITS), "page index too large");
        let tag = Relation::ALL
            .iter()
            .position(|&r| r == relation)
            .expect("relation in catalogue") as u64;
        Self((tag << Self::PAGE_BITS) | page)
    }

    /// The relation this page belongs to.
    #[must_use]
    pub fn relation(self) -> Relation {
        Relation::ALL[(self.0 >> Self::PAGE_BITS) as usize]
    }

    /// Page index within the relation.
    #[must_use]
    pub fn page(self) -> u64 {
        self.0 & ((1 << Self::PAGE_BITS) - 1)
    }

    /// Raw 64-bit value (hash-map key).
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs a page id from [`PageId::raw`].
    ///
    /// # Panics
    /// Panics if the relation tag is invalid.
    #[must_use]
    pub fn from_raw(raw: u64) -> Self {
        assert!(
            ((raw >> Self::PAGE_BITS) as usize) < Relation::ALL.len(),
            "invalid relation tag in raw page id"
        );
        Self(raw)
    }
}

/// One page reference in a transaction's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageRef {
    /// Which page.
    pub page: PageId,
    /// Whether the access dirties the page.
    pub write: bool,
}

impl PageRef {
    fn read(page: PageId) -> Self {
        Self { page, write: false }
    }

    fn write(page: PageId) -> Self {
        Self { page, write: true }
    }
}

/// Full configuration of a trace run.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Scale and page size.
    pub schema: SchemaConfig,
    /// Input-value distributions.
    pub input: InputConfig,
    /// Transaction mix.
    pub mix: TransactionMix,
    /// Tuple→page placement for the static relations.
    pub packing: Packing,
    /// Orders pre-loaded per district (spec: 3000). Fills the last-order
    /// map and the per-district recent-order rings.
    pub initial_orders_per_district: u64,
    /// Of those, how many start undelivered. The spec loads 900, but
    /// with the paper's 5% Delivery mix the queue drains towards a small
    /// steady state; a smaller backlog merely shortens warm-up.
    pub initial_pending_per_district: u64,
}

impl TraceConfig {
    /// The paper's configuration at a given warehouse count.
    #[must_use]
    pub fn paper_default(warehouses: u64, packing: Packing) -> Self {
        Self {
            schema: SchemaConfig::new(warehouses, PageSize::K4),
            input: InputConfig::paper_default(warehouses),
            mix: TransactionMix::paper_default(),
            packing,
            initial_orders_per_district: 3000,
            initial_pending_per_district: 100,
        }
    }
}

struct StaticLayouts {
    warehouse: RelationLayout,
    district: RelationLayout,
    customer: RelationLayout,
    stock: RelationLayout,
    item: RelationLayout,
}

/// Generates the per-transaction page-reference stream.
///
/// ```
/// use tpcc_schema::packing::Packing;
/// use tpcc_workload::{TraceConfig, TraceGenerator};
///
/// let mut cfg = TraceConfig::paper_default(1, Packing::Sequential);
/// cfg.initial_orders_per_district = 50;
/// cfg.initial_pending_per_district = 10;
/// let mut gen = TraceGenerator::new(cfg, None, 42);
/// let mut refs = Vec::new();
/// let tx = gen.next_transaction(&mut refs);
/// assert!(!refs.is_empty());
/// let _ = tx;
/// ```
pub struct TraceGenerator {
    config: TraceConfig,
    input_gen: InputGenerator,
    state: WorkloadState,
    rng: Xoshiro256,
    layouts: StaticLayouts,
}

impl TraceGenerator {
    /// Builds a generator and pre-populates the workload state.
    ///
    /// `item_pmf` is the `NU(8191, 1, 100000)` distribution used to rank
    /// item/stock hotness; it is required only for
    /// [`Packing::HotnessSorted`] (pass the exact enumeration for
    /// paper-faithful runs, or a Monte-Carlo estimate for quick ones).
    ///
    /// # Panics
    /// Panics if `config.packing` is hotness-sorted and `item_pmf` is
    /// `None`, or if the schema and input warehouse counts disagree.
    #[must_use]
    pub fn new(config: TraceConfig, item_pmf: Option<&Pmf>, seed: u64) -> Self {
        assert_eq!(
            config.schema.warehouses, config.input.warehouses,
            "schema and input warehouse counts must match"
        );
        let ps = config.schema.page_size;
        let layouts = match config.packing {
            Packing::Sequential => {
                let uniform = Pmf::uniform(1, 1); // ignored by sequential layouts
                StaticLayouts {
                    warehouse: RelationLayout::for_static(
                        Relation::Warehouse,
                        Packing::Sequential,
                        ps,
                        &uniform,
                    ),
                    district: RelationLayout::for_static(
                        Relation::District,
                        Packing::Sequential,
                        ps,
                        &uniform,
                    ),
                    customer: RelationLayout::for_static(
                        Relation::Customer,
                        Packing::Sequential,
                        ps,
                        &uniform,
                    ),
                    stock: RelationLayout::for_static(
                        Relation::Stock,
                        Packing::Sequential,
                        ps,
                        &uniform,
                    ),
                    item: RelationLayout::for_static(
                        Relation::Item,
                        Packing::Sequential,
                        ps,
                        &uniform,
                    ),
                }
            }
            Packing::HotnessSorted => {
                let pmf = item_pmf.expect("hotness-sorted packing requires the item NURand PMF");
                StaticLayouts {
                    warehouse: RelationLayout::for_static(
                        Relation::Warehouse,
                        Packing::HotnessSorted,
                        ps,
                        pmf,
                    ),
                    district: RelationLayout::for_static(
                        Relation::District,
                        Packing::HotnessSorted,
                        ps,
                        pmf,
                    ),
                    customer: RelationLayout::for_static(
                        Relation::Customer,
                        Packing::HotnessSorted,
                        ps,
                        pmf,
                    ),
                    stock: RelationLayout::for_static(
                        Relation::Stock,
                        Packing::HotnessSorted,
                        ps,
                        pmf,
                    ),
                    item: RelationLayout::for_static(
                        Relation::Item,
                        Packing::HotnessSorted,
                        ps,
                        pmf,
                    ),
                }
            }
        };
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut state = WorkloadState::new(config.schema.warehouses);
        state.populate(
            config.initial_orders_per_district,
            config.initial_pending_per_district,
            10,
            &mut rng,
        );
        Self {
            input_gen: InputGenerator::new(config.input),
            state,
            rng,
            layouts,
            config,
        }
    }

    /// The live workload state (for inspecting queue depths etc.).
    #[must_use]
    pub fn state(&self) -> &WorkloadState {
        &self.state
    }

    /// The trace configuration.
    #[must_use]
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Generates the next transaction's page references into `refs`
    /// (cleared first) and returns its type.
    pub fn next_transaction(&mut self, refs: &mut Vec<PageRef>) -> TxType {
        refs.clear();
        let tx = self.config.mix.sample(&mut self.rng);
        let input = self.input_gen.generate(tx, &mut self.rng);
        self.emit(&input, refs);
        tx
    }

    /// Generates the trace for a specific, externally-supplied input.
    pub fn transaction_refs(&mut self, input: &TxInput, refs: &mut Vec<PageRef>) {
        refs.clear();
        self.emit(input, refs);
    }

    fn emit(&mut self, input: &TxInput, refs: &mut Vec<PageRef>) {
        match input {
            TxInput::NewOrder {
                warehouse,
                district,
                customer,
                items,
            } => self.emit_new_order(*warehouse, *district, *customer, items, refs),
            TxInput::Payment {
                warehouse,
                district,
                customer_warehouse,
                customer_district,
                selector,
            } => self.emit_payment(
                *warehouse,
                *district,
                *customer_warehouse,
                *customer_district,
                selector,
                refs,
            ),
            TxInput::OrderStatus {
                warehouse,
                district,
                selector,
            } => self.emit_order_status(*warehouse, *district, selector, refs),
            TxInput::Delivery { warehouse } => self.emit_delivery(*warehouse, refs),
            TxInput::StockLevel {
                warehouse,
                district,
                ..
            } => self.emit_stock_level(*warehouse, *district, refs),
        }
    }

    fn emit_new_order(
        &mut self,
        warehouse: u64,
        district: u64,
        customer: u64,
        items: &[crate::input::ItemOrder],
        refs: &mut Vec<PageRef>,
    ) {
        refs.push(PageRef::read(self.warehouse_page(warehouse)));
        let district_page = self.district_page(warehouse, district);
        refs.push(PageRef::read(district_page));
        refs.push(PageRef::write(district_page));
        refs.push(PageRef::read(
            self.customer_page(warehouse, district, customer),
        ));
        let item_ids: Vec<u64> = items.iter().map(|i| i.item).collect();
        let placed = self
            .state
            .place_order(warehouse, district, customer, &item_ids);
        refs.push(PageRef::write(
            self.append_page(Relation::Order, placed.order_ordinal),
        ));
        refs.push(PageRef::write(
            self.append_page(Relation::NewOrder, placed.new_order_ordinal),
        ));
        for (k, item) in items.iter().enumerate() {
            refs.push(PageRef::read(self.item_page(item.item)));
            let stock_page = self.stock_page(item.supply_warehouse, item.item);
            refs.push(PageRef::read(stock_page));
            refs.push(PageRef::write(stock_page));
            refs.push(PageRef::write(
                self.append_page(Relation::OrderLine, placed.ol_start + k as u64),
            ));
        }
    }

    fn emit_payment(
        &mut self,
        warehouse: u64,
        district: u64,
        customer_warehouse: u64,
        customer_district: u64,
        selector: &PaymentSelector,
        refs: &mut Vec<PageRef>,
    ) {
        let warehouse_page = self.warehouse_page(warehouse);
        let district_page = self.district_page(warehouse, district);
        refs.push(PageRef::read(warehouse_page));
        refs.push(PageRef::read(district_page));
        for &c in selector.touched() {
            refs.push(PageRef::read(self.customer_page(
                customer_warehouse,
                customer_district,
                c,
            )));
        }
        refs.push(PageRef::write(warehouse_page));
        refs.push(PageRef::write(district_page));
        refs.push(PageRef::write(self.customer_page(
            customer_warehouse,
            customer_district,
            selector.chosen(),
        )));
        let h = self.state.append_history();
        refs.push(PageRef::write(self.append_page(Relation::History, h)));
    }

    fn emit_order_status(
        &mut self,
        warehouse: u64,
        district: u64,
        selector: &PaymentSelector,
        refs: &mut Vec<PageRef>,
    ) {
        for &c in selector.touched() {
            refs.push(PageRef::read(self.customer_page(warehouse, district, c)));
        }
        let chosen = selector.chosen();
        if let Some(last) = self.state.last_order_of(warehouse, district, chosen) {
            refs.push(PageRef::read(
                self.append_page(Relation::Order, last.order_ordinal),
            ));
            for k in 0..u64::from(last.n_items) {
                refs.push(PageRef::read(
                    self.append_page(Relation::OrderLine, last.ol_start + k),
                ));
            }
        }
    }

    fn emit_delivery(&mut self, warehouse: u64, refs: &mut Vec<PageRef>) {
        for district in 0..tpcc_schema::relation::DISTRICTS_PER_WAREHOUSE {
            let Some(order) = self.state.deliver_oldest(warehouse, district) else {
                continue; // nothing pending for this district
            };
            let new_order_page = self.append_page(Relation::NewOrder, order.new_order_ordinal);
            refs.push(PageRef::read(new_order_page)); // min-select
            refs.push(PageRef::write(new_order_page)); // delete
            let order_page = self.append_page(Relation::Order, order.order_ordinal);
            refs.push(PageRef::read(order_page));
            refs.push(PageRef::write(order_page));
            for k in 0..u64::from(order.n_items) {
                let ol_page = self.append_page(Relation::OrderLine, order.ol_start + k);
                refs.push(PageRef::read(ol_page));
                refs.push(PageRef::write(ol_page));
            }
            let customer_page = self.customer_page(warehouse, district, u64::from(order.customer));
            refs.push(PageRef::read(customer_page));
            refs.push(PageRef::write(customer_page));
        }
    }

    fn emit_stock_level(&mut self, warehouse: u64, district: u64, refs: &mut Vec<PageRef>) {
        refs.push(PageRef::read(self.district_page(warehouse, district)));
        // Borrow-friendly copy of the ring (20 × small structs).
        let recent: Vec<_> = self
            .state
            .recent_orders(warehouse, district)
            .iter()
            .copied()
            .collect();
        for order in recent {
            for (k, &item) in order.item_slice().iter().enumerate() {
                refs.push(PageRef::read(
                    self.append_page(Relation::OrderLine, order.ol_start + k as u64),
                ));
                refs.push(PageRef::read(self.stock_page(warehouse, u64::from(item))));
            }
        }
    }

    fn warehouse_page(&self, warehouse: u64) -> PageId {
        PageId::new(
            Relation::Warehouse,
            self.layouts
                .warehouse
                .page_of(WarehouseKey(warehouse).ordinal()),
        )
    }

    fn district_page(&self, warehouse: u64, district: u64) -> PageId {
        PageId::new(
            Relation::District,
            self.layouts
                .district
                .page_of(DistrictKey::new(warehouse, district).ordinal()),
        )
    }

    fn customer_page(&self, warehouse: u64, district: u64, customer: u64) -> PageId {
        PageId::new(
            Relation::Customer,
            self.layouts
                .customer
                .page_of(CustomerKey::new(warehouse, district, customer).ordinal()),
        )
    }

    fn stock_page(&self, warehouse: u64, item: u64) -> PageId {
        PageId::new(
            Relation::Stock,
            self.layouts
                .stock
                .page_of(StockKey::new(warehouse, item).ordinal()),
        )
    }

    fn item_page(&self, item: u64) -> PageId {
        PageId::new(Relation::Item, self.layouts.item.page_of(item))
    }

    fn append_page(&self, relation: Relation, ordinal: u64) -> PageId {
        PageId::new(
            relation,
            RelationLayout::append_page(relation, self.config.schema.page_size, ordinal),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(packing: Packing) -> TraceConfig {
        let mut c = TraceConfig::paper_default(2, packing);
        c.initial_orders_per_district = 50;
        c.initial_pending_per_district = 20;
        c
    }

    fn item_pmf() -> Pmf {
        let mut rng = Xoshiro256::seed_from_u64(99);
        Pmf::monte_carlo(&tpcc_rand::NuRand::item_id(), 300_000, &mut rng)
    }

    #[test]
    fn page_id_round_trips() {
        for &rel in &Relation::ALL {
            let id = PageId::new(rel, 123_456);
            assert_eq!(id.relation(), rel);
            assert_eq!(id.page(), 123_456);
        }
    }

    #[test]
    fn distinct_relations_distinct_pages() {
        let a = PageId::new(Relation::Stock, 7);
        let b = PageId::new(Relation::Customer, 7);
        assert_ne!(a, b);
    }

    #[test]
    fn new_order_trace_shape() {
        let mut gen = TraceGenerator::new(small_config(Packing::Sequential), None, 1);
        let input = TxInput::NewOrder {
            warehouse: 0,
            district: 3,
            customer: 42,
            items: (0..10)
                .map(|i| crate::input::ItemOrder {
                    item: i * 1000,
                    supply_warehouse: 0,
                })
                .collect(),
        };
        let mut refs = Vec::new();
        gen.transaction_refs(&input, &mut refs);
        // 1 wh + 2 dist + 1 cust + 1 order + 1 neworder + 10*(item + 2*stock + ol)
        assert_eq!(refs.len(), 6 + 40);
        let writes = refs.iter().filter(|r| r.write).count();
        // district, order, new-order, 10 stock, 10 order-lines
        assert_eq!(writes, 1 + 2 + 10 + 10);
        assert_eq!(refs[0].page.relation(), Relation::Warehouse);
    }

    #[test]
    fn payment_by_name_touches_three_customers() {
        let mut gen = TraceGenerator::new(small_config(Packing::Sequential), None, 2);
        let input = TxInput::Payment {
            warehouse: 0,
            district: 0,
            customer_warehouse: 0,
            customer_district: 0,
            selector: PaymentSelector::ByName {
                matches: [10, 1500, 2900],
            },
        };
        let mut refs = Vec::new();
        gen.transaction_refs(&input, &mut refs);
        let customer_reads = refs
            .iter()
            .filter(|r| r.page.relation() == Relation::Customer && !r.write)
            .count();
        assert_eq!(customer_reads, 3);
        let history_writes = refs
            .iter()
            .filter(|r| r.page.relation() == Relation::History && r.write)
            .count();
        assert_eq!(history_writes, 1);
    }

    #[test]
    fn order_status_reads_last_order_lines() {
        let mut gen = TraceGenerator::new(small_config(Packing::Sequential), None, 3);
        // place a known order first
        let place = TxInput::NewOrder {
            warehouse: 1,
            district: 2,
            customer: 7,
            items: (0..10)
                .map(|i| crate::input::ItemOrder {
                    item: i,
                    supply_warehouse: 1,
                })
                .collect(),
        };
        let mut refs = Vec::new();
        gen.transaction_refs(&place, &mut refs);
        let status = TxInput::OrderStatus {
            warehouse: 1,
            district: 2,
            selector: PaymentSelector::ById { customer: 7 },
        };
        gen.transaction_refs(&status, &mut refs);
        let ol_reads = refs
            .iter()
            .filter(|r| r.page.relation() == Relation::OrderLine)
            .count();
        assert!(ol_reads >= 1, "order-lines of the last order are read");
        let order_reads = refs
            .iter()
            .filter(|r| r.page.relation() == Relation::Order)
            .count();
        assert_eq!(order_reads, 1);
    }

    #[test]
    fn delivery_drains_pending_queue() {
        let mut gen = TraceGenerator::new(small_config(Packing::Sequential), None, 4);
        let before = gen.state().total_pending();
        let mut refs = Vec::new();
        gen.transaction_refs(&TxInput::Delivery { warehouse: 0 }, &mut refs);
        let after = gen.state().total_pending();
        assert_eq!(before - after, 10, "one delivery per district");
        let customer_writes = refs
            .iter()
            .filter(|r| r.page.relation() == Relation::Customer && r.write)
            .count();
        assert_eq!(customer_writes, 10);
    }

    #[test]
    fn delivery_on_empty_district_is_noop() {
        let mut cfg = small_config(Packing::Sequential);
        cfg.initial_pending_per_district = 0;
        let mut gen = TraceGenerator::new(cfg, None, 5);
        let mut refs = Vec::new();
        gen.transaction_refs(&TxInput::Delivery { warehouse: 1 }, &mut refs);
        assert!(refs.is_empty());
    }

    #[test]
    fn stock_level_reads_two_hundred_pairs() {
        let mut gen = TraceGenerator::new(small_config(Packing::Sequential), None, 6);
        let mut refs = Vec::new();
        gen.transaction_refs(
            &TxInput::StockLevel {
                warehouse: 0,
                district: 0,
                threshold: 15,
            },
            &mut refs,
        );
        let ol = refs
            .iter()
            .filter(|r| r.page.relation() == Relation::OrderLine)
            .count();
        let stock = refs
            .iter()
            .filter(|r| r.page.relation() == Relation::Stock)
            .count();
        assert_eq!(ol, 200, "20 orders x 10 items order-line fetches");
        assert_eq!(stock, 200, "matching stock fetches");
        assert!(refs.iter().all(|r| !r.write), "stock level is read-only");
    }

    #[test]
    fn mixed_stream_runs_and_keeps_queue_bounded() {
        let mut gen = TraceGenerator::new(small_config(Packing::Sequential), None, 7);
        let mut refs = Vec::new();
        let mut counts = [0u64; 5];
        for _ in 0..20_000 {
            let tx = gen.next_transaction(&mut refs);
            counts[tx.index()] += 1;
        }
        assert!(
            counts.iter().all(|&c| c > 0),
            "all types appear: {counts:?}"
        );
        // 5% deliveries x10 deletions >= 43% inserts: queue must not blow up
        assert!(
            gen.state().total_pending() < 2000,
            "pending = {}",
            gen.state().total_pending()
        );
    }

    #[test]
    fn hotness_packing_changes_stock_pages() {
        let pmf = item_pmf();
        let mut seq = TraceGenerator::new(small_config(Packing::Sequential), None, 8);
        let mut opt = TraceGenerator::new(small_config(Packing::HotnessSorted), Some(&pmf), 8);
        let input = TxInput::NewOrder {
            warehouse: 0,
            district: 0,
            customer: 0,
            // 0-based 8191 = 1-based id 8192, whose NURand pre-image is
            // OR-value 8191 (all 13 low bits set): the hottest item.
            items: vec![crate::input::ItemOrder {
                item: 8191,
                supply_warehouse: 0,
            }],
        };
        let (mut r1, mut r2) = (Vec::new(), Vec::new());
        seq.transaction_refs(&input, &mut r1);
        opt.transaction_refs(&input, &mut r2);
        let stock_page = |rs: &[PageRef]| {
            rs.iter()
                .find(|r| r.page.relation() == Relation::Stock)
                .map(|r| r.page.page())
                .expect("stock ref present")
        };
        assert_eq!(stock_page(&r1), 8191 / 13, "sequential placement");
        assert!(
            stock_page(&r2) < 100,
            "hottest item should land on an early page, got {}",
            stock_page(&r2)
        );
    }

    #[test]
    #[should_panic(expected = "requires the item NURand PMF")]
    fn hotness_without_pmf_panics() {
        let _ = TraceGenerator::new(small_config(Packing::HotnessSorted), None, 9);
    }
}
