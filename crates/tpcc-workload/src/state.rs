//! The temporal workload state the paper's simulator maintains (§4):
//! "the last order placed by each customer, the last 20 orders for each
//! district, and which tuples are in the New-Order relation", plus the
//! append counters of the four growing relations.

use std::collections::VecDeque;
use tpcc_rand::Xoshiro256;
use tpcc_schema::relation::{CUSTOMERS_PER_DISTRICT, DISTRICTS_PER_WAREHOUSE, ITEMS};

/// Maximum items per order (the spec's uniform(5, 15) upper bound).
pub const MAX_ITEMS: usize = 15;

/// How many recent orders per district the Stock-Level join scans.
pub const RECENT_ORDERS: usize = 20;

/// A placed order, as remembered by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderSummary {
    /// Order sequence number within its district (0-based).
    pub number: u64,
    /// Ordering customer (0-based within the district).
    pub customer: u32,
    /// Append ordinal of the order row in the Order relation.
    pub order_ordinal: u64,
    /// Append ordinal of the pending row in the New-Order relation.
    pub new_order_ordinal: u64,
    /// Append ordinal of the first order-line row.
    pub ol_start: u64,
    /// Number of order lines (≤ [`MAX_ITEMS`]).
    pub n_items: u8,
    /// The ordered item ids (first `n_items` entries valid).
    pub items: [u32; MAX_ITEMS],
}

impl OrderSummary {
    /// The valid item ids.
    #[must_use]
    pub fn item_slice(&self) -> &[u32] {
        &self.items[..usize::from(self.n_items)]
    }
}

/// Compact per-customer record of the most recent order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LastOrder {
    /// Append ordinal of the order row.
    pub order_ordinal: u64,
    /// Append ordinal of its first order-line.
    pub ol_start: u64,
    /// Number of order lines.
    pub n_items: u8,
}

#[derive(Debug, Clone, Default)]
struct DistrictState {
    next_order_number: u64,
    /// Undelivered orders, oldest at the front (the New-Order relation).
    pending: VecDeque<OrderSummary>,
    /// The district's last ≤ 20 orders, oldest at the front.
    recent: VecDeque<OrderSummary>,
}

/// Mutable workload state across a simulation run.
#[derive(Debug, Clone)]
pub struct WorkloadState {
    warehouses: u64,
    districts: Vec<DistrictState>,
    last_order: Vec<Option<LastOrder>>,
    orders_appended: u64,
    new_orders_appended: u64,
    order_lines_appended: u64,
    history_appended: u64,
}

impl WorkloadState {
    /// Fresh (empty) state for `warehouses` warehouses.
    ///
    /// # Panics
    /// Panics if `warehouses == 0`.
    #[must_use]
    pub fn new(warehouses: u64) -> Self {
        assert!(warehouses > 0, "need at least one warehouse");
        let n_districts = (warehouses * DISTRICTS_PER_WAREHOUSE) as usize;
        let n_customers = (warehouses * DISTRICTS_PER_WAREHOUSE * CUSTOMERS_PER_DISTRICT) as usize;
        Self {
            warehouses,
            districts: vec![DistrictState::default(); n_districts],
            last_order: vec![None; n_customers],
            orders_appended: 0,
            new_orders_appended: 0,
            order_lines_appended: 0,
            history_appended: 0,
        }
    }

    /// Populates initial orders per the spec's flavor of clause 4.3:
    /// `orders_per_district` orders per district (spec: 3000), items
    /// uniform, customers assigned round-robin through a district-local
    /// shuffle, and the newest `pending_per_district` orders (spec: 900)
    /// still awaiting delivery.
    ///
    /// # Panics
    /// Panics if `pending_per_district > orders_per_district`.
    pub fn populate(
        &mut self,
        orders_per_district: u64,
        pending_per_district: u64,
        items_per_order: u8,
        rng: &mut Xoshiro256,
    ) {
        assert!(
            pending_per_district <= orders_per_district,
            "cannot have more pending than total orders"
        );
        assert!(usize::from(items_per_order) <= MAX_ITEMS);
        let n_districts = self.districts.len() as u64;
        for d in 0..n_districts {
            for o in 0..orders_per_district {
                // spec 4.3.3.1 assigns customers via a permutation; a
                // round-robin assignment gives every customer exactly one
                // initial order per 3000, which is what matters here.
                let customer = (o % CUSTOMERS_PER_DISTRICT) as u32;
                let mut items = [0u32; MAX_ITEMS];
                for slot in items.iter_mut().take(usize::from(items_per_order)) {
                    *slot = rng.uniform_inclusive(0, ITEMS - 1) as u32;
                }
                let pending = o >= orders_per_district - pending_per_district;
                self.append_order(d, customer, items, items_per_order, pending);
            }
        }
    }

    fn district_index(&self, warehouse: u64, district: u64) -> usize {
        assert!(
            warehouse < self.warehouses,
            "warehouse {warehouse} out of range"
        );
        assert!(
            district < DISTRICTS_PER_WAREHOUSE,
            "district {district} out of range"
        );
        (warehouse * DISTRICTS_PER_WAREHOUSE + district) as usize
    }

    fn append_order(
        &mut self,
        district_idx: u64,
        customer: u32,
        items: [u32; MAX_ITEMS],
        n_items: u8,
        pending: bool,
    ) -> OrderSummary {
        let d = &mut self.districts[district_idx as usize];
        let summary = OrderSummary {
            number: d.next_order_number,
            customer,
            order_ordinal: self.orders_appended,
            new_order_ordinal: self.new_orders_appended,
            ol_start: self.order_lines_appended,
            n_items,
            items,
        };
        d.next_order_number += 1;
        self.orders_appended += 1;
        self.new_orders_appended += 1;
        self.order_lines_appended += u64::from(n_items);
        if d.recent.len() == RECENT_ORDERS {
            d.recent.pop_front();
        }
        d.recent.push_back(summary);
        if pending {
            d.pending.push_back(summary);
        }
        let cust_global = district_idx * CUSTOMERS_PER_DISTRICT + u64::from(customer);
        self.last_order[cust_global as usize] = Some(LastOrder {
            order_ordinal: summary.order_ordinal,
            ol_start: summary.ol_start,
            n_items,
        });
        summary
    }

    /// Records a New-Order transaction: appends to Order, New-Order and
    /// Order-Line, updates the district's recent ring and the customer's
    /// last order. Returns the assigned ordinals.
    ///
    /// # Panics
    /// Panics on out-of-range ids or more than [`MAX_ITEMS`] items.
    pub fn place_order(
        &mut self,
        warehouse: u64,
        district: u64,
        customer: u64,
        item_ids: &[u64],
    ) -> OrderSummary {
        assert!(customer < CUSTOMERS_PER_DISTRICT, "customer out of range");
        assert!(item_ids.len() <= MAX_ITEMS, "too many items");
        let idx = self.district_index(warehouse, district) as u64;
        let mut items = [0u32; MAX_ITEMS];
        for (slot, &id) in items.iter_mut().zip(item_ids) {
            assert!(id < ITEMS, "item {id} out of range");
            *slot = id as u32;
        }
        self.append_order(idx, customer as u32, items, item_ids.len() as u8, true)
    }

    /// Pops the oldest undelivered order of a district (the Delivery
    /// transaction's min-select + delete); `None` when the district has
    /// no pending orders.
    pub fn deliver_oldest(&mut self, warehouse: u64, district: u64) -> Option<OrderSummary> {
        let idx = self.district_index(warehouse, district);
        self.districts[idx].pending.pop_front()
    }

    /// The most recent order of a customer, if any.
    #[must_use]
    pub fn last_order_of(&self, warehouse: u64, district: u64, customer: u64) -> Option<LastOrder> {
        assert!(customer < CUSTOMERS_PER_DISTRICT, "customer out of range");
        let idx = self.district_index(warehouse, district) as u64;
        self.last_order[(idx * CUSTOMERS_PER_DISTRICT + customer) as usize]
    }

    /// The district's last ≤ 20 orders, oldest first (Stock-Level scan).
    #[must_use]
    pub fn recent_orders(&self, warehouse: u64, district: u64) -> &VecDeque<OrderSummary> {
        let idx = self.district_index(warehouse, district);
        &self.districts[idx].recent
    }

    /// Appends one History row (Payment), returning its ordinal.
    pub fn append_history(&mut self) -> u64 {
        let ordinal = self.history_appended;
        self.history_appended += 1;
        ordinal
    }

    /// Undelivered orders currently queued for one district.
    #[must_use]
    pub fn pending_depth(&self, warehouse: u64, district: u64) -> usize {
        let idx = self.district_index(warehouse, district);
        self.districts[idx].pending.len()
    }

    /// Undelivered orders across all districts — the live cardinality of
    /// the New-Order relation (the quantity §2.1 warns can diverge).
    #[must_use]
    pub fn total_pending(&self) -> usize {
        self.districts.iter().map(|d| d.pending.len()).sum()
    }

    /// Rows ever appended to the Order relation.
    #[must_use]
    pub fn orders_appended(&self) -> u64 {
        self.orders_appended
    }

    /// Rows ever appended to the New-Order relation.
    #[must_use]
    pub fn new_orders_appended(&self) -> u64 {
        self.new_orders_appended
    }

    /// Rows ever appended to the Order-Line relation.
    #[must_use]
    pub fn order_lines_appended(&self) -> u64 {
        self.order_lines_appended
    }

    /// Rows ever appended to the History relation.
    #[must_use]
    pub fn history_appended(&self) -> u64 {
        self.history_appended
    }

    /// Number of warehouses.
    #[must_use]
    pub fn warehouses(&self) -> u64 {
        self.warehouses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn place_order_advances_counters_and_rings() {
        let mut s = WorkloadState::new(1);
        let items: Vec<u64> = (0..10).collect();
        let o1 = s.place_order(0, 0, 5, &items);
        assert_eq!(o1.number, 0);
        assert_eq!(o1.order_ordinal, 0);
        assert_eq!(o1.ol_start, 0);
        let o2 = s.place_order(0, 0, 6, &items);
        assert_eq!(o2.number, 1);
        assert_eq!(o2.ol_start, 10);
        assert_eq!(s.orders_appended(), 2);
        assert_eq!(s.order_lines_appended(), 20);
        assert_eq!(s.total_pending(), 2);
        assert_eq!(s.recent_orders(0, 0).len(), 2);
    }

    #[test]
    fn last_order_tracks_most_recent() {
        let mut s = WorkloadState::new(1);
        let items: Vec<u64> = (0..10).collect();
        assert!(s.last_order_of(0, 3, 7).is_none());
        s.place_order(0, 3, 7, &items);
        let first = s.last_order_of(0, 3, 7).expect("order placed");
        s.place_order(0, 3, 7, &items);
        let second = s.last_order_of(0, 3, 7).expect("order placed");
        assert!(second.order_ordinal > first.order_ordinal);
        assert_eq!(second.n_items, 10);
    }

    #[test]
    fn delivery_is_fifo_per_district() {
        let mut s = WorkloadState::new(2);
        let items: Vec<u64> = (0..10).collect();
        s.place_order(1, 4, 1, &items);
        s.place_order(1, 4, 2, &items);
        s.place_order(0, 4, 3, &items);
        let d = s.deliver_oldest(1, 4).expect("pending");
        assert_eq!(d.customer, 1);
        let d = s.deliver_oldest(1, 4).expect("pending");
        assert_eq!(d.customer, 2);
        assert!(s.deliver_oldest(1, 4).is_none());
        assert_eq!(s.total_pending(), 1);
    }

    #[test]
    fn recent_ring_caps_at_twenty() {
        let mut s = WorkloadState::new(1);
        let items: Vec<u64> = (0..10).collect();
        for c in 0..25u64 {
            s.place_order(0, 0, c % 3000, &items);
        }
        let recent = s.recent_orders(0, 0);
        assert_eq!(recent.len(), RECENT_ORDERS);
        assert_eq!(recent.front().expect("nonempty").number, 5);
        assert_eq!(recent.back().expect("nonempty").number, 24);
    }

    #[test]
    fn populate_matches_spec_shape() {
        let mut s = WorkloadState::new(1);
        let mut rng = Xoshiro256::seed_from_u64(1);
        s.populate(100, 30, 10, &mut rng);
        assert_eq!(s.orders_appended(), 1000);
        assert_eq!(s.order_lines_appended(), 10_000);
        assert_eq!(s.total_pending(), 300);
        for d in 0..10 {
            assert_eq!(s.pending_depth(0, d), 30);
            assert_eq!(s.recent_orders(0, d).len(), RECENT_ORDERS);
        }
        // every populated customer has a last order
        assert!(s.last_order_of(0, 0, 99).is_some());
    }

    #[test]
    fn delivery_after_population_is_oldest_pending() {
        let mut s = WorkloadState::new(1);
        let mut rng = Xoshiro256::seed_from_u64(2);
        s.populate(100, 30, 10, &mut rng);
        let d = s.deliver_oldest(0, 0).expect("pending populated");
        assert_eq!(d.number, 70, "first pending order is number 70 of 0..100");
    }

    #[test]
    #[should_panic(expected = "customer out of range")]
    fn bad_customer_rejected() {
        let mut s = WorkloadState::new(1);
        s.place_order(0, 0, 3000, &[1]);
    }

    #[test]
    #[should_panic(expected = "warehouse 2 out of range")]
    fn bad_warehouse_rejected() {
        let s = WorkloadState::new(2);
        let _ = s.last_order_of(2, 0, 0);
    }
}
