//! Transaction types and the workload mix (paper Table 2).

use tpcc_rand::Xoshiro256;

/// The five TPC-C transaction types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TxType {
    /// Places an order for ~10 items (the benchmark's metric transaction).
    NewOrder,
    /// Processes a customer payment.
    Payment,
    /// Reports the status of a customer's last order.
    OrderStatus,
    /// Batch-delivers the oldest pending order of each district.
    Delivery,
    /// Counts low-stock items among a district's last 20 orders.
    StockLevel,
}

impl TxType {
    /// All five types in Table 2 order.
    pub const ALL: [TxType; 5] = [
        TxType::NewOrder,
        TxType::Payment,
        TxType::OrderStatus,
        TxType::Delivery,
        TxType::StockLevel,
    ];

    /// Display name as printed in the paper's tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TxType::NewOrder => "New Order",
            TxType::Payment => "Payment",
            TxType::OrderStatus => "Order Status",
            TxType::Delivery => "Delivery",
            TxType::StockLevel => "Stock Level",
        }
    }

    /// The benchmark's minimum workload share (Table 2, column 2);
    /// `None` for New Order, which has no minimum (it is the metric).
    #[must_use]
    pub fn minimum_percent(self) -> Option<f64> {
        match self {
            TxType::NewOrder => None,
            TxType::Payment => Some(43.0),
            TxType::OrderStatus | TxType::Delivery | TxType::StockLevel => Some(4.0),
        }
    }

    /// Dense index `0..5`.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            TxType::NewOrder => 0,
            TxType::Payment => 1,
            TxType::OrderStatus => 2,
            TxType::Delivery => 3,
            TxType::StockLevel => 4,
        }
    }
}

/// A workload mix: the fraction of transactions of each type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransactionMix {
    fractions: [f64; 5],
}

impl TransactionMix {
    /// The paper's assumed mix (Table 2, column 3): 43% New Order, 44%
    /// Payment, 4% Order Status, 5% Delivery, 4% Stock Level.
    ///
    /// Delivery is held at 5% so the New-Order relation drains: ten
    /// deliveries per Delivery transaction × 5% ≥ 43% insertions.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new([0.43, 0.44, 0.04, 0.05, 0.04])
    }

    /// A custom mix in [`TxType::ALL`] order; must sum to 1 (±1e-6).
    ///
    /// # Panics
    /// Panics on negative fractions or a sum away from 1.
    #[must_use]
    pub fn new(fractions: [f64; 5]) -> Self {
        let sum: f64 = fractions.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "mix fractions must sum to 1, got {sum}"
        );
        assert!(
            fractions.iter().all(|f| *f >= 0.0),
            "mix fractions must be non-negative"
        );
        Self { fractions }
    }

    /// Fraction of the workload of type `tx`.
    #[must_use]
    pub fn fraction(&self, tx: TxType) -> f64 {
        self.fractions[tx.index()]
    }

    /// The fractions in [`TxType::ALL`] order.
    #[must_use]
    pub fn fractions(&self) -> [f64; 5] {
        self.fractions
    }

    /// True when every benchmark minimum (Table 2) is met.
    #[must_use]
    pub fn satisfies_minimums(&self) -> bool {
        TxType::ALL.iter().all(|&tx| {
            tx.minimum_percent()
                .is_none_or(|min| self.fraction(tx) * 100.0 >= min - 1e-9)
        })
    }

    /// True when deliveries can keep up with new orders so the New-Order
    /// relation does not grow without bound (paper §2.1): ten deletions
    /// per Delivery must cover one insertion per New Order.
    #[must_use]
    pub fn new_order_relation_is_stable(&self) -> bool {
        10.0 * self.fraction(TxType::Delivery) >= self.fraction(TxType::NewOrder) - 1e-12
    }

    /// Draws a transaction type.
    pub fn sample(&self, rng: &mut Xoshiro256) -> TxType {
        let mut u = rng.f64();
        for &tx in &TxType::ALL {
            let f = self.fraction(tx);
            if u < f {
                return tx;
            }
            u -= f;
        }
        TxType::StockLevel
    }
}

impl Default for TransactionMix {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mix_sums_and_satisfies_minimums() {
        let m = TransactionMix::paper_default();
        assert!(m.satisfies_minimums());
        assert!(m.new_order_relation_is_stable());
        assert!((m.fraction(TxType::NewOrder) - 0.43).abs() < 1e-12);
    }

    #[test]
    fn paper_unstable_example_detected() {
        // §2.1: 45% New-Order with 4% Delivery grows without bound.
        let m = TransactionMix::new([0.45, 0.44, 0.04, 0.04, 0.03]);
        assert!(!m.new_order_relation_is_stable());
    }

    #[test]
    fn minimums_enforced() {
        let m = TransactionMix::new([0.60, 0.30, 0.04, 0.04, 0.02]);
        assert!(!m.satisfies_minimums(), "payment below 43%");
    }

    #[test]
    #[should_panic(expected = "must sum to 1")]
    fn bad_sum_rejected() {
        let _ = TransactionMix::new([0.5, 0.5, 0.5, 0.0, 0.0]);
    }

    #[test]
    fn sampling_matches_fractions() {
        let m = TransactionMix::paper_default();
        let mut rng = Xoshiro256::seed_from_u64(9);
        let mut counts = [0u64; 5];
        let n = 500_000;
        for _ in 0..n {
            counts[m.sample(&mut rng).index()] += 1;
        }
        for &tx in &TxType::ALL {
            let observed = counts[tx.index()] as f64 / n as f64;
            assert!(
                (observed - m.fraction(tx)).abs() < 0.005,
                "{}: {observed}",
                tx.name()
            );
        }
    }
}
