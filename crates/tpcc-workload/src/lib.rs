//! The TPC-C workload model (paper §2): five transaction types, the
//! assumed mix, input-value generation, the temporal state the paper's
//! simulator tracks ("the last order placed by each customer, the last
//! 20 orders for each district, and which tuples are in the New-Order
//! relation"), and the page-reference trace generator that drives the
//! buffer study of §4.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calls;
pub mod input;
pub mod mix;
pub mod recorded;
pub mod state;
pub mod trace;

pub use calls::{CallProfile, RelationAccessProfile};
pub use input::{InputConfig, InputGenerator, PaymentSelector, TxInput};
pub use mix::{TransactionMix, TxType};
pub use recorded::{ReplayError, TraceRecorder, TraceReplay};
pub use state::WorkloadState;
pub use trace::{PageId, PageRef, TraceConfig, TraceGenerator};
