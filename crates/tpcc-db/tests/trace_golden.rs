//! Chrome-trace export checks: a golden file for the serial driver's
//! timeline (fully deterministic once timestamps are normalized) and a
//! per-thread sequence cross-check for a seeded 4-terminal run (thread
//! ids race at registration, but each terminal's *transaction name
//! sequence* is fixed by its seed).
//!
//! Regenerate the golden file after an intentional format change with
//! `TPCC_UPDATE_GOLDEN=1 cargo test -p tpcc-db --test trace_golden`.

use std::sync::Arc;

use tpcc_db::db::DbConfig;
use tpcc_db::driver::{DriverConfig, InputGen, TX_NAMES};
use tpcc_db::parallel::terminal_seed;
use tpcc_db::{loader, Driver, ParallelDriver};
use tpcc_obs::{MemoryRecorder, Obs};

/// Replaces every `"ts":<num>` / `"dur":<num>` value with `0.000` so
/// wall-clock jitter doesn't touch the golden comparison. Everything
/// else — event order, names, categories, tids, metadata — must match
/// byte-for-byte.
fn normalize_times(json: &str) -> String {
    let mut out = String::with_capacity(json.len());
    let mut rest = json;
    loop {
        let ts = rest.find("\"ts\":");
        let dur = rest.find("\"dur\":");
        let (at, keylen) = match (ts, dur) {
            (Some(a), Some(b)) if a < b => (a, 5),
            (Some(a), None) => (a, 5),
            (_, Some(b)) => (b, 6),
            (None, None) => break,
        };
        out.push_str(&rest[..at + keylen]);
        rest = &rest[at + keylen..];
        let end = rest.find([',', '}']).expect("number terminated by , or }");
        out.push_str("0.000");
        rest = &rest[end..];
    }
    out.push_str(rest);
    out
}

/// A pool large enough to hold the whole small database, so the serial
/// run faults nothing and the timeline contains txn events only.
fn roomy_cfg() -> DbConfig {
    let mut cfg = DbConfig::small();
    cfg.buffer_frames = 8192;
    cfg
}

#[test]
fn serial_trace_export_matches_golden_file() {
    let mut db = loader::load(roomy_cfg(), 31);
    let recorder = Arc::new(MemoryRecorder::new());
    let collector = recorder.install_trace(1024);
    db.set_obs(Obs::new(recorder.clone()));
    Driver::new(&db, DriverConfig::default(), 9).run(&mut db, 24);

    let exported = normalize_times(&collector.export_chrome());
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/trace_serial.json"
    );
    if std::env::var("TPCC_UPDATE_GOLDEN").is_ok() {
        std::fs::write(golden_path, &exported).expect("update golden");
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden file missing: regenerate with TPCC_UPDATE_GOLDEN=1");
    assert_eq!(
        exported, golden,
        "chrome-trace export drifted from the golden file \
         (TPCC_UPDATE_GOLDEN=1 to accept an intentional change)"
    );
}

#[test]
fn four_terminal_trace_carries_each_terminals_exact_txn_sequence() {
    let seed = 83;
    let transactions = 200u64;
    let threads = 4u64;
    let mut db = loader::load(roomy_cfg(), 31);
    let recorder = Arc::new(MemoryRecorder::new());
    let collector = recorder.install_trace(4096);
    db.set_obs(Obs::new(recorder.clone()));
    ParallelDriver::new(DriverConfig::default(), threads, seed).run(&db, transactions);

    // which thread got which tid races at registration; each
    // terminal's txn-name *sequence* is deterministic, so compare the
    // sorted multiset of sequences
    let mut recorded: Vec<Vec<&'static str>> = collector
        .timelines()
        .into_iter()
        .map(|(_, events)| {
            events
                .into_iter()
                .filter(|e| e.cat == "txn")
                .map(|e| e.name)
                .collect()
        })
        .collect();
    recorded.sort();

    let mut expected: Vec<Vec<&'static str>> = (0..threads)
        .map(|t| {
            let mut gen = InputGen::new(&db, DriverConfig::default(), terminal_seed(seed, t));
            (0..transactions / threads)
                .map(|_| TX_NAMES[gen.next_input().type_index()])
                .collect()
        })
        .collect();
    expected.sort();

    assert_eq!(
        recorded.len(),
        threads as usize,
        "one timeline per terminal"
    );
    assert_eq!(recorded, expected);

    // and the export itself stays structurally sound
    let json = collector.export_chrome();
    assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(json.ends_with("]}"));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches("\"ph\":\"M\"").count(), threads as usize);
}
