//! Fault-injection acceptance tests: every enumerated crash point
//! recovers to the serial oracle, every WAL record boundary is a safe
//! truncation point, soft faults converge under bounded retry, and an
//! 8-terminal run with mid-flight faults stays consistent and
//! deadlock-free.

use std::sync::atomic::{AtomicBool, Ordering};

use tpcc_db::{
    cdc_checkpoint_sweep, crashpoint_sweep, loader, torn_tail_byte_sweep, verify_record_boundaries,
    DbConfig, DriverConfig, FaultPlan, FaultSite, GroupCommitConfig, ParallelDriver, SweepConfig,
};
use tpcc_lock::LockManager;

fn stress_seed() -> u64 {
    std::env::var("TPCC_STRESS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Small scale with a buffer pool well below the working set, so the
/// run itself (not just the final flush) evicts pages: write-back and
/// miss-load fault sites fire mid-transaction. The deep pending queue
/// puts the standard mix in the drain regime, where Delivery frees
/// pages (leaf merges, heap reclamation) and page-free sites fire.
fn tight_cfg() -> DbConfig {
    let mut cfg = DbConfig::small();
    cfg.buffer_frames = 96;
    cfg.enable_wal = true;
    cfg.initial_pending_per_district = 150;
    cfg.initial_orders_per_district = 210;
    cfg
}

/// `tight_cfg` under deferred durability: commits gather in a volatile
/// tail and every fourth one flushes (inline schedule), so the sweep
/// enumerates `wal_flush` sites — the flush-boundary crash points.
fn group_commit_cfg() -> DbConfig {
    let mut cfg = tight_cfg();
    cfg.group_commit = Some(GroupCommitConfig::inline_every(4));
    cfg
}

#[test]
fn crashpoint_sweep_recovers_at_every_site() {
    let mut cfg = SweepConfig::new(tight_cfg(), 250, 7);
    cfg.live_reruns = 2;
    cfg.recover_samples = 8;
    let report = crashpoint_sweep(&cfg);
    assert!(
        report.all_recovered(),
        "unrecovered crash sites: {:?}",
        report.failures
    );
    assert!(
        report.sites_total >= 200,
        "expected a dense site enumeration, got {}",
        report.sites_total
    );
    assert!(report.per_site[FaultSite::WalAppend.idx()] > 0);
    assert!(report.per_site[FaultSite::WriteBack.idx()] > 0);
    assert!(report.per_site[FaultSite::MissLoad.idx()] > 0);
    assert!(report.distinct_prefixes > 0);
    assert!(report.recover_checks > 0);
    assert_eq!(report.live_reruns, 2);
}

/// Satellite: the crash sweep at every flush boundary. Under group
/// commit the recorded `wal_len` is the durable watermark, so a crash
/// at any site between two flushes must recover to the last *flushed*
/// commit — the volatile tail is lost, a flushed commit never is. The
/// live re-runs additionally prove the frozen durable prefix
/// byte-matches the recorded one.
#[test]
fn flush_boundary_sweep_recovers_at_every_site() {
    let mut cfg = SweepConfig::new(group_commit_cfg(), 250, 7);
    cfg.live_reruns = 2;
    cfg.recover_samples = 8;
    let report = crashpoint_sweep(&cfg);
    assert!(
        report.all_recovered(),
        "unrecovered flush-boundary sites: {:?}",
        report.failures
    );
    assert!(
        report.per_site[FaultSite::WalFlush.idx()] > 0,
        "no flush boundaries enumerated: {:?}",
        report.per_site
    );
    assert!(
        report.distinct_prefixes < report.sites_total as usize,
        "deferred durability must coalesce crash images between flushes"
    );
    assert_eq!(report.live_reruns, 2);
}

/// Satellite: torn flushes. The byte sweep tears the encoded log at
/// every sampled offset of a group-commit run — offsets inside a flush
/// batch model a device that persisted only part of the batch, and
/// each must recover to the last whole record's commit prefix.
#[test]
fn torn_flush_byte_sweep_converges_under_group_commit() {
    let cfg = SweepConfig::new(group_commit_cfg(), 300, 31);
    let report = torn_tail_byte_sweep(&cfg, 997);
    assert_eq!(report.failures, 0, "{report:?}");
    assert!(report.bytes_checked > 100, "{report:?}");
}

/// The recording pass is deterministic: identical seeds enumerate
/// identical sites with identical sequence numbers and WAL positions.
#[test]
fn site_enumeration_is_deterministic() {
    let run = || {
        let mut db = loader::load(tight_cfg(), 11);
        let hook = db.install_fault_plan(FaultPlan::observe(13));
        let mut driver = tpcc_db::Driver::new(&db, DriverConfig::default(), 13);
        driver.run(&mut db, 120);
        db.flush();
        (hook.take_records(), hook.stats())
    };
    let (records_a, stats_a) = run();
    let (records_b, stats_b) = run();
    assert_eq!(records_a, records_b);
    assert_eq!(stats_a.fired, stats_b.fired);
    assert!(!records_a.is_empty());
}

/// Satellite: a seeded 5000-transaction mixed workload, WAL truncated
/// at *every* record boundary. Recovery must never fail and never
/// resurrect an uncommitted delta — each truncation's recovered image
/// must equal a serial oracle replayed to the last complete commit.
#[test]
fn record_boundary_sweep_5k_txns_never_fails() {
    let cfg = SweepConfig::new(tight_cfg(), 5000, 21);
    let report = verify_record_boundaries(&cfg);
    assert_eq!(
        report.failures, 0,
        "some WAL record boundary failed to recover: {report:?}"
    );
    assert_eq!(report.boundaries, report.wal_entries + 1);
    assert!(report.committed_prefixes > 1000, "{report:?}");
    assert!(report.recover_checks > 0);
}

/// Coarse-stepped torn-tail sweep (the per-byte variant is the
/// `--ignored` stress test below): tearing the encoded log mid-record
/// discards the partial record and recovers to the previous boundary.
#[test]
fn torn_tail_sweep_with_coarse_step_converges() {
    let cfg = SweepConfig::new(tight_cfg(), 300, 31);
    let report = torn_tail_byte_sweep(&cfg, 997);
    assert_eq!(report.failures, 0, "{report:?}");
    assert!(report.bytes_checked > 100, "{report:?}");
}

/// Stress: tear the encoded WAL of a 5000-transaction run at *every
/// byte offset* and verify each against the oracle.
#[test]
#[ignore = "stress: run with --ignored, seeded via TPCC_STRESS_SEED"]
fn stress_torn_tail_every_byte() {
    let cfg = SweepConfig::new(tight_cfg(), 5000, stress_seed());
    let report = torn_tail_byte_sweep(&cfg, 1);
    assert_eq!(report.failures, 0, "{report:?}");
    assert_eq!(report.bytes_checked, report.total_bytes + 1);
}

/// Stress: the full crash-point sweep at 5000 transactions — the
/// CI acceptance gate (every site recovers, ≥ 200 sites enumerated,
/// all five site classes represented). Runs under group commit so the
/// `wal_flush` class fires alongside the original four.
#[test]
#[ignore = "stress: run with --ignored, seeded via TPCC_STRESS_SEED"]
fn stress_crashpoint_sweep_5k_txns() {
    let mut cfg = SweepConfig::new(group_commit_cfg(), 5000, stress_seed());
    cfg.live_reruns = 3;
    cfg.recover_samples = 32;
    let report = crashpoint_sweep(&cfg);
    assert!(
        report.all_recovered(),
        "unrecovered crash sites: {:?}",
        report.failures
    );
    assert!(report.sites_total >= 200, "{}", report.sites_total);
    for site in FaultSite::ALL {
        assert!(
            report.per_site[site.idx()] > 0,
            "no {} sites enumerated",
            site.name()
        );
    }
}

/// Satellite: the `cdc_checkpoint` crash-site sweep. A CDC pipeline
/// checkpoints every 40 transactions through the fault-instrumented
/// path; at **every committed WAL prefix** the views rebuilt from
/// (latest surviving checkpoint, frozen WAL) must byte-equal a rescan
/// of the prefix's crash image — which itself must converge to the
/// lockstep serial oracle. Every cdc_checkpoint site is then tripped
/// live: the in-flight checkpoint is lost and the rebuild falls back
/// to the previous one without divergence. Runs under group commit so
/// rebuild boundaries are durable watermarks, not raw commits.
#[test]
fn cdc_checkpoint_sweep_rebuilds_views_at_every_prefix() {
    let cfg = SweepConfig::new(group_commit_cfg(), 250, 7);
    let report = cdc_checkpoint_sweep(&cfg, 40);
    assert!(report.all_recovered(), "{report:?}");
    assert!(report.checkpoints_taken >= 6, "{report:?}");
    assert_eq!(
        report.cdc_sites, report.checkpoints_taken as u64,
        "observe-mode runs lose no checkpoints"
    );
    assert_eq!(report.live_crashes, report.cdc_sites as usize);
    assert!(report.committed_prefixes > 100, "{report:?}");
}

/// Stress: the CDC checkpoint sweep over a longer mixed run — the CI
/// acceptance gate (`TPCC_STRESS_SEED` ∈ {7, 21, 42}, 0 unrecovered).
#[test]
#[ignore = "stress: run with --ignored, seeded via TPCC_STRESS_SEED"]
fn stress_cdc_checkpoint_sweep() {
    let cfg = SweepConfig::new(group_commit_cfg(), 1500, stress_seed());
    let report = cdc_checkpoint_sweep(&cfg, 125);
    assert!(report.all_recovered(), "{report:?}");
    assert!(report.checkpoints_taken >= 12, "{report:?}");
    assert_eq!(report.live_crashes, report.cdc_sites as usize);
}

/// Soft faults (transient write-back I/O errors and torn page writes)
/// are absorbed by the buffer manager's bounded retry: the run
/// completes, the database stays consistent, and crash recovery still
/// reproduces the flushed image.
#[test]
fn soft_faults_converge_under_bounded_retry() {
    let mut db = loader::load(tight_cfg(), 51);
    let report = db.run_with_faults(DriverConfig::default(), 53, 400, FaultPlan::soft(53, 3, 5));
    assert!(report.faults.io_errors > 0, "{:?}", report.faults);
    assert!(report.faults.torn_writes > 0, "{:?}", report.faults);
    assert!(report.faults.retries > 0, "{:?}", report.faults);
    assert_eq!(report.faults.crashed_at, None);
    let consistency = db.verify_consistency();
    assert!(consistency.is_consistent(), "{consistency:?}");
    assert!(db
        .try_crash_recovery_check()
        .expect("recovery must not error"));
}

/// A tripped crash freezes the WAL: recovery from the frozen prefix
/// equals a serial oracle replayed to the last complete commit, and
/// the post-crash tail of the workload leaves no trace in the log.
#[test]
fn tripped_crash_recovers_to_last_commit() {
    // Observe once to learn the site count, then crash mid-run.
    let mut db = loader::load(tight_cfg(), 61);
    let observe = db.run_with_faults(DriverConfig::default(), 63, 200, FaultPlan::observe(63));
    let sites = observe.faults.sites_total();
    assert!(sites > 100);
    drop(db);

    let mut db = loader::load(tight_cfg(), 61);
    let report = db.run_with_faults(
        DriverConfig::default(),
        63,
        200,
        FaultPlan::crash_at(63, sites / 2),
    );
    assert_eq!(report.faults.crashed_at, Some(sites / 2));
    let wal = db.take_wal().expect("WAL enabled");
    let commits = wal.commits();
    let checkpoint = db.take_checkpoint().expect("WAL mode holds a checkpoint");
    let recovered = wal.try_recover(checkpoint).expect("recovery must succeed");

    // Oracle: replay the same stream serially to the same commit count.
    let mut oracle = loader::load(tight_cfg(), 61);
    let mut driver = tpcc_db::Driver::new(&oracle, DriverConfig::default(), 63);
    while oracle.wal_stats().expect("wal on").2 < commits {
        driver.run(&mut oracle, 1);
    }
    oracle.flush();
    assert!(
        oracle.disk_contents_equal(&recovered),
        "crash image diverged from the serial oracle at commit {commits}"
    );
}

/// Satellite: 8 terminals over one warehouse with a delivery-heavy mix
/// and live soft faults — wound-wait wounds terminals mid-Delivery,
/// the wait-for graph stays acyclic throughout, the §3.3.2 consistency
/// checks pass afterwards, and crash recovery reproduces the final
/// image.
#[test]
fn eight_terminals_with_soft_faults_stay_consistent_and_acyclic() {
    let mut db = loader::load(tight_cfg(), 71);
    let hook = db.install_fault_plan(FaultPlan::soft(71, 5, 7));
    // delivery-heavy: maximum district-queue contention on 1 warehouse
    let mix = DriverConfig {
        mix: [0.25, 0.25, 0.05, 0.40, 0.05],
        ..DriverConfig::default()
    };
    let driver = ParallelDriver::new(mix, 8, 73);
    let lm = LockManager::new();

    let done = AtomicBool::new(false);
    let report = std::thread::scope(|scope| {
        let monitor = scope.spawn(|| {
            let mut checks = 0u64;
            while !done.load(Ordering::Acquire) {
                let graph = lm.wait_for_snapshot();
                assert!(
                    graph.find_cycle().is_none(),
                    "deadlock cycle under wound-wait with faults: {:?}",
                    graph.find_cycle()
                );
                checks += 1;
                std::thread::yield_now();
            }
            checks
        });
        let report = driver.run_on(&db, &lm, 1200);
        done.store(true, Ordering::Release);
        assert!(monitor.join().expect("monitor") > 0);
        report
    });

    assert_eq!(report.total(), 1200);
    let wounds: u64 = report.retries.iter().sum();
    assert!(wounds > 0, "expected wound-induced retries: {report:?}");
    assert!(
        report.retries[3] > 0,
        "expected a terminal wounded mid-Delivery: {:?}",
        report.retries
    );
    let faults = hook.stats();
    assert!(faults.io_errors > 0, "{faults:?}");
    assert!(faults.retries > 0, "{faults:?}");
    assert!(lm.wait_for_snapshot().is_empty(), "all locks released");

    let consistency = db.verify_consistency();
    assert!(consistency.is_consistent(), "{consistency:?}");
    db.flush();
    assert!(db
        .try_crash_recovery_check()
        .expect("recovery must not error"));
}
