//! Golden-file test for the CDC change-event export: a seeded serial
//! run decodes to a deterministic, stably-ordered stream of
//! schema-versioned JSON lines (`ChangeEvent::to_json`). Any drift in
//! decoding, attribution, key packing, ordering, or the JSON schema
//! shows up as a byte diff against the golden file.
//!
//! Regenerate after an intentional format change with
//! `TPCC_UPDATE_GOLDEN=1 cargo test -p tpcc-db --test cdc_golden`.

use tpcc_db::db::DbConfig;
use tpcc_db::{decode_events, loader, CdcPipeline, Driver, DriverConfig, EVENT_SCHEMA};

/// WAL on, roomy pool: the serial run is fully deterministic and the
/// stream contains exactly the workload's row changes.
fn golden_cfg() -> DbConfig {
    let mut cfg = DbConfig::small();
    cfg.buffer_frames = 8192;
    cfg.enable_wal = true;
    cfg
}

fn export_lines() -> String {
    let mut db = loader::load(golden_cfg(), 31);
    let mut pipeline = CdcPipeline::new(&db);
    let mut out = String::new();
    let mut driver = Driver::new(&db, DriverConfig::default(), 9);
    // poll mid-run and at the end: the concatenated export must not
    // depend on harvest cadence (batches are delimited by commit
    // markers, not by poll boundaries)
    for _ in 0..2 {
        driver.run(&mut db, 15);
        db.flush_log();
        let batches = pipeline.poll(&db).expect("no lag bound configured");
        for batch in &batches {
            for event in decode_events(pipeline.registry(), batch) {
                out.push_str(&event.to_json());
                out.push('\n');
            }
        }
    }
    out
}

#[test]
fn change_event_stream_matches_golden_file() {
    let exported = export_lines();
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/cdc_events.jsonl");
    if std::env::var("TPCC_UPDATE_GOLDEN").is_ok() {
        std::fs::write(golden_path, &exported).expect("update golden");
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden file missing: regenerate with TPCC_UPDATE_GOLDEN=1");
    assert_eq!(
        exported, golden,
        "change-event export drifted from the golden file \
         (TPCC_UPDATE_GOLDEN=1 to accept an intentional change)"
    );
}

#[test]
fn change_event_stream_is_deterministic_and_schema_versioned() {
    let a = export_lines();
    let b = export_lines();
    assert_eq!(a, b, "identical seeds must export identical streams");
    assert!(!a.is_empty());
    let version_tag = format!("{{\"v\":{EVENT_SCHEMA},");
    for line in a.lines() {
        assert!(
            line.starts_with(&version_tag),
            "every line carries the schema version: {line}"
        );
        assert!(line.ends_with('}'), "one JSON object per line: {line}");
    }
    // txn stamps are the WAL commit order: non-decreasing across lines
    let txns: Vec<u64> = a
        .lines()
        .map(|l| {
            let rest = &l[l.find("\"txn\":").expect("txn field") + 6..];
            rest[..rest.find(',').expect("comma")]
                .parse()
                .expect("txn number")
        })
        .collect();
    assert!(txns.windows(2).all(|w| w[0] <= w[1]), "stable batch order");
}
