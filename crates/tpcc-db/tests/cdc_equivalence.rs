//! Replay-equivalence property tests for the CDC pipeline: at every
//! harvest point of a seeded run — group commit on, MVCC on,
//! spec-rate rollbacks on — each incremental materialized view must be
//! **byte-equal** to a view rebuilt by rescanning the base tables.
//!
//! Also here: the bounded-lag contract (a lagging subscriber gets a
//! typed [`CdcLag`] error, keeps its cursor, and can catch up with no
//! events missed) and checkpoint/resume equivalence at harvest points.
//!
//! The `stress_*` variant runs in CI's seed matrix
//! (`TPCC_STRESS_SEED` ∈ {7, 21, 42}).

use tpcc_db::db::DbConfig;
use tpcc_db::{
    loader, CdcPipeline, DriverConfig, GroupCommitConfig, MaterializedViews, ParallelDriver, TpccDb,
};

fn cdc_cfg(warehouses: u64) -> DbConfig {
    let mut cfg = DbConfig::small();
    cfg.warehouses = warehouses;
    cfg.buffer_frames = 4096 * warehouses as usize;
    cfg.buffer_shards = 4;
    cfg.enable_wal = true;
    cfg.group_commit = Some(GroupCommitConfig::inline_every(8));
    cfg.mvcc = true;
    cfg
}

fn stress_seed() -> u64 {
    std::env::var("TPCC_STRESS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// One harvest: quiesce (the driver chunk returned), push the
/// group-commit tail past the durable watermark, poll the pipeline,
/// and compare against a fresh rescan of the flushed base tables.
fn harvest_and_compare(db: &TpccDb, pipeline: &mut CdcPipeline, label: &str) {
    db.flush_log();
    pipeline.poll(db).expect("no lag bound configured");
    assert_eq!(pipeline.lag(db), 0, "{label}: drained to the watermark");
    let rescan = MaterializedViews::rescan_live(db, &pipeline.registry().clone());
    assert_eq!(
        pipeline.views().encode(),
        rescan.encode(),
        "{label}: incremental view must be byte-equal to a base-table rescan"
    );
}

fn run_equivalence(threads: u64, warehouses: u64, chunks: u64, chunk: u64, seed: u64) {
    let db = loader::load(cdc_cfg(warehouses), seed);
    let mut pipeline = CdcPipeline::new(&db);
    let driver = ParallelDriver::new(DriverConfig::default().with_spec_rollbacks(), threads, seed);
    for i in 0..chunks {
        driver.run(&db, chunk);
        harvest_and_compare(&db, &mut pipeline, &format!("harvest {i}"));
    }
    assert!(
        pipeline.stats().events > 0,
        "the workload must actually produce change events"
    );
}

#[test]
fn serial_views_match_rescan_at_every_harvest() {
    run_equivalence(1, 1, 6, 150, 42);
}

#[test]
fn eight_terminal_views_match_rescan_at_every_harvest() {
    run_equivalence(8, 2, 5, 240, 42);
}

#[test]
#[ignore = "release-mode stress; run with --ignored (CI seed matrix)"]
fn stress_cdc_equivalence_eight_terminals() {
    run_equivalence(8, 4, 10, 800, stress_seed());
}

#[test]
fn checkpoint_resume_rebuilds_identical_views() {
    let seed = 42;
    let db = loader::load(cdc_cfg(1), seed);
    let mut pipeline = CdcPipeline::new(&db);
    let driver = ParallelDriver::new(DriverConfig::default().with_spec_rollbacks(), 2, seed);

    driver.run(&db, 200);
    db.flush_log();
    pipeline.poll(&db).expect("unbounded");
    let ckpt = pipeline.checkpoint().expect("no fault hook installed");

    driver.run(&db, 200);
    db.flush_log();
    pipeline.poll(&db).expect("unbounded");

    // a pipeline resumed from (checkpoint, WAL) must converge to the
    // exact same state as the one that never detached
    let mut resumed = CdcPipeline::resume(&db, ckpt);
    resumed.poll(&db).expect("unbounded");
    assert_eq!(
        resumed.views().encode(),
        pipeline.views().encode(),
        "resume from checkpoint = exact continuation"
    );
    assert_eq!(resumed.cursor(), pipeline.cursor());
}

#[test]
fn lagging_subscriber_gets_typed_error_and_resumes_without_loss() {
    let seed = 42;
    let db = loader::load(cdc_cfg(1), seed);

    // a shadow pipeline with no bound tracks the full event stream
    let mut reference = CdcPipeline::new(&db);
    let mut bounded = CdcPipeline::new(&db);
    bounded.set_max_lag(Some(16));

    let driver = ParallelDriver::new(DriverConfig::default().with_spec_rollbacks(), 2, seed);
    driver.run(&db, 300);
    db.flush_log();

    let cursor_before = bounded.cursor();
    let err = bounded
        .poll(&db)
        .expect_err("300 transactions must overrun a 16-entry lag bound");
    assert_eq!(err.max_lag, 16);
    assert!(
        err.committed_len - err.cursor > 16,
        "the error reports the actual lag: {err}"
    );
    assert_eq!(
        bounded.cursor(),
        cursor_before,
        "a lag error must not consume anything"
    );

    // catch-up from the held cursor: nothing was silently missed —
    // the bounded pipeline converges to the reference views exactly
    reference.poll(&db).expect("unbounded");
    bounded.poll_unbounded(&db);
    assert_eq!(
        bounded.views().encode(),
        reference.views().encode(),
        "resume after CdcLag loses no events"
    );
    assert_eq!(bounded.cursor(), reference.cursor());
}

#[test]
fn view_answers_stock_level_like_the_database() {
    let seed = 7;
    let db = loader::load(cdc_cfg(1), seed);
    let mut pipeline = CdcPipeline::new(&db);
    let driver = ParallelDriver::new(DriverConfig::default().with_spec_rollbacks(), 2, seed);
    driver.run(&db, 400);
    db.flush_log();
    pipeline.poll(&db).expect("unbounded");

    for d in 0..10 {
        for threshold in [10, 15, 20] {
            let from_view = pipeline
                .views()
                .stock_threshold
                .stock_level(0, d, threshold);
            let from_db = db.stock_level(0, d, threshold).low_stock;
            assert_eq!(
                from_view, from_db,
                "view-answered Stock-Level (d {d}, threshold {threshold}) must match the base-table join"
            );
        }
    }
}
