//! Long-run Delivery soak: under the paper's 43/44/4/5/4 mix the
//! Delivery stream continuously deletes the oldest NEW-ORDER row per
//! district while New-Order inserts at the head — the FIFO churn that
//! leaked pages before delete-side restructuring. With leaf merging
//! and the page free-list, the NEW-ORDER footprint (heap pages, index
//! pages, index height) must reach a steady state and stay within
//! ±1 page of it, and no *other* file may quietly leak: total
//! allocated pages minus the by-design-growing history tables
//! (ORDER, ORDER-LINE, HISTORY) must be flat too.

use tpcc_db::{loader, DbConfig, Driver, DriverConfig, TpccDb};
use tpcc_schema::relation::Relation;

/// Live pages not attributable to the relations that grow by design
/// under the TPC-C mix (ORDER / ORDER-LINE heaps and indexes, HISTORY
/// heap). Everything left — NEW-ORDER plus the static catalog
/// relations — must be flat at steady state.
fn stable_footprint(db: &TpccDb) -> u64 {
    let growing = u64::from(db.relation_allocated_pages(Relation::Order))
        + u64::from(db.relation_allocated_pages(Relation::OrderLine))
        + u64::from(db.relation_allocated_pages(Relation::History))
        + u64::from(db.index_footprint(Relation::Order).0)
        + u64::from(db.index_footprint(Relation::OrderLine).0);
    db.total_allocated_pages() - growing
}

fn band(label: &str, samples: &[u64], tolerance: u64) {
    let lo = *samples.iter().min().expect("samples");
    let hi = *samples.iter().max().expect("samples");
    assert!(
        hi - lo <= tolerance,
        "{label} drifts at steady state: min {lo}, max {hi} (tolerance {tolerance}) — {samples:?}"
    );
}

fn delivery_soak(seed: u64, pending_per_district: u64, transactions: u64, warmup: u64) {
    // a deep initial pending queue (the paper's Table 1 is ~900 per
    // district at full scale): the NEW-ORDER index starts several
    // leaves tall and the heap several pages deep, and the standard
    // mix drains it at ~0.07 rows/txn — the warmup IS the leak
    // scenario, pages must come back as the queue shrinks
    let mut cfg = DbConfig::small();
    cfg.initial_pending_per_district = pending_per_district;
    cfg.initial_orders_per_district = pending_per_district + 60;
    let mut db = loader::load(cfg, seed);
    let mut driver = Driver::new(&db, DriverConfig::default(), seed);

    driver.run(&mut db, warmup);

    let samples = 10u64;
    let chunk = (transactions - warmup) / samples;
    let mut heap_pages = Vec::new();
    let mut index_pages = Vec::new();
    let mut heights = Vec::new();
    let mut stable = Vec::new();
    for _ in 0..samples {
        driver.run(&mut db, chunk);
        heap_pages.push(u64::from(db.relation_allocated_pages(Relation::NewOrder)));
        let (pages, height) = db.index_footprint(Relation::NewOrder);
        index_pages.push(u64::from(pages));
        heights.push(height as u64);
        stable.push(stable_footprint(&db));
    }

    band("NEW-ORDER heap pages", &heap_pages, 1);
    band("NEW-ORDER index pages", &index_pages, 1);
    band("NEW-ORDER index height", &heights, 0);
    band("non-growing footprint", &stable, 2);

    // the steady state must come from reclamation, not from deletes
    // quietly not happening
    assert!(
        db.pages_freed() > 0,
        "a Delivery-heavy run must return pages to the free list"
    );
    assert!(
        db.pages_reused() > 0,
        "freed pages must cycle back through the allocator"
    );
}

#[test]
fn delivery_soak_reaches_steady_state() {
    // 1000 pending rows drain in ~14k transactions; sample the 5k after
    delivery_soak(7, 100, 20_000, 15_000);
}

/// Release-mode stress variant (CI runs `--ignored stress` with a seed
/// matrix via `TPCC_STRESS_SEED`): >= 50k transactions, the footprint
/// horizon of the ISSUE's acceptance bar.
#[test]
#[ignore = "stress: run with --ignored, seeded via TPCC_STRESS_SEED"]
fn stress_delivery_soak_stays_flat_over_50k_txns() {
    let seed = std::env::var("TPCC_STRESS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    delivery_soak(seed, 150, 50_000, 25_000);
}
