//! Initial database population (clause 4.3, scale-configurable).

use crate::db::{DbConfig, TpccDb};
use crate::keys;
use crate::names;
use crate::records::{
    CustomerRec, DistrictRec, ItemRec, NewOrderRec, OrderLineRec, OrderRec, StockRec, WarehouseRec,
};
use tpcc_rand::Xoshiro256;

/// Populates an empty database per the spec's load rules:
/// items, warehouses, districts, customers (first `name_count` get
/// their own last name, the rest draw NURand names), stock, and
/// `initial_orders_per_district` historical orders per district of
/// which the newest `initial_pending_per_district` are undelivered.
///
/// Returns the loaded database with buffer statistics reset, so the
/// first measured access pattern is the transaction workload's.
#[must_use]
pub fn load(cfg: DbConfig, seed: u64) -> TpccDb {
    let mut db = TpccDb::create(cfg);
    let mut rng = Xoshiro256::seed_from_u64(seed);

    load_items(&mut db, &mut rng);
    for w in 0..cfg.warehouses {
        load_warehouse(&mut db, w, &mut rng);
    }
    db.bm.flush_all();
    db.reset_stats();
    db.bm.with_disk_mut(tpcc_storage::DiskManager::reset_stats);
    if cfg.enable_wal {
        db.checkpoint = Some(db.bm.disk_snapshot());
        db.bm.enable_wal();
        if let Some(gc) = cfg.group_commit {
            db.bm.enable_group_commit(gc);
        }
    }
    // the simulated I/O service time applies to the measured workload
    // only, never to the (serial, write-mostly) load itself
    db.bm.set_io_delay_us(cfg.io_delay_us);
    db
}

fn load_items(db: &mut TpccDb, rng: &mut Xoshiro256) {
    for i in 0..db.cfg.items {
        let rec = ItemRec {
            i_id: i as u32,
            im_id: rng.uniform_inclusive(1, 10_000) as u32,
            price: rng.uniform_inclusive(100, 10_000) as f64 / 100.0,
            name: format!("item-{i}"),
            data: if rng.chance(0.10) {
                "ORIGINAL".into()
            } else {
                format!("data-{}", rng.next_u64() % 100_000)
            },
        };
        let rid = db.heaps.item.insert(&db.bm, &rec.encode());
        db.idx.item.insert(&db.bm, keys::item(i), rid.to_u64());
    }
}

fn load_warehouse(db: &mut TpccDb, w: u64, rng: &mut Xoshiro256) {
    let rec = WarehouseRec {
        w_id: w as u32,
        name: format!("W{w}"),
        city: "Hampton".into(),
        state: "VA".into(),
        zip: "236810001".into(),
        tax: rng.uniform_inclusive(0, 2000) as f64 / 10_000.0,
        ytd: 300_000.0,
    };
    let rid = db.heaps.warehouse.insert(&db.bm, &rec.encode());
    db.idx
        .warehouse
        .insert(&db.bm, keys::warehouse(w), rid.to_u64());

    for i in 0..db.cfg.items {
        let rec = StockRec {
            i_id: i as u32,
            w_id: w as u32,
            quantity: rng.uniform_inclusive(10, 100) as i32,
            ytd: 0,
            order_cnt: 0,
            remote_cnt: 0,
            dist_info: std::array::from_fn(|d| format!("s{w}d{d}")),
            data: if rng.chance(0.10) {
                "ORIGINAL".into()
            } else {
                "stockdata".into()
            },
        };
        let rid = db.heaps.stock.insert(&db.bm, &rec.encode());
        db.idx.stock.insert(&db.bm, keys::stock(w, i), rid.to_u64());
    }

    for d in 0..10 {
        load_district(db, w, d, rng);
    }
}

fn load_district(db: &mut TpccDb, w: u64, d: u64, rng: &mut Xoshiro256) {
    let cfg = db.cfg;
    let rec = DistrictRec {
        d_id: d as u32,
        w_id: w as u32,
        name: format!("D{d}"),
        city: "Hampton".into(),
        tax: rng.uniform_inclusive(0, 2000) as f64 / 10_000.0,
        ytd: 30_000.0,
        next_o_id: cfg.initial_orders_per_district as u32,
    };
    let rid = db.heaps.district.insert(&db.bm, &rec.encode());
    db.idx
        .district
        .insert(&db.bm, keys::district(w, d), rid.to_u64());

    // customers
    let name_count = cfg.name_count();
    for c in 0..cfg.customers_per_district {
        let name_id = if c < name_count {
            c
        } else {
            // NURand over the scaled name space (spec: NURand(255,0,999))
            tpcc_rand::NuRand::new(255, 0, name_count - 1).sample(rng)
        };
        let rec = CustomerRec {
            c_id: c as u32,
            d_id: d as u32,
            w_id: w as u32,
            first: format!("F{:06}", rng.next_u64() % 1_000_000),
            middle: "OE".into(),
            last: names::last_name(name_id),
            street: "1 Benchmark Way".into(),
            city: "Hampton".into(),
            phone: format!("{:016}", rng.next_u64() % 10_000_000_000_000_000),
            credit: if rng.chance(0.10) {
                "BC".into()
            } else {
                "GC".into()
            },
            credit_lim: 50_000.0,
            discount: rng.uniform_inclusive(0, 5000) as f64 / 10_000.0,
            balance: -10.0,
            ytd_payment: 10.0,
            payment_cnt: 1,
            delivery_cnt: 0,
            data: "customer data".into(),
        };
        let rid = db.heaps.customer.insert(&db.bm, &rec.encode());
        db.idx
            .customer
            .insert(&db.bm, keys::customer(w, d, c), rid.to_u64());
        db.idx
            .customer_name
            .insert(&db.bm, keys::customer_name(w, d, name_id, c), rid.to_u64());
    }

    // historical orders
    let orders = cfg.initial_orders_per_district;
    let pending_from = orders - cfg.initial_pending_per_district;
    for o in 0..orders {
        let c = o % cfg.customers_per_district;
        let entry_d = db.tick();
        let delivered = o < pending_from;
        let ol_cnt = 10u8;
        let order_rec = OrderRec {
            o_id: o as u32,
            c_id: c as u32,
            entry_d,
            carrier_id: if delivered {
                rng.uniform_inclusive(1, 10) as u8
            } else {
                0
            },
            ol_cnt,
            all_local: 1,
        };
        let rid = db.heaps.order.insert(&db.bm, &order_rec.encode());
        db.idx
            .order
            .insert(&db.bm, keys::order(w, d, o), rid.to_u64());
        db.idx
            .last_order
            .insert(&db.bm, keys::last_order(w, d, c), o);
        for line in 0..u64::from(ol_cnt) {
            let ol = OrderLineRec {
                o_id: o as u32,
                d_id: d as u16,
                w_id: w as u16,
                number: line as u16,
                i_id: rng.uniform_inclusive(0, cfg.items - 1) as u32,
                supply_w_id: w as u16,
                delivery_d: if delivered { entry_d } else { 0 },
                quantity: 5,
                amount: if delivered {
                    rng.uniform_inclusive(1, 999_999) as f64 / 100.0
                } else {
                    0.0
                },
                dist_info: format!("d{d}"),
            };
            let rid = db.heaps.order_line.insert(&db.bm, &ol.encode());
            db.idx
                .order_line
                .insert(&db.bm, keys::order_line(w, d, o, line), rid.to_u64());
        }
        if !delivered {
            let no = NewOrderRec {
                o_id: o as u32,
                d_id: d as u16,
                w_id: w as u16,
            };
            let rid = db.heaps.new_order.insert(&db.bm, &no.encode());
            db.idx
                .new_order
                .insert(&db.bm, keys::order(w, d, o), rid.to_u64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpcc_schema::relation::Relation;

    #[test]
    fn small_load_has_expected_cardinalities() {
        let cfg = DbConfig::small();
        let db = load(cfg, 1);
        assert_eq!(db.idx.item.len(&db.bm), cfg.items as usize);
        assert_eq!(
            db.idx.customer.len(&db.bm),
            (cfg.customers_per_district * 10) as usize
        );
        assert_eq!(
            db.idx.stock.len(&db.bm),
            cfg.items as usize,
            "one warehouse"
        );
        assert_eq!(
            db.idx.order.len(&db.bm),
            (cfg.initial_orders_per_district * 10) as usize
        );
        assert_eq!(
            db.idx.new_order.len(&db.bm),
            (cfg.initial_pending_per_district * 10) as usize
        );
        assert_eq!(
            db.idx.order_line.len(&db.bm),
            (cfg.initial_orders_per_district * 10 * 10) as usize
        );
    }

    #[test]
    fn loaded_records_decode() {
        let db = load(DbConfig::small(), 2);
        let rid = db
            .pk_lookup(Relation::Customer, keys::customer(0, 3, 7))
            .expect("customer exists");
        let rec = db.heaps.customer.get(&db.bm, rid).expect("live");
        let c = CustomerRec::decode(&rec);
        assert_eq!(c.c_id, 7);
        assert_eq!(c.d_id, 3);
        assert!(!c.last.is_empty());
    }

    #[test]
    fn name_index_finds_about_three_matches() {
        let db = load(DbConfig::small(), 3);
        // name 0 exists (customer 0 owns it plus NURand extras)
        let (lo, hi) = keys::customer_name_range(0, 0, 0);
        let mut matches = 0;
        db.idx.customer_name.scan_range(&db.bm, lo, hi, |_, _| {
            matches += 1;
            true
        });
        assert!(matches >= 1, "name 0 must have its guaranteed owner");
        assert!(matches <= 12, "suspiciously many matches: {matches}");
    }

    #[test]
    fn stats_reset_after_load() {
        let db = load(DbConfig::small(), 4);
        assert_eq!(db.relation_stats(Relation::Customer).misses, 0);
        assert_eq!(db.index_stats().hits, 0);
    }
}
