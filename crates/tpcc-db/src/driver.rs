//! A workload driver: generates spec-shaped inputs and executes the
//! transaction mix against a loaded database, reporting throughput-side
//! counts and the measured buffer behaviour.
//!
//! Input generation is factored into [`InputGen`] so the serial
//! [`Driver`] and the multi-terminal `parallel::ParallelDriver` draw
//! from the *same* random sequence: a one-terminal parallel run with
//! the driver's seed replays a serial run decision-for-decision (and
//! the tests assert the final database images are byte-identical).

use crate::db::TpccDb;
use crate::telemetry::Telemetry;
use crate::txns::{CustomerSelector, OrderLineReq};
use tpcc_obs::{CounterHandle, HistogramHandle, Label, MemoryRecorder, SnapshotWriter};
use tpcc_rand::{NuRand, Xoshiro256};
use tpcc_schema::relation::Relation;
use tpcc_storage::BufferStats;

/// Transaction-type display names, in mix order.
pub const TX_NAMES: [&str; 5] = [
    "new_order",
    "payment",
    "order_status",
    "delivery",
    "stock_level",
];

/// Driver configuration: the paper's mix and clause probabilities.
#[derive(Debug, Clone, Copy)]
pub struct DriverConfig {
    /// Mix fractions: New-Order, Payment, Order-Status, Delivery,
    /// Stock-Level (paper: 43/44/4/5/4).
    pub mix: [f64; 5],
    /// P(item supplied remotely)
    /// ([`tpcc_cost::distributed::REMOTE_STOCK_PROB`]).
    pub remote_stock_prob: f64,
    /// P(payment through a remote warehouse)
    /// ([`tpcc_cost::distributed::REMOTE_PAYMENT_PROB`]).
    pub remote_payment_prob: f64,
    /// P(customer selected by last name) (0.60).
    pub by_name_prob: f64,
    /// Items per order (paper: fixed 10).
    pub items_per_order: u64,
    /// Draw the item count uniformly from 5–15 per clause 2.4.1.3
    /// instead of using the fixed `items_per_order`. Off by default:
    /// the paper fixes 10 ("this assumption has no effect since we
    /// only report mean miss rates"), and the uniform draw has the
    /// same mean.
    pub spec_item_counts: bool,
    /// P(a New-Order carries an unused item and rolls back) — spec
    /// clause 2.4.1.4 says 1%; the paper ignores rollbacks, so the
    /// default here is 0.
    pub rollback_prob: f64,
}

impl Default for DriverConfig {
    fn default() -> Self {
        Self {
            mix: [0.43, 0.44, 0.04, 0.05, 0.04],
            // the clause probabilities come from the cost model's
            // shared constants, so the executed workload and the §5.3
            // distributed model cannot drift apart
            remote_stock_prob: tpcc_cost::distributed::REMOTE_STOCK_PROB,
            remote_payment_prob: tpcc_cost::distributed::REMOTE_PAYMENT_PROB,
            by_name_prob: 0.60,
            items_per_order: 10,
            spec_item_counts: false,
            rollback_prob: 0.0,
        }
    }
}

impl DriverConfig {
    /// The spec's 1% New-Order rollback rate.
    #[must_use]
    pub fn with_spec_rollbacks(mut self) -> Self {
        self.rollback_prob = 0.01;
        self
    }

    /// Clause 2.4.1.3's uniform 5–15 items per order (mean 10, like
    /// the paper's fixed count).
    #[must_use]
    pub fn with_spec_item_counts(mut self) -> Self {
        self.spec_item_counts = true;
        self
    }
}

/// One generated transaction request — everything random about it is
/// already decided, so executing it is deterministic.
#[derive(Debug, Clone)]
pub enum TxnInput {
    /// A New-Order request; a rollback round carries one unused item id
    /// in its last line (clause 2.4.1.4) and will abort on validation.
    NewOrder {
        /// Home warehouse.
        w: u64,
        /// District.
        d: u64,
        /// Customer placing the order.
        c: u64,
        /// Order lines.
        lines: Vec<OrderLineReq>,
    },
    /// A Payment request.
    Payment {
        /// Terminal's warehouse.
        w: u64,
        /// Terminal's district.
        d: u64,
        /// Customer's warehouse (≠ `w` for remote payments).
        cw: u64,
        /// Customer's district.
        cd: u64,
        /// Customer selection.
        selector: CustomerSelector,
        /// Amount charged.
        amount: f64,
    },
    /// An Order-Status request.
    OrderStatus {
        /// Warehouse.
        w: u64,
        /// District.
        d: u64,
        /// Customer selection.
        selector: CustomerSelector,
    },
    /// A Delivery request (all ten districts of `w`).
    Delivery {
        /// Warehouse.
        w: u64,
        /// Carrier assigned.
        carrier: u8,
    },
    /// A Stock-Level request.
    StockLevel {
        /// Warehouse.
        w: u64,
        /// District.
        d: u64,
        /// Low-stock threshold.
        threshold: i32,
    },
}

impl TxnInput {
    /// Index into [`TX_NAMES`] / mix arrays.
    #[must_use]
    pub fn type_index(&self) -> usize {
        match self {
            TxnInput::NewOrder { .. } => 0,
            TxnInput::Payment { .. } => 1,
            TxnInput::OrderStatus { .. } => 2,
            TxnInput::Delivery { .. } => 3,
            TxnInput::StockLevel { .. } => 4,
        }
    }
}

/// Generates spec-shaped transaction inputs. One instance = one
/// terminal's random stream; the draw order is part of the crate's
/// compatibility contract (seeded runs replay identically).
pub struct InputGen {
    cfg: DriverConfig,
    rng: Xoshiro256,
    customer_nu: NuRand,
    item_nu: NuRand,
    warehouses: u64,
    items: u64,
    name_count: u64,
}

impl InputGen {
    /// A generator whose NURand ranges match the database's scale.
    #[must_use]
    pub fn new(db: &TpccDb, cfg: DriverConfig, seed: u64) -> Self {
        Self::with_scale(
            cfg,
            seed,
            db.config().warehouses,
            db.config().customers_per_district,
            db.config().items,
            db.config().name_count(),
        )
    }

    /// A generator over an explicit scale — the cluster driver spans
    /// warehouses across several node databases, so no single
    /// [`TpccDb`] carries the global warehouse count.
    #[must_use]
    pub(crate) fn with_scale(
        cfg: DriverConfig,
        seed: u64,
        warehouses: u64,
        customers_per_district: u64,
        items: u64,
        name_count: u64,
    ) -> Self {
        let c = customers_per_district;
        let i = items;
        Self {
            cfg,
            rng: Xoshiro256::seed_from_u64(seed),
            // A constants scale with the range per clause 2.1.6
            customer_nu: NuRand::new(1023.min(c.next_power_of_two() - 1), 0, c - 1),
            item_nu: NuRand::new(8191.min(i.next_power_of_two() - 1), 0, i - 1),
            warehouses,
            items: i,
            name_count,
        }
    }

    /// Draws the next transaction of the mix.
    pub fn next_input(&mut self) -> TxnInput {
        match self.pick_type() {
            0 => self.gen_new_order(),
            1 => self.gen_payment(),
            2 => {
                let w = self.uniform_warehouse();
                let d = self.rng.uniform_inclusive(0, 9);
                let selector = self.selector();
                TxnInput::OrderStatus { w, d, selector }
            }
            3 => TxnInput::Delivery {
                w: self.uniform_warehouse(),
                carrier: self.rng.uniform_inclusive(1, 10) as u8,
            },
            _ => TxnInput::StockLevel {
                w: self.uniform_warehouse(),
                d: self.rng.uniform_inclusive(0, 9),
                threshold: self.rng.uniform_inclusive(10, 20) as i32,
            },
        }
    }

    fn pick_type(&mut self) -> usize {
        let mut u = self.rng.f64();
        for (i, &f) in self.cfg.mix.iter().enumerate() {
            if u < f {
                return i;
            }
            u -= f;
        }
        self.cfg.mix.len() - 1
    }

    fn uniform_warehouse(&mut self) -> u64 {
        self.rng.uniform_inclusive(0, self.warehouses - 1)
    }

    fn maybe_remote(&mut self, home: u64, prob: f64) -> u64 {
        let w = self.warehouses;
        if w > 1 && self.rng.chance(prob) {
            let other = self.rng.uniform_inclusive(0, w - 2);
            if other >= home {
                other + 1
            } else {
                other
            }
        } else {
            home
        }
    }

    fn selector(&mut self) -> CustomerSelector {
        if self.rng.chance(self.cfg.by_name_prob) {
            let names = self.name_count;
            let id = NuRand::new(255.min(names.next_power_of_two() - 1), 0, names - 1)
                .sample(&mut self.rng);
            CustomerSelector::ByName(id)
        } else {
            CustomerSelector::ById(self.customer_nu.sample(&mut self.rng))
        }
    }

    fn gen_new_order(&mut self) -> TxnInput {
        let w = self.uniform_warehouse();
        let d = self.rng.uniform_inclusive(0, 9);
        let c = self.customer_nu.sample(&mut self.rng);
        let count = if self.cfg.spec_item_counts {
            self.rng.uniform_inclusive(5, 15)
        } else {
            self.cfg.items_per_order
        };
        let mut lines: Vec<OrderLineReq> = (0..count)
            .map(|_| OrderLineReq {
                item: self.item_nu.sample(&mut self.rng),
                supply_warehouse: self.maybe_remote(w, self.cfg.remote_stock_prob),
                quantity: self.rng.uniform_inclusive(1, 10) as u16,
            })
            .collect();
        if self.rng.chance(self.cfg.rollback_prob) {
            // clause 2.4.1.4: the last line names an unused item
            lines.last_mut().expect("at least one line").item = self.items;
        }
        TxnInput::NewOrder { w, d, c, lines }
    }

    fn gen_payment(&mut self) -> TxnInput {
        let w = self.uniform_warehouse();
        let d = self.rng.uniform_inclusive(0, 9);
        let cw = self.maybe_remote(w, self.cfg.remote_payment_prob);
        let cd = if cw == w {
            d
        } else {
            self.rng.uniform_inclusive(0, 9)
        };
        let selector = self.selector();
        let amount = self.rng.uniform_inclusive(100, 500_000) as f64 / 100.0;
        TxnInput::Payment {
            w,
            d,
            cw,
            cd,
            selector,
            amount,
        }
    }
}

/// Run summary.
#[derive(Debug, Clone)]
pub struct DriverReport {
    /// Transactions executed per type (mix order).
    pub executed: [u64; 5],
    /// New orders placed.
    pub new_orders: u64,
    /// Orders delivered.
    pub deliveries: u64,
    /// New-Orders that rolled back on an unused item.
    pub rollbacks: u64,
    /// Buffer statistics per relation heap.
    pub relation_stats: Vec<(Relation, BufferStats)>,
    /// Aggregate index buffer statistics.
    pub index_stats: BufferStats,
}

impl DriverReport {
    /// Miss ratio for one relation's heap accesses; NaN when that
    /// relation was never accessed (render as "n/a", don't compare).
    #[must_use]
    pub fn miss_ratio(&self, relation: Relation) -> f64 {
        self.relation_stats
            .iter()
            .find(|(r, _)| *r == relation)
            .map_or(f64::NAN, |(_, s)| s.miss_ratio())
    }
}

/// Drives a database with randomized spec-shaped inputs.
pub struct Driver {
    gen: InputGen,
}

impl Driver {
    /// Creates a driver whose NURand ranges match the database's scale.
    #[must_use]
    pub fn new(db: &TpccDb, cfg: DriverConfig, seed: u64) -> Self {
        Self {
            gen: InputGen::new(db, cfg, seed),
        }
    }

    /// Executes `transactions` mixed transactions. With an
    /// observability handle attached to `db`, each transaction's
    /// wall-clock latency lands in a per-type histogram
    /// (`txn_latency_ns/<type>`) and per-type executed / rollback
    /// counters are kept.
    pub fn run(&mut self, db: &mut TpccDb, transactions: u64) -> DriverReport {
        self.run_observed(db, transactions, |_, _, _| Ok(()))
            .expect("no-op sink cannot fail")
    }

    /// Like [`Driver::run`], but additionally emits a JSON-lines
    /// metrics snapshot every `writer`-configured period: the driver
    /// reports each completed transaction to `writer`, which snapshots
    /// `recorder` on period boundaries. A final snapshot is always
    /// written. Attach `recorder` to `db` (via [`TpccDb::set_obs`])
    /// before calling, or the snapshots will be empty.
    ///
    /// # Errors
    /// Propagates write errors from the snapshot sink.
    pub fn run_snapshotting<W: std::io::Write>(
        &mut self,
        db: &mut TpccDb,
        transactions: u64,
        recorder: &MemoryRecorder,
        writer: &mut SnapshotWriter<W>,
    ) -> std::io::Result<DriverReport> {
        let report =
            self.run_observed(db, transactions, |done, _, _| writer.tick(recorder, done))?;
        writer.finish(recorder, transactions)?;
        Ok(report)
    }

    /// Like [`Driver::run`] with live windowed telemetry: each
    /// completed transaction lands in `telemetry`'s shard 0, and
    /// windows flush on every-K-transactions boundaries per the hub's
    /// [`TelemetryConfig`](crate::TelemetryConfig) (the serial driver
    /// has no flusher thread, so `every_ms` is ignored). The final
    /// partial window is flushed before this returns.
    pub fn run_timeseries(
        &mut self,
        db: &mut TpccDb,
        transactions: u64,
        telemetry: &std::sync::Arc<Telemetry>,
    ) -> DriverReport {
        let shard = telemetry.shard(0);
        let report = self
            .run_observed(db, transactions, |_, t, ns| {
                shard.lock().expect("telemetry shard").record(t, ns);
                telemetry.note_completion();
                Ok(())
            })
            .expect("no-op sink cannot fail");
        telemetry.finish();
        report
    }

    fn run_observed(
        &mut self,
        db: &mut TpccDb,
        transactions: u64,
        mut after_each: impl FnMut(u64, usize, u64) -> std::io::Result<()>,
    ) -> std::io::Result<DriverReport> {
        // handles are resolved once; the per-transaction hot path is an
        // atomic add / histogram record, not a name lookup
        let obs = db.obs().clone();
        let executed_c: [CounterHandle; 5] =
            std::array::from_fn(|t| obs.counter_handle("txn_executed", Label::Name(TX_NAMES[t])));
        let latency_h: [HistogramHandle; 5] = std::array::from_fn(|t| {
            obs.histogram_handle("txn_latency_ns", Label::Name(TX_NAMES[t]))
        });
        let rollback_c = obs.counter_handle("txn_rollbacks", Label::Name(TX_NAMES[0]));
        let trace = obs.trace_handle("txn");
        let mut executed = [0u64; 5];
        let mut new_orders = 0;
        let mut deliveries = 0;
        let mut rollbacks = 0;
        for done in 1..=transactions {
            let input = self.gen.next_input();
            let t = input.type_index();
            executed[t] += 1;
            executed_c[t].add(1);
            let t0 = std::time::Instant::now();
            match input {
                TxnInput::NewOrder { w, d, c, lines } => {
                    if db.new_order_checked(w, d, c, &lines).is_ok() {
                        new_orders += 1;
                    } else {
                        rollbacks += 1;
                        rollback_c.add(1);
                    }
                }
                TxnInput::Payment {
                    w,
                    d,
                    cw,
                    cd,
                    selector,
                    amount,
                } => {
                    let _ = db.payment(w, d, cw, cd, selector, amount);
                }
                TxnInput::OrderStatus { w, d, selector } => {
                    let _ = db.order_status(w, d, selector);
                }
                TxnInput::Delivery { w, carrier } => {
                    deliveries += db.delivery(w, carrier).delivered;
                }
                TxnInput::StockLevel { w, d, threshold } => {
                    let _ = db.stock_level(w, d, threshold);
                }
            }
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            latency_h[t].record(ns);
            trace.record(TX_NAMES[t], t0);
            after_each(done, t, ns)?;
        }
        Ok(DriverReport {
            executed,
            new_orders,
            deliveries,
            rollbacks,
            relation_stats: Relation::ALL
                .iter()
                .map(|&r| (r, db.relation_stats(r)))
                .collect(),
            index_stats: db.index_stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::DbConfig;
    use crate::loader;

    #[test]
    fn mixed_run_completes_and_counts() {
        let mut db = loader::load(DbConfig::small(), 11);
        let mut driver = Driver::new(&db, DriverConfig::default(), 12);
        let report = driver.run(&mut db, 2000);
        assert_eq!(report.executed.iter().sum::<u64>(), 2000);
        assert!(
            report.executed.iter().all(|&c| c > 0),
            "{:?}",
            report.executed
        );
        assert_eq!(report.new_orders, report.executed[0]);
        assert_eq!(report.rollbacks, 0, "rollbacks disabled by default");
        assert!(report.deliveries > 0);
    }

    #[test]
    fn spec_rollback_rate_observed() {
        let mut db = loader::load(DbConfig::small(), 17);
        let mut driver = Driver::new(&db, DriverConfig::default().with_spec_rollbacks(), 18);
        let report = driver.run(&mut db, 4000);
        let attempts = report.new_orders + report.rollbacks;
        let rate = report.rollbacks as f64 / attempts as f64;
        assert!((rate - 0.01).abs() < 0.01, "rollback rate {rate}");
        assert!(report.rollbacks > 0);
    }

    #[test]
    fn spec_item_counts_draw_uniform_5_to_15_with_mean_10() {
        let db = loader::load(DbConfig::small(), 19);
        let mut gen = InputGen::new(&db, DriverConfig::default().with_spec_item_counts(), 20);
        let mut counts: Vec<usize> = Vec::new();
        while counts.len() < 2000 {
            if let TxnInput::NewOrder { lines, .. } = gen.next_input() {
                counts.push(lines.len());
            }
        }
        assert!(counts.iter().all(|&n| (5..=15).contains(&n)));
        assert!(counts.iter().any(|&n| n != 10), "counts actually vary");
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!((mean - 10.0).abs() < 0.25, "mean {mean} ≈ 10 per 2.4.1.3");
    }

    #[test]
    fn fixed_item_count_is_the_default() {
        let db = loader::load(DbConfig::small(), 19);
        let mut gen = InputGen::new(&db, DriverConfig::default(), 20);
        for _ in 0..200 {
            if let TxnInput::NewOrder { lines, .. } = gen.next_input() {
                assert_eq!(lines.len(), 10);
            }
        }
    }

    #[test]
    fn buffer_stats_populated() {
        let mut db = loader::load(DbConfig::small(), 13);
        db.reset_stats();
        let mut driver = Driver::new(&db, DriverConfig::default(), 14);
        let report = driver.run(&mut db, 1000);
        let customer = report.miss_ratio(Relation::Customer);
        assert!((0.0..=1.0).contains(&customer));
        let total: u64 = report
            .relation_stats
            .iter()
            .map(|(_, s)| s.hits + s.misses)
            .sum();
        assert!(total > 1000, "heap accesses recorded: {total}");
        assert!(report.index_stats.hits + report.index_stats.misses > 0);
    }

    #[test]
    fn new_order_relation_stays_bounded_with_paper_mix() {
        let mut db = loader::load(DbConfig::small(), 15);
        let pending_before = db.relation_pages(Relation::NewOrder);
        let mut driver = Driver::new(&db, DriverConfig::default(), 16);
        let _ = driver.run(&mut db, 3000);
        // 5% deliveries x 10 >= 43% inserts: pages grow slowly if at all
        let pending_after = db.relation_pages(Relation::NewOrder);
        assert!(
            pending_after <= pending_before + 4,
            "new-order grew {pending_before} -> {pending_after}"
        );
    }

    #[test]
    fn observed_run_exports_latency_percentiles_and_relation_counters() {
        use std::sync::Arc;
        use tpcc_obs::{MemoryRecorder, Obs, SnapshotWriter};

        let recorder = Arc::new(MemoryRecorder::new());
        let mut cfg = DbConfig::small();
        cfg.buffer_frames = 48; // small pool: force misses and evictions
        let mut db = loader::load(cfg, 31);
        db.set_obs(Obs::new(recorder.clone()));
        db.reset_stats();
        let mut driver = Driver::new(&db, DriverConfig::default(), 32);
        let mut writer = SnapshotWriter::new(Vec::new(), 500);
        let report = driver
            .run_snapshotting(&mut db, 1200, &recorder, &mut writer)
            .expect("vec sink");
        assert_eq!(report.executed.iter().sum::<u64>(), 1200);

        let out = String::from_utf8(writer.into_inner()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "snapshots at 500, 1000 and final 1200");
        let last = lines.last().unwrap();
        // per-transaction-type latency percentiles
        for tx in TX_NAMES {
            assert!(
                last.contains(&format!("\"txn_latency_ns/{tx}\":{{\"count\":")),
                "{tx} histogram exported"
            );
        }
        assert!(last.contains("\"p50\":"));
        assert!(last.contains("\"p95\":"));
        assert!(last.contains("\"p99\":"));
        // per-relation buffer counters under relation names
        for key in [
            "\"buf_hits/stock\":",
            "\"buf_hits/customer\":",
            "\"buf_misses/order-line\":",
            "\"buf_hits/idx_customer\":",
            "\"buf_evictions/",
            "\"buf_writebacks/",
        ] {
            assert!(last.contains(key), "missing {key}");
        }
        // span hierarchy reached the storage layer
        assert!(last.contains("\"new_order/btree_lookup\":"));
        // histograms agree with the report
        let h = recorder
            .histogram("txn_latency_ns", tpcc_obs::Label::Name("new_order"))
            .expect("recorded");
        assert_eq!(h.count(), report.executed[0]);
    }

    #[test]
    fn unattached_db_reports_unobserved_miss_ratio_as_nan() {
        let db = loader::load(DbConfig::small(), 41);
        let report = DriverReport {
            executed: [0; 5],
            new_orders: 0,
            deliveries: 0,
            rollbacks: 0,
            relation_stats: Vec::new(),
            index_stats: db.index_stats(),
        };
        assert!(report.miss_ratio(Relation::Stock).is_nan());
        assert!(BufferStats::default().miss_ratio().is_nan());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut db = loader::load(DbConfig::small(), 21);
            let mut driver = Driver::new(&db, DriverConfig::default(), seed);
            driver.run(&mut db, 500).executed
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
