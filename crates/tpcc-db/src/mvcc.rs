//! MVCC write/read plumbing over `tpcc_storage::undo`: the write-side
//! transaction context (pre-image capture + in-transaction rollback)
//! and the snapshot-aware read helpers.
//!
//! # Write side
//!
//! A writer transaction (New-Order, Payment, Delivery) opens a
//! thread-local [`WriteCtx`] via [`TpccDb::begin_write`]. Every write
//! then goes through the wrappers below, which — only when `cfg.mvcc`
//! is on and a context is open — capture two things *before* mutating
//! the live bytes:
//!
//! * a **version chain** pre-image ([`UndoStore::record`]) for rows
//!   snapshot readers can reach (the versioned relations plus the
//!   `last_order` index values), and
//! * a logical **undo op** for *every* write, so
//!   [`TpccDb::abort_write`] can unwind the transaction in reverse —
//!   the restoring writes go through the ordinary heap/tree calls and
//!   are therefore WAL-logged page deltas themselves (compensation by
//!   redo: replaying forward + compensating deltas reproduces the
//!   abort, keeping crash sweeps exact).
//!
//! [`TpccDb::commit`] consumes the context after the commit record is
//! logged: [`UndoStore::commit`] stamps the pending chain entries and
//! publishes the new snapshot timestamp.
//!
//! With `cfg.mvcc` off (the default) every wrapper compiles down to
//! the raw storage call — the historical execution is preserved
//! byte-for-byte.
//!
//! # Read side
//!
//! [`TpccDb::snapshot`] pins a timestamp; [`TpccDb::read_row_at`] /
//! [`TpccDb::last_order_at`] read the live bytes first (under the
//! page's frame latch) and then resolve through the version chain, so
//! a reader holding only a [`Snapshot`] — and **zero logical locks** —
//! sees the newest committed version at or before its pin.
//!
//! Lock-order note: chain shard mutexes are only ever taken *after*
//! releasing page latches (reads) or *before* taking them (writer
//! record), never nested inside the lock manager's queues, so MVCC
//! adds no edge to the existing latch/lock order argument (DESIGN.md
//! §11).

use std::cell::RefCell;

use crate::db::TpccDb;
use tpcc_schema::relation::Relation;
use tpcc_storage::undo::{Snapshot, UndoStore, VersionKey};
use tpcc_storage::{BTree, RecordId};

/// Relations whose rows a snapshot reader can reach, and which
/// therefore carry version chains. `new_order` (delete-heavy, read
/// only by writers), `history` (never read), and `item` (immutable
/// after load) are exempt.
fn versioned(rel: Relation) -> bool {
    matches!(
        rel,
        Relation::Warehouse
            | Relation::District
            | Relation::Customer
            | Relation::Stock
            | Relation::Order
            | Relation::OrderLine
    )
}

/// The indexes writers insert into mid-transaction (abort must be able
/// to remove the fresh entries).
#[derive(Debug, Clone, Copy)]
pub(crate) enum TreeId {
    Order,
    NewOrder,
    OrderLine,
}

/// One logical write, recorded in execution order; abort replays the
/// list in reverse.
#[derive(Debug)]
enum UndoOp {
    /// In-place row update: restore `before`.
    HeapUpdate {
        rel: Relation,
        rid: RecordId,
        before: Vec<u8>,
    },
    /// Fresh row insert: delete it.
    HeapInsert { rel: Relation, rid: RecordId },
    /// Fresh index entry: delete it.
    IdxInsert { tree: TreeId, key: u64 },
    /// `last_order` value upsert: restore `prev` (delete if absent).
    LastOrderUpsert { key: u64, prev: Option<u64> },
}

/// Per-thread state of the writer transaction currently executing.
struct WriteCtx {
    /// Undo-store token owning this transaction's pending entries.
    token: u64,
    /// Logical writes, in order, for reverse-replay on abort.
    ops: Vec<UndoOp>,
    /// Version-chain keys touched (stamped at commit, GC'd after).
    keys: Vec<VersionKey>,
}

thread_local! {
    static CTX: RefCell<Option<WriteCtx>> = const { RefCell::new(None) };
}

/// Runs `f` on the open write context, if any.
fn with_ctx<R>(f: impl FnOnce(&mut WriteCtx) -> R) -> Option<R> {
    CTX.with(|c| c.borrow_mut().as_mut().map(f))
}

impl TpccDb {
    /// Pins a snapshot of the database as of the last committed writer.
    /// Reads through [`TpccDb::order_status_at`] /
    /// [`TpccDb::stock_level_at`] against the returned handle are
    /// repeatable and acquire no logical locks; dropping it releases
    /// the GC watermark pin.
    ///
    /// # Panics
    /// Panics unless the database was configured with
    /// [`crate::DbConfig::mvcc`].
    #[must_use]
    pub fn snapshot(&self) -> Snapshot<'_> {
        assert!(self.cfg.mvcc, "snapshot() requires DbConfig::mvcc");
        self.undo.pin()
    }

    /// The undo store (bench/test introspection: GC footprint, clock).
    #[must_use]
    pub fn undo_store(&self) -> &UndoStore {
        &self.undo
    }

    /// Opens the thread's write transaction (no-op with MVCC off).
    /// Every writer path calls this before its first write; the
    /// matching [`TpccDb::commit`] or [`TpccDb::abort_write`] closes
    /// it.
    pub(crate) fn begin_write(&self) {
        if !self.cfg.mvcc {
            return;
        }
        let token = self.undo.begin();
        CTX.with(|c| {
            let prev = c.borrow_mut().replace(WriteCtx {
                token,
                ops: Vec::new(),
                keys: Vec::new(),
            });
            debug_assert!(prev.is_none(), "nested write transaction");
        });
    }

    /// Commit-side half of the context: stamp + publish the pending
    /// versions. Called from [`TpccDb::commit`] after the commit record
    /// is logged; no-op when no context is open (MVCC off, loader,
    /// read-only paths).
    pub(crate) fn finish_write(&self) {
        let Some(ctx) = CTX.with(|c| c.borrow_mut().take()) else {
            return;
        };
        self.undo.commit(ctx.token, &ctx.keys);
    }

    /// Rolls the open write transaction back: replays the recorded ops
    /// in reverse through the ordinary (WAL-logged) write path, then
    /// drops the pending version-chain entries. Restoring the live
    /// bytes *before* unhooking the chain keeps concurrent snapshot
    /// readers correct at every instant of the abort.
    ///
    /// # Panics
    /// Panics when no write transaction is open, or when a restoring
    /// write fails (a bug: the rows were written by this very
    /// transaction under its own locks).
    pub(crate) fn abort_write(&self) {
        let ctx = CTX
            .with(|c| c.borrow_mut().take())
            .expect("abort_write without begin_write");
        for op in ctx.ops.iter().rev() {
            match op {
                UndoOp::HeapUpdate { rel, rid, before } => {
                    let ok = self.heaps.for_relation(*rel).update(&self.bm, *rid, before);
                    assert!(ok, "abort restore of {rel:?} row must succeed");
                }
                UndoOp::HeapInsert { rel, rid } => {
                    let ok = self.heaps.for_relation(*rel).delete(&self.bm, *rid);
                    assert!(ok, "abort delete of fresh {rel:?} row must succeed");
                }
                UndoOp::IdxInsert { tree, key } => {
                    let prev = self.tree(*tree).delete(&self.bm, *key);
                    debug_assert!(prev.is_some(), "fresh index entry must exist");
                }
                UndoOp::LastOrderUpsert { key, prev } => match prev {
                    Some(p) => {
                        self.idx.last_order.insert(&self.bm, *key, *p);
                    }
                    None => {
                        self.idx.last_order.delete(&self.bm, *key);
                    }
                },
            }
        }
        self.undo.abort(ctx.token, &ctx.keys);
    }

    fn tree(&self, t: TreeId) -> &BTree {
        match t {
            TreeId::Order => &self.idx.order,
            TreeId::NewOrder => &self.idx.new_order,
            TreeId::OrderLine => &self.idx.order_line,
        }
    }

    /// In-place row update, capturing the pre-image (chain + undo op)
    /// when a write transaction is open.
    pub(crate) fn heap_update(&self, rel: Relation, rid: RecordId, after: &[u8]) -> bool {
        let heap = self.heaps.for_relation(rel);
        if self.cfg.mvcc {
            with_ctx(|ctx| {
                let before = heap.get(&self.bm, rid).expect("live row under update");
                if versioned(rel) {
                    let key = (heap.file(), rid.to_u64());
                    self.undo.record(ctx.token, key, Some(&before));
                    ctx.keys.push(key);
                }
                ctx.ops.push(UndoOp::HeapUpdate { rel, rid, before });
            });
        }
        heap.update(&self.bm, rid, after)
    }

    /// Row insert, recorded for abort. Fresh rows need no version
    /// chain: snapshot readers reach rows only through index entries
    /// that existed at their pin, and an in-flight order's ids sort
    /// outside every pinned reader's scan range (DESIGN.md §11).
    pub(crate) fn heap_insert(&self, rel: Relation, bytes: &[u8]) -> RecordId {
        let rid = self.heaps.for_relation(rel).insert(&self.bm, bytes);
        if self.cfg.mvcc {
            with_ctx(|ctx| ctx.ops.push(UndoOp::HeapInsert { rel, rid }));
        }
        rid
    }

    /// Fresh primary-index entry, recorded for abort.
    pub(crate) fn index_insert(&self, tree: TreeId, key: u64, rid: u64) {
        let prev = self.tree(tree).insert(&self.bm, key, rid);
        debug_assert!(prev.is_none(), "pk index insert must be fresh");
        if self.cfg.mvcc {
            with_ctx(|ctx| ctx.ops.push(UndoOp::IdxInsert { tree, key }));
        }
    }

    /// `last_order` value upsert. The index *value* is versioned (the
    /// only index whose values snapshot readers interpret), so the
    /// previous value is chained before the overwrite.
    pub(crate) fn last_order_upsert(&self, key: u64, o_id: u64) {
        if self.cfg.mvcc {
            with_ctx(|ctx| {
                let prev = self.idx.last_order.get(&self.bm, key);
                let vkey = (self.idx.last_order.file(), key);
                let enc = prev.map(u64::to_le_bytes);
                self.undo
                    .record(ctx.token, vkey, enc.as_ref().map(|b| b.as_slice()));
                ctx.keys.push(vkey);
                ctx.ops.push(UndoOp::LastOrderUpsert { key, prev });
            });
        }
        self.idx.last_order.insert(&self.bm, key, o_id);
    }

    /// Reads a row as of `snap` (live read when `None` or the relation
    /// is unversioned): live bytes first, then the version chain.
    pub(crate) fn read_row_at(
        &self,
        rel: Relation,
        rid: RecordId,
        snap: Option<&Snapshot>,
    ) -> Option<Vec<u8>> {
        let heap = self.heaps.for_relation(rel);
        let live = heap.get(&self.bm, rid);
        match snap {
            Some(s) if versioned(rel) => {
                self.undo.visible((heap.file(), rid.to_u64()), s.ts(), live)
            }
            _ => live,
        }
    }

    /// Reads a customer's `last_order` value as of `snap`.
    pub(crate) fn last_order_at(&self, key: u64, snap: Option<&Snapshot>) -> Option<u64> {
        let live = self.idx.last_order.get(&self.bm, key);
        match snap {
            Some(s) => self
                .undo
                .visible(
                    (self.idx.last_order.file(), key),
                    s.ts(),
                    live.map(|v| v.to_le_bytes().to_vec()),
                )
                .map(|b| u64::from_le_bytes(b.as_slice().try_into().expect("8-byte value"))),
            None => live,
        }
    }
}
