//! The five TPC-C transactions, executed against the storage engine
//! (paper §2.2's call sequences, with real record contents).

use crate::db::TpccDb;
use crate::keys;
use crate::mvcc::TreeId;
use crate::records::{
    CustomerRec, DistrictRec, HistoryRec, ItemRec, NewOrderRec, OrderLineRec, OrderRec, StockRec,
    WarehouseRec,
};
use tpcc_schema::relation::Relation;
use tpcc_storage::undo::Snapshot;
use tpcc_storage::RecordId;

/// One ordered line of a New-Order request.
#[derive(Debug, Clone, Copy)]
pub struct OrderLineReq {
    /// Item ordered.
    pub item: u64,
    /// Supplying warehouse.
    pub supply_warehouse: u64,
    /// Quantity (spec: uniform 1–10).
    pub quantity: u16,
}

/// New-Order output.
#[derive(Debug, Clone)]
pub struct NewOrderResult {
    /// Assigned order number.
    pub o_id: u64,
    /// Total order amount after discount and taxes.
    pub total_amount: f64,
    /// Per-line amounts.
    pub line_amounts: Vec<f64>,
}

/// Payment output.
#[derive(Debug, Clone)]
pub struct PaymentResult {
    /// The customer charged (resolved id for by-name requests).
    pub c_id: u64,
    /// Customer balance after the payment.
    pub balance: f64,
    /// Rows the customer selection touched (1 by id, ~3 by name).
    pub rows_matched: usize,
}

/// Order-Status output.
#[derive(Debug, Clone)]
pub struct OrderStatusResult {
    /// Resolved customer.
    pub c_id: u64,
    /// Their most recent order, if any.
    pub o_id: Option<u64>,
    /// `(item, quantity, amount, delivery_date)` per line.
    pub lines: Vec<(u64, u16, f64, u64)>,
}

/// Delivery output.
#[derive(Debug, Clone)]
pub struct DeliveryResult {
    /// Orders delivered (≤ 10; districts with an empty queue skip).
    pub delivered: u64,
    /// The order number delivered per district (None = queue empty).
    pub per_district: [Option<u64>; 10],
}

/// Stock-Level output.
#[derive(Debug, Clone, Copy)]
pub struct StockLevelResult {
    /// Distinct items under the threshold among the last 20 orders.
    pub low_stock: u64,
    /// Order-line rows scanned (the paper's ~200).
    pub lines_scanned: u64,
}

/// A New-Order abort: clause 2.4.1.4's "unused item number" rollback
/// (1% of New-Order transactions are given one invalid item id and
/// must roll back after their reads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NewOrderAborted {
    /// Index of the offending line.
    pub bad_line: usize,
}

impl std::fmt::Display for NewOrderAborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "new-order aborted: line {} names an unused item",
            self.bad_line
        )
    }
}

impl std::error::Error for NewOrderAborted {}

/// The New-Order stock mutation (clause 2.4.2.2's restock rule plus
/// the ytd / order-count / remote-count bumps), shared by the local
/// transaction body and the cluster's remote-participant path so the
/// two can never drift.
pub(crate) fn apply_stock_update(stock: &mut StockRec, quantity: u16, remote: bool) {
    // clause 2.4.2.2: restock when the level would fall below 10
    if stock.quantity >= i32::from(quantity) + 10 {
        stock.quantity -= i32::from(quantity);
    } else {
        stock.quantity += 91 - i32::from(quantity);
    }
    stock.ytd += u64::from(quantity);
    stock.order_cnt += 1;
    if remote {
        stock.remote_cnt += 1;
    }
}

/// How Payment / Order-Status select the customer.
#[derive(Debug, Clone, Copy)]
pub enum CustomerSelector {
    /// Unique select by customer id.
    ById(u64),
    /// Non-unique select by last-name id; the median-by-first-name row
    /// (clause 2.5.2.2) is the one charged.
    ByName(u64),
}

impl TpccDb {
    fn read_customer(&self, rid: RecordId) -> CustomerRec {
        self.read_customer_at(rid, None)
    }

    fn read_customer_at(&self, rid: RecordId, snap: Option<&Snapshot>) -> CustomerRec {
        let buf = self
            .read_row_at(Relation::Customer, rid, snap)
            .expect("live customer");
        CustomerRec::decode(&buf)
    }

    /// Resolves a selector to the target customer `(rid, record)`,
    /// implementing the by-name path: fetch all matches via the name
    /// index, sort by first name, take the median row. The name index
    /// and the names themselves are immutable after load, so only the
    /// row reads need the snapshot.
    pub(crate) fn resolve_customer(
        &self,
        w: u64,
        d: u64,
        selector: CustomerSelector,
    ) -> (RecordId, CustomerRec, usize) {
        self.resolve_customer_at(w, d, selector, None)
    }

    fn resolve_customer_at(
        &self,
        w: u64,
        d: u64,
        selector: CustomerSelector,
        snap: Option<&Snapshot>,
    ) -> (RecordId, CustomerRec, usize) {
        match selector {
            CustomerSelector::ById(c) => {
                self.check_scale(w, d, Some(c), None);
                let rid = self
                    .pk_lookup(Relation::Customer, keys::customer(w, d, c))
                    .expect("customer exists");
                let rec = self.read_customer_at(rid, snap);
                (rid, rec, 1)
            }
            CustomerSelector::ByName(name_id) => {
                let (lo, hi) = keys::customer_name_range(w, d, name_id);
                let mut rids: Vec<RecordId> = Vec::new();
                self.idx.customer_name.scan_range(&self.bm, lo, hi, |_, v| {
                    rids.push(RecordId::from_u64(v));
                    true
                });
                assert!(
                    !rids.is_empty(),
                    "every name id has at least one owner by construction"
                );
                let mut matches: Vec<(RecordId, CustomerRec)> = rids
                    .into_iter()
                    .map(|rid| (rid, self.read_customer_at(rid, snap)))
                    .collect();
                matches.sort_by(|a, b| a.1.first.cmp(&b.1.first));
                let n = matches.len();
                let median = n.div_ceil(2) - 1; // position ⌈n/2⌉, 1-based
                let (rid, rec) = matches.swap_remove(median);
                (rid, rec, n)
            }
        }
    }

    /// Resolves a selector to the target customer id without executing
    /// a transaction. The answer is stable under concurrency: by-name
    /// resolution orders the (immutable) first names of an (immutable
    /// after load) match set, so the parallel driver can pre-resolve
    /// the id to lock before acquiring anything.
    pub(crate) fn resolve_customer_id(&self, w: u64, d: u64, selector: CustomerSelector) -> u64 {
        match selector {
            CustomerSelector::ById(c) => c,
            CustomerSelector::ByName(_) => {
                let (_, rec, _) = self.resolve_customer(w, d, selector);
                u64::from(rec.c_id)
            }
        }
    }

    /// New-Order (§2.2): places an order of `lines` items for customer
    /// `(w, d, c)`.
    ///
    /// # Panics
    /// Panics on ids beyond the configured scale or an empty line list.
    pub fn new_order(&self, w: u64, d: u64, c: u64, lines: &[OrderLineReq]) -> NewOrderResult {
        self.begin_write();
        match self.new_order_body(w, d, c, lines, false) {
            Ok(r) => r,
            Err(_) => unreachable!("validation off: bad items panic via check_scale"),
        }
    }

    /// The New-Order write sequence. With `validate` on, each line's
    /// item id is checked at its read point (clause 2.4.1.4's "unused
    /// item" discovery); a bad line returns `Err` with every prior
    /// write still applied — the caller aborts via the undo log. With
    /// `validate` off, a bad item panics in `check_scale` as ever.
    fn new_order_body(
        &self,
        w: u64,
        d: u64,
        c: u64,
        lines: &[OrderLineReq],
        validate: bool,
    ) -> Result<NewOrderResult, NewOrderAborted> {
        assert!(!lines.is_empty(), "an order needs at least one line");
        let _span = self.bm.obs().span("new_order");
        self.check_scale(w, d, Some(c), None);

        // 1. warehouse tax
        let w_rid = self
            .pk_lookup(Relation::Warehouse, keys::warehouse(w))
            .expect("warehouse exists");
        let warehouse =
            WarehouseRec::decode(&self.heaps.warehouse.get(&self.bm, w_rid).expect("live"));

        // 2-3. district: read then bump next_o_id
        let d_rid = self
            .pk_lookup(Relation::District, keys::district(w, d))
            .expect("district exists");
        let mut district =
            DistrictRec::decode(&self.heaps.district.get(&self.bm, d_rid).expect("live"));
        let o_id = u64::from(district.next_o_id);
        district.next_o_id += 1;
        self.heap_update(Relation::District, d_rid, &district.encode());

        // 4. customer discount
        let c_rid = self
            .pk_lookup(Relation::Customer, keys::customer(w, d, c))
            .expect("customer exists");
        let customer = self.read_customer(c_rid);

        // 5-6. order + new-order rows
        let entry_d = self.tick();
        let all_local = lines.iter().all(|l| l.supply_warehouse == w);
        let order = OrderRec {
            o_id: o_id as u32,
            c_id: c as u32,
            entry_d,
            carrier_id: 0,
            ol_cnt: lines.len() as u8,
            all_local: u8::from(all_local),
        };
        let o_heap_rid = self.heap_insert(Relation::Order, &order.encode());
        self.index_insert(TreeId::Order, keys::order(w, d, o_id), o_heap_rid.to_u64());
        self.last_order_upsert(keys::last_order(w, d, c), o_id);
        let no = NewOrderRec {
            o_id: o_id as u32,
            d_id: d as u16,
            w_id: w as u16,
        };
        let no_rid = self.heap_insert(Relation::NewOrder, &no.encode());
        self.index_insert(TreeId::NewOrder, keys::order(w, d, o_id), no_rid.to_u64());

        // 7. per item: item read, stock read+update, order-line insert
        let mut line_amounts = Vec::with_capacity(lines.len());
        for (number, line) in lines.iter().enumerate() {
            if validate
                && !(line.item < self.cfg.items
                    && self
                        .pk_lookup(Relation::Item, keys::item(line.item))
                        .is_some())
            {
                // clause 2.4.1.4: discovered at the item read, after
                // this transaction already wrote — the caller unwinds
                return Err(NewOrderAborted { bad_line: number });
            }
            self.check_scale(line.supply_warehouse, d, None, Some(line.item));
            let i_rid = self
                .pk_lookup(Relation::Item, keys::item(line.item))
                .expect("item exists");
            let item = ItemRec::decode(&self.heaps.item.get(&self.bm, i_rid).expect("live"));

            let s_rid = self
                .pk_lookup(
                    Relation::Stock,
                    keys::stock(line.supply_warehouse, line.item),
                )
                .expect("stock exists");
            let mut stock = StockRec::decode(&self.heaps.stock.get(&self.bm, s_rid).expect("live"));
            apply_stock_update(&mut stock, line.quantity, line.supply_warehouse != w);
            let dist_info = stock.dist_info[d as usize].clone();
            self.heap_update(Relation::Stock, s_rid, &stock.encode());

            let amount = f64::from(line.quantity) * item.price;
            line_amounts.push(amount);
            let ol = OrderLineRec {
                o_id: o_id as u32,
                d_id: d as u16,
                w_id: w as u16,
                number: number as u16,
                i_id: line.item as u32,
                supply_w_id: line.supply_warehouse as u16,
                delivery_d: 0,
                quantity: line.quantity,
                amount,
                dist_info,
            };
            let ol_rid = self.heap_insert(Relation::OrderLine, &ol.encode());
            self.index_insert(
                TreeId::OrderLine,
                keys::order_line(w, d, o_id, number as u64),
                ol_rid.to_u64(),
            );
        }
        let subtotal: f64 = line_amounts.iter().sum();
        let total_amount =
            subtotal * (1.0 - customer.discount) * (1.0 + warehouse.tax + district.tax);
        self.commit();
        Ok(NewOrderResult {
            o_id,
            total_amount,
            line_amounts,
        })
    }

    /// New-Order with the spec's rollback semantics: if any line names
    /// an item that does not exist, the transaction aborts leaving no
    /// logical writes (clause 2.4.1.4).
    ///
    /// With MVCC on, this is a real abort: the transaction executes
    /// normally, discovers the unused item at that line's read, and
    /// unwinds its district bump, order/index inserts, and stock
    /// updates through the undo log ([`TpccDb::abort_write`]) — the
    /// compensating writes are ordinary WAL-logged page deltas, so the
    /// disk carries the abort's physical trace but no committed
    /// effect. With MVCC off, the historical validate-then-apply path
    /// is preserved byte-for-byte: item existence is probed through
    /// the item index before any write.
    ///
    /// # Errors
    /// [`NewOrderAborted`] naming the first invalid line.
    pub fn new_order_checked(
        &self,
        w: u64,
        d: u64,
        c: u64,
        lines: &[OrderLineReq],
    ) -> Result<NewOrderResult, NewOrderAborted> {
        self.check_scale(w, d, Some(c), None);
        if self.cfg.mvcc {
            self.begin_write();
            return match self.new_order_body(w, d, c, lines, true) {
                Ok(r) => Ok(r), // the body committed
                Err(e) => {
                    self.abort_write();
                    Err(e)
                }
            };
        }
        // the reads a rolled-back transaction still performs
        let _ = self.pk_lookup(Relation::Warehouse, keys::warehouse(w));
        let _ = self.pk_lookup(Relation::District, keys::district(w, d));
        let _ = self.pk_lookup(Relation::Customer, keys::customer(w, d, c));
        for (bad_line, line) in lines.iter().enumerate() {
            let exists = line.item < self.cfg.items
                && self
                    .pk_lookup(Relation::Item, keys::item(line.item))
                    .is_some();
            if !exists {
                return Err(NewOrderAborted { bad_line });
            }
        }
        Ok(self.new_order(w, d, c, lines))
    }

    /// Payment (§2.2): charges `amount` to the selected customer of
    /// `(cw, cd)` through the terminal's `(w, d)`.
    pub fn payment(
        &self,
        w: u64,
        d: u64,
        cw: u64,
        cd: u64,
        selector: CustomerSelector,
        amount: f64,
    ) -> PaymentResult {
        self.check_scale(w, d, None, None);
        let _span = self.bm.obs().span("payment");
        self.begin_write();

        let w_rid = self
            .pk_lookup(Relation::Warehouse, keys::warehouse(w))
            .expect("warehouse exists");
        let mut warehouse =
            WarehouseRec::decode(&self.heaps.warehouse.get(&self.bm, w_rid).expect("live"));
        let d_rid = self
            .pk_lookup(Relation::District, keys::district(w, d))
            .expect("district exists");
        let mut district =
            DistrictRec::decode(&self.heaps.district.get(&self.bm, d_rid).expect("live"));

        let (c_rid, mut customer, rows_matched) = self.resolve_customer(cw, cd, selector);

        warehouse.ytd += amount;
        self.heap_update(Relation::Warehouse, w_rid, &warehouse.encode());
        district.ytd += amount;
        self.heap_update(Relation::District, d_rid, &district.encode());
        customer.balance -= amount;
        customer.ytd_payment += amount;
        customer.payment_cnt += 1;
        self.heap_update(Relation::Customer, c_rid, &customer.encode());

        let date = self.tick();
        let history = HistoryRec {
            c_id: customer.c_id,
            c_d_id: cd as u16,
            c_w_id: cw as u16,
            d_id: d as u16,
            w_id: w as u16,
            date,
            amount,
            data: "payment".into(),
        };
        self.heap_insert(Relation::History, &history.encode());
        self.commit();

        PaymentResult {
            c_id: u64::from(customer.c_id),
            balance: customer.balance,
            rows_matched,
        }
    }

    /// Order-Status (§2.2): the customer's most recent order and its
    /// lines.
    pub fn order_status(&self, w: u64, d: u64, selector: CustomerSelector) -> OrderStatusResult {
        self.order_status_inner(w, d, selector, None)
    }

    /// Order-Status against a pinned snapshot ([`TpccDb::snapshot`]):
    /// reads resolve through the version chains, so the result is a
    /// consistent cut as of the pin and the caller needs **no logical
    /// locks** — concurrent Payments/Deliveries to the same customer
    /// are invisible rather than blocking.
    pub fn order_status_at(
        &self,
        snap: &Snapshot<'_>,
        w: u64,
        d: u64,
        selector: CustomerSelector,
    ) -> OrderStatusResult {
        self.order_status_inner(w, d, selector, Some(snap))
    }

    fn order_status_inner(
        &self,
        w: u64,
        d: u64,
        selector: CustomerSelector,
        snap: Option<&Snapshot>,
    ) -> OrderStatusResult {
        let _span = self.bm.obs().span("order_status");
        let (_, customer, _) = self.resolve_customer_at(w, d, selector, snap);
        let c = u64::from(customer.c_id);
        let Some(o_id) = self.last_order_at(keys::last_order(w, d, c), snap) else {
            return OrderStatusResult {
                c_id: c,
                o_id: None,
                lines: Vec::new(),
            };
        };
        // single indexed select for the Max(order-id) row (§2.2);
        // pk entries are insert-only, so the entry for an order visible
        // at the snapshot always exists
        let o_rid = self
            .pk_lookup(Relation::Order, keys::order(w, d, o_id))
            .expect("last order row exists");
        let order = OrderRec::decode(
            &self
                .read_row_at(Relation::Order, o_rid, snap)
                .expect("live"),
        );
        let (lo, hi) = keys::order_line_range(w, d, o_id);
        let mut rids = Vec::with_capacity(usize::from(order.ol_cnt));
        self.idx.order_line.scan_range(&self.bm, lo, hi, |_, v| {
            rids.push(RecordId::from_u64(v));
            true
        });
        let lines = rids
            .into_iter()
            .map(|rid| {
                let ol = OrderLineRec::decode(
                    &self
                        .read_row_at(Relation::OrderLine, rid, snap)
                        .expect("live"),
                );
                (u64::from(ol.i_id), ol.quantity, ol.amount, ol.delivery_d)
            })
            .collect();
        OrderStatusResult {
            c_id: c,
            o_id: Some(o_id),
            lines,
        }
    }

    /// Delivery (§2.2): delivers the oldest pending order of every
    /// district of `w`.
    pub fn delivery(&self, w: u64, carrier_id: u8) -> DeliveryResult {
        self.check_scale(w, 0, None, None);
        let _span = self.bm.obs().span("delivery");
        self.begin_write();
        let mut per_district = [None; 10];
        let mut delivered = 0;
        for d in 0..10u64 {
            per_district[d as usize] = self.delivery_district(w, d, carrier_id);
            delivered += u64::from(per_district[d as usize].is_some());
        }
        self.commit();
        DeliveryResult {
            delivered,
            per_district,
        }
    }

    /// The oldest pending order of district `(w, d)` and its customer,
    /// without delivering it — the parallel driver peeks here to build
    /// the lockset for one per-district delivery sub-transaction.
    pub(crate) fn peek_oldest_pending(&self, w: u64, d: u64) -> Option<(u64, u64)> {
        let (no_key, _) = self
            .idx
            .new_order
            .min_at_or_after(&self.bm, keys::order_lo(w, d))
            .filter(|(k, _)| *k < keys::order_hi(w, d))?;
        let o_id = keys::order_number(no_key);
        let o_rid = self.pk_lookup(Relation::Order, keys::order(w, d, o_id))?;
        let order = OrderRec::decode(&self.heaps.order.get(&self.bm, o_rid).expect("live"));
        Some((o_id, u64::from(order.c_id)))
    }

    /// One district's slice of a Delivery: deliver the oldest pending
    /// order of `(w, d)`, or skip when the queue is empty. Returns the
    /// delivered order number. [`TpccDb::delivery`] runs this for all
    /// ten districts; the parallel driver runs each district as its own
    /// sub-transaction (locked and committed separately), which is how
    /// the spec frames deferred delivery anyway.
    pub(crate) fn delivery_district(&self, w: u64, d: u64, carrier_id: u8) -> Option<u64> {
        // min-select on the New-Order index
        let (no_key, no_val) = self
            .idx
            .new_order
            .min_at_or_after(&self.bm, keys::order_lo(w, d))
            .filter(|(k, _)| *k < keys::order_hi(w, d))?;
        let o_id = keys::order_number(no_key);
        // delete the pending marker (index + heap row) — raw calls:
        // NEW-ORDER is unversioned (no snapshot reader touches it) and
        // Delivery never aborts
        self.idx.new_order.delete(&self.bm, no_key);
        self.heaps
            .new_order
            .delete(&self.bm, RecordId::from_u64(no_val));

        // order: read + set carrier
        let o_rid = self
            .pk_lookup(Relation::Order, keys::order(w, d, o_id))
            .expect("order exists");
        let mut order = OrderRec::decode(&self.heaps.order.get(&self.bm, o_rid).expect("live"));
        order.carrier_id = carrier_id;
        self.heap_update(Relation::Order, o_rid, &order.encode());

        // order lines: read + stamp delivery date, sum amounts
        let date = self.tick();
        let (lo, hi) = keys::order_line_range(w, d, o_id);
        let mut rids = Vec::with_capacity(usize::from(order.ol_cnt));
        self.idx.order_line.scan_range(&self.bm, lo, hi, |_, v| {
            rids.push(RecordId::from_u64(v));
            true
        });
        let mut total = 0.0;
        for rid in rids {
            let mut ol =
                OrderLineRec::decode(&self.heaps.order_line.get(&self.bm, rid).expect("live"));
            ol.delivery_d = date;
            total += ol.amount;
            self.heap_update(Relation::OrderLine, rid, &ol.encode());
        }

        // customer: credit the balance
        let c_rid = self
            .pk_lookup(
                Relation::Customer,
                keys::customer(w, d, u64::from(order.c_id)),
            )
            .expect("customer exists");
        let mut customer = self.read_customer(c_rid);
        customer.balance += total;
        customer.delivery_cnt += 1;
        self.heap_update(Relation::Customer, c_rid, &customer.encode());

        Some(o_id)
    }

    /// Stock-Level (§2.2): distinct items of the district's last 20
    /// orders whose stock is below `threshold`.
    pub fn stock_level(&self, w: u64, d: u64, threshold: i32) -> StockLevelResult {
        self.stock_level_inner(w, d, threshold, None)
    }

    /// Stock-Level against a pinned snapshot ([`TpccDb::snapshot`]):
    /// the 200-row join runs lock-free against the consistent cut at
    /// the pin. The scanned window `[next-20, next)` is derived from
    /// the district version visible at the snapshot; every order in it
    /// committed at or before the pin (id allocation is serialized by
    /// the district writers, and aborts un-burn their ids), and
    /// in-flight orders sort at or beyond `next` — outside the scan.
    pub fn stock_level_at(
        &self,
        snap: &Snapshot<'_>,
        w: u64,
        d: u64,
        threshold: i32,
    ) -> StockLevelResult {
        self.stock_level_inner(w, d, threshold, Some(snap))
    }

    fn stock_level_inner(
        &self,
        w: u64,
        d: u64,
        threshold: i32,
        snap: Option<&Snapshot>,
    ) -> StockLevelResult {
        self.check_scale(w, d, None, None);
        let _span = self.bm.obs().span("stock_level");
        let d_rid = self
            .pk_lookup(Relation::District, keys::district(w, d))
            .expect("district exists");
        let district = DistrictRec::decode(
            &self
                .read_row_at(Relation::District, d_rid, snap)
                .expect("live"),
        );
        let next = u64::from(district.next_o_id);
        let from = next.saturating_sub(20);

        // join: range-scan the order lines, indexed-select each stock row
        let (lo, _) = keys::order_line_range(w, d, from);
        let (hi, _) = keys::order_line_range(w, d, next);
        let mut ol_rids = Vec::new();
        self.idx.order_line.scan_range(&self.bm, lo, hi, |_, v| {
            ol_rids.push(RecordId::from_u64(v));
            true
        });
        let mut low = std::collections::BTreeSet::new();
        let lines_scanned = ol_rids.len() as u64;
        for rid in ol_rids {
            let ol = OrderLineRec::decode(
                &self
                    .read_row_at(Relation::OrderLine, rid, snap)
                    .expect("live"),
            );
            let s_rid = self
                .pk_lookup(Relation::Stock, keys::stock(w, u64::from(ol.i_id)))
                .expect("stock exists");
            let stock = StockRec::decode(
                &self
                    .read_row_at(Relation::Stock, s_rid, snap)
                    .expect("live"),
            );
            if stock.quantity < threshold {
                low.insert(ol.i_id);
            }
        }
        StockLevelResult {
            low_stock: low.len() as u64,
            lines_scanned,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::DbConfig;
    use crate::loader;

    fn db() -> TpccDb {
        loader::load(DbConfig::small(), 7)
    }

    fn lines(items: &[u64]) -> Vec<OrderLineReq> {
        items
            .iter()
            .map(|&item| OrderLineReq {
                item,
                supply_warehouse: 0,
                quantity: 5,
            })
            .collect()
    }

    #[test]
    fn new_order_assigns_sequential_ids_and_totals() {
        let db = db();
        let first = db.new_order(0, 2, 5, &lines(&[1, 2, 3]));
        let second = db.new_order(0, 2, 6, &lines(&[4]));
        assert_eq!(second.o_id, first.o_id + 1);
        assert_eq!(first.line_amounts.len(), 3);
        assert!(first.total_amount > 0.0);
    }

    #[test]
    fn new_order_updates_stock_and_order_lines() {
        let db = db();
        let s_rid = db
            .pk_lookup(Relation::Stock, keys::stock(0, 9))
            .expect("stock");
        let before = StockRec::decode(&db.heaps.stock.get(&db.bm, s_rid).expect("live"));
        let r = db.new_order(0, 0, 0, &lines(&[9]));
        let after = StockRec::decode(&db.heaps.stock.get(&db.bm, s_rid).expect("live"));
        assert_eq!(after.order_cnt, before.order_cnt + 1);
        assert_ne!(after.quantity, before.quantity);
        // order line findable through the index
        let (lo, hi) = keys::order_line_range(0, 0, r.o_id);
        let mut n = 0;
        db.idx.order_line.scan_range(&db.bm, lo, hi, |_, _| {
            n += 1;
            true
        });
        assert_eq!(n, 1);
    }

    #[test]
    fn payment_by_id_updates_balances() {
        let db = db();
        let r = db.payment(0, 1, 0, 1, CustomerSelector::ById(3), 42.5);
        assert_eq!(r.c_id, 3);
        assert_eq!(r.rows_matched, 1);
        assert!((r.balance - (-10.0 - 42.5)).abs() < 1e-9);
        // second payment compounds
        let r2 = db.payment(0, 1, 0, 1, CustomerSelector::ById(3), 7.5);
        assert!((r2.balance - (-60.0)).abs() < 1e-9);
    }

    #[test]
    fn payment_by_name_picks_median_by_first_name() {
        let db = db();
        let r = db.payment(0, 0, 0, 0, CustomerSelector::ByName(0), 10.0);
        assert!(r.rows_matched >= 1);
        // the selected customer really has name id 0's last name
        let rec_rid = db
            .pk_lookup(Relation::Customer, keys::customer(0, 0, r.c_id))
            .expect("chosen customer");
        let rec = CustomerRec::decode(&db.heaps.customer.get(&db.bm, rec_rid).expect("live"));
        assert_eq!(rec.last, crate::names::last_name(0));
    }

    #[test]
    fn order_status_sees_latest_order() {
        let db = db();
        let placed = db.new_order(0, 4, 8, &lines(&[10, 11]));
        let status = db.order_status(0, 4, CustomerSelector::ById(8));
        assert_eq!(status.o_id, Some(placed.o_id));
        assert_eq!(status.lines.len(), 2);
        assert_eq!(status.lines[0].0, 10);
        assert_eq!(status.lines[0].3, 0, "undelivered");
    }

    #[test]
    fn delivery_processes_oldest_and_credits_customer() {
        let db = db();
        let oldest = db
            .idx
            .new_order
            .min_at_or_after(&db.bm, keys::order_lo(0, 0))
            .map(|(k, _)| keys::order_number(k))
            .expect("pending orders loaded");
        let r = db.delivery(0, 3);
        assert_eq!(r.delivered, 10, "all districts had pending orders");
        assert_eq!(r.per_district[0], Some(oldest));
        // delivered order now has a carrier and stamped lines
        let o_rid = db
            .pk_lookup(Relation::Order, keys::order(0, 0, oldest))
            .expect("order");
        let order = OrderRec::decode(&db.heaps.order.get(&db.bm, o_rid).expect("live"));
        assert_eq!(order.carrier_id, 3);
        let status = db.order_status(0, 0, CustomerSelector::ById(u64::from(order.c_id)));
        if status.o_id == Some(oldest) {
            assert!(status.lines.iter().all(|l| l.3 > 0), "lines stamped");
        }
    }

    #[test]
    fn delivery_on_drained_district_skips() {
        let db = db();
        let pending = db.idx.new_order.len(&db.bm) as u64;
        let mut total = 0;
        for _ in 0..((pending / 10) + 2) {
            total += db.delivery(0, 1).delivered;
        }
        assert_eq!(total, pending, "every pending order delivered exactly once");
        let r = db.delivery(0, 1);
        assert_eq!(r.delivered, 0);
        assert!(r.per_district.iter().all(Option::is_none));
    }

    #[test]
    fn stock_level_counts_distinct_low_items() {
        let db = db();
        let all = db.stock_level(0, 0, i32::MAX);
        let none = db.stock_level(0, 0, 0);
        assert_eq!(none.low_stock, 0);
        assert!(all.low_stock >= 1);
        assert!(all.lines_scanned >= 20 * 10, "last 20 orders x 10 lines");
        // distinct: can't exceed scanned lines or the item count
        assert!(all.low_stock <= all.lines_scanned);
        assert!(all.low_stock <= db.config().items);
    }

    #[test]
    fn stock_level_reflects_new_orders() {
        let db = db();
        // drain item 42's stock low via repeated big orders
        for _ in 0..3 {
            db.new_order(
                0,
                9,
                1,
                &[OrderLineReq {
                    item: 42,
                    supply_warehouse: 0,
                    quantity: 10,
                }],
            );
        }
        let r = db.stock_level(0, 9, 101);
        assert!(r.low_stock >= 1, "item 42 was just ordered and is < 101");
    }

    #[test]
    fn checked_new_order_aborts_on_unused_item_without_writes() {
        let db = db();
        let d_rid = db
            .pk_lookup(Relation::District, keys::district(0, 2))
            .expect("district");
        let before = DistrictRec::decode(&db.heaps.district.get(&db.bm, d_rid).expect("live"));
        let mut bad = lines(&[1, 2]);
        bad.push(OrderLineReq {
            item: db.config().items + 7, // unused item number
            supply_warehouse: 0,
            quantity: 1,
        });
        let err = db.new_order_checked(0, 2, 5, &bad).expect_err("must abort");
        assert_eq!(err.bad_line, 2);
        // no writes: next_o_id unchanged, no order row appeared
        let after = DistrictRec::decode(&db.heaps.district.get(&db.bm, d_rid).expect("live"));
        assert_eq!(after.next_o_id, before.next_o_id);
        assert!(db
            .pk_lookup(
                Relation::Order,
                keys::order(0, 2, u64::from(before.next_o_id))
            )
            .is_none());
    }

    #[test]
    fn checked_new_order_succeeds_on_valid_items() {
        let db = db();
        let r = db
            .new_order_checked(0, 1, 3, &lines(&[5, 6]))
            .expect("valid");
        assert_eq!(r.line_amounts.len(), 2);
    }

    #[test]
    #[should_panic(expected = "beyond scale")]
    fn scale_violation_caught() {
        let db = db();
        let _ = db.new_order(5, 0, 0, &lines(&[1]));
    }

    fn mvcc_db() -> TpccDb {
        let cfg = DbConfig {
            mvcc: true,
            ..DbConfig::small()
        };
        loader::load(cfg, 7)
    }

    #[test]
    fn mvcc_snapshot_order_status_is_repeatable_under_later_writes() {
        let db = mvcc_db();
        let first = db.new_order(0, 3, 7, &lines(&[1, 2]));
        let snap = db.snapshot();
        let before = db.order_status_at(&snap, 0, 3, CustomerSelector::ById(7));
        assert_eq!(before.o_id, Some(first.o_id));

        // a later order and a payment are invisible to the pin
        let second = db.new_order(0, 3, 7, &lines(&[3]));
        db.payment(0, 3, 0, 3, CustomerSelector::ById(7), 10.0);
        let pinned = db.order_status_at(&snap, 0, 3, CustomerSelector::ById(7));
        assert_eq!(pinned.o_id, Some(first.o_id), "snapshot is repeatable");
        assert_eq!(pinned.lines.len(), 2);

        let live = db.order_status(0, 3, CustomerSelector::ById(7));
        assert_eq!(live.o_id, Some(second.o_id), "live read sees the head");
        drop(snap);
        let fresh = db.snapshot();
        let after = db.order_status_at(&fresh, 0, 3, CustomerSelector::ById(7));
        assert_eq!(after.o_id, Some(second.o_id));
    }

    #[test]
    fn mvcc_snapshot_stock_level_is_stable_while_stock_drains() {
        let db = mvcc_db();
        let snap = db.snapshot();
        let pinned_before = db.stock_level_at(&snap, 0, 9, 101);
        for _ in 0..3 {
            db.new_order(
                0,
                9,
                1,
                &[OrderLineReq {
                    item: 42,
                    supply_warehouse: 0,
                    quantity: 10,
                }],
            );
        }
        let pinned_after = db.stock_level_at(&snap, 0, 9, 101);
        assert_eq!(
            pinned_before.low_stock, pinned_after.low_stock,
            "the pinned join is a consistent cut"
        );
        assert_eq!(pinned_before.lines_scanned, pinned_after.lines_scanned);
        let live = db.stock_level(0, 9, 101);
        assert!(live.low_stock >= 1, "item 42 drained below threshold");
    }

    #[test]
    fn mvcc_abort_restores_every_row_and_index() {
        let db = mvcc_db();
        // place one real order first so last_order has a prior value
        let placed = db.new_order(0, 2, 5, &lines(&[4]));
        let d_rid = db
            .pk_lookup(Relation::District, keys::district(0, 2))
            .expect("district");
        let district_before = db.heaps.district.get(&db.bm, d_rid).expect("live");
        let s_rid = db
            .pk_lookup(Relation::Stock, keys::stock(0, 1))
            .expect("stock");
        let stock_before = db.heaps.stock.get(&db.bm, s_rid).expect("live");
        let next_o = u64::from(DistrictRec::decode(&district_before).next_o_id);

        let mut bad = lines(&[1, 2]);
        bad.push(OrderLineReq {
            item: db.config().items + 7,
            supply_warehouse: 0,
            quantity: 1,
        });
        let err = db.new_order_checked(0, 2, 5, &bad).expect_err("must abort");
        assert_eq!(err.bad_line, 2);

        // district bump unwound, stock restored byte-for-byte
        assert_eq!(
            db.heaps.district.get(&db.bm, d_rid).expect("live"),
            district_before
        );
        assert_eq!(
            db.heaps.stock.get(&db.bm, s_rid).expect("live"),
            stock_before
        );
        // order/new-order rows and index entries gone
        assert!(db
            .pk_lookup(Relation::Order, keys::order(0, 2, next_o))
            .is_none());
        assert!(db
            .pk_lookup(Relation::NewOrder, keys::order(0, 2, next_o))
            .is_none());
        assert!(db
            .pk_lookup(Relation::OrderLine, keys::order_line(0, 2, next_o, 0))
            .is_none());
        // last_order points back at the prior order
        let status = db.order_status(0, 2, CustomerSelector::ById(5));
        assert_eq!(status.o_id, Some(placed.o_id));
        // the id was un-burned: the next order reuses it
        let next = db.new_order(0, 2, 5, &lines(&[3]));
        assert_eq!(next.o_id, next_o);
        assert!(db.verify_consistency().is_consistent());
    }

    #[test]
    fn mvcc_abort_interplays_with_wal_recovery() {
        let cfg = DbConfig {
            mvcc: true,
            enable_wal: true,
            ..DbConfig::small()
        };
        let mut db = loader::load(cfg, 7);
        let mut bad = lines(&[1, 2]);
        bad.push(OrderLineReq {
            item: db.config().items + 1,
            supply_warehouse: 0,
            quantity: 1,
        });
        db.new_order_checked(0, 0, 3, &bad).expect_err("abort");
        db.new_order_checked(0, 1, 4, &bad).expect_err("abort");
        // commit last: the aborts' forward + compensating deltas are
        // inside the committed prefix and must replay to the exact
        // live image (residue *after* the last commit is legitimately
        // dropped at a crash, like any uncommitted transaction)
        db.new_order(0, 0, 3, &lines(&[5]));
        assert!(
            db.crash_recovery_check(),
            "forward + compensating deltas replay to the live image"
        );
    }

    #[test]
    fn mvcc_snapshot_sees_pre_delivery_state() {
        let db = mvcc_db();
        let (o_id, c_id) = db.peek_oldest_pending(0, 0).expect("pending orders");
        let snap = db.snapshot();
        db.delivery(0, 3);
        // at the pin, the order was undelivered and the customer
        // uncredited
        let pinned = db.order_status_at(&snap, 0, 0, CustomerSelector::ById(c_id));
        if pinned.o_id == Some(o_id) {
            assert!(
                pinned.lines.iter().all(|l| l.3 == 0),
                "delivery is invisible to the pin"
            );
        }
        drop(snap);
        let fresh = db.snapshot();
        let live = db.order_status_at(&fresh, 0, 0, CustomerSelector::ById(c_id));
        if live.o_id == Some(o_id) {
            assert!(live.lines.iter().all(|l| l.3 > 0), "now delivered");
        }
    }

    #[test]
    fn mvcc_off_snapshot_panics() {
        let db = db();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| db.snapshot()));
        assert!(result.is_err(), "snapshot() requires DbConfig::mvcc");
    }
}
