//! The five TPC-C transactions, executed against the storage engine
//! (paper §2.2's call sequences, with real record contents).

use crate::db::TpccDb;
use crate::keys;
use crate::records::{
    CustomerRec, DistrictRec, HistoryRec, ItemRec, NewOrderRec, OrderLineRec, OrderRec, StockRec,
    WarehouseRec,
};
use tpcc_schema::relation::Relation;
use tpcc_storage::RecordId;

/// One ordered line of a New-Order request.
#[derive(Debug, Clone, Copy)]
pub struct OrderLineReq {
    /// Item ordered.
    pub item: u64,
    /// Supplying warehouse.
    pub supply_warehouse: u64,
    /// Quantity (spec: uniform 1–10).
    pub quantity: u16,
}

/// New-Order output.
#[derive(Debug, Clone)]
pub struct NewOrderResult {
    /// Assigned order number.
    pub o_id: u64,
    /// Total order amount after discount and taxes.
    pub total_amount: f64,
    /// Per-line amounts.
    pub line_amounts: Vec<f64>,
}

/// Payment output.
#[derive(Debug, Clone)]
pub struct PaymentResult {
    /// The customer charged (resolved id for by-name requests).
    pub c_id: u64,
    /// Customer balance after the payment.
    pub balance: f64,
    /// Rows the customer selection touched (1 by id, ~3 by name).
    pub rows_matched: usize,
}

/// Order-Status output.
#[derive(Debug, Clone)]
pub struct OrderStatusResult {
    /// Resolved customer.
    pub c_id: u64,
    /// Their most recent order, if any.
    pub o_id: Option<u64>,
    /// `(item, quantity, amount, delivery_date)` per line.
    pub lines: Vec<(u64, u16, f64, u64)>,
}

/// Delivery output.
#[derive(Debug, Clone)]
pub struct DeliveryResult {
    /// Orders delivered (≤ 10; districts with an empty queue skip).
    pub delivered: u64,
    /// The order number delivered per district (None = queue empty).
    pub per_district: [Option<u64>; 10],
}

/// Stock-Level output.
#[derive(Debug, Clone, Copy)]
pub struct StockLevelResult {
    /// Distinct items under the threshold among the last 20 orders.
    pub low_stock: u64,
    /// Order-line rows scanned (the paper's ~200).
    pub lines_scanned: u64,
}

/// A New-Order abort: clause 2.4.1.4's "unused item number" rollback
/// (1% of New-Order transactions are given one invalid item id and
/// must roll back after their reads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NewOrderAborted {
    /// Index of the offending line.
    pub bad_line: usize,
}

impl std::fmt::Display for NewOrderAborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "new-order aborted: line {} names an unused item",
            self.bad_line
        )
    }
}

impl std::error::Error for NewOrderAborted {}

/// How Payment / Order-Status select the customer.
#[derive(Debug, Clone, Copy)]
pub enum CustomerSelector {
    /// Unique select by customer id.
    ById(u64),
    /// Non-unique select by last-name id; the median-by-first-name row
    /// (clause 2.5.2.2) is the one charged.
    ByName(u64),
}

impl TpccDb {
    fn read_customer(&self, rid: RecordId) -> CustomerRec {
        let buf = self
            .heaps
            .customer
            .get(&self.bm, rid)
            .expect("live customer");
        CustomerRec::decode(&buf)
    }

    /// Resolves a selector to the target customer `(rid, record)`,
    /// implementing the by-name path: fetch all matches via the name
    /// index, sort by first name, take the median row.
    fn resolve_customer(
        &self,
        w: u64,
        d: u64,
        selector: CustomerSelector,
    ) -> (RecordId, CustomerRec, usize) {
        match selector {
            CustomerSelector::ById(c) => {
                self.check_scale(w, d, Some(c), None);
                let rid = self
                    .pk_lookup(Relation::Customer, keys::customer(w, d, c))
                    .expect("customer exists");
                let rec = self.read_customer(rid);
                (rid, rec, 1)
            }
            CustomerSelector::ByName(name_id) => {
                let (lo, hi) = keys::customer_name_range(w, d, name_id);
                let mut rids: Vec<RecordId> = Vec::new();
                self.idx.customer_name.scan_range(&self.bm, lo, hi, |_, v| {
                    rids.push(RecordId::from_u64(v));
                    true
                });
                assert!(
                    !rids.is_empty(),
                    "every name id has at least one owner by construction"
                );
                let mut matches: Vec<(RecordId, CustomerRec)> = rids
                    .into_iter()
                    .map(|rid| (rid, self.read_customer(rid)))
                    .collect();
                matches.sort_by(|a, b| a.1.first.cmp(&b.1.first));
                let n = matches.len();
                let median = n.div_ceil(2) - 1; // position ⌈n/2⌉, 1-based
                let (rid, rec) = matches.swap_remove(median);
                (rid, rec, n)
            }
        }
    }

    /// Resolves a selector to the target customer id without executing
    /// a transaction. The answer is stable under concurrency: by-name
    /// resolution orders the (immutable) first names of an (immutable
    /// after load) match set, so the parallel driver can pre-resolve
    /// the id to lock before acquiring anything.
    pub(crate) fn resolve_customer_id(&self, w: u64, d: u64, selector: CustomerSelector) -> u64 {
        match selector {
            CustomerSelector::ById(c) => c,
            CustomerSelector::ByName(_) => {
                let (_, rec, _) = self.resolve_customer(w, d, selector);
                u64::from(rec.c_id)
            }
        }
    }

    /// New-Order (§2.2): places an order of `lines` items for customer
    /// `(w, d, c)`.
    ///
    /// # Panics
    /// Panics on ids beyond the configured scale or an empty line list.
    pub fn new_order(&self, w: u64, d: u64, c: u64, lines: &[OrderLineReq]) -> NewOrderResult {
        assert!(!lines.is_empty(), "an order needs at least one line");
        let _span = self.bm.obs().span("new_order");
        self.check_scale(w, d, Some(c), None);

        // 1. warehouse tax
        let w_rid = self
            .pk_lookup(Relation::Warehouse, keys::warehouse(w))
            .expect("warehouse exists");
        let warehouse =
            WarehouseRec::decode(&self.heaps.warehouse.get(&self.bm, w_rid).expect("live"));

        // 2-3. district: read then bump next_o_id
        let d_rid = self
            .pk_lookup(Relation::District, keys::district(w, d))
            .expect("district exists");
        let mut district =
            DistrictRec::decode(&self.heaps.district.get(&self.bm, d_rid).expect("live"));
        let o_id = u64::from(district.next_o_id);
        district.next_o_id += 1;
        self.heaps
            .district
            .update(&self.bm, d_rid, &district.encode());

        // 4. customer discount
        let c_rid = self
            .pk_lookup(Relation::Customer, keys::customer(w, d, c))
            .expect("customer exists");
        let customer = self.read_customer(c_rid);

        // 5-6. order + new-order rows
        let entry_d = self.tick();
        let all_local = lines.iter().all(|l| l.supply_warehouse == w);
        let order = OrderRec {
            o_id: o_id as u32,
            c_id: c as u32,
            entry_d,
            carrier_id: 0,
            ol_cnt: lines.len() as u8,
            all_local: u8::from(all_local),
        };
        let o_heap_rid = self.heaps.order.insert(&self.bm, &order.encode());
        self.idx
            .order
            .insert(&self.bm, keys::order(w, d, o_id), o_heap_rid.to_u64());
        self.idx
            .last_order
            .insert(&self.bm, keys::last_order(w, d, c), o_id);
        let no = NewOrderRec {
            o_id: o_id as u32,
            d_id: d as u16,
            w_id: w as u16,
        };
        let no_rid = self.heaps.new_order.insert(&self.bm, &no.encode());
        self.idx
            .new_order
            .insert(&self.bm, keys::order(w, d, o_id), no_rid.to_u64());

        // 7. per item: item read, stock read+update, order-line insert
        let mut line_amounts = Vec::with_capacity(lines.len());
        for (number, line) in lines.iter().enumerate() {
            self.check_scale(line.supply_warehouse, d, None, Some(line.item));
            let i_rid = self
                .pk_lookup(Relation::Item, keys::item(line.item))
                .expect("item exists");
            let item = ItemRec::decode(&self.heaps.item.get(&self.bm, i_rid).expect("live"));

            let s_rid = self
                .pk_lookup(
                    Relation::Stock,
                    keys::stock(line.supply_warehouse, line.item),
                )
                .expect("stock exists");
            let mut stock = StockRec::decode(&self.heaps.stock.get(&self.bm, s_rid).expect("live"));
            // clause 2.4.2.2: restock when the level would fall below 10
            if stock.quantity >= i32::from(line.quantity) + 10 {
                stock.quantity -= i32::from(line.quantity);
            } else {
                stock.quantity += 91 - i32::from(line.quantity);
            }
            stock.ytd += u64::from(line.quantity);
            stock.order_cnt += 1;
            if line.supply_warehouse != w {
                stock.remote_cnt += 1;
            }
            let dist_info = stock.dist_info[d as usize].clone();
            self.heaps.stock.update(&self.bm, s_rid, &stock.encode());

            let amount = f64::from(line.quantity) * item.price;
            line_amounts.push(amount);
            let ol = OrderLineRec {
                o_id: o_id as u32,
                d_id: d as u16,
                w_id: w as u16,
                number: number as u16,
                i_id: line.item as u32,
                supply_w_id: line.supply_warehouse as u16,
                delivery_d: 0,
                quantity: line.quantity,
                amount,
                dist_info,
            };
            let ol_rid = self.heaps.order_line.insert(&self.bm, &ol.encode());
            self.idx.order_line.insert(
                &self.bm,
                keys::order_line(w, d, o_id, number as u64),
                ol_rid.to_u64(),
            );
        }
        let subtotal: f64 = line_amounts.iter().sum();
        let total_amount =
            subtotal * (1.0 - customer.discount) * (1.0 + warehouse.tax + district.tax);
        self.commit();
        NewOrderResult {
            o_id,
            total_amount,
            line_amounts,
        }
    }

    /// New-Order with the spec's rollback semantics: the transaction
    /// performs its reads (warehouse, district, customer, and an item
    /// probe per line), then aborts — leaving no writes — if any line
    /// names an item that does not exist (clause 2.4.1.4).
    ///
    /// Implemented as validate-then-apply: item existence is checked
    /// through the item index before any update, so no undo log is
    /// needed; the successful path then executes [`TpccDb::new_order`].
    ///
    /// # Errors
    /// [`NewOrderAborted`] naming the first invalid line.
    pub fn new_order_checked(
        &self,
        w: u64,
        d: u64,
        c: u64,
        lines: &[OrderLineReq],
    ) -> Result<NewOrderResult, NewOrderAborted> {
        self.check_scale(w, d, Some(c), None);
        // the reads a rolled-back transaction still performs
        let _ = self.pk_lookup(Relation::Warehouse, keys::warehouse(w));
        let _ = self.pk_lookup(Relation::District, keys::district(w, d));
        let _ = self.pk_lookup(Relation::Customer, keys::customer(w, d, c));
        for (bad_line, line) in lines.iter().enumerate() {
            let exists = line.item < self.cfg.items
                && self
                    .pk_lookup(Relation::Item, keys::item(line.item))
                    .is_some();
            if !exists {
                return Err(NewOrderAborted { bad_line });
            }
        }
        Ok(self.new_order(w, d, c, lines))
    }

    /// Payment (§2.2): charges `amount` to the selected customer of
    /// `(cw, cd)` through the terminal's `(w, d)`.
    pub fn payment(
        &self,
        w: u64,
        d: u64,
        cw: u64,
        cd: u64,
        selector: CustomerSelector,
        amount: f64,
    ) -> PaymentResult {
        self.check_scale(w, d, None, None);
        let _span = self.bm.obs().span("payment");

        let w_rid = self
            .pk_lookup(Relation::Warehouse, keys::warehouse(w))
            .expect("warehouse exists");
        let mut warehouse =
            WarehouseRec::decode(&self.heaps.warehouse.get(&self.bm, w_rid).expect("live"));
        let d_rid = self
            .pk_lookup(Relation::District, keys::district(w, d))
            .expect("district exists");
        let mut district =
            DistrictRec::decode(&self.heaps.district.get(&self.bm, d_rid).expect("live"));

        let (c_rid, mut customer, rows_matched) = self.resolve_customer(cw, cd, selector);

        warehouse.ytd += amount;
        self.heaps
            .warehouse
            .update(&self.bm, w_rid, &warehouse.encode());
        district.ytd += amount;
        self.heaps
            .district
            .update(&self.bm, d_rid, &district.encode());
        customer.balance -= amount;
        customer.ytd_payment += amount;
        customer.payment_cnt += 1;
        self.heaps
            .customer
            .update(&self.bm, c_rid, &customer.encode());

        let date = self.tick();
        let history = HistoryRec {
            c_id: customer.c_id,
            c_d_id: cd as u16,
            c_w_id: cw as u16,
            d_id: d as u16,
            w_id: w as u16,
            date,
            amount,
            data: "payment".into(),
        };
        self.heaps.history.insert(&self.bm, &history.encode());
        self.commit();

        PaymentResult {
            c_id: u64::from(customer.c_id),
            balance: customer.balance,
            rows_matched,
        }
    }

    /// Order-Status (§2.2): the customer's most recent order and its
    /// lines.
    pub fn order_status(&self, w: u64, d: u64, selector: CustomerSelector) -> OrderStatusResult {
        let _span = self.bm.obs().span("order_status");
        let (_, customer, _) = self.resolve_customer(w, d, selector);
        let c = u64::from(customer.c_id);
        let Some(o_id) = self.idx.last_order.get(&self.bm, keys::last_order(w, d, c)) else {
            return OrderStatusResult {
                c_id: c,
                o_id: None,
                lines: Vec::new(),
            };
        };
        // single indexed select for the Max(order-id) row (§2.2)
        let o_rid = self
            .pk_lookup(Relation::Order, keys::order(w, d, o_id))
            .expect("last order row exists");
        let order = OrderRec::decode(&self.heaps.order.get(&self.bm, o_rid).expect("live"));
        let (lo, hi) = keys::order_line_range(w, d, o_id);
        let mut rids = Vec::with_capacity(usize::from(order.ol_cnt));
        self.idx.order_line.scan_range(&self.bm, lo, hi, |_, v| {
            rids.push(RecordId::from_u64(v));
            true
        });
        let lines = rids
            .into_iter()
            .map(|rid| {
                let ol =
                    OrderLineRec::decode(&self.heaps.order_line.get(&self.bm, rid).expect("live"));
                (u64::from(ol.i_id), ol.quantity, ol.amount, ol.delivery_d)
            })
            .collect();
        OrderStatusResult {
            c_id: c,
            o_id: Some(o_id),
            lines,
        }
    }

    /// Delivery (§2.2): delivers the oldest pending order of every
    /// district of `w`.
    pub fn delivery(&self, w: u64, carrier_id: u8) -> DeliveryResult {
        self.check_scale(w, 0, None, None);
        let _span = self.bm.obs().span("delivery");
        let mut per_district = [None; 10];
        let mut delivered = 0;
        for d in 0..10u64 {
            per_district[d as usize] = self.delivery_district(w, d, carrier_id);
            delivered += u64::from(per_district[d as usize].is_some());
        }
        self.commit();
        DeliveryResult {
            delivered,
            per_district,
        }
    }

    /// The oldest pending order of district `(w, d)` and its customer,
    /// without delivering it — the parallel driver peeks here to build
    /// the lockset for one per-district delivery sub-transaction.
    pub(crate) fn peek_oldest_pending(&self, w: u64, d: u64) -> Option<(u64, u64)> {
        let (no_key, _) = self
            .idx
            .new_order
            .min_at_or_after(&self.bm, keys::order_lo(w, d))
            .filter(|(k, _)| *k < keys::order_hi(w, d))?;
        let o_id = keys::order_number(no_key);
        let o_rid = self.pk_lookup(Relation::Order, keys::order(w, d, o_id))?;
        let order = OrderRec::decode(&self.heaps.order.get(&self.bm, o_rid).expect("live"));
        Some((o_id, u64::from(order.c_id)))
    }

    /// One district's slice of a Delivery: deliver the oldest pending
    /// order of `(w, d)`, or skip when the queue is empty. Returns the
    /// delivered order number. [`TpccDb::delivery`] runs this for all
    /// ten districts; the parallel driver runs each district as its own
    /// sub-transaction (locked and committed separately), which is how
    /// the spec frames deferred delivery anyway.
    pub(crate) fn delivery_district(&self, w: u64, d: u64, carrier_id: u8) -> Option<u64> {
        // min-select on the New-Order index
        let (no_key, no_val) = self
            .idx
            .new_order
            .min_at_or_after(&self.bm, keys::order_lo(w, d))
            .filter(|(k, _)| *k < keys::order_hi(w, d))?;
        let o_id = keys::order_number(no_key);
        // delete the pending marker (index + heap row)
        self.idx.new_order.delete(&self.bm, no_key);
        self.heaps
            .new_order
            .delete(&self.bm, RecordId::from_u64(no_val));

        // order: read + set carrier
        let o_rid = self
            .pk_lookup(Relation::Order, keys::order(w, d, o_id))
            .expect("order exists");
        let mut order = OrderRec::decode(&self.heaps.order.get(&self.bm, o_rid).expect("live"));
        order.carrier_id = carrier_id;
        self.heaps.order.update(&self.bm, o_rid, &order.encode());

        // order lines: read + stamp delivery date, sum amounts
        let date = self.tick();
        let (lo, hi) = keys::order_line_range(w, d, o_id);
        let mut rids = Vec::with_capacity(usize::from(order.ol_cnt));
        self.idx.order_line.scan_range(&self.bm, lo, hi, |_, v| {
            rids.push(RecordId::from_u64(v));
            true
        });
        let mut total = 0.0;
        for rid in rids {
            let mut ol =
                OrderLineRec::decode(&self.heaps.order_line.get(&self.bm, rid).expect("live"));
            ol.delivery_d = date;
            total += ol.amount;
            self.heaps.order_line.update(&self.bm, rid, &ol.encode());
        }

        // customer: credit the balance
        let c_rid = self
            .pk_lookup(
                Relation::Customer,
                keys::customer(w, d, u64::from(order.c_id)),
            )
            .expect("customer exists");
        let mut customer = self.read_customer(c_rid);
        customer.balance += total;
        customer.delivery_cnt += 1;
        self.heaps
            .customer
            .update(&self.bm, c_rid, &customer.encode());

        Some(o_id)
    }

    /// Stock-Level (§2.2): distinct items of the district's last 20
    /// orders whose stock is below `threshold`.
    pub fn stock_level(&self, w: u64, d: u64, threshold: i32) -> StockLevelResult {
        self.check_scale(w, d, None, None);
        let _span = self.bm.obs().span("stock_level");
        let d_rid = self
            .pk_lookup(Relation::District, keys::district(w, d))
            .expect("district exists");
        let district =
            DistrictRec::decode(&self.heaps.district.get(&self.bm, d_rid).expect("live"));
        let next = u64::from(district.next_o_id);
        let from = next.saturating_sub(20);

        // join: range-scan the order lines, indexed-select each stock row
        let (lo, _) = keys::order_line_range(w, d, from);
        let (hi, _) = keys::order_line_range(w, d, next);
        let mut ol_rids = Vec::new();
        self.idx.order_line.scan_range(&self.bm, lo, hi, |_, v| {
            ol_rids.push(RecordId::from_u64(v));
            true
        });
        let mut low = std::collections::BTreeSet::new();
        let lines_scanned = ol_rids.len() as u64;
        for rid in ol_rids {
            let ol = OrderLineRec::decode(&self.heaps.order_line.get(&self.bm, rid).expect("live"));
            let s_rid = self
                .pk_lookup(Relation::Stock, keys::stock(w, u64::from(ol.i_id)))
                .expect("stock exists");
            let stock = StockRec::decode(&self.heaps.stock.get(&self.bm, s_rid).expect("live"));
            if stock.quantity < threshold {
                low.insert(ol.i_id);
            }
        }
        StockLevelResult {
            low_stock: low.len() as u64,
            lines_scanned,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::DbConfig;
    use crate::loader;

    fn db() -> TpccDb {
        loader::load(DbConfig::small(), 7)
    }

    fn lines(items: &[u64]) -> Vec<OrderLineReq> {
        items
            .iter()
            .map(|&item| OrderLineReq {
                item,
                supply_warehouse: 0,
                quantity: 5,
            })
            .collect()
    }

    #[test]
    fn new_order_assigns_sequential_ids_and_totals() {
        let db = db();
        let first = db.new_order(0, 2, 5, &lines(&[1, 2, 3]));
        let second = db.new_order(0, 2, 6, &lines(&[4]));
        assert_eq!(second.o_id, first.o_id + 1);
        assert_eq!(first.line_amounts.len(), 3);
        assert!(first.total_amount > 0.0);
    }

    #[test]
    fn new_order_updates_stock_and_order_lines() {
        let db = db();
        let s_rid = db
            .pk_lookup(Relation::Stock, keys::stock(0, 9))
            .expect("stock");
        let before = StockRec::decode(&db.heaps.stock.get(&db.bm, s_rid).expect("live"));
        let r = db.new_order(0, 0, 0, &lines(&[9]));
        let after = StockRec::decode(&db.heaps.stock.get(&db.bm, s_rid).expect("live"));
        assert_eq!(after.order_cnt, before.order_cnt + 1);
        assert_ne!(after.quantity, before.quantity);
        // order line findable through the index
        let (lo, hi) = keys::order_line_range(0, 0, r.o_id);
        let mut n = 0;
        db.idx.order_line.scan_range(&db.bm, lo, hi, |_, _| {
            n += 1;
            true
        });
        assert_eq!(n, 1);
    }

    #[test]
    fn payment_by_id_updates_balances() {
        let db = db();
        let r = db.payment(0, 1, 0, 1, CustomerSelector::ById(3), 42.5);
        assert_eq!(r.c_id, 3);
        assert_eq!(r.rows_matched, 1);
        assert!((r.balance - (-10.0 - 42.5)).abs() < 1e-9);
        // second payment compounds
        let r2 = db.payment(0, 1, 0, 1, CustomerSelector::ById(3), 7.5);
        assert!((r2.balance - (-60.0)).abs() < 1e-9);
    }

    #[test]
    fn payment_by_name_picks_median_by_first_name() {
        let db = db();
        let r = db.payment(0, 0, 0, 0, CustomerSelector::ByName(0), 10.0);
        assert!(r.rows_matched >= 1);
        // the selected customer really has name id 0's last name
        let rec_rid = db
            .pk_lookup(Relation::Customer, keys::customer(0, 0, r.c_id))
            .expect("chosen customer");
        let rec = CustomerRec::decode(&db.heaps.customer.get(&db.bm, rec_rid).expect("live"));
        assert_eq!(rec.last, crate::names::last_name(0));
    }

    #[test]
    fn order_status_sees_latest_order() {
        let db = db();
        let placed = db.new_order(0, 4, 8, &lines(&[10, 11]));
        let status = db.order_status(0, 4, CustomerSelector::ById(8));
        assert_eq!(status.o_id, Some(placed.o_id));
        assert_eq!(status.lines.len(), 2);
        assert_eq!(status.lines[0].0, 10);
        assert_eq!(status.lines[0].3, 0, "undelivered");
    }

    #[test]
    fn delivery_processes_oldest_and_credits_customer() {
        let db = db();
        let oldest = db
            .idx
            .new_order
            .min_at_or_after(&db.bm, keys::order_lo(0, 0))
            .map(|(k, _)| keys::order_number(k))
            .expect("pending orders loaded");
        let r = db.delivery(0, 3);
        assert_eq!(r.delivered, 10, "all districts had pending orders");
        assert_eq!(r.per_district[0], Some(oldest));
        // delivered order now has a carrier and stamped lines
        let o_rid = db
            .pk_lookup(Relation::Order, keys::order(0, 0, oldest))
            .expect("order");
        let order = OrderRec::decode(&db.heaps.order.get(&db.bm, o_rid).expect("live"));
        assert_eq!(order.carrier_id, 3);
        let status = db.order_status(0, 0, CustomerSelector::ById(u64::from(order.c_id)));
        if status.o_id == Some(oldest) {
            assert!(status.lines.iter().all(|l| l.3 > 0), "lines stamped");
        }
    }

    #[test]
    fn delivery_on_drained_district_skips() {
        let db = db();
        let pending = db.idx.new_order.len(&db.bm) as u64;
        let mut total = 0;
        for _ in 0..((pending / 10) + 2) {
            total += db.delivery(0, 1).delivered;
        }
        assert_eq!(total, pending, "every pending order delivered exactly once");
        let r = db.delivery(0, 1);
        assert_eq!(r.delivered, 0);
        assert!(r.per_district.iter().all(Option::is_none));
    }

    #[test]
    fn stock_level_counts_distinct_low_items() {
        let db = db();
        let all = db.stock_level(0, 0, i32::MAX);
        let none = db.stock_level(0, 0, 0);
        assert_eq!(none.low_stock, 0);
        assert!(all.low_stock >= 1);
        assert!(all.lines_scanned >= 20 * 10, "last 20 orders x 10 lines");
        // distinct: can't exceed scanned lines or the item count
        assert!(all.low_stock <= all.lines_scanned);
        assert!(all.low_stock <= db.config().items);
    }

    #[test]
    fn stock_level_reflects_new_orders() {
        let db = db();
        // drain item 42's stock low via repeated big orders
        for _ in 0..3 {
            db.new_order(
                0,
                9,
                1,
                &[OrderLineReq {
                    item: 42,
                    supply_warehouse: 0,
                    quantity: 10,
                }],
            );
        }
        let r = db.stock_level(0, 9, 101);
        assert!(r.low_stock >= 1, "item 42 was just ordered and is < 101");
    }

    #[test]
    fn checked_new_order_aborts_on_unused_item_without_writes() {
        let db = db();
        let d_rid = db
            .pk_lookup(Relation::District, keys::district(0, 2))
            .expect("district");
        let before = DistrictRec::decode(&db.heaps.district.get(&db.bm, d_rid).expect("live"));
        let mut bad = lines(&[1, 2]);
        bad.push(OrderLineReq {
            item: db.config().items + 7, // unused item number
            supply_warehouse: 0,
            quantity: 1,
        });
        let err = db.new_order_checked(0, 2, 5, &bad).expect_err("must abort");
        assert_eq!(err.bad_line, 2);
        // no writes: next_o_id unchanged, no order row appeared
        let after = DistrictRec::decode(&db.heaps.district.get(&db.bm, d_rid).expect("live"));
        assert_eq!(after.next_o_id, before.next_o_id);
        assert!(db
            .pk_lookup(
                Relation::Order,
                keys::order(0, 2, u64::from(before.next_o_id))
            )
            .is_none());
    }

    #[test]
    fn checked_new_order_succeeds_on_valid_items() {
        let db = db();
        let r = db
            .new_order_checked(0, 1, 3, &lines(&[5, 6]))
            .expect("valid");
        assert_eq!(r.line_amounts.len(), 2);
    }

    #[test]
    #[should_panic(expected = "beyond scale")]
    fn scale_violation_caught() {
        let db = db();
        let _ = db.new_order(5, 0, 0, &lines(&[1]));
    }
}
