//! The TPC-C consistency conditions (spec §3.3.2), checked against the
//! live database. The paper takes ACID properties as given ("we do not
//! consider … ACID properties"); the executable substrate can actually
//! prove the four structural invariants hold after any workload.

use crate::db::TpccDb;
use crate::keys;
use crate::records::{DistrictRec, OrderRec, WarehouseRec};
use tpcc_schema::relation::Relation;
use tpcc_storage::RecordId;

/// Outcome of a consistency check.
#[derive(Debug, Clone, Default)]
pub struct ConsistencyReport {
    /// Human-readable violations; empty means fully consistent.
    pub violations: Vec<String>,
}

impl ConsistencyReport {
    /// True when no condition was violated.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.violations.is_empty()
    }
}

impl TpccDb {
    /// Checks the four TPC-C consistency conditions:
    ///
    /// 1. `W_YTD = Σ D_YTD` within each warehouse.
    /// 2. `D_NEXT_O_ID − 1 = max(O_ID) = max(NO_O_ID)` per district
    ///    (the New-Order clause only when pending orders exist).
    /// 3. New-Order order ids are contiguous per district
    ///    (`max − min + 1 = count`).
    /// 4. `Σ O_OL_CNT = count(Order-Line rows)` per district.
    pub fn verify_consistency(&self) -> ConsistencyReport {
        let mut report = ConsistencyReport::default();
        let warehouses = self.config().warehouses;
        for w in 0..warehouses {
            self.check_c1(w, &mut report);
            for d in 0..10 {
                self.check_c2_c3(w, d, &mut report);
                self.check_c4(w, d, &mut report);
            }
        }
        report
    }

    /// Condition 1: warehouse YTD equals the sum of its districts'.
    fn check_c1(&self, w: u64, report: &mut ConsistencyReport) {
        let w_rid = self
            .pk_lookup(Relation::Warehouse, keys::warehouse(w))
            .expect("warehouse exists");
        let warehouse =
            WarehouseRec::decode(&self.heaps.warehouse.get(&self.bm, w_rid).expect("live"));
        let mut district_sum = 0.0;
        for d in 0..10 {
            district_sum += self.district(w, d).ytd;
        }
        if (warehouse.ytd - district_sum).abs() > 1e-6 * warehouse.ytd.abs().max(1.0) {
            report.violations.push(format!(
                "C1: warehouse {w} ytd {} != district sum {district_sum}",
                warehouse.ytd
            ));
        }
    }

    /// Conditions 2 and 3 for one district.
    fn check_c2_c3(&self, w: u64, d: u64, report: &mut ConsistencyReport) {
        let district = self.district(w, d);
        let next = u64::from(district.next_o_id);

        // max order id in the Order relation
        let mut max_order = None;
        self.idx.order.scan_range(
            &self.bm,
            keys::order_lo(w, d),
            keys::order_hi(w, d),
            |k, _| {
                max_order = Some(keys::order_number(k));
                true
            },
        );
        match max_order {
            Some(max) if max + 1 != next => report.violations.push(format!(
                "C2: district ({w},{d}) next_o_id {next} but max order id {max}"
            )),
            None if next != 0 => report.violations.push(format!(
                "C2: district ({w},{d}) next_o_id {next} with no orders"
            )),
            _ => {}
        }

        // New-Order contiguity + max
        let mut no_ids: Vec<u64> = Vec::new();
        self.idx.new_order.scan_range(
            &self.bm,
            keys::order_lo(w, d),
            keys::order_hi(w, d),
            |k, _| {
                no_ids.push(keys::order_number(k));
                true
            },
        );
        if let (Some(&min), Some(&max)) = (no_ids.first(), no_ids.last()) {
            if max + 1 != next {
                report.violations.push(format!(
                    "C2: district ({w},{d}) newest pending order {max} != next_o_id {next} - 1"
                ));
            }
            if max - min + 1 != no_ids.len() as u64 {
                report.violations.push(format!(
                    "C3: district ({w},{d}) pending ids not contiguous: [{min},{max}] holds {}",
                    no_ids.len()
                ));
            }
        }
    }

    /// Condition 4: order-line counts match the orders' `ol_cnt`.
    fn check_c4(&self, w: u64, d: u64, report: &mut ConsistencyReport) {
        let mut declared = 0u64;
        let mut order_rids: Vec<RecordId> = Vec::new();
        self.idx.order.scan_range(
            &self.bm,
            keys::order_lo(w, d),
            keys::order_hi(w, d),
            |_, v| {
                order_rids.push(RecordId::from_u64(v));
                true
            },
        );
        for rid in order_rids {
            let order = OrderRec::decode(&self.heaps.order.get(&self.bm, rid).expect("live"));
            declared += u64::from(order.ol_cnt);
        }
        let mut stored = 0u64;
        self.idx.order_line.scan_range(
            &self.bm,
            keys::order_line(w, d, 0, 0),
            keys::order_hi(w, d) << 4,
            |_, _| {
                stored += 1;
                true
            },
        );
        if declared != stored {
            report.violations.push(format!(
                "C4: district ({w},{d}) declares {declared} order lines but stores {stored}"
            ));
        }
    }

    fn district(&self, w: u64, d: u64) -> DistrictRec {
        let rid = self
            .pk_lookup(Relation::District, keys::district(w, d))
            .expect("district exists");
        DistrictRec::decode(&self.heaps.district.get(&self.bm, rid).expect("live"))
    }

    /// Corrupts one district's YTD (test helper for the verifier
    /// itself): returns the old value.
    #[doc(hidden)]
    pub fn corrupt_district_ytd(&self, w: u64, d: u64, ytd: f64) -> f64 {
        let rid = self
            .pk_lookup(Relation::District, keys::district(w, d))
            .expect("district exists");
        let mut rec = DistrictRec::decode(&self.heaps.district.get(&self.bm, rid).expect("live"));
        let old = rec.ytd;
        rec.ytd = ytd;
        self.heaps.district.update(&self.bm, rid, &rec.encode());
        old
    }

    /// Deletes a pending New-Order marker out of FIFO order (test
    /// helper): breaks contiguity on purpose.
    #[doc(hidden)]
    pub fn corrupt_pending_queue(&self, w: u64, d: u64) -> bool {
        // remove the *second* oldest pending order, leaving a hole
        let mut seen = 0;
        let mut target = None;
        self.idx.new_order.scan_range(
            &self.bm,
            keys::order_lo(w, d),
            keys::order_hi(w, d),
            |k, v| {
                seen += 1;
                if seen == 2 {
                    target = Some((k, v));
                    false
                } else {
                    true
                }
            },
        );
        let Some((key, val)) = target else {
            return false;
        };
        self.idx.new_order.delete(&self.bm, key);
        self.heaps
            .new_order
            .delete(&self.bm, RecordId::from_u64(val));
        true
    }
}

#[cfg(test)]
mod tests {
    use crate::db::DbConfig;
    use crate::driver::{Driver, DriverConfig};
    use crate::loader;
    use crate::txns::OrderLineReq;

    #[test]
    fn fresh_load_is_consistent() {
        let db = loader::load(DbConfig::small(), 31);
        let report = db.verify_consistency();
        assert!(report.is_consistent(), "{:?}", report.violations);
    }

    #[test]
    fn consistency_survives_a_mixed_workload() {
        let mut db = loader::load(DbConfig::small(), 32);
        let mut driver = Driver::new(&db, DriverConfig::default().with_spec_rollbacks(), 33);
        let _ = driver.run(&mut db, 3000);
        let report = db.verify_consistency();
        assert!(report.is_consistent(), "{:?}", report.violations);
    }

    #[test]
    fn crash_recovery_reproduces_committed_state() {
        let mut cfg = DbConfig::small();
        cfg.enable_wal = true;
        // a pool small enough that many dirty pages are unflushed at
        // "crash" time, so recovery is doing real work
        cfg.buffer_frames = 64;
        let mut db = loader::load(cfg, 51);
        let mut driver = Driver::new(&db, DriverConfig::default(), 52);
        let _ = driver.run(&mut db, 1500);
        let (entries, delta_bytes, commits) = db.wal_stats().expect("wal enabled");
        assert!(entries > 1000, "log has real volume: {entries} entries");
        assert!(delta_bytes > 10_000);
        assert!(commits > 500);
        assert!(
            db.crash_recovery_check(),
            "replaying the redo log over the checkpoint must reproduce              the flushed disk byte-for-byte"
        );
        // the database keeps working after the check, and a second
        // epoch recovers too
        let _ = driver.run(&mut db, 300);
        assert!(db.crash_recovery_check());
        assert!(db.verify_consistency().is_consistent());
    }

    #[test]
    fn recovery_replays_only_to_the_last_complete_commit() {
        let mut cfg = DbConfig::small();
        cfg.enable_wal = true;
        let lines: Vec<OrderLineReq> = (0..8)
            .map(|i| OrderLineReq {
                item: 10 + i * 7,
                supply_warehouse: 0,
                quantity: 3,
            })
            .collect();

        // reference: the same load, but only the first order ever runs
        let ref_db = loader::load(cfg, 91);
        ref_db.new_order(0, 0, 5, &lines);
        ref_db.commit();
        ref_db.flush();

        // torn run: a second order starts but the log is cut mid-flight,
        // losing its commit marker and a suffix of its page deltas
        let mut db = loader::load(cfg, 91);
        db.new_order(0, 0, 5, &lines);
        db.commit();
        let committed = db.wal_stats().expect("wal enabled").0;
        db.new_order(0, 0, 6, &lines);
        db.commit();
        let full = db.bm.take_wal().expect("wal enabled");
        let mut torn = full.clone();
        assert!(full.len() > committed + 2, "second txn logged real work");
        torn.truncate(committed + (full.len() - committed) / 2);

        let checkpoint = db.checkpoint.take().expect("checkpoint");
        let recovered_torn = torn.recover(checkpoint.snapshot());
        let recovered_full = full.recover(checkpoint);

        assert!(
            ref_db
                .bm
                .with_disk(|disk| recovered_torn.contents_equal(disk)),
            "torn-log recovery must equal the last complete commit exactly"
        );
        db.flush();
        assert!(
            db.bm.with_disk(|disk| recovered_full.contents_equal(disk)),
            "the intact log still recovers the full run"
        );
        assert!(
            !recovered_full.contents_equal(&recovered_torn),
            "the in-flight transaction's effects must be discarded"
        );
    }

    #[test]
    fn verifier_catches_ytd_drift() {
        let db = loader::load(DbConfig::small(), 34);
        db.corrupt_district_ytd(0, 3, 1_000_000.0);
        let report = db.verify_consistency();
        assert!(!report.is_consistent());
        assert!(report.violations.iter().any(|v| v.starts_with("C1")));
    }

    #[test]
    fn verifier_catches_pending_queue_hole() {
        let db = loader::load(DbConfig::small(), 35);
        assert!(db.corrupt_pending_queue(0, 0));
        let report = db.verify_consistency();
        assert!(
            report.violations.iter().any(|v| v.starts_with("C3")),
            "{:?}",
            report.violations
        );
    }
}
