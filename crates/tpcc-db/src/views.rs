//! Incremental materialized views fed by the WAL change stream.
//!
//! [`CdcPipeline`] bundles a [`CdcSubscriber`] (the physical decoder
//! in `tpcc-storage::cdc`) with a [`ViewRegistry`] (heap file →
//! relation attribution) and three derived aggregates:
//!
//! * [`DistrictRevenueView`] — per-district `D_YTD` (Payment deltas,
//!   replace semantics) and summed order-line revenue in integer cents
//!   (New-Order inserts / Delivery updates).
//! * [`OpenOrdersView`] — pending NEW-ORDER rows per district
//!   (New-Order inserts minus Delivery deletes).
//! * [`StockThresholdView`] — everything Stock-Level's 200-row join
//!   needs, maintained incrementally: per-warehouse stock quantities,
//!   per-district `next_o_id`, and the item sets of the last-20-order
//!   window; [`StockThresholdView::stock_level`] answers the query
//!   without touching base tables.
//!
//! # Replay equivalence
//!
//! The correctness contract — enforced by `tests/cdc_equivalence.rs`
//! and `tests/view_vs_verifier.rs` — is that at any quiesced harvest
//! point the incrementally-maintained state is **byte-equal**
//! ([`MaterializedViews::encode`]) to [`MaterializedViews::rescan`]
//! over a fresh flush of the base tables. Two design rules make exact
//! equality possible with float columns in play:
//!
//! * replaced columns (`D_YTD`, `S_QUANTITY`, `D_NEXT_O_ID`) store the
//!   decoded value of the *latest* row image — both paths read the
//!   same record bytes, so the bits agree no matter how many updates
//!   were folded;
//! * accumulated columns (order-line revenue) are summed in integer
//!   cents (`round(amount × 100)`), which is associative and
//!   order-independent, unlike `f64` addition.
//!
//! # Recoverability
//!
//! A view is a pure function of (checkpoint disk, WAL prefix): the
//! pipeline seeds itself by rescanning the subscriber's shadow disk,
//! so [`CdcPipeline::resume`] from any [`CdcCheckpoint`] — including
//! one that lost a race with a crash (`cdc_checkpoint` fault site) —
//! rebuilds exactly the state a never-crashed pipeline would hold at
//! that cursor. The crashpoint sweep (`inject::cdc_checkpoint_sweep`)
//! proves this at every committed prefix.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use tpcc_obs::Label;
use tpcc_schema::relation::Relation;
use tpcc_storage::cdc::{live_slots, CdcLag, CdcStats, CdcSubscriber, ChangeBatch, RowOp};
use tpcc_storage::cdc::{CdcCheckpoint, RowChange};
use tpcc_storage::{DiskManager, FaultHook, FileId};

use crate::db::TpccDb;
use crate::keys;
use crate::records::{
    CustomerRec, DistrictRec, HistoryRec, ItemRec, NewOrderRec, OrderLineRec, OrderRec, StockRec,
    WarehouseRec,
};

/// Schema version stamped on every exported change-event line.
pub const EVENT_SCHEMA: u32 = 1;

/// Maps heap page files to the relation stored in them, so physical
/// [`RowChange`]s can be attributed to tables and primary keys.
#[derive(Debug, Clone)]
pub struct ViewRegistry {
    by_file: BTreeMap<FileId, Relation>,
}

impl ViewRegistry {
    /// Reads the attribution map off a database's heap catalog.
    #[must_use]
    pub fn from_db(db: &TpccDb) -> Self {
        let h = &db.heaps;
        let by_file = BTreeMap::from([
            (h.warehouse.file(), Relation::Warehouse),
            (h.district.file(), Relation::District),
            (h.customer.file(), Relation::Customer),
            (h.stock.file(), Relation::Stock),
            (h.item.file(), Relation::Item),
            (h.order.file(), Relation::Order),
            (h.new_order.file(), Relation::NewOrder),
            (h.order_line.file(), Relation::OrderLine),
            (h.history.file(), Relation::History),
        ]);
        Self { by_file }
    }

    /// The relation stored in `file`, if it is a registered heap.
    #[must_use]
    pub fn relation(&self, file: FileId) -> Option<Relation> {
        self.by_file.get(&file).copied()
    }

    /// Every registered heap file (what a subscriber should watch).
    pub fn files(&self) -> impl Iterator<Item = FileId> + '_ {
        self.by_file.keys().copied()
    }

    /// The heap file holding `rel`.
    #[must_use]
    pub fn file_of(&self, rel: Relation) -> FileId {
        *self
            .by_file
            .iter()
            .find(|(_, r)| **r == rel)
            .map(|(f, _)| f)
            .expect("every relation is registered")
    }
}

/// One logical change event: a [`RowChange`] attributed to a table and
/// primary key. The JSON form is the golden-tested export format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChangeEvent {
    /// Relation the row belongs to.
    pub table: Relation,
    /// Packed primary key (the `keys` module encoding; ORDER rows
    /// carry no district in the heap tuple, so their key is the bare
    /// `o_id`).
    pub key: u64,
    /// "insert" / "update" / "delete".
    pub op: &'static str,
    /// Transaction timestamp of the enclosing batch's boundary marker.
    pub txn: u64,
}

impl ChangeEvent {
    /// Schema-versioned JSON line, stable across runs of the same
    /// seeded workload.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"v\":{},\"txn\":{},\"table\":\"{}\",\"key\":{},\"op\":\"{}\"}}",
            EVENT_SCHEMA,
            self.txn,
            self.table.name(),
            self.key,
            self.op
        )
    }
}

/// Packs the primary key out of a decoded row image.
fn row_key(rel: Relation, bytes: &[u8]) -> u64 {
    match rel {
        Relation::Warehouse => keys::warehouse(u64::from(WarehouseRec::decode(bytes).w_id)),
        Relation::District => {
            let r = DistrictRec::decode(bytes);
            keys::district(u64::from(r.w_id), u64::from(r.d_id))
        }
        Relation::Customer => {
            let r = CustomerRec::decode(bytes);
            keys::customer(u64::from(r.w_id), u64::from(r.d_id), u64::from(r.c_id))
        }
        Relation::Stock => {
            let r = StockRec::decode(bytes);
            keys::stock(u64::from(r.w_id), u64::from(r.i_id))
        }
        Relation::Item => keys::item(u64::from(ItemRec::decode(bytes).i_id)),
        // ORDER heap tuples carry no (w, d): the key is the bare o_id
        Relation::Order => u64::from(OrderRec::decode(bytes).o_id),
        Relation::NewOrder => {
            let r = NewOrderRec::decode(bytes);
            keys::order(u64::from(r.w_id), u64::from(r.d_id), u64::from(r.o_id))
        }
        Relation::OrderLine => {
            let r = OrderLineRec::decode(bytes);
            keys::order_line(
                u64::from(r.w_id),
                u64::from(r.d_id),
                u64::from(r.o_id),
                u64::from(r.number),
            )
        }
        Relation::History => {
            let r = HistoryRec::decode(bytes);
            keys::customer(u64::from(r.c_w_id), u64::from(r.c_d_id), u64::from(r.c_id))
        }
    }
}

/// Attributes one batch's physical row changes to logical events.
/// Changes to unregistered files (B+Tree pages) never reach here —
/// the subscriber only watches registered heaps.
#[must_use]
pub fn decode_events(registry: &ViewRegistry, batch: &ChangeBatch) -> Vec<ChangeEvent> {
    batch
        .changes
        .iter()
        .filter_map(|c| {
            let rel = registry.relation(c.file)?;
            let (op, bytes) = match &c.op {
                RowOp::Insert { after } => ("insert", after),
                RowOp::Update { after, .. } => ("update", after),
                RowOp::Delete { before } => ("delete", before),
            };
            Some(ChangeEvent {
                table: rel,
                key: row_key(rel, bytes),
                op,
                txn: batch.txn,
            })
        })
        .collect()
}

/// `f64` money → integer cents (order-independent accumulation).
fn cents(amount: f64) -> i64 {
    (amount * 100.0).round() as i64
}

/// Per-district revenue: the latest `D_YTD` (bit-exact replace
/// semantics) plus summed order-line revenue in cents.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DistrictRevenueView {
    /// (w, d) → latest `D_YTD` bits.
    ytd_bits: BTreeMap<(u64, u64), u64>,
    /// (w, d) → Σ cents(`OL_AMOUNT`) over live order lines.
    line_cents: BTreeMap<(u64, u64), i64>,
}

impl DistrictRevenueView {
    /// The district's year-to-date payment total.
    #[must_use]
    pub fn ytd(&self, w: u64, d: u64) -> f64 {
        f64::from_bits(*self.ytd_bits.get(&(w, d)).unwrap_or(&0))
    }

    /// Summed order-line revenue (cents) booked in the district.
    #[must_use]
    pub fn line_revenue_cents(&self, w: u64, d: u64) -> i64 {
        *self.line_cents.get(&(w, d)).unwrap_or(&0)
    }

    /// Districts tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ytd_bits.len()
    }

    /// True when no district has been seen.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ytd_bits.is_empty()
    }
}

/// Pending (undelivered) order counts per district.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpenOrdersView {
    /// (w, d) → live NEW-ORDER rows. Zero-count districts are pruned
    /// so the map equals what a rescan of live rows builds.
    pending: BTreeMap<(u64, u64), u64>,
}

impl OpenOrdersView {
    /// Pending orders in the district.
    #[must_use]
    pub fn pending(&self, w: u64, d: u64) -> u64 {
        *self.pending.get(&(w, d)).unwrap_or(&0)
    }

    /// Total pending orders across all districts.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.pending.values().sum()
    }
}

/// The state Stock-Level (§2.2) needs, maintained incrementally:
/// stock quantities, district order cursors, and the item sets of each
/// district's last-20-order window. Deliberately not `PartialEq`:
/// the incremental path retains a slack of settled-but-out-of-window
/// orders, so compare states via [`MaterializedViews::encode`], which
/// canonicalizes to the exact window.
#[derive(Debug, Clone, Default)]
pub struct StockThresholdView {
    /// (w, i) → latest `S_QUANTITY`.
    qty: BTreeMap<(u64, u64), i32>,
    /// (w, d) → latest `D_NEXT_O_ID`.
    next_o_id: BTreeMap<(u64, u64), u64>,
    /// (w, d) → o_id → distinct items ordered. Admission is
    /// unconditional and pruning keeps a generous slack behind
    /// `next_o_id`: the tracked `next_o_id` is *physical* state at a
    /// commit marker, so under a concurrent workload it can transiently
    /// run ahead of its final value (uncommitted increments that a
    /// later batch compensates away). Filtering to the exact last-20
    /// window happens at read time, when `next_o_id` is settled.
    recent: BTreeMap<(u64, u64), BTreeMap<u64, BTreeSet<u64>>>,
}

/// Orders kept behind `next_o_id` before slack pruning drops them.
/// Must exceed the worst transient inflation of the physical
/// `next_o_id` (bounded by concurrently in-flight transactions) plus
/// the 20-order query window; anything this far behind is settled.
const RECENT_SLACK: u64 = 256;

impl StockThresholdView {
    /// Answers Stock-Level from the view alone: distinct items in the
    /// district's last 20 orders whose stock is below `threshold`.
    #[must_use]
    pub fn stock_level(&self, w: u64, d: u64, threshold: i32) -> u64 {
        let Some(orders) = self.recent.get(&(w, d)) else {
            return 0;
        };
        let from = self.next_o_id(w, d).saturating_sub(20);
        let mut low = BTreeSet::new();
        for (_, items) in orders.range(from..) {
            for &i in items {
                if *self.qty.get(&(w, i)).unwrap_or(&0) < threshold {
                    low.insert(i);
                }
            }
        }
        low.len() as u64
    }

    /// The district's next order id, as the view last saw it.
    #[must_use]
    pub fn next_o_id(&self, w: u64, d: u64) -> u64 {
        *self.next_o_id.get(&(w, d)).unwrap_or(&0)
    }

    /// Memory bound: drop orders more than [`RECENT_SLACK`] behind the
    /// district cursor. Deliberately *not* the exact query window —
    /// see the `recent` field docs for why exact pruning here races.
    fn prune_slack(&mut self) {
        self.recent.retain(|&(w, d), orders| {
            let keep_from = self
                .next_o_id
                .get(&(w, d))
                .copied()
                .unwrap_or(0)
                .saturating_sub(RECENT_SLACK);
            orders.retain(|&o, _| o >= keep_from);
            !orders.is_empty()
        });
    }

    /// The exact last-20-order window per district — what
    /// [`MaterializedViews::encode`] canonicalizes and a rescan builds
    /// directly.
    fn windowed(&self) -> BTreeMap<(u64, u64), BTreeMap<u64, BTreeSet<u64>>> {
        let mut out = BTreeMap::new();
        for (&(w, d), orders) in &self.recent {
            let from = self.next_o_id(w, d).saturating_sub(20);
            let win: BTreeMap<u64, BTreeSet<u64>> = orders
                .range(from..)
                .map(|(&o, items)| (o, items.clone()))
                .collect();
            if !win.is_empty() {
                out.insert((w, d), win);
            }
        }
        out
    }
}

/// The three incremental views plus the shared apply/rescan machinery.
/// State comparison goes through [`MaterializedViews::encode`] (see
/// [`StockThresholdView`] for why there is no `PartialEq`).
#[derive(Debug, Clone, Default)]
pub struct MaterializedViews {
    /// Per-district revenue.
    pub district_revenue: DistrictRevenueView,
    /// Pending order counts.
    pub open_orders: OpenOrdersView,
    /// Stock-Level answering state.
    pub stock_threshold: StockThresholdView,
}

impl MaterializedViews {
    /// Folds one change batch into all three views.
    pub fn apply(&mut self, registry: &ViewRegistry, batch: &ChangeBatch) {
        for change in &batch.changes {
            if let Some(rel) = registry.relation(change.file) {
                self.apply_change(rel, change);
            }
        }
        self.stock_threshold.prune_slack();
    }

    /// Under a concurrent workload a slot can be freed and reused by a
    /// *different* logical row between two commit boundaries; the
    /// physical diff then reports one `Update` whose before/after
    /// images belong to different keys. Decomposing every update into
    /// remove(before) + add(after) makes the fold correct regardless —
    /// for replace-semantics columns the remove is a no-op and the add
    /// is the replace.
    fn apply_change(&mut self, rel: Relation, change: &RowChange) {
        match &change.op {
            RowOp::Insert { after } => self.add_row(rel, after),
            RowOp::Delete { before } => self.remove_row(rel, before),
            RowOp::Update { before, after } => {
                self.remove_row(rel, before);
                self.add_row(rel, after);
            }
        }
    }

    fn add_row(&mut self, rel: Relation, bytes: &[u8]) {
        match rel {
            Relation::District => {
                let r = DistrictRec::decode(bytes);
                let key = (u64::from(r.w_id), u64::from(r.d_id));
                self.district_revenue.ytd_bits.insert(key, r.ytd.to_bits());
                self.stock_threshold
                    .next_o_id
                    .insert(key, u64::from(r.next_o_id));
            }
            Relation::OrderLine => {
                let r = OrderLineRec::decode(bytes);
                let key = (u64::from(r.w_id), u64::from(r.d_id));
                *self.district_revenue.line_cents.entry(key).or_insert(0) += cents(r.amount);
                // unconditional admission: the view's `next_o_id` can
                // be transiently ahead here, so a window check would
                // wrongly reject in-window lines (windowing happens at
                // read time instead)
                self.stock_threshold
                    .recent
                    .entry(key)
                    .or_default()
                    .entry(u64::from(r.o_id))
                    .or_default()
                    .insert(u64::from(r.i_id));
            }
            Relation::NewOrder => {
                let r = NewOrderRec::decode(bytes);
                let key = (u64::from(r.w_id), u64::from(r.d_id));
                *self.open_orders.pending.entry(key).or_insert(0) += 1;
            }
            Relation::Stock => {
                let r = StockRec::decode(bytes);
                self.stock_threshold
                    .qty
                    .insert((u64::from(r.w_id), u64::from(r.i_id)), r.quantity);
            }
            // warehouse / customer / item / order / history feed no view
            _ => {}
        }
    }

    fn remove_row(&mut self, rel: Relation, bytes: &[u8]) {
        match rel {
            Relation::OrderLine => {
                let r = OrderLineRec::decode(bytes);
                let key = (u64::from(r.w_id), u64::from(r.d_id));
                *self.district_revenue.line_cents.entry(key).or_insert(0) -= cents(r.amount);
                if let Some(orders) = self.stock_threshold.recent.get_mut(&key) {
                    if let Some(items) = orders.get_mut(&u64::from(r.o_id)) {
                        items.remove(&u64::from(r.i_id));
                        if items.is_empty() {
                            orders.remove(&u64::from(r.o_id));
                        }
                    }
                    if self
                        .stock_threshold
                        .recent
                        .get(&key)
                        .is_some_and(BTreeMap::is_empty)
                    {
                        self.stock_threshold.recent.remove(&key);
                    }
                }
            }
            Relation::NewOrder => {
                let r = NewOrderRec::decode(bytes);
                let key = (u64::from(r.w_id), u64::from(r.d_id));
                if let Some(n) = self.open_orders.pending.get_mut(&key) {
                    *n -= 1;
                    if *n == 0 {
                        self.open_orders.pending.remove(&key);
                    }
                }
            }
            // replace-semantics rows (district, stock) are never
            // logically deleted: the paired add is the replace
            _ => {}
        }
    }

    /// Builds all three views by scanning a raw disk image's base
    /// tables — the ground truth incremental maintenance must equal.
    #[must_use]
    pub fn rescan(disk: &mut DiskManager, registry: &ViewRegistry) -> Self {
        let mut v = Self::default();
        // districts first: the last-20 window bound for order lines
        scan_heap(disk, registry.file_of(Relation::District), |bytes| {
            let r = DistrictRec::decode(bytes);
            let key = (u64::from(r.w_id), u64::from(r.d_id));
            v.district_revenue.ytd_bits.insert(key, r.ytd.to_bits());
            v.stock_threshold
                .next_o_id
                .insert(key, u64::from(r.next_o_id));
        });
        scan_heap(disk, registry.file_of(Relation::OrderLine), |bytes| {
            let r = OrderLineRec::decode(bytes);
            let key = (u64::from(r.w_id), u64::from(r.d_id));
            *v.district_revenue.line_cents.entry(key).or_insert(0) += cents(r.amount);
            let from = v.stock_threshold.next_o_id(key.0, key.1).saturating_sub(20);
            if u64::from(r.o_id) >= from {
                v.stock_threshold
                    .recent
                    .entry(key)
                    .or_default()
                    .entry(u64::from(r.o_id))
                    .or_default()
                    .insert(u64::from(r.i_id));
            }
        });
        scan_heap(disk, registry.file_of(Relation::NewOrder), |bytes| {
            let r = NewOrderRec::decode(bytes);
            let key = (u64::from(r.w_id), u64::from(r.d_id));
            *v.open_orders.pending.entry(key).or_insert(0) += 1;
        });
        scan_heap(disk, registry.file_of(Relation::Stock), |bytes| {
            let r = StockRec::decode(bytes);
            v.stock_threshold
                .qty
                .insert((u64::from(r.w_id), u64::from(r.i_id)), r.quantity);
        });
        v
    }

    /// Rescans the live database: flushes dirty pages and scans the
    /// flushed disk image. Quiesce the workload first — this is the
    /// harvest-point ground truth of the replay-equivalence tests.
    #[must_use]
    pub fn rescan_live(db: &TpccDb, registry: &ViewRegistry) -> Self {
        db.flush();
        let mut disk = db.bm.disk_snapshot();
        Self::rescan(&mut disk, registry)
    }

    /// Canonical byte encoding: every map in key order, fixed-width
    /// little-endian. Two view states are equal iff their encodings
    /// are byte-equal — the form the equivalence tests compare.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let tag = |out: &mut Vec<u8>, t: u8, n: usize| {
            out.push(t);
            out.extend_from_slice(&(n as u64).to_le_bytes());
        };
        tag(&mut out, 1, self.district_revenue.ytd_bits.len());
        for (&(w, d), &bits) in &self.district_revenue.ytd_bits {
            out.extend_from_slice(&w.to_le_bytes());
            out.extend_from_slice(&d.to_le_bytes());
            out.extend_from_slice(&bits.to_le_bytes());
        }
        tag(&mut out, 2, self.district_revenue.line_cents.len());
        for (&(w, d), &c) in &self.district_revenue.line_cents {
            out.extend_from_slice(&w.to_le_bytes());
            out.extend_from_slice(&d.to_le_bytes());
            out.extend_from_slice(&c.to_le_bytes());
        }
        tag(&mut out, 3, self.open_orders.pending.len());
        for (&(w, d), &n) in &self.open_orders.pending {
            out.extend_from_slice(&w.to_le_bytes());
            out.extend_from_slice(&d.to_le_bytes());
            out.extend_from_slice(&n.to_le_bytes());
        }
        tag(&mut out, 4, self.stock_threshold.qty.len());
        for (&(w, i), &q) in &self.stock_threshold.qty {
            out.extend_from_slice(&w.to_le_bytes());
            out.extend_from_slice(&i.to_le_bytes());
            out.extend_from_slice(&q.to_le_bytes());
        }
        tag(&mut out, 5, self.stock_threshold.next_o_id.len());
        for (&(w, d), &n) in &self.stock_threshold.next_o_id {
            out.extend_from_slice(&w.to_le_bytes());
            out.extend_from_slice(&d.to_le_bytes());
            out.extend_from_slice(&n.to_le_bytes());
        }
        let recent = self.stock_threshold.windowed();
        tag(&mut out, 6, recent.len());
        for ((w, d), orders) in &recent {
            out.extend_from_slice(&w.to_le_bytes());
            out.extend_from_slice(&d.to_le_bytes());
            out.extend_from_slice(&(orders.len() as u64).to_le_bytes());
            for (o, items) in orders {
                out.extend_from_slice(&o.to_le_bytes());
                out.extend_from_slice(&(items.len() as u64).to_le_bytes());
                for i in items {
                    out.extend_from_slice(&i.to_le_bytes());
                }
            }
        }
        out
    }
}

/// Applies `f` to every live record of a heap file in a raw disk
/// image, in (page, slot) order.
fn scan_heap(disk: &mut DiskManager, file: FileId, mut f: impl FnMut(&[u8])) {
    let page_size = disk.page_size();
    let mut buf = vec![0u8; page_size];
    for page in 0..disk.pages(file) {
        if disk.is_free(file, page) {
            continue;
        }
        disk.read_page(file, page, &mut buf);
        for (_, (off, len)) in live_slots(&buf) {
            f(&buf[off..off + len]);
        }
    }
}

/// The end-to-end CDC consumer: subscriber + attribution + views, with
/// lag/throughput telemetry.
pub struct CdcPipeline {
    sub: CdcSubscriber,
    registry: ViewRegistry,
    views: MaterializedViews,
}

impl std::fmt::Debug for CdcPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CdcPipeline")
            .field("cursor", &self.sub.cursor())
            .field("stats", &self.sub.stats())
            .finish()
    }
}

impl CdcPipeline {
    /// Attaches to a WAL-mode database: the subscriber's shadow starts
    /// from the post-load checkpoint and the views from a rescan of it.
    ///
    /// # Panics
    /// When the database runs without WAL (no checkpoint to seed from).
    #[must_use]
    pub fn new(db: &TpccDb) -> Self {
        let base = db
            .checkpoint_snapshot()
            .expect("CDC requires WAL mode (post-load checkpoint)");
        let registry = ViewRegistry::from_db(db);
        let mut sub = CdcSubscriber::new(base);
        for file in registry.files() {
            sub.watch(file);
        }
        Self::seed(sub, registry)
    }

    /// Re-attaches from a checkpoint: cursor and shadow come from the
    /// checkpoint, the views from a rescan of the shadow — proving the
    /// view is a pure function of (checkpoint, WAL prefix).
    #[must_use]
    pub fn resume(db: &TpccDb, checkpoint: CdcCheckpoint) -> Self {
        let registry = ViewRegistry::from_db(db);
        let mut sub = CdcSubscriber::resume(checkpoint);
        for file in registry.files() {
            sub.watch(file);
        }
        Self::seed(sub, registry)
    }

    fn seed(sub: CdcSubscriber, registry: ViewRegistry) -> Self {
        let mut shadow = sub.shadow().snapshot();
        let views = MaterializedViews::rescan(&mut shadow, &registry);
        Self {
            sub,
            registry,
            views,
        }
    }

    /// Bounds how far the durable committed prefix may run ahead
    /// before [`CdcPipeline::poll`] returns [`CdcLag`].
    pub fn set_max_lag(&mut self, max_lag: Option<usize>) {
        self.sub.set_max_lag(max_lag);
    }

    /// Routes checkpoint-taking through a fault hook (the
    /// `cdc_checkpoint` crash site).
    pub fn set_fault_hook(&mut self, hook: Arc<FaultHook>) {
        self.sub.set_fault_hook(hook);
    }

    /// Consumes everything up to the durable committed prefix and
    /// folds it into the views. Records `cdc_events` / `cdc_batches`
    /// counters and the pre-poll lag (entries) into the database's
    /// observability recorder.
    ///
    /// # Errors
    /// [`CdcLag`] when the configured bound is exceeded; nothing is
    /// consumed and the cursor holds its position.
    pub fn poll(&mut self, db: &TpccDb) -> Result<Vec<ChangeBatch>, CdcLag> {
        let (lag, polled) = db
            .with_wal(|wal| (self.sub.lag(wal), self.sub.poll(wal)))
            .expect("CDC requires WAL mode");
        let obs = db.bm.obs();
        obs.histogram_handle("cdc_lag_entries", Label::None)
            .record(lag as u64);
        let batches = polled?;
        let events: usize = batches.iter().map(|b| b.changes.len()).sum();
        obs.counter_handle("cdc_events", Label::None)
            .add(events as u64);
        obs.counter_handle("cdc_batches", Label::None)
            .add(batches.len() as u64);
        for batch in &batches {
            self.views.apply(&self.registry, batch);
        }
        Ok(batches)
    }

    /// [`CdcPipeline::poll`] ignoring the lag bound — the catch-up
    /// path after a [`CdcLag`] error; no events are missed because the
    /// cursor never moved.
    pub fn poll_unbounded(&mut self, db: &TpccDb) -> Vec<ChangeBatch> {
        let batches = db
            .with_wal(|wal| self.sub.poll_unbounded(wal))
            .expect("CDC requires WAL mode");
        let obs = db.bm.obs();
        let events: usize = batches.iter().map(|b| b.changes.len()).sum();
        obs.counter_handle("cdc_events", Label::None)
            .add(events as u64);
        obs.counter_handle("cdc_batches", Label::None)
            .add(batches.len() as u64);
        for batch in &batches {
            self.views.apply(&self.registry, batch);
        }
        batches
    }

    /// Takes a cursor checkpoint (fires the `cdc_checkpoint` fault
    /// site; `None` when a crash plan trips there — the checkpoint is
    /// lost, the previous one stays authoritative).
    #[must_use]
    pub fn checkpoint(&mut self) -> Option<CdcCheckpoint> {
        self.sub.checkpoint()
    }

    /// The maintained views.
    #[must_use]
    pub fn views(&self) -> &MaterializedViews {
        &self.views
    }

    /// Attribution registry (for event decoding).
    #[must_use]
    pub fn registry(&self) -> &ViewRegistry {
        &self.registry
    }

    /// WAL entries consumed.
    #[must_use]
    pub fn cursor(&self) -> usize {
        self.sub.cursor()
    }

    /// Entries the durable committed prefix is ahead of the cursor.
    #[must_use]
    pub fn lag(&self, db: &TpccDb) -> usize {
        db.with_wal(|wal| self.sub.lag(wal)).unwrap_or(0)
    }

    /// Subscriber throughput counters.
    #[must_use]
    pub fn stats(&self) -> CdcStats {
        self.sub.stats()
    }
}
