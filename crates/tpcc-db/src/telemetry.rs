//! Windowed run telemetry: terminals accumulate into private
//! cumulative shards; a harvester diffs those shards (and the
//! recorder's counters) per flush window and emits one
//! [`TimeSeriesPoint`] JSON line — live p50/p95/p99 per transaction
//! type, throughput, buffer-miss ppm, lock wounds/waits, latch
//! contention, WAL bytes, and (under group commit) flushes, commits
//! per flush, and the window's p95 commit wait, all without funneling
//! per-sample traffic through shared slots.
//!
//! # Flush modes
//!
//! - **Every K transactions** (`every_txns > 0`): the terminal whose
//!   completion crosses a multiple of K performs the harvest inline.
//!   Deterministic window boundaries, good for seeded comparisons.
//! - **Every N milliseconds** (`every_ms > 0`): the parallel driver
//!   spawns a flusher thread that harvests on a timer. Uniform wall
//!   time per window, good for watching a live run.
//!
//! Both modes can be combined; each harvest emits the delta since the
//! previous one, whoever triggered it.
//!
//! # Why cumulative shards + diffing
//!
//! Each terminal owns an `Arc<Mutex<WindowAccum>>` that only grows; the
//! per-transaction cost is one uncontended mutex plus a sketch
//! increment. The harvester clones every shard, subtracts its previous
//! clone ([`QuantileSketch::delta_since`] is exact for counts and
//! quantiles), and merges the per-shard window deltas losslessly. No
//! terminal ever blocks on another terminal's telemetry, and nothing
//! is reset in place — a harvest racing a recording terminal just
//! attributes the straddling transaction to one window or the next.

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::driver::TX_NAMES;
use tpcc_obs::{
    Label, MemoryRecorder, QuantileSketch, SeriesStat, TimeSeriesPoint, TimeSeriesWriter,
    DEFAULT_SKETCH_ALPHA,
};

/// Counters whose per-window deltas are exported on every point
/// (summed across labels via [`MemoryRecorder::counter_total`]).
/// `wal_flushes` / `group_commits` stay zero unless the run enables
/// group commit, the four MVCC columns (`snapshot_reads`,
/// `versions_traversed`, `undo_bytes`, `aborts`) stay zero unless
/// `DbConfig::mvcc` is on, and the two CDC columns (`cdc_events`,
/// `cdc_batches`) stay zero unless a [`crate::views::CdcPipeline`]
/// polls during the run — the schema is additive over prior runs.
const WINDOW_COUNTERS: [&str; 14] = [
    "buf_hits",
    "buf_misses",
    "wal_bytes_appended",
    "lock_wounds",
    "lock_waits",
    "latch_contended",
    "wal_flushes",
    "group_commits",
    "snapshot_reads",
    "versions_traversed",
    "undo_bytes",
    "aborts",
    "cdc_events",
    "cdc_batches",
];

/// `WINDOW_COUNTERS` index of `wal_flushes`.
const IDX_WAL_FLUSHES: usize = 6;
/// `WINDOW_COUNTERS` index of `group_commits`.
const IDX_GROUP_COMMITS: usize = 7;

/// When to flush a window.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryConfig {
    /// Harvest every this many completed transactions (0 = off).
    pub every_txns: u64,
    /// Harvest every this many milliseconds (0 = off; parallel driver
    /// only — the serial driver has no flusher thread).
    pub every_ms: u64,
    /// Relative accuracy of the per-terminal latency sketches.
    pub sketch_alpha: f64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            every_txns: 0,
            every_ms: 0,
            sketch_alpha: DEFAULT_SKETCH_ALPHA,
        }
    }
}

/// One terminal's cumulative telemetry state. Monotonic: the harvester
/// diffs clones, nothing is ever reset.
#[derive(Debug, Clone)]
pub struct WindowAccum {
    executed: [u64; 5],
    retries: u64,
    lat: [QuantileSketch; 5],
}

impl WindowAccum {
    fn new(alpha: f64) -> Self {
        Self {
            executed: [0; 5],
            retries: 0,
            lat: std::array::from_fn(|_| QuantileSketch::new(alpha)),
        }
    }

    /// Records one completed transaction of type `t` with latency `ns`.
    pub fn record(&mut self, t: usize, ns: u64) {
        self.executed[t] += 1;
        self.lat[t].record(ns);
    }

    /// Records one wound-induced retry.
    pub fn record_retry(&mut self) {
        self.retries += 1;
    }
}

/// Harvester state: the previous harvest's shard clones and counter
/// totals, i.e. the baseline every window delta is computed against.
struct HarvestState {
    prev_shards: Vec<WindowAccum>,
    prev_counters: [u64; WINDOW_COUNTERS.len()],
    /// Previous snapshot of the group-commit wait histogram, so each
    /// window's `commit_wait_p95_us` covers only that window.
    prev_commit_wait: QuantileSketch,
    /// Previous snapshot of the CDC pre-poll lag histogram, so each
    /// window's `cdc_lag_p95` covers only that window's polls.
    prev_cdc_lag: QuantileSketch,
    last_flush: Instant,
}

/// The shared telemetry hub for one run: per-terminal shards, the
/// window harvester, and the JSON-lines writer.
pub struct Telemetry {
    shards: Vec<Arc<Mutex<WindowAccum>>>,
    recorder: Arc<MemoryRecorder>,
    writer: Mutex<TimeSeriesWriter<Box<dyn Write + Send>>>,
    harvest_state: Mutex<HarvestState>,
    cfg: TelemetryConfig,
    completed: AtomicU64,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("terminals", &self.shards.len())
            .field("cfg", &self.cfg)
            .finish()
    }
}

impl Telemetry {
    /// A hub for `terminals` terminals writing JSON lines to `out`.
    /// The run-relative `t_ms` clock starts now.
    #[must_use]
    pub fn new(
        recorder: Arc<MemoryRecorder>,
        out: Box<dyn Write + Send>,
        cfg: TelemetryConfig,
        terminals: usize,
    ) -> Arc<Self> {
        let alpha = cfg.sketch_alpha;
        let terminals = terminals.max(1);
        Arc::new(Self {
            shards: (0..terminals)
                .map(|_| Arc::new(Mutex::new(WindowAccum::new(alpha))))
                .collect(),
            recorder,
            writer: Mutex::new(TimeSeriesWriter::new(out)),
            harvest_state: Mutex::new(HarvestState {
                prev_shards: vec![WindowAccum::new(alpha); terminals],
                prev_counters: [0; WINDOW_COUNTERS.len()],
                prev_commit_wait: QuantileSketch::default(),
                prev_cdc_lag: QuantileSketch::default(),
                last_flush: Instant::now(),
            }),
            cfg,
            completed: AtomicU64::new(0),
        })
    }

    /// The flush configuration this hub was built with.
    #[must_use]
    pub fn config(&self) -> TelemetryConfig {
        self.cfg
    }

    /// Terminal `t`'s shard (terminals beyond the constructed count
    /// share the last shard rather than panic).
    #[must_use]
    pub fn shard(&self, t: usize) -> Arc<Mutex<WindowAccum>> {
        Arc::clone(&self.shards[t.min(self.shards.len() - 1)])
    }

    /// Notes one completed transaction; in every-K-transactions mode
    /// the completion that crosses a window boundary harvests inline.
    pub fn note_completion(&self) {
        let n = self.completed.fetch_add(1, Ordering::Relaxed) + 1;
        if self.cfg.every_txns > 0 && n.is_multiple_of(self.cfg.every_txns) {
            self.harvest();
        }
    }

    /// Takes one window: clones every shard, diffs against the
    /// previous harvest (shards and recorder counters), and emits one
    /// time-series point covering exactly the interval since the last
    /// harvest.
    pub fn harvest(&self) {
        let mut hs = self.harvest_state.lock().expect("telemetry harvest");
        let window_ms = hs.last_flush.elapsed().as_secs_f64() * 1e3;
        hs.last_flush = Instant::now();

        let cur: Vec<WindowAccum> = self
            .shards
            .iter()
            .map(|s| s.lock().expect("telemetry shard").clone())
            .collect();
        let mut executed = [0u64; 5];
        let mut retries = 0u64;
        let mut lat: [QuantileSketch; 5] =
            std::array::from_fn(|_| QuantileSketch::new(self.cfg.sketch_alpha));
        for (c, p) in cur.iter().zip(hs.prev_shards.iter()) {
            for t in 0..5 {
                executed[t] += c.executed[t] - p.executed[t];
                lat[t].merge(&c.lat[t].delta_since(&p.lat[t]));
            }
            retries += c.retries - p.retries;
        }
        hs.prev_shards = cur;

        let totals: [u64; WINDOW_COUNTERS.len()] =
            std::array::from_fn(|i| self.recorder.counter_total(WINDOW_COUNTERS[i]));
        let deltas: [u64; WINDOW_COUNTERS.len()] =
            std::array::from_fn(|i| totals[i].saturating_sub(hs.prev_counters[i]));
        hs.prev_counters = totals;

        let window_s = (window_ms / 1e3).max(f64::MIN_POSITIVE);
        let series: Vec<(&'static str, SeriesStat)> = (0..5)
            .map(|t| {
                (
                    TX_NAMES[t],
                    SeriesStat {
                        txns: executed[t],
                        tps: executed[t] as f64 / window_s,
                        p50_us: lat[t].quantile(0.50) / 1e3,
                        p95_us: lat[t].quantile(0.95) / 1e3,
                        p99_us: lat[t].quantile(0.99) / 1e3,
                    },
                )
            })
            .collect();
        let hits = deltas[0];
        let misses = deltas[1];
        let refs = hits + misses;
        let miss_ppm = if refs == 0 {
            0.0
        } else {
            misses as f64 / refs as f64 * 1e6
        };
        let mut counters: Vec<(&'static str, u64)> = WINDOW_COUNTERS
            .iter()
            .zip(deltas.iter())
            .map(|(&n, &d)| (n, d))
            .collect();
        counters.push(("txn_retries", retries));

        // group-commit window stats: flush batching factor and the
        // window-local p95 commit wait (zero unless group commit is on)
        let commit_wait = self
            .recorder
            .histogram("commit_wait_ns", Label::None)
            .unwrap_or_default();
        let wait_delta = commit_wait.delta_since(&hs.prev_commit_wait);
        hs.prev_commit_wait = commit_wait;
        let flushes = deltas[IDX_WAL_FLUSHES];
        let commits_per_flush = if flushes == 0 {
            0.0
        } else {
            deltas[IDX_GROUP_COMMITS] as f64 / flushes as f64
        };
        let commit_wait_p95_us = wait_delta.quantile(0.95) / 1e3;

        // CDC window stats: the p95 of the pre-poll subscriber lag
        // (WAL entries behind the durable committed prefix; zero
        // unless a pipeline polls during the run)
        let cdc_lag = self
            .recorder
            .histogram("cdc_lag_entries", Label::None)
            .unwrap_or_default();
        let cdc_lag_delta = cdc_lag.delta_since(&hs.prev_cdc_lag);
        hs.prev_cdc_lag = cdc_lag;
        let cdc_lag_p95 = cdc_lag_delta.quantile(0.95);

        let point = TimeSeriesPoint {
            window_ms,
            txns: executed.iter().sum(),
            series,
            counters,
            gauges: vec![
                ("miss_ppm", miss_ppm),
                ("commits_per_flush", commits_per_flush),
                ("commit_wait_p95_us", commit_wait_p95_us),
                ("cdc_lag_p95", cdc_lag_p95),
            ],
        };
        // hold the harvest lock across the emit so points are written
        // in window order
        self.writer
            .lock()
            .expect("telemetry writer")
            .emit(&point)
            .expect("telemetry emit");
    }

    /// Harvests the final partial window (if any transactions or
    /// counter traffic remain unflushed) and flushes the sink.
    pub fn finish(&self) {
        let pending = {
            let hs = self.harvest_state.lock().expect("telemetry harvest");
            let done: u64 = self
                .shards
                .iter()
                .map(|s| {
                    s.lock()
                        .expect("telemetry shard")
                        .executed
                        .iter()
                        .sum::<u64>()
                })
                .sum();
            let flushed: u64 = hs
                .prev_shards
                .iter()
                .map(|p| p.executed.iter().sum::<u64>())
                .sum();
            done > flushed
        };
        if pending || self.points_written() == 0 {
            self.harvest();
        }
        self.writer
            .lock()
            .expect("telemetry writer")
            .finish()
            .expect("telemetry flush");
    }

    /// Time-series points emitted so far.
    #[must_use]
    pub fn points_written(&self) -> u64 {
        self.writer
            .lock()
            .expect("telemetry writer")
            .points_written()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A Vec sink shareable with the test for post-run inspection.
    #[derive(Clone, Default)]
    struct SharedSink(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn txn_count_windows_emit_exact_deltas() {
        let rec = Arc::new(MemoryRecorder::new());
        let sink = SharedSink::default();
        let cfg = TelemetryConfig {
            every_txns: 10,
            ..TelemetryConfig::default()
        };
        let tel = Telemetry::new(rec, Box::new(sink.clone()), cfg, 2);
        let (s0, s1) = (tel.shard(0), tel.shard(1));
        for i in 0..25u64 {
            let shard = if i % 2 == 0 { &s0 } else { &s1 };
            shard.lock().unwrap().record(0, 1_000 + i * 100);
            tel.note_completion();
        }
        tel.finish();
        let out = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "two full windows + the final partial");
        assert!(lines[0].contains("\"txns\":10"));
        assert!(lines[1].contains("\"txns\":10"));
        assert!(lines[2].contains("\"txns\":5"));
        assert!(lines[0].contains("\"new_order\":{\"txns\":10,"));
        assert!(lines[0].contains("\"miss_ppm\":0"));
        for l in &lines {
            assert!(l.starts_with("{\"seq\":"));
            assert!(l.contains("\"t_ms\":"));
        }
    }

    #[test]
    fn counter_deltas_are_windowed_not_cumulative() {
        let rec = Arc::new(MemoryRecorder::new());
        let sink = SharedSink::default();
        let tel = Telemetry::new(
            Arc::clone(&rec),
            Box::new(sink.clone()),
            TelemetryConfig::default(),
            1,
        );
        let obs = tpcc_obs::Obs::new(rec.clone());
        obs.counter("buf_misses", tpcc_obs::Label::Idx(1), 30);
        obs.counter("buf_hits", tpcc_obs::Label::Idx(1), 70);
        tel.shard(0).lock().unwrap().record(1, 5_000);
        tel.harvest();
        obs.counter("buf_misses", tpcc_obs::Label::Idx(2), 10);
        obs.counter("buf_hits", tpcc_obs::Label::Idx(2), 90);
        tel.shard(0).lock().unwrap().record(1, 6_000);
        tel.harvest();
        let out = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"buf_misses\":30"), "{}", lines[0]);
        assert!(
            lines[0].contains("\"miss_ppm\":300000"),
            "30 misses in 100 refs: {}",
            lines[0]
        );
        assert!(lines[1].contains("\"buf_misses\":10"), "{}", lines[1]);
        assert!(
            lines[1].contains("\"miss_ppm\":100000"),
            "window-local, not cumulative: {}",
            lines[1]
        );
    }

    #[test]
    fn group_commit_columns_are_windowed() {
        let rec = Arc::new(MemoryRecorder::new());
        let sink = SharedSink::default();
        let tel = Telemetry::new(
            Arc::clone(&rec),
            Box::new(sink.clone()),
            TelemetryConfig::default(),
            1,
        );
        let obs = tpcc_obs::Obs::new(rec);
        let flushes = obs.counter_handle("wal_flushes", tpcc_obs::Label::None);
        let commits = obs.counter_handle("group_commits", tpcc_obs::Label::None);
        let wait = obs.histogram_handle("commit_wait_ns", tpcc_obs::Label::None);
        flushes.add(2);
        commits.add(10);
        for _ in 0..50 {
            wait.record(200_000); // 200 µs
        }
        tel.shard(0).lock().unwrap().record(0, 1_000);
        tel.harvest();
        // second window: different batching factor, different waits
        flushes.add(4);
        commits.add(4);
        for _ in 0..50 {
            wait.record(800_000); // 800 µs
        }
        tel.shard(0).lock().unwrap().record(0, 1_000);
        tel.harvest();
        let out = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"wal_flushes\":2"), "{}", lines[0]);
        assert!(lines[0].contains("\"commits_per_flush\":5"), "{}", lines[0]);
        assert!(lines[1].contains("\"wal_flushes\":4"), "{}", lines[1]);
        assert!(lines[1].contains("\"commits_per_flush\":1"), "{}", lines[1]);
        let p95 = |l: &str| {
            let j = l.find("\"commit_wait_p95_us\":").unwrap() + 21;
            let end = l[j..].find([',', '}']).unwrap() + j;
            l[j..end].parse::<f64>().unwrap()
        };
        let (a, b) = (p95(lines[0]), p95(lines[1]));
        assert!((a - 200.0).abs() / 200.0 < 0.05, "window 1 p95 {a}");
        assert!(
            (b - 800.0).abs() / 800.0 < 0.05,
            "window-local, not cumulative: {b}"
        );
    }

    #[test]
    fn mvcc_columns_are_windowed() {
        let rec = Arc::new(MemoryRecorder::new());
        let sink = SharedSink::default();
        let tel = Telemetry::new(
            Arc::clone(&rec),
            Box::new(sink.clone()),
            TelemetryConfig::default(),
            1,
        );
        let obs = tpcc_obs::Obs::new(rec);
        let reads = obs.counter_handle("snapshot_reads", tpcc_obs::Label::None);
        let hops = obs.counter_handle("versions_traversed", tpcc_obs::Label::None);
        let bytes = obs.counter_handle("undo_bytes", tpcc_obs::Label::None);
        let aborts = obs.counter_handle("aborts", tpcc_obs::Label::None);
        reads.add(40);
        hops.add(7);
        bytes.add(1_024);
        tel.shard(0).lock().unwrap().record(4, 1_000);
        tel.harvest();
        // second window: an abort fires, traversal picks up
        reads.add(10);
        hops.add(30);
        aborts.add(1);
        tel.shard(0).lock().unwrap().record(4, 1_000);
        tel.harvest();
        let out = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"snapshot_reads\":40"), "{}", lines[0]);
        assert!(
            lines[0].contains("\"versions_traversed\":7"),
            "{}",
            lines[0]
        );
        assert!(lines[0].contains("\"undo_bytes\":1024"), "{}", lines[0]);
        assert!(lines[0].contains("\"aborts\":0"), "{}", lines[0]);
        assert!(
            lines[1].contains("\"snapshot_reads\":10"),
            "window-local, not cumulative: {}",
            lines[1]
        );
        assert!(
            lines[1].contains("\"versions_traversed\":30"),
            "{}",
            lines[1]
        );
        assert!(lines[1].contains("\"undo_bytes\":0"), "{}", lines[1]);
        assert!(lines[1].contains("\"aborts\":1"), "{}", lines[1]);
    }

    #[test]
    fn window_quantiles_cover_only_the_window() {
        let rec = Arc::new(MemoryRecorder::new());
        let sink = SharedSink::default();
        let tel = Telemetry::new(rec, Box::new(sink.clone()), TelemetryConfig::default(), 1);
        let shard = tel.shard(0);
        for _ in 0..100 {
            shard.lock().unwrap().record(0, 1_000_000); // 1 ms
        }
        tel.harvest();
        for _ in 0..100 {
            shard.lock().unwrap().record(0, 9_000_000); // 9 ms
        }
        tel.harvest();
        let out = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        let p50 = |l: &str| {
            let i = l.find("\"new_order\":{").unwrap();
            let j = l[i..].find("\"p50_us\":").unwrap() + i + 9;
            let end = l[j..].find(',').unwrap() + j;
            l[j..end].parse::<f64>().unwrap()
        };
        let (a, b) = (p50(lines[0]), p50(lines[1]));
        assert!((a - 1_000.0).abs() / 1_000.0 < 0.011, "window 1 p50 {a}");
        assert!((b - 9_000.0).abs() / 9_000.0 < 0.011, "window 2 p50 {b}");
    }
}
