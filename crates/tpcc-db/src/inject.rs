//! Deterministic fault-injection harnesses: enumerate every crash
//! point a workload passes through and prove recovery converges at
//! each one.
//!
//! The storage layer numbers fault sites in execution order (see
//! `tpcc_storage::fault`), so a serial workload visits the same sites
//! with the same sequence numbers on every run. That determinism turns
//! "crash anywhere" into an enumerable sweep:
//!
//! 1. **Record** — run the workload once under [`FaultPlan::observe`];
//!    the hook logs every site together with the durable WAL length at
//!    the instant it fired.
//! 2. **Verify** — because recovery replays only the WAL's committed
//!    prefix over the post-load checkpoint (it never reads the crashed
//!    device image), "crash at site *k*" is fully characterised by the
//!    WAL frozen at *k*'s instant. [`PrefixVerifier`] replays each
//!    distinct prefix incrementally over one evolving disk image and
//!    compares it against a **lockstep oracle**: a second database
//!    advanced transaction-by-transaction to the same commit count.
//! 3. **Cross-check** — sampled prefixes additionally go through the
//!    literal [`tpcc_storage::Wal::try_recover`] path, and sampled
//!    sites are re-run live with [`FaultPlan::crash_at`] to prove the
//!    frozen WAL byte-matches the recorded prefix.
//!
//! The incremental image plus per-commit verdict caching keep the
//! full sweep O(wal len + transactions) rather than
//! O(sites × recovery), which is what makes "every crash point" (and
//! the per-record / per-byte truncation sweeps in the test suite)
//! tractable.
//!
//! # Group-commit (flush-boundary) sweeps
//!
//! Setting `SweepConfig::db.group_commit` runs the recorded workload
//! under deferred durability: commits land in a volatile tail and only
//! a flush ([`FaultSite::WalFlush`](tpcc_storage::FaultSite) sites)
//! advances the durable watermark. The harness forces the
//! deterministic **inline** flush schedule (flush every `max_batch`
//! commits on the committing thread) so site numbering stays identical
//! run to run. Recorded `wal_len` values are then durable watermarks:
//! a crash at any site between two flushes loses the whole tail — the
//! sweep proves recovery converges at every flush boundary, and the
//! live re-runs prove the frozen durable prefix byte-matches the
//! recorded one (a flushed commit is never lost, an unflushed one
//! always is). The oracle always runs synchronously — it is advanced
//! by *durable* commit count, and a recovered image must match the
//! serial execution of exactly those transactions either way.

use tpcc_schema::relation::Relation;
use tpcc_storage::cdc::{CdcCheckpoint, CdcSubscriber};
use tpcc_storage::{
    apply_entry, DiskManager, FaultPlan, FaultSite, FaultStats, FileId, GroupCommitConfig,
    SiteRecord, Wal, WalEntry, FAULT_SITES,
};

use crate::db::{DbConfig, TpccDb};
use crate::driver::{Driver, DriverConfig, DriverReport};
use crate::loader;
use crate::views::{CdcPipeline, MaterializedViews, ViewRegistry};

/// What a faulted run produced: the usual driver report plus the fault
/// counters the installed plan accumulated.
#[derive(Debug)]
pub struct FaultRunReport {
    /// Per-transaction outcome counts from the driver.
    pub driver: DriverReport,
    /// Sites fired, crash position, soft faults and retries.
    pub faults: FaultStats,
}

impl TpccDb {
    /// Runs `transactions` of the standard mix under a fault plan:
    /// installs `plan` on the storage layer, drives the workload, then
    /// flushes. With a crash plan the WAL freezes at the tripped site
    /// and the report's `faults.crashed_at` says where; with a soft
    /// plan the run rides through I/O errors and torn writes via the
    /// buffer manager's bounded retry.
    pub fn run_with_faults(
        &mut self,
        dcfg: DriverConfig,
        seed: u64,
        transactions: u64,
        plan: FaultPlan,
    ) -> FaultRunReport {
        let hook = self.install_fault_plan(plan);
        let mut driver = Driver::new(self, dcfg, seed);
        let driver_report = driver.run(self, transactions);
        self.flush();
        // quiesce the group-commit tail last, mirroring the sweep's
        // recording pass so live re-runs see identical site numbering
        self.flush_log();
        FaultRunReport {
            driver: driver_report,
            faults: hook.stats(),
        }
    }
}

/// Workload shape for the sweep harnesses.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Database scale/resources (the harness forces `enable_wal`).
    pub db: DbConfig,
    /// Transaction mix.
    pub driver: DriverConfig,
    /// Population seed.
    pub load_seed: u64,
    /// Input-generation seed.
    pub driver_seed: u64,
    /// Transactions to drive.
    pub transactions: u64,
    /// Full live re-runs with a `crash_at` plan (cross-check that the
    /// frozen WAL equals the recorded prefix). Spread evenly over the
    /// recorded sites.
    pub live_reruns: usize,
    /// Literal `try_recover` cross-checks, spread evenly over the
    /// distinct prefixes.
    pub recover_samples: usize,
}

impl SweepConfig {
    /// A sweep over `transactions` of the standard mix at `DbConfig`
    /// scale, seeded by `seed` for both population and inputs.
    #[must_use]
    pub fn new(db: DbConfig, transactions: u64, seed: u64) -> Self {
        Self {
            db,
            driver: DriverConfig::default(),
            load_seed: seed,
            driver_seed: seed.rotate_left(32) ^ 0x9e37_79b9_7f4a_7c15,
            transactions,
            live_reruns: 3,
            recover_samples: 16,
        }
    }
}

/// Outcome of [`crashpoint_sweep`].
#[derive(Debug)]
pub struct SweepReport {
    /// Fault sites enumerated by the recording run.
    pub sites_total: u64,
    /// Sites per class, indexed like `FaultSite::ALL`.
    pub per_site: [u64; FAULT_SITES],
    /// Recorded WAL length (entries) at the end of the run.
    pub wal_entries: usize,
    /// Commit markers in the recorded WAL.
    pub wal_commits: u64,
    /// Distinct WAL prefixes among the recorded sites (sites firing at
    /// the same durable length share one crash image).
    pub distinct_prefixes: usize,
    /// Literal `try_recover` cross-checks performed.
    pub recover_checks: usize,
    /// Live crash re-runs performed.
    pub live_reruns: usize,
    /// Sites whose crash image failed to converge to the oracle
    /// (empty on success).
    pub failures: Vec<SiteRecord>,
}

impl SweepReport {
    /// True when every enumerated site recovered to the oracle.
    #[must_use]
    pub fn all_recovered(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Outcome of [`verify_record_boundaries`].
#[derive(Debug)]
pub struct BoundaryReport {
    /// Prefix lengths checked (`0..=wal_entries`, so `wal_entries + 1`).
    pub boundaries: usize,
    /// Recorded WAL length (entries).
    pub wal_entries: usize,
    /// Distinct committed prefixes among the boundaries.
    pub committed_prefixes: usize,
    /// Literal `try_recover` cross-checks performed.
    pub recover_checks: usize,
    /// Boundaries whose recovery diverged from the oracle.
    pub failures: u64,
}

/// Outcome of [`torn_tail_byte_sweep`].
#[derive(Debug)]
pub struct TornTailReport {
    /// Encoded WAL size in bytes.
    pub total_bytes: u64,
    /// Byte offsets checked.
    pub bytes_checked: u64,
    /// Offsets whose recovery diverged from the oracle.
    pub failures: u64,
    /// Literal `try_recover` cross-checks performed.
    pub recover_checks: usize,
}

/// A serial database advanced in lockstep with replay: one driver
/// transaction at a time, until its WAL holds a target commit count.
struct OracleCursor {
    db: TpccDb,
    driver: Driver,
    executed: u64,
    limit: u64,
}

impl OracleCursor {
    fn new(cfg: &SweepConfig) -> Self {
        let mut dbcfg = cfg.db;
        dbcfg.enable_wal = true;
        // the oracle is advanced by durable commit count; its own log
        // can stay synchronous regardless of the sweep's flush schedule
        dbcfg.group_commit = None;
        let db = loader::load(dbcfg, cfg.load_seed);
        let driver = Driver::new(&db, cfg.driver, cfg.driver_seed);
        Self {
            db,
            driver,
            executed: 0,
            limit: cfg.transactions,
        }
    }

    fn commits(&self) -> u64 {
        self.db.wal_stats().expect("oracle runs with WAL enabled").2
    }

    /// Advances until the oracle has committed exactly `target`
    /// transactions. Each driver transaction appends at most one
    /// commit marker (new-order success, payment and delivery each
    /// commit once; reads never do), so the cursor cannot overshoot.
    fn advance_to(&mut self, target: u64) {
        while self.commits() < target {
            assert!(
                self.executed < self.limit,
                "oracle exhausted its {} transactions before reaching commit {target}",
                self.limit
            );
            self.driver.run(&mut self.db, 1);
            self.executed += 1;
        }
        debug_assert_eq!(self.commits(), target, "commit markers must advance by one");
    }
}

/// Incremental crash-image verifier.
///
/// Holds one evolving disk image, advanced monotonically by replaying
/// the recorded WAL, and the lockstep oracle. `verify_prefix(len)`
/// answers "does a crash that froze the WAL at `len` entries recover
/// to the oracle?", caching one verdict per committed prefix (all
/// prefixes with the same trailing commit share a crash image).
struct PrefixVerifier {
    wal: Wal,
    checkpoint: DiskManager,
    /// `commits_before[l]` = commit markers in `wal.entries()[..l]`.
    commits_before: Vec<u64>,
    /// `commit_index[c]` = replay boundary for `c` commits (index one
    /// past the `c`-th marker; `commit_index[0] == 0`).
    commit_index: Vec<usize>,
    image: DiskManager,
    applied: usize,
    scratch: Vec<u8>,
    oracle: OracleCursor,
    /// Verdict per commit count, filled in ascending order.
    verified: Vec<Option<bool>>,
    recover_checks: usize,
}

impl PrefixVerifier {
    fn new(wal: Wal, checkpoint: DiskManager, cfg: &SweepConfig) -> Self {
        let mut commits_before = Vec::with_capacity(wal.len() + 1);
        let mut commit_index = vec![0usize];
        let mut commits = 0u64;
        commits_before.push(0);
        for (i, entry) in wal.entries().iter().enumerate() {
            if matches!(entry, WalEntry::Commit { .. }) {
                commits += 1;
                commit_index.push(i + 1);
            }
            commits_before.push(commits);
        }
        let image = checkpoint.snapshot();
        let verified = vec![None; commits as usize + 1];
        Self {
            wal,
            checkpoint,
            commits_before,
            commit_index,
            image,
            applied: 0,
            scratch: Vec::new(),
            oracle: OracleCursor::new(cfg),
            verified,
            recover_checks: 0,
        }
    }

    fn total_commits(&self) -> u64 {
        self.commit_index.len() as u64 - 1
    }

    /// Verifies the crash image for a WAL frozen at `len` entries.
    /// Must be called with non-decreasing `len` (the image and oracle
    /// only move forward).
    fn verify_prefix(&mut self, len: usize) -> bool {
        let c = self.commits_before[len] as usize;
        if let Some(verdict) = self.verified[c] {
            return verdict;
        }
        let boundary = self.commit_index[c];
        assert!(
            boundary >= self.applied,
            "prefixes must be verified in ascending order"
        );
        for entry in &self.wal.entries()[self.applied..boundary] {
            apply_entry(&mut self.image, &mut self.scratch, entry)
                .expect("a recorded committed prefix must replay cleanly");
        }
        self.applied = boundary;
        self.oracle.advance_to(c as u64);
        self.oracle.db.flush();
        let verdict = self.matches_oracle(&self.image);
        self.verified[c] = Some(verdict);
        verdict
    }

    /// Full convergence check: byte-identical pages *and* free sets,
    /// plus the footprint accessors the soak tests assert on
    /// (per-relation heap pages, per-index pages, grand total).
    fn matches_oracle(&self, disk: &DiskManager) -> bool {
        let oracle = &self.oracle.db;
        let contents = oracle.bm.with_disk(|d| d.contents_equal(disk));
        let heaps = Relation::ALL.iter().all(|&r| {
            disk.allocated_pages(self.oracle_file(r)) == oracle.relation_allocated_pages(r)
        });
        let indexes = self
            .oracle_index_files()
            .iter()
            .all(|&f| disk.allocated_pages(f) == oracle.bm.allocated_pages(f));
        let total = disk.total_allocated_pages() == oracle.total_allocated_pages();
        contents && heaps && indexes && total
    }

    fn oracle_file(&self, relation: Relation) -> FileId {
        self.oracle.db.heaps.for_relation(relation).file()
    }

    fn oracle_index_files(&self) -> [FileId; 10] {
        let idx = &self.oracle.db.idx;
        [
            idx.warehouse.file(),
            idx.district.file(),
            idx.customer.file(),
            idx.customer_name.file(),
            idx.stock.file(),
            idx.item.file(),
            idx.order.file(),
            idx.new_order.file(),
            idx.order_line.file(),
            idx.last_order.file(),
        ]
    }

    /// Literal recovery cross-check: truncate a copy of the WAL at
    /// `len`, run it through `try_recover` over a fresh checkpoint
    /// snapshot, and demand it matches the oracle (which must already
    /// be positioned by a preceding `verify_prefix(len)`).
    fn check_literal_recover(&mut self, len: usize) -> bool {
        debug_assert_eq!(
            self.oracle.commits(),
            self.commits_before[len],
            "call verify_prefix(len) before the literal cross-check"
        );
        let mut prefix = self.wal.clone();
        prefix.truncate(len);
        // the torn log IS the durable log: pin the watermark to the
        // truncation point so `try_recover` replays the whole prefix
        // even when the recording ran under deferred durability
        prefix.set_deferred(false);
        self.recover_checks += 1;
        match prefix.try_recover(self.checkpoint.snapshot()) {
            Ok(recovered) => self.matches_oracle(&recovered),
            Err(_) => false,
        }
    }
}

/// Enumerates every fault site the workload passes through, then
/// proves each site's crash image recovers to the serial oracle.
///
/// The recording run counts the sites; each distinct durable-WAL
/// length among them is verified against the lockstep oracle through
/// one incremental replay; `recover_samples` of them also go through
/// the literal `try_recover` path; and `live_reruns` sites are re-run
/// end-to-end with a [`FaultPlan::crash_at`] plan to prove the frozen
/// WAL equals the recorded prefix.
///
/// # Panics
/// Panics if a live re-run's frozen WAL diverges from the recorded
/// prefix (a determinism violation, not a recovery failure).
#[must_use]
pub fn crashpoint_sweep(cfg: &SweepConfig) -> SweepReport {
    let dbcfg = sweep_db_config(cfg);

    // 1. Record: observe every site and the WAL length at each.
    let mut db = loader::load(dbcfg, cfg.load_seed);
    let hook = db.install_fault_plan(FaultPlan::observe(cfg.driver_seed));
    let mut driver = Driver::new(&db, cfg.driver, cfg.driver_seed);
    driver.run(&mut db, cfg.transactions);
    db.flush();
    db.flush_log();
    let records = hook.take_records();
    let stats = hook.stats();
    let wal = db.take_wal().expect("sweep runs with WAL enabled");
    let checkpoint = db
        .take_checkpoint()
        .expect("WAL mode always holds a checkpoint");
    drop(db);

    let wal_entries = wal.len();
    let wal_commits = wal.commits();
    let mut verifier = PrefixVerifier::new(wal, checkpoint, cfg);

    // 2. Verify each distinct frozen-WAL length among the sites.
    let mut failures = Vec::new();
    let mut distinct_prefixes = 0usize;
    let mut last_len = usize::MAX;
    let recover_stride = distinct_len_stride(&records, cfg.recover_samples);
    for record in &records {
        debug_assert!(
            last_len == usize::MAX || record.wal_len >= last_len,
            "a serial run records sites in durable-log order"
        );
        if record.wal_len == last_len {
            continue;
        }
        last_len = record.wal_len;
        distinct_prefixes += 1;
        let mut ok = verifier.verify_prefix(record.wal_len);
        if ok && distinct_prefixes.is_multiple_of(recover_stride) {
            ok = verifier.check_literal_recover(record.wal_len);
        }
        if !ok {
            failures.push(*record);
        }
    }

    // 3. Live re-runs: crash for real at sampled sites and check the
    // frozen WAL is exactly the recorded prefix.
    let live = live_rerun_targets(&records, cfg.live_reruns);
    for record in &live {
        let mut crash_db = loader::load(dbcfg, cfg.load_seed);
        let report = crash_db.run_with_faults(
            cfg.driver,
            cfg.driver_seed,
            cfg.transactions,
            FaultPlan::crash_at(cfg.driver_seed, record.seq),
        );
        assert_eq!(
            report.faults.crashed_at,
            Some(record.seq),
            "live re-run must trip the same site"
        );
        let frozen = crash_db.take_wal().expect("crash run logs");
        assert_eq!(
            frozen.durable_len(),
            record.wal_len,
            "the frozen durable watermark must match the recorded one at site {}",
            record.seq
        );
        assert_eq!(
            &frozen.entries()[..frozen.durable_len()],
            &verifier.wal.entries()[..record.wal_len],
            "frozen durable WAL prefix must equal the recorded prefix at site {}",
            record.seq
        );
        let base = crash_db
            .take_checkpoint()
            .expect("crash run holds a checkpoint");
        if frozen.try_recover(base).is_err() {
            failures.push(*record);
        }
    }

    SweepReport {
        sites_total: stats.sites_total(),
        per_site: stats.fired,
        wal_entries,
        wal_commits,
        distinct_prefixes,
        recover_checks: verifier.recover_checks,
        live_reruns: live.len(),
        failures,
    }
}

/// Truncates the recorded WAL at *every* record boundary
/// (`0..=entries`) and verifies each prefix recovers to the oracle —
/// the harness behind the "recovery never fails, never resurrects an
/// uncommitted delta" property test.
#[must_use]
pub fn verify_record_boundaries(cfg: &SweepConfig) -> BoundaryReport {
    let (wal, checkpoint) = record_plain_run(cfg);
    let wal_entries = wal.len();
    let mut verifier = PrefixVerifier::new(wal, checkpoint, cfg);
    let stride = (wal_entries / cfg.recover_samples.max(1)).max(1);
    let mut failures = 0u64;
    for len in 0..=wal_entries {
        let mut ok = verifier.verify_prefix(len);
        if ok && len % stride == 0 {
            ok = verifier.check_literal_recover(len);
        }
        if !ok {
            failures += 1;
        }
    }
    BoundaryReport {
        boundaries: wal_entries + 1,
        wal_entries,
        committed_prefixes: verifier.total_commits() as usize + 1,
        recover_checks: verifier.recover_checks,
        failures,
    }
}

/// Tears the encoded WAL at byte offsets `0, step, 2*step, ..` (every
/// byte when `step == 1`): a torn tail keeps only the records wholly
/// within the offset (a partial trailing record fails its checksum and
/// is discarded), so each offset maps to a record boundary, which is
/// then verified against the oracle.
#[must_use]
pub fn torn_tail_byte_sweep(cfg: &SweepConfig, step: u64) -> TornTailReport {
    let step = step.max(1);
    let (wal, checkpoint) = record_plain_run(cfg);
    let total_bytes = wal.encoded_bytes();
    // Prefix byte lengths: ends[i] = encoded bytes of the first i
    // records, so offsets in ends[i]..ends[i+1] keep exactly i whole
    // records.
    let mut ends = Vec::with_capacity(wal.len() + 1);
    let mut acc = 0u64;
    ends.push(0u64);
    for entry in wal.entries() {
        acc += entry.encoded_len() as u64;
        ends.push(acc);
    }
    debug_assert_eq!(acc, total_bytes);

    let mut verifier = PrefixVerifier::new(wal, checkpoint, cfg);
    let stride = (total_bytes / step / cfg.recover_samples.max(1) as u64).max(1);
    let mut failures = 0u64;
    let mut bytes_checked = 0u64;
    let mut survivors = 0usize;
    let mut offset = 0u64;
    let record_count = ends.len() - 1;
    while offset <= total_bytes {
        while survivors < record_count && ends[survivors + 1] <= offset {
            survivors += 1;
        }
        debug_assert_eq!(survivors, verifier.wal.records_within(offset));
        let mut ok = verifier.verify_prefix(survivors);
        if ok && (offset / step).is_multiple_of(stride) {
            ok = verifier.check_literal_recover(survivors);
        }
        if !ok {
            failures += 1;
        }
        bytes_checked += 1;
        if offset == total_bytes {
            break;
        }
        offset = (offset + step).min(total_bytes);
    }
    TornTailReport {
        total_bytes,
        bytes_checked,
        failures,
        recover_checks: verifier.recover_checks,
    }
}

/// Outcome of [`cdc_checkpoint_sweep`].
#[derive(Debug)]
pub struct CdcSweepReport {
    /// Checkpoints the recording run took (one per cadence boundary).
    pub checkpoints_taken: usize,
    /// `cdc_checkpoint` fault sites fired during recording.
    pub cdc_sites: u64,
    /// Committed prefixes whose rebuilt views were verified
    /// (`0..=commits`, so `commits + 1`).
    pub committed_prefixes: usize,
    /// Recorded WAL length (entries).
    pub wal_entries: usize,
    /// Live crash re-runs at `cdc_checkpoint` sites.
    pub live_crashes: usize,
    /// Prefixes or live crashes whose rebuilt views diverged from the
    /// recovered base tables (0 on success).
    pub unrecovered: u64,
}

impl CdcSweepReport {
    /// True when every prefix and live crash rebuilt exactly.
    #[must_use]
    pub fn all_recovered(&self) -> bool {
        self.unrecovered == 0
    }
}

/// Everything one CDC-instrumented recording (or crash re-run)
/// leaves behind.
struct CdcRecordedRun {
    registry: ViewRegistry,
    checkpoints: Vec<CdcCheckpoint>,
    records: Vec<SiteRecord>,
    stats: FaultStats,
    wal: Wal,
    base: DiskManager,
}

/// Drives the sweep workload with a [`CdcPipeline`] attached, taking a
/// cursor checkpoint every `checkpoint_every` transactions through the
/// fault-instrumented path (each one fires a `cdc_checkpoint` site; a
/// crash plan tripping there loses that checkpoint, exactly like a
/// crash mid-checkpoint-write would).
fn run_with_cdc_checkpoints(
    dbcfg: DbConfig,
    cfg: &SweepConfig,
    checkpoint_every: u64,
    plan: FaultPlan,
) -> CdcRecordedRun {
    let mut db = loader::load(dbcfg, cfg.load_seed);
    let hook = db.install_fault_plan(plan);
    let registry = ViewRegistry::from_db(&db);
    let mut pipeline = CdcPipeline::new(&db);
    pipeline.set_fault_hook(hook.clone());
    let mut driver = Driver::new(&db, cfg.driver, cfg.driver_seed);
    let mut checkpoints = Vec::new();
    let mut remaining = cfg.transactions;
    while remaining > 0 {
        let n = checkpoint_every.min(remaining);
        driver.run(&mut db, n);
        remaining -= n;
        db.flush_log();
        let _ = pipeline.poll_unbounded(&db);
        if let Some(ck) = pipeline.checkpoint() {
            checkpoints.push(ck);
        }
    }
    db.flush();
    db.flush_log();
    let records = hook.take_records();
    let stats = hook.stats();
    let wal = db.take_wal().expect("sweep runs with WAL enabled");
    let base = db
        .take_checkpoint()
        .expect("WAL mode always holds a checkpoint");
    CdcRecordedRun {
        registry,
        checkpoints,
        records,
        stats,
        wal,
        base,
    }
}

/// Rebuilds the materialized views for a WAL frozen at `boundary`
/// entries (a committed batch boundary) from the latest checkpoint
/// that survives that crash — or from the post-load base image when
/// none does. This is the recovery path the views module promises:
/// view state is a pure function of (checkpoint, WAL prefix).
fn rebuild_views_at(
    registry: &ViewRegistry,
    base: &DiskManager,
    checkpoints: &[CdcCheckpoint],
    wal: &Wal,
    boundary: usize,
) -> MaterializedViews {
    // a checkpoint whose cursor is past the frozen prefix was taken
    // after the crash point: it does not survive
    let mut sub = match checkpoints.iter().rev().find(|ck| ck.cursor <= boundary) {
        Some(ck) => CdcSubscriber::resume(ck.snapshot()),
        None => CdcSubscriber::new(base.snapshot()),
    };
    for file in registry.files() {
        sub.watch(file);
    }
    let mut shadow = sub.shadow().snapshot();
    let mut views = MaterializedViews::rescan(&mut shadow, registry);
    for batch in sub.poll_upto(wal, boundary) {
        views.apply(registry, &batch);
    }
    debug_assert_eq!(sub.cursor(), boundary, "rebuild drains the frozen prefix");
    views
}

/// Proves the CDC views recover from (checkpoint, WAL prefix) at
/// **every committed prefix** of a recorded workload, and live-crashes
/// every `cdc_checkpoint` site to prove a checkpoint lost mid-write
/// falls back to the previous one without divergence.
///
/// Verification per prefix is two-sided: the replayed crash image must
/// converge to the lockstep serial oracle (same machinery as
/// [`crashpoint_sweep`]), and the views rebuilt from the surviving
/// checkpoint plus the frozen WAL must byte-equal a rescan of that
/// image.
///
/// # Panics
/// Panics if a live crash re-run fails to trip the recorded site (a
/// determinism violation, not a recovery failure).
#[must_use]
pub fn cdc_checkpoint_sweep(cfg: &SweepConfig, checkpoint_every: u64) -> CdcSweepReport {
    let dbcfg = sweep_db_config(cfg);

    // 1. Record: drive with a checkpointing pipeline attached.
    let rec = run_with_cdc_checkpoints(
        dbcfg,
        cfg,
        checkpoint_every,
        FaultPlan::observe(cfg.driver_seed),
    );
    let cdc_sites: Vec<SiteRecord> = rec
        .records
        .iter()
        .filter(|r| r.site == FaultSite::CdcCheckpoint)
        .copied()
        .collect();
    let wal_entries = rec.wal.len();
    let checkpoints_taken = rec.checkpoints.len();

    // 2. Every committed prefix: oracle-check the crash image, then
    // demand the checkpoint-rebuilt views equal its rescan.
    let mut verifier = PrefixVerifier::new(rec.wal, rec.base, cfg);
    let mut unrecovered = 0u64;
    let total_commits = verifier.total_commits() as usize;
    for c in 0..=total_commits {
        let boundary = verifier.commit_index[c];
        let mut ok = verifier.verify_prefix(boundary);
        let ground = MaterializedViews::rescan(&mut verifier.image, &rec.registry);
        let rebuilt = rebuild_views_at(
            &rec.registry,
            &verifier.checkpoint,
            &rec.checkpoints,
            &verifier.wal,
            boundary,
        );
        ok &= rebuilt.encode() == ground.encode();
        if !ok {
            unrecovered += 1;
        }
    }

    // 3. Live crashes: trip each cdc_checkpoint site for real. The
    // checkpoint being taken is lost; the rebuild must fall back to
    // the previous surviving one and still match the recovered image.
    let mut live_crashes = 0usize;
    for record in &cdc_sites {
        live_crashes += 1;
        let crash = run_with_cdc_checkpoints(
            dbcfg,
            cfg,
            checkpoint_every,
            FaultPlan::crash_at(cfg.driver_seed, record.seq),
        );
        assert_eq!(
            crash.stats.crashed_at,
            Some(record.seq),
            "live re-run must trip the recorded cdc_checkpoint site"
        );
        let boundary = crash.wal.committed_len();
        let rebuilt = rebuild_views_at(
            &crash.registry,
            &crash.base,
            &crash.checkpoints,
            &crash.wal,
            boundary,
        );
        match crash.wal.try_recover(crash.base.snapshot()) {
            Ok(mut recovered) => {
                let ground = MaterializedViews::rescan(&mut recovered, &crash.registry);
                if rebuilt.encode() != ground.encode() {
                    unrecovered += 1;
                }
            }
            Err(_) => unrecovered += 1,
        }
    }

    CdcSweepReport {
        checkpoints_taken,
        cdc_sites: cdc_sites.len() as u64,
        committed_prefixes: total_commits + 1,
        wal_entries,
        live_crashes,
        unrecovered,
    }
}

/// Runs the sweep workload once with no fault hook and returns its WAL
/// and post-load checkpoint.
fn record_plain_run(cfg: &SweepConfig) -> (Wal, DiskManager) {
    let dbcfg = sweep_db_config(cfg);
    let mut db = loader::load(dbcfg, cfg.load_seed);
    let mut driver = Driver::new(&db, cfg.driver, cfg.driver_seed);
    driver.run(&mut db, cfg.transactions);
    db.flush();
    db.flush_log();
    let wal = db.take_wal().expect("sweep runs with WAL enabled");
    let checkpoint = db
        .take_checkpoint()
        .expect("WAL mode always holds a checkpoint");
    (wal, checkpoint)
}

/// The database configuration the sweep harnesses actually run: WAL
/// forced on, and any requested group commit normalised to the
/// deterministic inline flush schedule (the threaded batcher's timing
/// would make site numbering non-reproducible).
fn sweep_db_config(cfg: &SweepConfig) -> DbConfig {
    let mut dbcfg = cfg.db;
    dbcfg.enable_wal = true;
    if let Some(gc) = dbcfg.group_commit {
        dbcfg.group_commit = Some(GroupCommitConfig::inline_every(gc.max_batch));
    }
    dbcfg
}

/// Sampling stride over distinct prefixes such that about `samples`
/// literal recoveries run.
fn distinct_len_stride(records: &[SiteRecord], samples: usize) -> usize {
    let mut distinct = 0usize;
    let mut last = usize::MAX;
    for r in records {
        if r.wal_len != last {
            distinct += 1;
            last = r.wal_len;
        }
    }
    (distinct / samples.max(1)).max(1)
}

/// Evenly spaced site records for live crash re-runs.
fn live_rerun_targets(records: &[SiteRecord], count: usize) -> Vec<SiteRecord> {
    if records.is_empty() || count == 0 {
        return Vec::new();
    }
    let count = count.min(records.len());
    (0..count)
        .map(|i| records[(i * (records.len() - 1)) / count.max(1)])
        .collect()
}
