//! Composite-key packing into the B+Tree's `u64` key space.
//!
//! Bit budgets (asserted): warehouse 14 bits, district 4, customer 20,
//! item 20, order number 40 (shared with the district prefix), customer
//! last-name id 10.

/// Maximum warehouses (2¹⁴).
pub const MAX_WAREHOUSES: u64 = 1 << 14;

fn check(w: u64, d: u64) {
    assert!(w < MAX_WAREHOUSES, "warehouse {w} out of key range");
    assert!(d < 10, "district {d} out of key range");
}

/// Warehouse primary key.
#[must_use]
pub fn warehouse(w: u64) -> u64 {
    assert!(w < MAX_WAREHOUSES);
    w
}

/// District primary key `(w, d)`.
#[must_use]
pub fn district(w: u64, d: u64) -> u64 {
    check(w, d);
    w * 10 + d
}

/// Customer primary key `(w, d, c)`.
#[must_use]
pub fn customer(w: u64, d: u64, c: u64) -> u64 {
    check(w, d);
    assert!(c < (1 << 20), "customer {c} out of key range");
    (district(w, d) << 20) | c
}

/// Stock primary key `(w, i)` (the paper's `(item-id, whouse-id)`).
#[must_use]
pub fn stock(w: u64, i: u64) -> u64 {
    assert!(w < MAX_WAREHOUSES);
    assert!(i < (1 << 20), "item {i} out of key range");
    (w << 20) | i
}

/// Item primary key.
#[must_use]
pub fn item(i: u64) -> u64 {
    assert!(i < (1 << 20));
    i
}

/// Order primary key `(w, d, o)`; ascending in order number within a
/// district, so a range scan is a time scan.
#[must_use]
pub fn order(w: u64, d: u64, o: u64) -> u64 {
    check(w, d);
    assert!(o < (1 << 40), "order number {o} out of key range");
    (district(w, d) << 40) | o
}

/// First order key of a district (range-scan lower bound).
#[must_use]
pub fn order_lo(w: u64, d: u64) -> u64 {
    order(w, d, 0)
}

/// One-past-the-last order key of a district (range-scan upper bound).
#[must_use]
pub fn order_hi(w: u64, d: u64) -> u64 {
    (district(w, d) + 1) << 40
}

/// Extracts the order number from an [`order`] key.
#[must_use]
pub fn order_number(key: u64) -> u64 {
    key & ((1 << 40) - 1)
}

/// Order-line key `(w, d, o, line)`; lines of one order are contiguous.
#[must_use]
pub fn order_line(w: u64, d: u64, o: u64, line: u64) -> u64 {
    assert!(line < 16, "line {line} out of key range");
    (order(w, d, o) << 4) | line
}

/// Range bounds covering all lines of one order.
#[must_use]
pub fn order_line_range(w: u64, d: u64, o: u64) -> (u64, u64) {
    (order_line(w, d, o, 0), order(w, d, o + 1) << 4)
}

/// Customer last-name index key `(w, d, name_id, c)`: a range scan over
/// one `(w, d, name_id)` prefix yields every matching customer.
#[must_use]
pub fn customer_name(w: u64, d: u64, name_id: u64, c: u64) -> u64 {
    check(w, d);
    assert!(name_id < 1000, "name id {name_id} out of range");
    assert!(c < (1 << 20));
    (district(w, d) << 30) | (name_id << 20) | c
}

/// Range bounds covering all customers with one last name.
#[must_use]
pub fn customer_name_range(w: u64, d: u64, name_id: u64) -> (u64, u64) {
    (
        customer_name(w, d, name_id, 0),
        (((district(w, d) << 10) | name_id) + 1) << 20,
    )
}

/// Last-order index key: one entry per customer, value = order number.
#[must_use]
pub fn last_order(w: u64, d: u64, c: u64) -> u64 {
    customer(w, d, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_unique_across_districts() {
        assert_ne!(customer(0, 1, 5), customer(1, 0, 5));
        assert_ne!(order(2, 3, 7), order(3, 2, 7));
        assert_ne!(stock(1, 99), stock(99, 1));
    }

    #[test]
    fn order_range_covers_exactly_one_district() {
        let lo = order_lo(3, 4);
        let hi = order_hi(3, 4);
        assert!(order(3, 4, 0) >= lo);
        assert!(order(3, 4, (1 << 40) - 1) < hi);
        assert!(order(3, 5, 0) >= hi);
        assert_eq!(order_number(order(3, 4, 123)), 123);
    }

    #[test]
    fn order_line_range_covers_all_lines() {
        let (lo, hi) = order_line_range(1, 2, 50);
        for line in 0..16 {
            let k = order_line(1, 2, 50, line);
            assert!((lo..hi).contains(&k), "line {line}");
        }
        assert!(order_line(1, 2, 51, 0) >= hi);
        assert!(order_line(1, 2, 49, 15) < lo);
    }

    #[test]
    fn name_range_covers_all_customers_of_one_name() {
        let (lo, hi) = customer_name_range(0, 0, 500);
        assert!(customer_name(0, 0, 500, 0) >= lo);
        assert!(customer_name(0, 0, 500, 2999) < hi);
        assert!(customer_name(0, 0, 501, 0) >= hi);
        assert!(customer_name(0, 0, 499, 2999) < lo);
    }

    #[test]
    #[should_panic(expected = "district 10")]
    fn district_bound() {
        let _ = district(0, 10);
    }

    #[test]
    #[should_panic(expected = "out of key range")]
    fn order_number_bound() {
        let _ = order(0, 0, 1 << 40);
    }
}
