//! Fixed-length record encodings matching Table 1's tuple lengths
//! exactly (89 / 95 / 655 / 306 / 82 / 24 / 8 / 54 / 46 bytes).
//!
//! Encoding is positional little-endian with fixed-width text fields
//! (NUL-padded); every `encode` asserts the byte length against the
//! schema so the physical database and the analytic model can never
//! drift apart.

use tpcc_schema::relation::Relation;

/// Cursor-style writer that enforces the target length.
struct W {
    buf: Vec<u8>,
    target: usize,
}

impl W {
    fn new(relation: Relation) -> Self {
        let target = relation.tuple_len() as usize;
        Self {
            buf: Vec::with_capacity(target),
            target,
        }
    }

    fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    fn f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    fn text(&mut self, s: &str, width: usize) -> &mut Self {
        let bytes = s.as_bytes();
        assert!(
            bytes.len() <= width,
            "text '{s}' exceeds field width {width}"
        );
        self.buf.extend_from_slice(bytes);
        self.buf
            .extend(std::iter::repeat_n(0u8, width - bytes.len()));
        self
    }

    fn finish(mut self) -> Vec<u8> {
        assert!(
            self.buf.len() <= self.target,
            "record overflows tuple length: {} > {}",
            self.buf.len(),
            self.target
        );
        self.buf.resize(self.target, 0);
        self.buf
    }
}

/// Cursor-style reader.
struct R<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> R<'a> {
    fn new(buf: &'a [u8], relation: Relation) -> Self {
        assert_eq!(
            buf.len(),
            relation.tuple_len() as usize,
            "record length mismatch for {}",
            relation.name()
        );
        Self { buf, pos: 0 }
    }

    fn u8(&mut self) -> u8 {
        let v = self.buf[self.pos];
        self.pos += 1;
        v
    }

    fn u16(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.buf[self.pos..self.pos + 2].try_into().expect("u16"));
        self.pos += 2;
        v
    }

    fn u32(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().expect("u32"));
        self.pos += 4;
        v
    }

    fn u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().expect("u64"));
        self.pos += 8;
        v
    }

    fn f64(&mut self) -> f64 {
        let v = f64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().expect("f64"));
        self.pos += 8;
        v
    }

    fn text(&mut self, width: usize) -> String {
        let raw = &self.buf[self.pos..self.pos + width];
        self.pos += width;
        let end = raw.iter().position(|&b| b == 0).unwrap_or(width);
        String::from_utf8_lossy(&raw[..end]).into_owned()
    }
}

/// Warehouse row (89 bytes).
#[derive(Debug, Clone, PartialEq)]
pub struct WarehouseRec {
    /// Warehouse id.
    pub w_id: u32,
    /// Company name (≤ 10 chars).
    pub name: String,
    /// City (≤ 20 chars).
    pub city: String,
    /// State code (2 chars).
    pub state: String,
    /// Zip code (≤ 9 chars).
    pub zip: String,
    /// Sales tax.
    pub tax: f64,
    /// Year-to-date balance (updated by Payment).
    pub ytd: f64,
}

impl WarehouseRec {
    /// Serializes to exactly 89 bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = W::new(Relation::Warehouse);
        w.u32(self.w_id)
            .text(&self.name, 10)
            .text(&self.city, 20)
            .text(&self.state, 2)
            .text(&self.zip, 9)
            .f64(self.tax)
            .f64(self.ytd);
        w.finish()
    }

    /// Deserializes.
    #[must_use]
    pub fn decode(buf: &[u8]) -> Self {
        let mut r = R::new(buf, Relation::Warehouse);
        Self {
            w_id: r.u32(),
            name: r.text(10),
            city: r.text(20),
            state: r.text(2),
            zip: r.text(9),
            tax: r.f64(),
            ytd: r.f64(),
        }
    }
}

/// District row (95 bytes).
#[derive(Debug, Clone, PartialEq)]
pub struct DistrictRec {
    /// District id within the warehouse.
    pub d_id: u32,
    /// Owning warehouse.
    pub w_id: u32,
    /// District name (≤ 10 chars).
    pub name: String,
    /// City (≤ 20 chars).
    pub city: String,
    /// Sales tax.
    pub tax: f64,
    /// Year-to-date balance.
    pub ytd: f64,
    /// Next order number to assign (read by Stock-Level, bumped by
    /// New-Order).
    pub next_o_id: u32,
}

impl DistrictRec {
    /// Serializes to exactly 95 bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = W::new(Relation::District);
        w.u32(self.d_id)
            .u32(self.w_id)
            .text(&self.name, 10)
            .text(&self.city, 20)
            .f64(self.tax)
            .f64(self.ytd)
            .u32(self.next_o_id);
        w.finish()
    }

    /// Deserializes.
    #[must_use]
    pub fn decode(buf: &[u8]) -> Self {
        let mut r = R::new(buf, Relation::District);
        Self {
            d_id: r.u32(),
            w_id: r.u32(),
            name: r.text(10),
            city: r.text(20),
            tax: r.f64(),
            ytd: r.f64(),
            next_o_id: r.u32(),
        }
    }
}

/// Customer row (655 bytes).
#[derive(Debug, Clone, PartialEq)]
pub struct CustomerRec {
    /// Customer id within the district.
    pub c_id: u32,
    /// District.
    pub d_id: u32,
    /// Warehouse.
    pub w_id: u32,
    /// First name (≤ 16).
    pub first: String,
    /// Middle initials (2).
    pub middle: String,
    /// Last name (≤ 16, syllable-composed).
    pub last: String,
    /// Street address (≤ 40).
    pub street: String,
    /// City (≤ 20).
    pub city: String,
    /// Phone (≤ 16).
    pub phone: String,
    /// Credit status ("GC" / "BC").
    pub credit: String,
    /// Credit limit.
    pub credit_lim: f64,
    /// Discount rate.
    pub discount: f64,
    /// Balance (updated by Payment and Delivery).
    pub balance: f64,
    /// Year-to-date payment.
    pub ytd_payment: f64,
    /// Payments made.
    pub payment_cnt: u32,
    /// Deliveries received.
    pub delivery_cnt: u32,
    /// Miscellaneous data (≤ 491 after fixed fields).
    pub data: String,
}

impl CustomerRec {
    /// Serializes to exactly 655 bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = W::new(Relation::Customer);
        w.u32(self.c_id)
            .u32(self.d_id)
            .u32(self.w_id)
            .text(&self.first, 16)
            .text(&self.middle, 2)
            .text(&self.last, 16)
            .text(&self.street, 40)
            .text(&self.city, 20)
            .text(&self.phone, 16)
            .text(&self.credit, 2)
            .f64(self.credit_lim)
            .f64(self.discount)
            .f64(self.balance)
            .f64(self.ytd_payment)
            .u32(self.payment_cnt)
            .u32(self.delivery_cnt)
            .text(&self.data, 491);
        w.finish()
    }

    /// Deserializes.
    #[must_use]
    pub fn decode(buf: &[u8]) -> Self {
        let mut r = R::new(buf, Relation::Customer);
        Self {
            c_id: r.u32(),
            d_id: r.u32(),
            w_id: r.u32(),
            first: r.text(16),
            middle: r.text(2),
            last: r.text(16),
            street: r.text(40),
            city: r.text(20),
            phone: r.text(16),
            credit: r.text(2),
            credit_lim: r.f64(),
            discount: r.f64(),
            balance: r.f64(),
            ytd_payment: r.f64(),
            payment_cnt: r.u32(),
            delivery_cnt: r.u32(),
            data: r.text(491),
        }
    }
}

/// Stock row (306 bytes).
#[derive(Debug, Clone, PartialEq)]
pub struct StockRec {
    /// Item id.
    pub i_id: u32,
    /// Warehouse id.
    pub w_id: u32,
    /// Quantity on hand (decremented by New-Order, the Stock-Level
    /// threshold target).
    pub quantity: i32,
    /// Year-to-date quantity ordered.
    pub ytd: u64,
    /// Orders served.
    pub order_cnt: u32,
    /// Orders served for remote warehouses.
    pub remote_cnt: u32,
    /// Per-district info strings (10 × ≤ 24).
    pub dist_info: [String; 10],
    /// Miscellaneous data (≤ 30).
    pub data: String,
}

impl StockRec {
    /// Serializes to exactly 306 bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = W::new(Relation::Stock);
        w.u32(self.i_id)
            .u32(self.w_id)
            .u32(self.quantity as u32)
            .u64(self.ytd)
            .u32(self.order_cnt)
            .u32(self.remote_cnt);
        for d in &self.dist_info {
            w.text(d, 24);
        }
        w.text(&self.data, 30);
        w.finish()
    }

    /// Deserializes.
    #[must_use]
    pub fn decode(buf: &[u8]) -> Self {
        let mut r = R::new(buf, Relation::Stock);
        let i_id = r.u32();
        let w_id = r.u32();
        let quantity = r.u32() as i32;
        let ytd = r.u64();
        let order_cnt = r.u32();
        let remote_cnt = r.u32();
        let dist_info = std::array::from_fn(|_| r.text(24));
        Self {
            i_id,
            w_id,
            quantity,
            ytd,
            order_cnt,
            remote_cnt,
            dist_info,
            data: r.text(30),
        }
    }
}

/// Item row (82 bytes).
#[derive(Debug, Clone, PartialEq)]
pub struct ItemRec {
    /// Item id.
    pub i_id: u32,
    /// Image id.
    pub im_id: u32,
    /// Price.
    pub price: f64,
    /// Name (≤ 24).
    pub name: String,
    /// Data (≤ 40; "ORIGINAL" in 10% per spec).
    pub data: String,
}

impl ItemRec {
    /// Serializes to exactly 82 bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = W::new(Relation::Item);
        w.u32(self.i_id)
            .u32(self.im_id)
            .f64(self.price)
            .text(&self.name, 24)
            .text(&self.data, 40);
        w.finish()
    }

    /// Deserializes.
    #[must_use]
    pub fn decode(buf: &[u8]) -> Self {
        let mut r = R::new(buf, Relation::Item);
        Self {
            i_id: r.u32(),
            im_id: r.u32(),
            price: r.f64(),
            name: r.text(24),
            data: r.text(40),
        }
    }
}

/// Order row (24 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderRec {
    /// Order number within the district.
    pub o_id: u32,
    /// Ordering customer.
    pub c_id: u32,
    /// Entry timestamp (logical clock).
    pub entry_d: u64,
    /// Carrier assigned at delivery (0 = undelivered).
    pub carrier_id: u8,
    /// Number of order lines.
    pub ol_cnt: u8,
    /// 1 when every line is supplied locally.
    pub all_local: u8,
}

impl OrderRec {
    /// Serializes to exactly 24 bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = W::new(Relation::Order);
        w.u32(self.o_id)
            .u32(self.c_id)
            .u64(self.entry_d)
            .u8(self.carrier_id)
            .u8(self.ol_cnt)
            .u8(self.all_local);
        w.finish()
    }

    /// Deserializes.
    #[must_use]
    pub fn decode(buf: &[u8]) -> Self {
        let mut r = R::new(buf, Relation::Order);
        Self {
            o_id: r.u32(),
            c_id: r.u32(),
            entry_d: r.u64(),
            carrier_id: r.u8(),
            ol_cnt: r.u8(),
            all_local: r.u8(),
        }
    }
}

/// New-Order row (8 bytes): the pending-delivery marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NewOrderRec {
    /// Order number.
    pub o_id: u32,
    /// District.
    pub d_id: u16,
    /// Warehouse.
    pub w_id: u16,
}

impl NewOrderRec {
    /// Serializes to exactly 8 bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = W::new(Relation::NewOrder);
        w.u32(self.o_id).u16(self.d_id).u16(self.w_id);
        w.finish()
    }

    /// Deserializes.
    #[must_use]
    pub fn decode(buf: &[u8]) -> Self {
        let mut r = R::new(buf, Relation::NewOrder);
        Self {
            o_id: r.u32(),
            d_id: r.u16(),
            w_id: r.u16(),
        }
    }
}

/// Order-Line row (54 bytes).
#[derive(Debug, Clone, PartialEq)]
pub struct OrderLineRec {
    /// Order number.
    pub o_id: u32,
    /// District.
    pub d_id: u16,
    /// Warehouse.
    pub w_id: u16,
    /// Line number within the order.
    pub number: u16,
    /// Ordered item.
    pub i_id: u32,
    /// Supplying warehouse.
    pub supply_w_id: u16,
    /// Delivery timestamp (0 = undelivered).
    pub delivery_d: u64,
    /// Quantity.
    pub quantity: u16,
    /// Line amount.
    pub amount: f64,
    /// District info copied from stock (≤ 20).
    pub dist_info: String,
}

impl OrderLineRec {
    /// Serializes to exactly 54 bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = W::new(Relation::OrderLine);
        w.u32(self.o_id)
            .u16(self.d_id)
            .u16(self.w_id)
            .u16(self.number)
            .u32(self.i_id)
            .u16(self.supply_w_id)
            .u64(self.delivery_d)
            .u16(self.quantity)
            .f64(self.amount)
            .text(&self.dist_info, 20);
        w.finish()
    }

    /// Deserializes.
    #[must_use]
    pub fn decode(buf: &[u8]) -> Self {
        let mut r = R::new(buf, Relation::OrderLine);
        Self {
            o_id: r.u32(),
            d_id: r.u16(),
            w_id: r.u16(),
            number: r.u16(),
            i_id: r.u32(),
            supply_w_id: r.u16(),
            delivery_d: r.u64(),
            quantity: r.u16(),
            amount: r.f64(),
            dist_info: r.text(20),
        }
    }
}

/// History row (46 bytes).
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryRec {
    /// Paying customer.
    pub c_id: u32,
    /// Customer's district.
    pub c_d_id: u16,
    /// Customer's warehouse.
    pub c_w_id: u16,
    /// Payment district.
    pub d_id: u16,
    /// Payment warehouse.
    pub w_id: u16,
    /// Timestamp.
    pub date: u64,
    /// Amount paid.
    pub amount: f64,
    /// Data (≤ 18 after fixed fields).
    pub data: String,
}

impl HistoryRec {
    /// Serializes to exactly 46 bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = W::new(Relation::History);
        w.u32(self.c_id)
            .u16(self.c_d_id)
            .u16(self.c_w_id)
            .u16(self.d_id)
            .u16(self.w_id)
            .u64(self.date)
            .f64(self.amount)
            .text(&self.data, 18);
        w.finish()
    }

    /// Deserializes.
    #[must_use]
    pub fn decode(buf: &[u8]) -> Self {
        let mut r = R::new(buf, Relation::History);
        Self {
            c_id: r.u32(),
            c_d_id: r.u16(),
            c_w_id: r.u16(),
            d_id: r.u16(),
            w_id: r.u16(),
            date: r.u64(),
            amount: r.f64(),
            data: r.text(18),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_record_matches_table1_length() {
        assert_eq!(sample_warehouse().encode().len(), 89);
        assert_eq!(sample_district().encode().len(), 95);
        assert_eq!(sample_customer().encode().len(), 655);
        assert_eq!(sample_stock().encode().len(), 306);
        assert_eq!(sample_item().encode().len(), 82);
        assert_eq!(sample_order().encode().len(), 24);
        assert_eq!(
            NewOrderRec {
                o_id: 7,
                d_id: 3,
                w_id: 1
            }
            .encode()
            .len(),
            8
        );
        assert_eq!(sample_order_line().encode().len(), 54);
        assert_eq!(sample_history().encode().len(), 46);
    }

    #[test]
    fn round_trips() {
        let w = sample_warehouse();
        assert_eq!(WarehouseRec::decode(&w.encode()), w);
        let d = sample_district();
        assert_eq!(DistrictRec::decode(&d.encode()), d);
        let c = sample_customer();
        assert_eq!(CustomerRec::decode(&c.encode()), c);
        let s = sample_stock();
        assert_eq!(StockRec::decode(&s.encode()), s);
        let i = sample_item();
        assert_eq!(ItemRec::decode(&i.encode()), i);
        let o = sample_order();
        assert_eq!(OrderRec::decode(&o.encode()), o);
        let ol = sample_order_line();
        assert_eq!(OrderLineRec::decode(&ol.encode()), ol);
        let h = sample_history();
        assert_eq!(HistoryRec::decode(&h.encode()), h);
    }

    #[test]
    #[should_panic(expected = "exceeds field width")]
    fn oversized_text_rejected() {
        let mut w = sample_warehouse();
        w.name = "WAY TOO LONG A NAME".into();
        let _ = w.encode();
    }

    #[test]
    #[should_panic(expected = "record length mismatch")]
    fn wrong_length_decode_rejected() {
        let _ = WarehouseRec::decode(&[0u8; 88]);
    }

    fn sample_warehouse() -> WarehouseRec {
        WarehouseRec {
            w_id: 3,
            name: "Wh3".into(),
            city: "Yorktown".into(),
            state: "NY".into(),
            zip: "105980000".into(),
            tax: 0.0725,
            ytd: 300_000.0,
        }
    }

    fn sample_district() -> DistrictRec {
        DistrictRec {
            d_id: 4,
            w_id: 3,
            name: "D4".into(),
            city: "Hampton".into(),
            tax: 0.01,
            ytd: 30_000.0,
            next_o_id: 3001,
        }
    }

    fn sample_customer() -> CustomerRec {
        CustomerRec {
            c_id: 42,
            d_id: 4,
            w_id: 3,
            first: "Ada".into(),
            middle: "OE".into(),
            last: "BARBARBAR".into(),
            street: "1 Main St".into(),
            city: "Hampton".into(),
            phone: "5551234567890123".into(),
            credit: "GC".into(),
            credit_lim: 50_000.0,
            discount: 0.3,
            balance: -10.0,
            ytd_payment: 10.0,
            payment_cnt: 1,
            delivery_cnt: 0,
            data: "misc".into(),
        }
    }

    fn sample_stock() -> StockRec {
        StockRec {
            i_id: 7,
            w_id: 3,
            quantity: 55,
            ytd: 0,
            order_cnt: 0,
            remote_cnt: 0,
            dist_info: std::array::from_fn(|i| format!("dist{i}")),
            data: "stockdata".into(),
        }
    }

    fn sample_item() -> ItemRec {
        ItemRec {
            i_id: 7,
            im_id: 7000,
            price: 9.99,
            name: "widget".into(),
            data: "ORIGINAL".into(),
        }
    }

    fn sample_order() -> OrderRec {
        OrderRec {
            o_id: 3000,
            c_id: 42,
            entry_d: 123,
            carrier_id: 0,
            ol_cnt: 10,
            all_local: 1,
        }
    }

    fn sample_order_line() -> OrderLineRec {
        OrderLineRec {
            o_id: 3000,
            d_id: 4,
            w_id: 3,
            number: 2,
            i_id: 7,
            supply_w_id: 3,
            delivery_d: 0,
            quantity: 5,
            amount: 49.95,
            dist_info: "dist4".into(),
        }
    }

    fn sample_history() -> HistoryRec {
        HistoryRec {
            c_id: 42,
            c_d_id: 4,
            c_w_id: 3,
            d_id: 4,
            w_id: 3,
            date: 9,
            amount: 100.0,
            data: "payment".into(),
        }
    }
}
