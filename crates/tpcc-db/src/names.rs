//! Customer last names per TPC-C clause 4.3.2.3: a name id in
//! `0..=999` maps to the concatenation of three syllables of its
//! decimal digits. The spec populates customers 0..1000 with names
//! 0..1000 and the remaining 2000 with `NURand(255, 0, 999)` names —
//! so roughly three customers per district share each hot name, which
//! is what makes the Payment by-name path a 3-row non-unique select.

use tpcc_rand::{NuRand, Xoshiro256};

/// The ten syllables of clause 4.3.2.3.
pub const SYLLABLES: [&str; 10] = [
    "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
];

/// Composes the last name for a name id.
///
/// # Panics
/// Panics if `name_id >= 1000`.
#[must_use]
pub fn last_name(name_id: u64) -> String {
    assert!(name_id < 1000, "name id {name_id} out of range");
    let (a, b, c) = (
        (name_id / 100) as usize,
        (name_id / 10 % 10) as usize,
        (name_id % 10) as usize,
    );
    format!("{}{}{}", SYLLABLES[a], SYLLABLES[b], SYLLABLES[c])
}

/// The name id a customer receives at load time: ids `0..1000` get
/// their own id; the rest draw `NURand(255, 0, 999)` (clause 4.3.3.1).
#[must_use]
pub fn load_name_id(c_id: u64, rng: &mut Xoshiro256) -> u64 {
    if c_id < 1000 {
        c_id
    } else {
        NuRand::new(255, 0, 999).sample(rng)
    }
}

/// The name id a by-name transaction targets: `NURand(255, 0, 999)`
/// (clause 2.1.6.2 run-time parameter).
#[must_use]
pub fn runtime_name_id(rng: &mut Xoshiro256) -> u64 {
    NuRand::new(255, 0, 999).sample(rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_examples() {
        assert_eq!(last_name(0), "BARBARBAR");
        assert_eq!(last_name(371), "PRICALLYOUGHT");
        assert_eq!(last_name(999), "EINGEINGEING");
    }

    #[test]
    fn names_are_unique_per_id() {
        let mut seen = std::collections::HashSet::new();
        for id in 0..1000 {
            assert!(seen.insert(last_name(id)), "duplicate for id {id}");
        }
    }

    #[test]
    fn load_assigns_three_customers_per_name_on_average() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let mut counts = vec![0u32; 1000];
        for c in 0..3000u64 {
            counts[load_name_id(c, &mut rng) as usize] += 1;
        }
        let avg = counts.iter().map(|&c| f64::from(c)).sum::<f64>() / 1000.0;
        assert!((avg - 3.0).abs() < 1e-9);
        // every name has the guaranteed one from the first 1000
        assert!(counts.iter().all(|&c| c >= 1));
    }

    #[test]
    fn runtime_ids_in_range_and_skewed() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[runtime_name_id(&mut rng) as usize] += 1;
        }
        let max = *counts.iter().max().expect("nonempty");
        let min = *counts.iter().min().expect("nonempty");
        assert!(max > 3 * min.max(1), "NURand names should be skewed");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn name_id_bound() {
        let _ = last_name(1000);
    }
}
