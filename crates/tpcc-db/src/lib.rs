//! An executable TPC-C database built on the `tpcc-storage` engine.
//!
//! Where `tpcc-workload` *models* the benchmark's page-reference
//! behaviour, this crate *runs* it: records with the exact Table 1
//! tuple lengths in heap files, B+Tree indexes on every access path the
//! paper assumes (including the multi-key indexes behind the
//! `Max(order-id)` / `Min(order-id)` selects), the spec's customer
//! last-name generation (syllable-composed, NURand-selected, median
//! row by first name), and full implementations of all five
//! transactions.
//!
//! The measured buffer statistics of a driver run cross-validate the
//! abstract trace model — see the workspace integration tests.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod db;
pub mod driver;
pub mod inject;
pub mod keys;
pub mod loader;
pub mod mvcc;
pub mod names;
pub mod parallel;
pub mod records;
pub mod telemetry;
pub mod txns;
pub mod verify;
pub mod views;

pub use cluster::{
    two_pc_crash_sweep, Cluster, ClusterConfig, ClusterReport, ItemPlacement, MsgKind, NodeReport,
    TwoPcSweepConfig, TwoPcSweepReport, MSG_KINDS,
};
pub use db::{DbConfig, TpccDb};
pub use driver::{Driver, DriverConfig, DriverReport, InputGen, TxnInput};
pub use inject::{
    cdc_checkpoint_sweep, crashpoint_sweep, torn_tail_byte_sweep, verify_record_boundaries,
    BoundaryReport, CdcSweepReport, FaultRunReport, SweepConfig, SweepReport, TornTailReport,
};
pub use parallel::{ParallelDriver, ParallelReport, TerminalGroup};
pub use telemetry::{Telemetry, TelemetryConfig, WindowAccum};
pub use txns::{
    DeliveryResult, NewOrderAborted, NewOrderResult, OrderStatusResult, PaymentResult,
    StockLevelResult,
};
pub use verify::ConsistencyReport;
pub use views::{
    decode_events, CdcPipeline, ChangeEvent, DistrictRevenueView, MaterializedViews,
    OpenOrdersView, StockThresholdView, ViewRegistry, EVENT_SCHEMA,
};

// Fault-injection, group-commit, MVCC, and CDC vocabulary, re-exported
// so harness users don't need a direct `tpcc-storage` dependency.
pub use tpcc_storage::cdc::{CdcCheckpoint, CdcLag, CdcStats, CdcSubscriber, ChangeBatch, RowOp};
pub use tpcc_storage::{
    FaultHook, FaultPlan, FaultSite, FaultStats, GroupCommitConfig, GroupCommitStats, SiteRecord,
    Snapshot, UndoStore, FAULT_SITES,
};
