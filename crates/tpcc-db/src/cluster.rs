//! Distributed scale-out (paper §5.3, figures 11–12): warehouses
//! partitioned across N simulated nodes, each node a full [`TpccDb`]
//! with its own buffer pool, WAL, and lock manager; cross-node work
//! routed through an in-process message layer; and cross-node
//! transactions committed with two-phase commit.
//!
//! # Partitioning and routing
//!
//! Global warehouse `w` lives on node `w / warehouses_per_node` as
//! local warehouse `w % warehouses_per_node`. The paper's two remote
//! clauses drive all cross-node traffic: 1% of New-Order lines name a
//! remote supplying warehouse, and 15% of Payments go through a remote
//! customer warehouse. The Item table follows
//! [`ItemPlacement`]: `Replicated` reads items on the home node,
//! `Partitioned` owns item `i` on node `i % nodes` and charges one
//! [`MsgKind::ItemRead`] per non-owned fetch — exactly the two layouts
//! whose model throughputs figure 12 compares.
//!
//! # Two-phase commit
//!
//! A cross-node transaction executes its home half through the normal
//! MVCC write context and its remote writes through per-node
//! *participant* records (raw heap writes with hand-recorded undo
//! pre-images). Commit is presumed-abort 2PC over the nodes' redo
//! logs:
//!
//! 1. every participant logs `Prepare{ts}` (a durable-ack vote; a
//!    crashed node's dropped record reads as "no"),
//! 2. the coordinator's durable `Decide{ts, commit:true}` is the
//!    commit point,
//! 3. participants log their own `Decide` and publish their versions.
//!
//! An abort — clause 2.4.1.4 rollback, failed vote, or failed
//! coordinator decide — compensates participant writes in reverse
//! *before* any `Decide{abort}` lands on that node's log, so a replay
//! boundary after the decision always covers the compensations.
//! Clause rollbacks leave **zero** 2PC records (presumed abort).
//! Recovery resolves an in-doubt `Prepare` by asking the coordinator's
//! log ([`tpcc_storage::Wal::try_recover_resolved`]); the crash sweep
//! [`two_pc_crash_sweep`] drives every reachable 2PC crash site and
//! asserts each in-doubt transaction resolves to the coordinator's
//! durable decision.
//!
//! # Deadlock freedom across nodes
//!
//! Locksets are sorted by `(node, space, key)` and acquired in
//! ascending node order, so no transaction ever waits on node `a`
//! while holding locks on node `b > a` — cross-node wait cycles cannot
//! form. Intra-node cycles are prevented by wound-wait as ever, with
//! all nodes' lock managers fed from one cluster-wide timestamp source
//! so priorities are globally consistent; retries keep their original
//! timestamp (aging, no starvation).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::db::{DbConfig, TpccDb};
use crate::driver::{DriverConfig, InputGen, TxnInput};
use crate::keys;
use crate::loader;
use crate::mvcc::TreeId;
use crate::parallel::{k, space, terminal_seed, SPACE_LABELS};
use crate::records::{
    CustomerRec, DistrictRec, HistoryRec, ItemRec, NewOrderRec, OrderLineRec, OrderRec, StockRec,
    WarehouseRec,
};
use crate::txns::{apply_stock_update, CustomerSelector, NewOrderAborted, OrderLineReq};
use tpcc_lock::{LockKey, LockManager, LockMode, Ts, Txn};
use tpcc_obs::QuantileSketch;
use tpcc_schema::relation::Relation;
use tpcc_storage::{FaultHook, FaultPlan, FaultSite, RecordId, VersionKey, WalEntry};

pub use tpcc_cost::distributed::ItemPlacement;

/// Message kinds crossing the simulated network, mirroring the §5.3
/// model's per-transaction remote call counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgKind {
    /// Remote stock row fetch (one per remote New-Order line).
    StockRead,
    /// Remote stock row write-back (one per remote New-Order line).
    StockWrite,
    /// Remote customer row fetch (one per row the selection touches).
    CustomerRead,
    /// Remote customer row write-back (one per remote Payment).
    CustomerWrite,
    /// Item fetch from its owning node (partitioned placement only).
    ItemRead,
    /// 2PC phase-1 prepare request (one per participant).
    Prepare,
    /// 2PC phase-2 decision delivery (one per participant).
    Decide,
}

/// Number of [`MsgKind`] variants (inbox array width).
pub const MSG_KINDS: usize = 7;

impl MsgKind {
    /// All kinds, in inbox-index order.
    pub const ALL: [MsgKind; MSG_KINDS] = [
        MsgKind::StockRead,
        MsgKind::StockWrite,
        MsgKind::CustomerRead,
        MsgKind::CustomerWrite,
        MsgKind::ItemRead,
        MsgKind::Prepare,
        MsgKind::Decide,
    ];

    /// Index into a node's inbox counters.
    #[must_use]
    pub fn idx(self) -> usize {
        self as usize
    }

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MsgKind::StockRead => "stock_read",
            MsgKind::StockWrite => "stock_write",
            MsgKind::CustomerRead => "customer_read",
            MsgKind::CustomerWrite => "customer_write",
            MsgKind::ItemRead => "item_read",
            MsgKind::Prepare => "prepare",
            MsgKind::Decide => "decide",
        }
    }
}

/// Cluster topology and workload knobs.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Simulated nodes.
    pub nodes: u64,
    /// Warehouses each node owns.
    pub warehouses_per_node: u64,
    /// Per-node database configuration (`warehouses` is overridden with
    /// `warehouses_per_node`, and MVCC is forced on — participant
    /// pre-images ride the undo store).
    pub node_db: DbConfig,
    /// Workload mix and clause probabilities.
    pub driver: DriverConfig,
    /// Where the Item table lives (§5.3's replicated-vs-partitioned
    /// comparison, figure 12).
    pub placement: ItemPlacement,
    /// Simulated one-way network delay per message, in microseconds
    /// (busy-wait, so it costs CPU like the model charges it).
    pub network_delay_us: u64,
}

impl ClusterConfig {
    /// A small test cluster: `nodes` × 1 warehouse on
    /// [`DbConfig::small`], replicated items, zero network delay.
    #[must_use]
    pub fn small(nodes: u64) -> Self {
        Self {
            nodes,
            warehouses_per_node: 1,
            node_db: DbConfig::small(),
            driver: DriverConfig::default(),
            placement: ItemPlacement::Replicated,
            network_delay_us: 0,
        }
    }
}

/// The seed node `n` loads with under cluster seed `seed`. Node 0
/// keeps the seed itself, so a 1-node cluster is byte-identical to a
/// plain database loaded with `seed`.
fn node_seed(seed: u64, n: u64) -> u64 {
    seed ^ n.wrapping_mul(0xA24B_AED4_963E_E407)
}

struct Node {
    db: TpccDb,
    lm: LockManager,
    /// Messages received, by [`MsgKind`].
    inbox: [AtomicU64; MSG_KINDS],
}

/// One remote node's write-set inside a cross-node transaction: the
/// undo token its pre-images were recorded under, the version-chain
/// keys to publish at commit, and the before-images for compensation
/// on abort. Remote writes bypass the home thread's MVCC write context
/// (which belongs to the home node's transaction) and record undo by
/// hand — [`Cluster::participant_update`] is the only writer.
struct Participant {
    node: usize,
    token: u64,
    keys: Vec<VersionKey>,
    /// `(relation, rid, before)` in execution order; compensation
    /// replays in reverse.
    ops: Vec<(Relation, RecordId, Vec<u8>)>,
}

/// A partitioned TPC-C cluster: N node databases, a router, a message
/// layer, and a 2PC coordinator.
pub struct Cluster {
    cfg: ClusterConfig,
    /// The per-node [`DbConfig`] actually loaded (warehouses and MVCC
    /// overridden).
    node_cfg: DbConfig,
    nodes: Vec<Node>,
    /// Cluster-wide timestamp source: lock priorities on every node and
    /// 2PC transaction ids draw from the same counter, so both are
    /// globally unique and consistently ordered.
    next_ts: AtomicU64,
    /// 2PC transaction id → coordinator node, the recovery oracle an
    /// in-doubt participant asks. (In a real cluster this rides in the
    /// Prepare message; here the map stands in for that field.)
    coordinators: Mutex<HashMap<u64, usize>>,
    prepares: AtomicU64,
    commit_decides: AtomicU64,
    abort_decides: AtomicU64,
}

impl Cluster {
    /// Loads `cfg.nodes` node databases, each seeded from `seed` (node
    /// 0 keeps `seed` itself).
    ///
    /// # Panics
    /// Panics on a zero node or warehouse count.
    #[must_use]
    pub fn new(cfg: ClusterConfig, seed: u64) -> Self {
        assert!(cfg.nodes >= 1, "a cluster needs at least one node");
        assert!(cfg.warehouses_per_node >= 1, "a node needs a warehouse");
        let mut node_cfg = cfg.node_db;
        node_cfg.warehouses = cfg.warehouses_per_node;
        // participant pre-images and cross-node aborts ride the undo
        // store, so the cluster always runs with MVCC on
        node_cfg.mvcc = true;
        let nodes = (0..cfg.nodes)
            .map(|n| {
                let db = loader::load(node_cfg, node_seed(seed, n));
                let mut lm = LockManager::new();
                lm.set_obs(db.obs(), &SPACE_LABELS);
                Node {
                    db,
                    lm,
                    inbox: std::array::from_fn(|_| AtomicU64::new(0)),
                }
            })
            .collect();
        Self {
            cfg,
            node_cfg,
            nodes,
            next_ts: AtomicU64::new(0),
            coordinators: Mutex::new(HashMap::new()),
            prepares: AtomicU64::new(0),
            commit_decides: AtomicU64::new(0),
            abort_decides: AtomicU64::new(0),
        }
    }

    /// The cluster configuration.
    #[must_use]
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Warehouses across the whole cluster.
    #[must_use]
    pub fn total_warehouses(&self) -> u64 {
        self.cfg.nodes * self.cfg.warehouses_per_node
    }

    /// The node owning global warehouse `w`.
    #[must_use]
    pub fn node_of(&self, w: u64) -> usize {
        usize::try_from(w / self.cfg.warehouses_per_node).expect("node index fits usize")
    }

    /// Global warehouse `w` as its owning node's local warehouse id.
    #[must_use]
    pub fn local_w(&self, w: u64) -> u64 {
        w % self.cfg.warehouses_per_node
    }

    /// Whether two global warehouses live on different nodes.
    #[must_use]
    pub fn is_remote(&self, a: u64, b: u64) -> bool {
        self.node_of(a) != self.node_of(b)
    }

    /// The node that serves a read of item `i` for a transaction homed
    /// on `home`: the home node under replication (every node holds the
    /// full table), `i % nodes` under partitioning.
    #[must_use]
    pub fn item_node(&self, home: usize, i: u64) -> usize {
        match self.cfg.placement {
            ItemPlacement::Replicated => home,
            ItemPlacement::Partitioned => {
                usize::try_from(i % self.cfg.nodes).expect("node index fits usize")
            }
        }
    }

    /// Node `n`'s database.
    #[must_use]
    pub fn node_db(&self, n: usize) -> &TpccDb {
        &self.nodes[n].db
    }

    /// Node `n`'s database, mutably (WAL/checkpoint teardown in crash
    /// harnesses).
    pub fn node_db_mut(&mut self, n: usize) -> &mut TpccDb {
        &mut self.nodes[n].db
    }

    /// Installs a fault plan on node `n`'s storage engine (see
    /// [`TpccDb::install_fault_plan`]).
    pub fn install_node_fault_plan(&mut self, n: usize, plan: FaultPlan) -> Arc<FaultHook> {
        self.nodes[n].db.install_fault_plan(plan)
    }

    /// Messages node `n` has received of `kind` since construction.
    #[must_use]
    pub fn inbox_count(&self, n: usize, kind: MsgKind) -> u64 {
        self.nodes[n].inbox[kind.idx()].load(Ordering::Relaxed)
    }

    /// `(prepares, commit decides, abort decides)` logged by the 2PC
    /// coordinator since construction.
    #[must_use]
    pub fn two_pc_counts(&self) -> (u64, u64, u64) {
        (
            self.prepares.load(Ordering::Relaxed),
            self.commit_decides.load(Ordering::Relaxed),
            self.abort_decides.load(Ordering::Relaxed),
        )
    }

    /// Runs every node's consistency check.
    #[must_use]
    pub fn consistent(&self) -> bool {
        self.nodes
            .iter()
            .all(|n| n.db.verify_consistency().is_consistent())
    }

    /// Delivers one message to node `to`: bump its inbox counter and
    /// charge the simulated one-way delay.
    fn msg(&self, to: usize, kind: MsgKind) {
        self.nodes[to].inbox[kind.idx()].fetch_add(1, Ordering::Relaxed);
        let us = self.cfg.network_delay_us;
        if us > 0 {
            let dur = Duration::from_micros(us);
            let t0 = Instant::now();
            while t0.elapsed() < dur {
                std::hint::spin_loop();
            }
        }
    }

    /// Draws a cluster-unique timestamp (lock priority and 2PC id).
    fn draw_ts(&self) -> u64 {
        self.next_ts.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Acquires a `(node, key, mode)` lockset sorted ascending by
    /// `(node, key)` — one wound-wait context per node, opened at the
    /// shared timestamp `ts`. Returns the held contexts (strict 2PL:
    /// dropping them releases everything) or `None` on a wound.
    fn acquire(&self, ts: Ts, lockset: &[(usize, LockKey, LockMode)]) -> Option<Vec<Txn<'_>>> {
        let mut txns: Vec<Txn<'_>> = Vec::new();
        let mut cur: Option<usize> = None;
        for &(node, key, mode) in lockset {
            if cur != Some(node) {
                txns.push(self.nodes[node].lm.begin_at(ts));
                cur = Some(node);
            }
            if txns
                .last_mut()
                .expect("context open")
                .lock(key, mode)
                .is_err()
            {
                return None; // drop releases every granted lock
            }
        }
        Some(txns)
    }

    /// The participant record for `node`, opening its undo token on
    /// first touch.
    fn participant<'p>(&self, parts: &'p mut Vec<Participant>, node: usize) -> &'p mut Participant {
        if let Some(i) = parts.iter().position(|p| p.node == node) {
            return &mut parts[i];
        }
        let token = self.nodes[node].db.undo.begin();
        parts.push(Participant {
            node,
            token,
            keys: Vec::new(),
            ops: Vec::new(),
        });
        parts.last_mut().expect("just pushed")
    }

    /// One remote row update inside a cross-node transaction: record
    /// the pre-image in the owning node's undo store (version chain +
    /// compensation list), then write the live bytes.
    fn participant_update(
        &self,
        p: &mut Participant,
        rel: Relation,
        rid: RecordId,
        before: Vec<u8>,
        after: &[u8],
    ) {
        let db = &self.nodes[p.node].db;
        let heap = db.heaps.for_relation(rel);
        let key: VersionKey = (heap.file(), rid.to_u64());
        db.undo.record(p.token, key, Some(&before));
        p.keys.push(key);
        let ok = heap.update(&db.bm, rid, after);
        assert!(ok, "participant update of a live row must land");
        p.ops.push((rel, rid, before));
    }

    /// Commits a cross-node transaction: one-phase when only the home
    /// node wrote, presumed-abort 2PC otherwise. Returns whether the
    /// transaction committed (`false` = a vote or the coordinator's
    /// decide failed durably and everything was rolled back).
    fn commit_cross(&self, hn: usize, ts: u64, parts: Vec<Participant>) -> bool {
        let h = &self.nodes[hn].db;
        if parts.is_empty() {
            // item-only cross traffic (partitioned reads) needs no 2PC
            h.commit();
            return true;
        }
        self.coordinators
            .lock()
            .expect("coordinator map")
            .insert(ts, hn);
        // phase 1: every participant votes by durably logging Prepare
        let mut prepared = 0;
        for p in &parts {
            self.msg(p.node, MsgKind::Prepare);
            self.prepares.fetch_add(1, Ordering::Relaxed);
            if !self.nodes[p.node].db.bm.log_prepare(ts) {
                self.abort_cross(hn, ts, &parts, prepared, true);
                return false;
            }
            prepared += 1;
        }
        // commit point: the coordinator's durable Decide{commit}
        if !h.bm.log_decide(ts, true) {
            self.abort_cross(hn, ts, &parts, prepared, true);
            return false;
        }
        self.commit_decides.fetch_add(1, Ordering::Relaxed);
        h.finish_write();
        // phase 2: deliver the decision; a participant's dropped Decide
        // leaves an in-doubt Prepare that recovery resolves against the
        // coordinator's log
        for p in &parts {
            self.msg(p.node, MsgKind::Decide);
            let rdb = &self.nodes[p.node].db;
            let _ = rdb.bm.log_decide(ts, true);
            rdb.undo.commit(p.token, &p.keys);
        }
        true
    }

    /// Rolls a cross-node transaction back: compensate each
    /// participant's writes in reverse, then (when `log_decides`) log
    /// `Decide{abort}` on the first `prepared` participants and the
    /// home node. Compensations land **before** that node's abort
    /// record, so a recovery boundary at the Decide always covers
    /// them. Clause rollbacks pass `log_decides = false`: presumed
    /// abort leaves no 2PC trace.
    fn abort_cross(
        &self,
        hn: usize,
        ts: u64,
        parts: &[Participant],
        prepared: usize,
        log_decides: bool,
    ) {
        for (i, p) in parts.iter().enumerate() {
            let rdb = &self.nodes[p.node].db;
            for (rel, rid, before) in p.ops.iter().rev() {
                let ok = rdb.heaps.for_relation(*rel).update(&rdb.bm, *rid, before);
                assert!(ok, "participant compensation must land");
            }
            rdb.undo.abort(p.token, &p.keys);
            if log_decides && i < prepared {
                self.msg(p.node, MsgKind::Decide);
                let _ = rdb.bm.log_decide(ts, false);
                self.abort_decides.fetch_add(1, Ordering::Relaxed);
            }
        }
        let h = &self.nodes[hn].db;
        h.abort_write();
        if log_decides {
            let _ = h.bm.log_decide(ts, false);
            self.abort_decides.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A cross-node New-Order: the order itself lands on the home
    /// node; each line's item is read from its owning node and each
    /// line's stock row is updated on its supplying node (remote rows
    /// through a participant record). Returns `Ok(committed)` or the
    /// clause 2.4.1.4 rollback.
    ///
    /// # Errors
    /// [`NewOrderAborted`] when a line names an unused item; every
    /// prior write (home and remote) is compensated first.
    pub fn new_order_cluster(
        &self,
        w: u64,
        d: u64,
        c: u64,
        lines: &[OrderLineReq],
    ) -> Result<bool, NewOrderAborted> {
        assert!(!lines.is_empty(), "an order needs at least one line");
        let hn = self.node_of(w);
        let lw = self.local_w(w);
        let h = &self.nodes[hn].db;
        let ts = self.draw_ts();
        let mut parts: Vec<Participant> = Vec::new();

        h.begin_write();
        // home: warehouse tax, district bump, customer discount
        let w_rid = h
            .pk_lookup(Relation::Warehouse, keys::warehouse(lw))
            .expect("warehouse exists");
        let warehouse = WarehouseRec::decode(&h.heaps.warehouse.get(&h.bm, w_rid).expect("live"));
        let d_rid = h
            .pk_lookup(Relation::District, keys::district(lw, d))
            .expect("district exists");
        let mut district = DistrictRec::decode(&h.heaps.district.get(&h.bm, d_rid).expect("live"));
        let o_id = u64::from(district.next_o_id);
        district.next_o_id += 1;
        h.heap_update(Relation::District, d_rid, &district.encode());
        let c_rid = h
            .pk_lookup(Relation::Customer, keys::customer(lw, d, c))
            .expect("customer exists");
        let customer = CustomerRec::decode(&h.heaps.customer.get(&h.bm, c_rid).expect("live"));

        // home: order + new-order rows under local keys
        let entry_d = h.tick();
        let all_local = lines.iter().all(|l| l.supply_warehouse == w);
        let order = OrderRec {
            o_id: o_id as u32,
            c_id: c as u32,
            entry_d,
            carrier_id: 0,
            ol_cnt: lines.len() as u8,
            all_local: u8::from(all_local),
        };
        let o_rid = h.heap_insert(Relation::Order, &order.encode());
        h.index_insert(TreeId::Order, keys::order(lw, d, o_id), o_rid.to_u64());
        h.last_order_upsert(keys::last_order(lw, d, c), o_id);
        let no = NewOrderRec {
            o_id: o_id as u32,
            d_id: d as u16,
            w_id: lw as u16,
        };
        let no_rid = h.heap_insert(Relation::NewOrder, &no.encode());
        h.index_insert(TreeId::NewOrder, keys::order(lw, d, o_id), no_rid.to_u64());

        let mut subtotal = 0.0;
        for (number, line) in lines.iter().enumerate() {
            if line.item >= self.node_cfg.items {
                // clause 2.4.1.4, discovered at the item read: unwind
                // home and remote writes, leave no 2PC trace
                self.abort_cross(hn, ts, &parts, 0, false);
                return Err(NewOrderAborted { bad_line: number });
            }
            // item read on its owning node
            let own = self.item_node(hn, line.item);
            if own != hn {
                self.msg(own, MsgKind::ItemRead);
            }
            let odb = &self.nodes[own].db;
            let i_rid = odb
                .pk_lookup(Relation::Item, keys::item(line.item))
                .expect("item exists");
            let item = ItemRec::decode(&odb.heaps.item.get(&odb.bm, i_rid).expect("live"));

            // stock read + update on the supplying node
            let sn = self.node_of(line.supply_warehouse);
            let ls = self.local_w(line.supply_warehouse);
            let dist_info;
            if sn == hn {
                let s_rid = h
                    .pk_lookup(Relation::Stock, keys::stock(ls, line.item))
                    .expect("stock exists");
                let mut stock = StockRec::decode(&h.heaps.stock.get(&h.bm, s_rid).expect("live"));
                apply_stock_update(&mut stock, line.quantity, line.supply_warehouse != w);
                dist_info = stock.dist_info[d as usize].clone();
                h.heap_update(Relation::Stock, s_rid, &stock.encode());
            } else {
                self.msg(sn, MsgKind::StockRead);
                let rdb = &self.nodes[sn].db;
                let s_rid = rdb
                    .pk_lookup(Relation::Stock, keys::stock(ls, line.item))
                    .expect("stock exists");
                let before = rdb.heaps.stock.get(&rdb.bm, s_rid).expect("live");
                let mut stock = StockRec::decode(&before);
                apply_stock_update(&mut stock, line.quantity, true);
                dist_info = stock.dist_info[d as usize].clone();
                let after = stock.encode();
                self.msg(sn, MsgKind::StockWrite);
                let p = self.participant(&mut parts, sn);
                self.participant_update(p, Relation::Stock, s_rid, before, &after);
            }

            let amount = f64::from(line.quantity) * item.price;
            subtotal += amount;
            let ol = OrderLineRec {
                o_id: o_id as u32,
                d_id: d as u16,
                w_id: lw as u16,
                number: number as u16,
                i_id: line.item as u32,
                supply_w_id: line.supply_warehouse as u16,
                delivery_d: 0,
                quantity: line.quantity,
                amount,
                dist_info,
            };
            let ol_rid = h.heap_insert(Relation::OrderLine, &ol.encode());
            h.index_insert(
                TreeId::OrderLine,
                keys::order_line(lw, d, o_id, number as u64),
                ol_rid.to_u64(),
            );
        }
        let _total = subtotal * (1.0 - customer.discount) * (1.0 + warehouse.tax + district.tax);
        Ok(self.commit_cross(hn, ts, parts))
    }

    /// A cross-node Payment: warehouse/district ytd and the history
    /// row land on the home node, the customer update on the remote
    /// customer node (a 2PC participant). Returns whether the
    /// transaction committed.
    pub fn payment_cluster(
        &self,
        w: u64,
        d: u64,
        cw: u64,
        cd: u64,
        selector: CustomerSelector,
        amount: f64,
    ) -> bool {
        let hn = self.node_of(w);
        let lw = self.local_w(w);
        let cn = self.node_of(cw);
        let lcw = self.local_w(cw);
        debug_assert_ne!(cn, hn, "same-node payments take the plain path");
        let h = &self.nodes[hn].db;
        let ts = self.draw_ts();
        let mut parts: Vec<Participant> = Vec::new();

        h.begin_write();
        let w_rid = h
            .pk_lookup(Relation::Warehouse, keys::warehouse(lw))
            .expect("warehouse exists");
        let mut warehouse =
            WarehouseRec::decode(&h.heaps.warehouse.get(&h.bm, w_rid).expect("live"));
        warehouse.ytd += amount;
        h.heap_update(Relation::Warehouse, w_rid, &warehouse.encode());
        let d_rid = h
            .pk_lookup(Relation::District, keys::district(lw, d))
            .expect("district exists");
        let mut district = DistrictRec::decode(&h.heaps.district.get(&h.bm, d_rid).expect("live"));
        district.ytd += amount;
        h.heap_update(Relation::District, d_rid, &district.encode());

        // remote customer: the selection touches `rows` rows (3ish by
        // name), each a message, plus one write-back — the model's
        // remote-payment call counts
        let rdb = &self.nodes[cn].db;
        let (c_rid, _, rows) = rdb.resolve_customer(lcw, cd, selector);
        for _ in 0..rows {
            self.msg(cn, MsgKind::CustomerRead);
        }
        let before = rdb.heaps.customer.get(&rdb.bm, c_rid).expect("live");
        let mut customer = CustomerRec::decode(&before);
        customer.balance -= amount;
        customer.ytd_payment += amount;
        customer.payment_cnt += 1;
        let after = customer.encode();
        self.msg(cn, MsgKind::CustomerWrite);
        let p = self.participant(&mut parts, cn);
        self.participant_update(p, Relation::Customer, c_rid, before, &after);

        let date = h.tick();
        let history = HistoryRec {
            c_id: customer.c_id,
            c_d_id: cd as u16,
            c_w_id: cw as u16,
            d_id: d as u16,
            w_id: lw as u16,
            date,
            amount,
            data: "payment".into(),
        };
        h.heap_insert(Relation::History, &history.encode());
        self.commit_cross(hn, ts, parts)
    }

    /// Runs `transactions` across `terminals` threads against the
    /// cluster (logical locks on, like the parallel driver).
    #[must_use]
    pub fn run(&self, terminals: u64, transactions: u64, seed: u64) -> ClusterReport {
        self.run_inner(terminals, transactions, seed, true)
    }

    /// Runs `transactions` on one terminal with no logical locks — the
    /// deterministic serial driver the crash sweep and the 1-node
    /// equivalence tests build on.
    #[must_use]
    pub fn run_serial(&self, transactions: u64, seed: u64) -> ClusterReport {
        self.run_inner(1, transactions, seed, false)
    }

    fn run_inner(
        &self,
        terminals: u64,
        transactions: u64,
        seed: u64,
        use_locks: bool,
    ) -> ClusterReport {
        let terminals = terminals.max(1);
        let n = self.nodes.len();
        let inbox0: Vec<[u64; MSG_KINDS]> = self
            .nodes
            .iter()
            .map(|node| std::array::from_fn(|i| node.inbox[i].load(Ordering::Relaxed)))
            .collect();
        let (p0, c0, a0) = self.two_pc_counts();
        let per_thread = transactions / terminals;
        let remainder = transactions % terminals;
        let partials: Mutex<Vec<ClusterReport>> = Mutex::new(Vec::new());
        let start = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..terminals {
                let share = per_thread + u64::from(t < remainder);
                let partials = &partials;
                scope.spawn(move || {
                    let part =
                        ClusterTerminal::new(self, terminal_seed(seed, t), use_locks).run(share);
                    partials.lock().expect("partials").push(part);
                });
            }
        });
        let mut report = ClusterReport::sized(n);
        report.elapsed = start.elapsed();
        for part in partials.into_inner().expect("partials") {
            report.absorb(&part);
        }
        for (i, node) in self.nodes.iter().enumerate() {
            for (m, slot) in report.per_node[i].msgs.iter_mut().enumerate() {
                *slot = node.inbox[m].load(Ordering::Relaxed) - inbox0[i][m];
            }
        }
        let (p1, c1, a1) = self.two_pc_counts();
        report.prepares = p1 - p0;
        report.commit_decides = c1 - c0;
        report.abort_decides = a1 - a0;
        report
    }
}

/// Per-node slice of a cluster run.
#[derive(Debug, Clone, Default)]
pub struct NodeReport {
    /// Transactions homed on this node.
    pub executed: u64,
    /// New orders placed with this node as home.
    pub new_orders: u64,
    /// Messages this node received, by [`MsgKind`] index.
    pub msgs: [u64; MSG_KINDS],
}

/// Cluster run summary.
#[derive(Debug, Clone, Default)]
pub struct ClusterReport {
    /// Transactions completed per type (mix order).
    pub executed: [u64; 5],
    /// New orders placed cluster-wide.
    pub new_orders: u64,
    /// Orders delivered.
    pub deliveries: u64,
    /// New-Orders rolled back on an unused item (clause 2.4.1.4).
    pub rollbacks: u64,
    /// Cross-node transactions aborted by 2PC (failed vote or decide);
    /// zero without fault injection.
    pub two_pc_aborts: u64,
    /// Wound-induced retries per type.
    pub retries: [u64; 5],
    /// Per-type latency in nanoseconds.
    pub latency_ns: [QuantileSketch; 5],
    /// Latency of transactions that touched a remote node.
    pub remote_latency_ns: QuantileSketch,
    /// New-Orders that touched a remote node.
    pub remote_new_orders: u64,
    /// Payments that touched a remote node.
    pub remote_payments: u64,
    /// 2PC prepares logged during the run.
    pub prepares: u64,
    /// 2PC coordinator commit decisions logged during the run.
    pub commit_decides: u64,
    /// 2PC abort decisions logged during the run.
    pub abort_decides: u64,
    /// Per-node breakdown.
    pub per_node: Vec<NodeReport>,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

impl ClusterReport {
    fn sized(nodes: usize) -> Self {
        Self {
            per_node: vec![NodeReport::default(); nodes],
            ..Self::default()
        }
    }

    /// Total transactions completed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.executed.iter().sum()
    }

    /// Completed transactions per second, cluster-wide.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        self.total() as f64 / self.elapsed.as_secs_f64().max(f64::MIN_POSITIVE)
    }

    /// Executed tpm-C: committed New-Orders per minute, cluster-wide.
    #[must_use]
    pub fn cluster_tpm(&self) -> f64 {
        self.new_orders as f64 * 60.0 / self.elapsed.as_secs_f64().max(f64::MIN_POSITIVE)
    }

    /// Total messages delivered across all nodes.
    #[must_use]
    pub fn messages(&self) -> u64 {
        self.per_node
            .iter()
            .map(|n| n.msgs.iter().sum::<u64>())
            .sum()
    }

    fn absorb(&mut self, other: &ClusterReport) {
        for t in 0..5 {
            self.executed[t] += other.executed[t];
            self.retries[t] += other.retries[t];
            self.latency_ns[t].merge(&other.latency_ns[t]);
        }
        self.new_orders += other.new_orders;
        self.deliveries += other.deliveries;
        self.rollbacks += other.rollbacks;
        self.two_pc_aborts += other.two_pc_aborts;
        self.remote_latency_ns.merge(&other.remote_latency_ns);
        self.remote_new_orders += other.remote_new_orders;
        self.remote_payments += other.remote_payments;
        for (mine, theirs) in self.per_node.iter_mut().zip(&other.per_node) {
            mine.executed += theirs.executed;
            mine.new_orders += theirs.new_orders;
        }
    }
}

/// The home warehouse a transaction input is routed by.
fn home_w(input: &TxnInput) -> u64 {
    match input {
        TxnInput::NewOrder { w, .. }
        | TxnInput::Payment { w, .. }
        | TxnInput::OrderStatus { w, .. }
        | TxnInput::Delivery { w, .. }
        | TxnInput::StockLevel { w, .. } => *w,
    }
}

/// One terminal thread driving the cluster: draws global-warehouse
/// inputs, routes each to its home node, and takes the cross-node path
/// only when a transaction actually leaves its home node — a 1-node
/// cluster therefore executes exactly the single-node code.
struct ClusterTerminal<'a> {
    cl: &'a Cluster,
    gen: InputGen,
    use_locks: bool,
    report: ClusterReport,
}

impl<'a> ClusterTerminal<'a> {
    fn new(cl: &'a Cluster, seed: u64, use_locks: bool) -> Self {
        let gen = InputGen::with_scale(
            cl.cfg.driver,
            seed,
            cl.total_warehouses(),
            cl.node_cfg.customers_per_district,
            cl.node_cfg.items,
            cl.node_cfg.name_count(),
        );
        Self {
            cl,
            gen,
            use_locks,
            report: ClusterReport::sized(cl.nodes.len()),
        }
    }

    fn run(mut self, transactions: u64) -> ClusterReport {
        for _ in 0..transactions {
            let input = self.gen.next_input();
            let t = input.type_index();
            let hn = self.cl.node_of(home_w(&input));
            self.report.executed[t] += 1;
            self.report.per_node[hn].executed += 1;
            let t0 = Instant::now();
            let remote = self.execute(input);
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.report.latency_ns[t].record(ns);
            if remote {
                self.report.remote_latency_ns.record(ns);
            }
        }
        self.report
    }

    /// Acquires `lockset` (sorted by `(node, key)`), then runs `body`.
    /// Wounded attempts retry with the original cluster timestamp.
    fn with_locks<R>(
        &mut self,
        t: usize,
        lockset: &[(usize, LockKey, LockMode)],
        body: impl Fn() -> R,
    ) -> R {
        if !self.use_locks {
            return body();
        }
        let ts = self.cl.draw_ts();
        loop {
            match self.cl.acquire(ts, lockset) {
                Some(_guards) => return body(),
                None => self.report.retries[t] += 1,
            }
        }
    }

    /// Executes one routed transaction; returns whether it touched a
    /// remote node.
    fn execute(&mut self, input: TxnInput) -> bool {
        match input {
            TxnInput::NewOrder { w, d, c, lines } => {
                let cl = self.cl;
                let hn = cl.node_of(w);
                let lw = cl.local_w(w);
                let items = cl.node_cfg.items;
                let cross = lines.iter().filter(|l| l.item < items).any(|l| {
                    cl.node_of(l.supply_warehouse) != hn || cl.item_node(hn, l.item) != hn
                });
                if cross {
                    self.report.remote_new_orders += 1;
                    let mut lockset = vec![
                        (
                            hn,
                            k(space::WAREHOUSE, keys::warehouse(lw)),
                            LockMode::Shared,
                        ),
                        (
                            hn,
                            k(space::DISTRICT, keys::district(lw, d)),
                            LockMode::Exclusive,
                        ),
                        (
                            hn,
                            k(space::CUSTOMER, keys::customer(lw, d, c)),
                            LockMode::Exclusive,
                        ),
                    ];
                    for line in lines.iter().filter(|l| l.item < items) {
                        let sn = cl.node_of(line.supply_warehouse);
                        let ls = cl.local_w(line.supply_warehouse);
                        lockset.push((
                            sn,
                            k(space::STOCK, keys::stock(ls, line.item)),
                            LockMode::Exclusive,
                        ));
                    }
                    lockset.sort_by_key(|&(n, key, _)| (n, key));
                    lockset.dedup_by_key(|&mut (n, key, _)| (n, key));
                    let lines = &lines;
                    let placed =
                        self.with_locks(0, &lockset, || cl.new_order_cluster(w, d, c, lines));
                    match placed {
                        Ok(true) => {
                            self.report.new_orders += 1;
                            self.report.per_node[hn].new_orders += 1;
                        }
                        Ok(false) => self.report.two_pc_aborts += 1,
                        Err(_) => self.report.rollbacks += 1,
                    }
                    true
                } else {
                    // everything is home: local ids, the single-node path
                    let local: Vec<OrderLineReq> = lines
                        .iter()
                        .map(|l| OrderLineReq {
                            item: l.item,
                            supply_warehouse: cl.local_w(l.supply_warehouse),
                            quantity: l.quantity,
                        })
                        .collect();
                    let mut lockset = vec![
                        (
                            hn,
                            k(space::WAREHOUSE, keys::warehouse(lw)),
                            LockMode::Shared,
                        ),
                        (
                            hn,
                            k(space::DISTRICT, keys::district(lw, d)),
                            LockMode::Exclusive,
                        ),
                        (
                            hn,
                            k(space::CUSTOMER, keys::customer(lw, d, c)),
                            LockMode::Exclusive,
                        ),
                    ];
                    for line in local.iter().filter(|l| l.item < items) {
                        lockset.push((
                            hn,
                            k(space::STOCK, keys::stock(line.supply_warehouse, line.item)),
                            LockMode::Exclusive,
                        ));
                    }
                    lockset.sort_by_key(|&(n, key, _)| (n, key));
                    lockset.dedup_by_key(|&mut (n, key, _)| (n, key));
                    let h = cl.node_db(hn);
                    let local = &local;
                    let placed =
                        self.with_locks(0, &lockset, || h.new_order_checked(lw, d, c, local));
                    if placed.is_ok() {
                        self.report.new_orders += 1;
                        self.report.per_node[hn].new_orders += 1;
                    } else {
                        self.report.rollbacks += 1;
                    }
                    false
                }
            }
            TxnInput::Payment {
                w,
                d,
                cw,
                cd,
                selector,
                amount,
            } => {
                let cl = self.cl;
                let hn = cl.node_of(w);
                let lw = cl.local_w(w);
                let cn = cl.node_of(cw);
                let lcw = cl.local_w(cw);
                if cn == hn {
                    let h = cl.node_db(hn);
                    let c_id = h.resolve_customer_id(lcw, cd, selector);
                    let mut lockset = vec![
                        (
                            hn,
                            k(space::WAREHOUSE, keys::warehouse(lw)),
                            LockMode::Exclusive,
                        ),
                        (
                            hn,
                            k(space::DISTRICT, keys::district(lw, d)),
                            LockMode::Exclusive,
                        ),
                        (
                            hn,
                            k(space::CUSTOMER, keys::customer(lcw, cd, c_id)),
                            LockMode::Exclusive,
                        ),
                    ];
                    lockset.sort_by_key(|&(n, key, _)| (n, key));
                    self.with_locks(1, &lockset, || h.payment(lw, d, lcw, cd, selector, amount));
                    false
                } else {
                    self.report.remote_payments += 1;
                    // by-name resolution is stable (immutable names), so
                    // the remote customer to lock is known up front
                    let c_id = cl.node_db(cn).resolve_customer_id(lcw, cd, selector);
                    let mut lockset = vec![
                        (
                            hn,
                            k(space::WAREHOUSE, keys::warehouse(lw)),
                            LockMode::Exclusive,
                        ),
                        (
                            hn,
                            k(space::DISTRICT, keys::district(lw, d)),
                            LockMode::Exclusive,
                        ),
                        (
                            cn,
                            k(space::CUSTOMER, keys::customer(lcw, cd, c_id)),
                            LockMode::Exclusive,
                        ),
                    ];
                    lockset.sort_by_key(|&(n, key, _)| (n, key));
                    self.with_locks(1, &lockset, || {
                        cl.payment_cluster(w, d, cw, cd, selector, amount)
                    });
                    true
                }
            }
            TxnInput::OrderStatus { w, d, selector } => {
                // always home (the generator keys Order-Status to the
                // terminal's warehouse); snapshot read, zero locks
                let h = self.cl.node_db(self.cl.node_of(w));
                let lw = self.cl.local_w(w);
                let snap = h.snapshot();
                h.order_status_at(&snap, lw, d, selector);
                false
            }
            TxnInput::Delivery { w, carrier } => {
                let hn = self.cl.node_of(w);
                let lw = self.cl.local_w(w);
                for d in 0..10 {
                    self.deliver_district(hn, lw, d, carrier);
                }
                false
            }
            TxnInput::StockLevel { w, d, threshold } => {
                let h = self.cl.node_db(self.cl.node_of(w));
                let lw = self.cl.local_w(w);
                let snap = h.snapshot();
                h.stock_level_at(&snap, lw, d, threshold);
                false
            }
        }
    }

    /// One per-district delivery sub-transaction on the home node,
    /// mirroring the parallel driver's incremental lock protocol.
    fn deliver_district(&mut self, hn: usize, lw: u64, d: u64, carrier: u8) {
        let h = self.cl.node_db(hn);
        if !self.use_locks {
            if h.peek_oldest_pending(lw, d).is_none() {
                return; // empty queue: the spec's skipped delivery
            }
            h.begin_write();
            let delivered = h.delivery_district(lw, d, carrier);
            h.commit();
            self.report.deliveries += u64::from(delivered.is_some());
            return;
        }
        let lm = &self.cl.nodes[hn].lm;
        let mut ts: Option<Ts> = None;
        loop {
            let mut txn = match ts {
                None => lm.begin_at(self.cl.draw_ts()),
                Some(t0) => lm.begin_at(t0),
            };
            ts = Some(txn.ts());
            if txn
                .lock(
                    k(space::DISTRICT, keys::district(lw, d)),
                    LockMode::Exclusive,
                )
                .is_err()
            {
                self.report.retries[3] += 1;
                continue;
            }
            let Some((o_id, c_id)) = h.peek_oldest_pending(lw, d) else {
                return;
            };
            let granted = txn
                .lock(
                    k(space::ORDER, keys::order(lw, d, o_id)),
                    LockMode::Exclusive,
                )
                .and_then(|()| {
                    txn.lock(
                        k(space::CUSTOMER, keys::customer(lw, d, c_id)),
                        LockMode::Exclusive,
                    )
                });
            if granted.is_err() {
                self.report.retries[3] += 1;
                continue;
            }
            h.begin_write();
            let delivered = h.delivery_district(lw, d, carrier);
            h.commit();
            self.report.deliveries += u64::from(delivered.is_some());
            return;
        }
    }
}

/// Configuration of a [`two_pc_crash_sweep`].
#[derive(Debug, Clone, Copy)]
pub struct TwoPcSweepConfig {
    /// Cluster under test (WAL is forced on, group commit off).
    pub cluster: ClusterConfig,
    /// Transactions per run.
    pub transactions: u64,
    /// Load + workload + fault-plan seed.
    pub seed: u64,
}

/// What a [`two_pc_crash_sweep`] observed.
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoPcSweepReport {
    /// 2PC crash sites observed (prepare + decide appends, all nodes).
    pub sites: u64,
    /// Of those, `Prepare` appends.
    pub prepare_sites: u64,
    /// Of those, `Decide` appends.
    pub decide_sites: u64,
    /// In-doubt transactions found across all crashed-node logs.
    pub in_doubt_seen: u64,
    /// In-doubt transactions the coordinator's log resolved to commit.
    pub resolved_commit: u64,
    /// In-doubt transactions resolved to abort (presumed abort
    /// included).
    pub resolved_abort: u64,
    /// Recovery failures — must be zero.
    pub unrecovered: u64,
}

/// Crashes every reachable 2PC log append, one run per site: an
/// observation pass finds each node's `Prepare`/`Decide` append
/// sequence numbers, then each `(node, seq)` gets a fresh cluster, a
/// crash latched at exactly that append, the same serial workload, and
/// a full recovery check:
///
/// - at most one transaction is in doubt per crashed log (serial
///   driving),
/// - every in-doubt transaction resolves against its **coordinator's**
///   durable decision, and the crashed log replays cleanly under that
///   resolution ([`tpcc_storage::Wal::try_recover_resolved`]),
/// - a durable participant-side `Decide{commit}` always has a matching
///   coordinator commit decision (no unilateral commits).
///
/// # Panics
/// Panics when any of those invariants fails.
#[must_use]
pub fn two_pc_crash_sweep(cfg: &TwoPcSweepConfig) -> TwoPcSweepReport {
    let mut ccfg = cfg.cluster;
    ccfg.node_db.enable_wal = true;
    ccfg.node_db.group_commit = None;
    ccfg.network_delay_us = 0;
    let n_nodes = usize::try_from(ccfg.nodes).expect("node count fits usize");

    // observation pass: where do the 2PC appends land on each node?
    let mut sites: Vec<(usize, u64, FaultSite)> = Vec::new();
    {
        let mut cl = Cluster::new(ccfg, cfg.seed);
        let hooks: Vec<Arc<FaultHook>> = (0..n_nodes)
            .map(|n| cl.install_node_fault_plan(n, FaultPlan::observe(cfg.seed)))
            .collect();
        let _ = cl.run_serial(cfg.transactions, cfg.seed);
        for (n, hook) in hooks.iter().enumerate() {
            for rec in hook.take_records() {
                if matches!(rec.site, FaultSite::TwoPcPrepare | FaultSite::TwoPcDecide) {
                    sites.push((n, rec.seq, rec.site));
                }
            }
        }
    }

    let mut report = TwoPcSweepReport {
        sites: sites.len() as u64,
        ..TwoPcSweepReport::default()
    };
    for &(node, seq, site) in &sites {
        match site {
            FaultSite::TwoPcPrepare => report.prepare_sites += 1,
            FaultSite::TwoPcDecide => report.decide_sites += 1,
            _ => {}
        }
        let mut cl = Cluster::new(ccfg, cfg.seed);
        let hook = cl.install_node_fault_plan(node, FaultPlan::crash_at(cfg.seed, seq));
        let _ = cl.run_serial(cfg.transactions, cfg.seed);
        assert!(hook.crashed(), "the observed 2PC site must fire");

        for n in 0..n_nodes {
            cl.node_db(n).flush_log();
        }
        let coords: HashMap<u64, usize> = cl.coordinators.lock().expect("coordinator map").clone();
        let mut wals = Vec::with_capacity(n_nodes);
        let mut checkpoints = Vec::with_capacity(n_nodes);
        for n in 0..n_nodes {
            let db = cl.node_db_mut(n);
            wals.push(db.take_wal().expect("WAL on"));
            checkpoints.push(db.take_checkpoint().expect("post-load checkpoint"));
        }

        for (m, checkpoint) in checkpoints.into_iter().enumerate() {
            let wal = &wals[m];
            let in_doubt = wal.in_doubt();
            assert!(
                in_doubt.len() <= 1,
                "serial driving leaves at most one in-doubt txn, found {in_doubt:?}"
            );
            for &txn in &in_doubt {
                report.in_doubt_seen += 1;
                let cn = *coords.get(&txn).expect("in-doubt txn has a coordinator");
                assert_ne!(cn, m, "a coordinator is never in doubt about its own txn");
                if wals[cn].durable_decision(txn) == Some(true) {
                    report.resolved_commit += 1;
                } else {
                    report.resolved_abort += 1;
                }
            }
            // no unilateral commits: a participant's durable commit
            // decision always matches its coordinator's
            for entry in &wal.entries()[..wal.durable_len()] {
                if let WalEntry::Decide { txn, commit: true } = entry {
                    if let Some(&cn) = coords.get(txn) {
                        if cn != m {
                            assert_eq!(
                                wals[cn].durable_decision(*txn),
                                Some(true),
                                "participant committed txn {txn} without its coordinator"
                            );
                        }
                    }
                }
            }
            let wals_ref = &wals;
            let resolver = |txn: u64| {
                coords
                    .get(&txn)
                    .is_some_and(|&cn| cn != m && wals_ref[cn].durable_decision(txn) == Some(true))
            };
            if wal.try_recover_resolved(checkpoint, resolver).is_err() {
                report.unrecovered += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::DriverConfig;
    use crate::parallel::ParallelDriver;

    fn mvcc_small() -> DbConfig {
        DbConfig {
            mvcc: true,
            ..DbConfig::small()
        }
    }

    /// Satellite 1, executed half: at 1 node the router never
    /// classifies anything as remote, under either placement.
    #[test]
    fn one_node_router_degenerates_to_single_node() {
        for placement in [ItemPlacement::Replicated, ItemPlacement::Partitioned] {
            let cfg = ClusterConfig {
                warehouses_per_node: 4,
                placement,
                ..ClusterConfig::small(1)
            };
            let cl = Cluster::new(cfg, 9);
            assert_eq!(cl.total_warehouses(), 4);
            for w in 0..4 {
                assert_eq!(cl.node_of(w), 0);
                assert_eq!(cl.local_w(w), w);
                for other in 0..4 {
                    assert!(!cl.is_remote(w, other));
                }
            }
            for i in 0..cl.node_cfg.items {
                assert_eq!(
                    cl.item_node(0, i),
                    0,
                    "1-node {placement:?} owns every item"
                );
            }
            let report = cl.run_serial(200, 10);
            assert_eq!(report.total(), 200);
            assert_eq!(report.remote_new_orders, 0);
            assert_eq!(report.remote_payments, 0);
            assert_eq!(report.messages(), 0, "no traffic ever leaves the node");
            assert_eq!(report.prepares, 0);
            assert_eq!(report.commit_decides, 0);
            assert!(cl.consistent());
        }
    }

    /// Satellite 1, the strong form: a 1-node 1-terminal cluster run
    /// is byte-identical to the single-node parallel driver on the
    /// same seed — the cluster layer adds exactly nothing at N = 1.
    #[test]
    fn one_node_cluster_matches_the_parallel_driver_byte_for_byte() {
        let dcfg = DriverConfig::default().with_spec_rollbacks();
        let cfg = ClusterConfig {
            driver: dcfg,
            ..ClusterConfig::small(1)
        };
        let cl = Cluster::new(cfg, 51);
        let plain_db = loader::load(mvcc_small(), 51);

        let cluster_report = cl.run(1, 600, 77);
        let plain_report = ParallelDriver::new(dcfg, 1, 77).run(&plain_db, 600);

        assert_eq!(cluster_report.executed, plain_report.executed);
        assert_eq!(cluster_report.new_orders, plain_report.new_orders);
        assert_eq!(cluster_report.deliveries, plain_report.deliveries);
        assert_eq!(cluster_report.rollbacks, plain_report.rollbacks);
        assert_eq!(cluster_report.retries, [0; 5]);

        cl.node_db(0).flush();
        plain_db.flush();
        assert!(
            cl.node_db(0).contents_equal(&plain_db),
            "1-node cluster image diverges from the single-node driver"
        );
    }

    /// Two nodes with remote traffic: the run completes, every node
    /// stays consistent, and the message/2PC counters line up with the
    /// protocol (every prepare answered, no aborts without faults).
    #[test]
    fn two_nodes_commit_remote_traffic_consistently() {
        let cl = Cluster::new(ClusterConfig::small(2), 21);
        let report = cl.run(2, 800, 22);
        assert_eq!(report.total(), 800);
        assert!(report.remote_new_orders > 0, "1%/line over 800 txns fires");
        assert!(report.remote_payments > 0, "15% of payments are remote");
        assert!(report.messages() > 0);
        assert_eq!(report.two_pc_aborts, 0, "no faults, no 2PC aborts");
        assert_eq!(report.abort_decides, 0);
        let prepare_msgs: u64 = report
            .per_node
            .iter()
            .map(|n| n.msgs[MsgKind::Prepare.idx()])
            .sum();
        let decide_msgs: u64 = report
            .per_node
            .iter()
            .map(|n| n.msgs[MsgKind::Decide.idx()])
            .sum();
        assert_eq!(report.prepares, prepare_msgs);
        assert_eq!(
            decide_msgs, prepare_msgs,
            "every prepared participant decided"
        );
        assert!(report.commit_decides > 0);
        assert!(
            report.commit_decides <= report.prepares,
            "one coordinator decide per cross txn, at least one participant each"
        );
        assert_eq!(
            report.per_node.iter().map(|n| n.executed).sum::<u64>(),
            800,
            "every transaction homed somewhere"
        );
        assert!(cl.consistent());
        // replicated items: no item fetch ever crosses the network
        assert_eq!(cl.inbox_count(0, MsgKind::ItemRead), 0);
        assert_eq!(cl.inbox_count(1, MsgKind::ItemRead), 0);
    }

    /// Partitioned items route reads to the owning node (figure 12's
    /// extra message class) and nothing else changes.
    #[test]
    fn partitioned_items_route_reads_by_owner() {
        let cfg = ClusterConfig {
            placement: ItemPlacement::Partitioned,
            ..ClusterConfig::small(2)
        };
        let cl = Cluster::new(cfg, 31);
        let report = cl.run_serial(400, 32);
        assert_eq!(report.total(), 400);
        let item_reads: u64 = (0..2).map(|n| cl.inbox_count(n, MsgKind::ItemRead)).sum();
        assert!(
            item_reads > 0,
            "~half of all item fetches leave the home node"
        );
        assert!(cl.consistent());
    }

    /// A cross-node New-Order commits durably on both nodes: the
    /// remote stock write is inside the participant's recovered image
    /// (its Decide is a replay boundary), the home half inside the
    /// coordinator's.
    #[test]
    fn cross_node_new_order_is_durable_on_both_nodes() {
        let cfg = ClusterConfig {
            node_db: DbConfig {
                enable_wal: true,
                ..DbConfig::small()
            },
            ..ClusterConfig::small(2)
        };
        let mut cl = Cluster::new(cfg, 41);
        let lines = [
            OrderLineReq {
                item: 5,
                supply_warehouse: 0,
                quantity: 3,
            },
            OrderLineReq {
                item: 7,
                supply_warehouse: 1, // node 1: the 2PC participant
                quantity: 4,
            },
        ];
        let committed = cl.new_order_cluster(0, 2, 5, &lines).expect("valid items");
        assert!(committed);
        let (prepares, commits, aborts) = cl.two_pc_counts();
        assert_eq!((prepares, commits, aborts), (1, 1, 0));
        // remote stock row took the update
        let rdb = cl.node_db(1);
        let s_rid = rdb
            .pk_lookup(Relation::Stock, keys::stock(0, 7))
            .expect("stock");
        let stock = StockRec::decode(&rdb.heaps.stock.get(&rdb.bm, s_rid).expect("live"));
        assert_eq!(stock.remote_cnt, 1);
        assert_eq!(stock.order_cnt, 1);
        // both logs replay to their live images
        for n in 0..2 {
            cl.node_db(n).flush_log();
            assert!(
                cl.node_db_mut(n).crash_recovery_check(),
                "node {n} must recover to its live image"
            );
        }
        assert!(cl.consistent());
    }

    /// A clause 2.4.1.4 rollback that already wrote on a remote node
    /// compensates everything and leaves zero 2PC records (presumed
    /// abort).
    #[test]
    fn clause_rollback_compensates_remote_writes_with_no_2pc_trace() {
        let cl = Cluster::new(ClusterConfig::small(2), 43);
        let rdb = cl.node_db(1);
        let s_rid = rdb
            .pk_lookup(Relation::Stock, keys::stock(0, 7))
            .expect("stock");
        let before = rdb.heaps.stock.get(&rdb.bm, s_rid).expect("live");
        let lines = [
            OrderLineReq {
                item: 7,
                supply_warehouse: 1, // remote write happens first…
                quantity: 4,
            },
            OrderLineReq {
                item: cl.node_cfg.items + 3, // …then the unused item
                supply_warehouse: 0,
                quantity: 1,
            },
        ];
        let err = cl.new_order_cluster(0, 2, 5, &lines).expect_err("rollback");
        assert_eq!(err.bad_line, 1);
        assert_eq!(
            rdb.heaps.stock.get(&rdb.bm, s_rid).expect("live"),
            before,
            "remote stock restored byte-for-byte"
        );
        assert_eq!(cl.two_pc_counts(), (0, 0, 0), "presumed abort: no records");
        assert!(cl.consistent());
    }

    /// A participant that crashes at its Prepare append votes no: the
    /// transaction aborts globally and the cluster keeps running.
    #[test]
    fn participant_prepare_crash_aborts_globally() {
        let cfg = ClusterConfig {
            node_db: DbConfig {
                enable_wal: true,
                ..DbConfig::small()
            },
            ..ClusterConfig::small(2)
        };
        // observe node 1's first Prepare append
        let seq = {
            let mut cl = Cluster::new(cfg, 45);
            let hook = cl.install_node_fault_plan(1, FaultPlan::observe(45));
            let _ = cl.run_serial(300, 46);
            hook.take_records()
                .into_iter()
                .find(|r| r.site == FaultSite::TwoPcPrepare)
                .expect("a cross txn prepared on node 1")
                .seq
        };
        let mut cl = Cluster::new(cfg, 45);
        let hook = cl.install_node_fault_plan(1, FaultPlan::crash_at(45, seq));
        let report = cl.run_serial(300, 46);
        assert!(hook.crashed());
        assert_eq!(report.total(), 300, "the cluster keeps executing");
        assert!(report.two_pc_aborts > 0, "the crashed vote aborted its txn");
        let (_, _, aborts) = cl.two_pc_counts();
        assert!(aborts > 0);
        assert!(cl.consistent(), "aborted txns left no partial effects");
    }

    /// Satellite 3 in miniature: every reachable 2PC crash site on a
    /// 2-node cluster recovers with zero unresolved transactions.
    #[test]
    fn small_two_pc_crash_sweep_resolves_every_in_doubt_txn() {
        let report = two_pc_crash_sweep(&TwoPcSweepConfig {
            cluster: ClusterConfig::small(2),
            transactions: 120,
            seed: 7,
        });
        eprintln!("two_pc_crash_sweep: {report:?}");
        assert!(report.sites > 0, "the workload must exercise 2PC");
        assert!(report.prepare_sites > 0);
        assert!(report.decide_sites > 0);
        assert_eq!(report.unrecovered, 0, "{report:?}");
        assert_eq!(
            report.in_doubt_seen,
            report.resolved_commit + report.resolved_abort
        );
    }

    /// Remote work is counted where it lands: per-node inboxes mirror
    /// the model's call-count accounting for one hand-built Payment.
    #[test]
    fn remote_payment_message_counts_match_the_model_shape() {
        let cl = Cluster::new(ClusterConfig::small(2), 47);
        let committed = cl.payment_cluster(0, 3, 1, 4, CustomerSelector::ById(8), 12.5);
        assert!(committed);
        assert_eq!(
            cl.inbox_count(1, MsgKind::CustomerRead),
            1,
            "by-id reads 1 row"
        );
        assert_eq!(cl.inbox_count(1, MsgKind::CustomerWrite), 1);
        assert_eq!(cl.inbox_count(1, MsgKind::Prepare), 1);
        assert_eq!(cl.inbox_count(1, MsgKind::Decide), 1);
        assert_eq!(
            cl.inbox_count(0, MsgKind::CustomerRead),
            0,
            "home is silent"
        );
        // the remote balance moved, the home history row exists
        let rdb = cl.node_db(1);
        let c_rid = rdb
            .pk_lookup(Relation::Customer, keys::customer(0, 4, 8))
            .expect("customer");
        let cust = CustomerRec::decode(&rdb.heaps.customer.get(&rdb.bm, c_rid).expect("live"));
        assert!((cust.balance - (-10.0 - 12.5)).abs() < 1e-9);
        assert!(cl.consistent());
    }

    /// Release-mode stress sweep (CI runs `--ignored` with a seed
    /// matrix via `TPCC_STRESS_SEED`): satellite 3's full acceptance —
    /// crash between prepare and decide on both coordinator and
    /// participant sides, zero unrecovered.
    #[test]
    #[ignore = "stress: run with --ignored, seeded via TPCC_STRESS_SEED"]
    fn stress_two_pc_crash_sweep() {
        let seed = std::env::var("TPCC_STRESS_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(42u64);
        let report = two_pc_crash_sweep(&TwoPcSweepConfig {
            cluster: ClusterConfig::small(2),
            transactions: 400,
            seed,
        });
        eprintln!("two_pc_crash_sweep[seed {seed}]: {report:?}");
        assert!(report.sites > 0);
        assert!(report.prepare_sites > 0);
        assert!(report.decide_sites > 0);
        assert_eq!(report.unrecovered, 0, "{report:?}");
        assert_eq!(
            report.in_doubt_seen,
            report.resolved_commit + report.resolved_abort
        );
    }
}
