//! A multi-terminal driver: N threads execute the paper's transaction
//! mix concurrently against one shared [`TpccDb`], made serializable by
//! strict two-phase locking through a [`LockManager`].
//!
//! # Locking protocol
//!
//! Every transaction **predeclares** its lockset (no upgrades: the
//! strongest mode is taken up front), acquires it, executes the plain
//! transaction code from `txns.rs`, and releases on drop. A wound
//! ([`tpcc_lock::Wounded`]) aborts the attempt before any write — the
//! acquisition phase performs no database mutations, so retry is just
//! "drop the lock context and go again", **keeping the original
//! timestamp** so a retried transaction ages and cannot starve.
//!
//! | transaction | lockset |
//! |---|---|
//! | New-Order | S warehouse; X district; X customer; X each supplying stock row |
//! | Payment | X warehouse; X district; X customer (pre-resolved for by-name) |
//! | Order-Status | S customer (pre-resolved) — **empty** under MVCC |
//! | Delivery | per district: X district, then X order + X customer of the peeked oldest pending order |
//! | Stock-Level | S district — **empty** under MVCC |
//!
//! With [`DbConfig::mvcc`](crate::DbConfig) on, the two read-only
//! types bypass the lock manager entirely: they pin a snapshot
//! ([`TpccDb::snapshot`]) and run `order_status_at` /
//! `stock_level_at` against the undo version chains — zero lock
//! acquisitions, no wound/wait traffic, and no interference with the
//! writer types (the §4 response-time model's assumption, which
//! S-locks could not honor).
//!
//! Delivery runs as ten per-district sub-transactions (the spec frames
//! deferred delivery that way); each peeks the oldest pending order
//! *after* holding the district lock, so the peek cannot race another
//! delivery or a New-Order insert. Stock-Level reads stock rows
//! without stock locks — clause 3.3.2 explicitly relaxes its isolation
//! (it may see concurrent quantity updates, never torn records, which
//! the buffer pool's frame latches rule out).
//!
//! A one-terminal run with seed `s` consumes the exact random stream
//! of a serial [`Driver`](crate::Driver) run with seed `s`, and the
//! tests assert the resulting database images are byte-identical.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::db::TpccDb;
use crate::driver::{DriverConfig, InputGen, TxnInput, TX_NAMES};
use crate::keys;
use crate::telemetry::{Telemetry, WindowAccum};
use tpcc_lock::{LockKey, LockManager, LockMode, Ts};
use tpcc_obs::{CounterHandle, HistogramHandle, Label, QuantileSketch, TraceHandle};

/// Lock spaces, one per logically lockable relation. (Item records are
/// immutable after load and history is append-only with no readers, so
/// neither needs a space.)
pub(crate) mod space {
    pub const WAREHOUSE: u32 = 0;
    pub const DISTRICT: u32 = 1;
    pub const CUSTOMER: u32 = 2;
    pub const STOCK: u32 = 3;
    pub const ORDER: u32 = 4;
}

/// `lock_waiters` gauge labels, indexed by lock space.
pub(crate) const SPACE_LABELS: [Label; 5] = [
    Label::Name("warehouse"),
    Label::Name("district"),
    Label::Name("customer"),
    Label::Name("stock"),
    Label::Name("order"),
];

pub(crate) fn k(space: u32, key: u64) -> LockKey {
    LockKey { space, key }
}

/// The seed of terminal `t` under driver seed `seed`. Terminal 0 keeps
/// the seed itself, so a one-terminal parallel run replays the serial
/// driver's stream exactly.
#[must_use]
pub fn terminal_seed(seed: u64, terminal: u64) -> u64 {
    seed ^ terminal.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Multi-terminal run summary.
#[derive(Debug, Clone, Default)]
pub struct ParallelReport {
    /// Transactions completed per type (mix order).
    pub executed: [u64; 5],
    /// New orders placed.
    pub new_orders: u64,
    /// Orders delivered.
    pub deliveries: u64,
    /// New-Orders that rolled back on an unused item (clause 2.4.1.4).
    pub rollbacks: u64,
    /// Wound-induced retries per type (a transaction may retry more
    /// than once; each attempt after the first counts).
    pub retries: [u64; 5],
    /// Per-type transaction latency in nanoseconds (lock acquisition
    /// through commit, retries included in the attempt that succeeds).
    /// Each terminal records into its private sketch; merging here is
    /// lossless, so the report is bit-identical to single-sketch
    /// recording.
    pub latency_ns: [QuantileSketch; 5],
    /// Wall-clock time of the threaded run.
    pub elapsed: Duration,
}

impl ParallelReport {
    /// Total transactions completed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.executed.iter().sum()
    }

    /// Completed transactions per second.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        self.total() as f64 / self.elapsed.as_secs_f64().max(f64::MIN_POSITIVE)
    }

    /// Fraction of attempts that were wounded and retried:
    /// `retries / (completed + retries)`.
    #[must_use]
    pub fn abort_rate(&self) -> f64 {
        let retries: u64 = self.retries.iter().sum();
        let attempts = self.total() + retries;
        if attempts == 0 {
            0.0
        } else {
            retries as f64 / attempts as f64
        }
    }

    fn absorb(&mut self, other: &ParallelReport) {
        for t in 0..5 {
            self.executed[t] += other.executed[t];
            self.retries[t] += other.retries[t];
            self.latency_ns[t].merge(&other.latency_ns[t]);
        }
        self.new_orders += other.new_orders;
        self.deliveries += other.deliveries;
        self.rollbacks += other.rollbacks;
    }
}

/// Drives a shared database from N terminal threads.
pub struct ParallelDriver {
    cfg: DriverConfig,
    threads: u64,
    seed: u64,
}

impl ParallelDriver {
    /// A driver for `threads` terminals (clamped to ≥ 1).
    #[must_use]
    pub fn new(cfg: DriverConfig, threads: u64, seed: u64) -> Self {
        Self {
            cfg,
            threads: threads.max(1),
            seed,
        }
    }

    /// Executes `transactions` total transactions (split as evenly as
    /// possible across terminals) with an internally-created lock
    /// manager.
    pub fn run(&self, db: &TpccDb, transactions: u64) -> ParallelReport {
        let mut lm = LockManager::new();
        lm.set_obs(db.obs(), &SPACE_LABELS);
        self.run_on(db, &lm, transactions)
    }

    /// Like [`ParallelDriver::run`] but against a caller-owned lock
    /// manager, so tests can snapshot its wait-for graph while the run
    /// is in flight.
    pub fn run_on(&self, db: &TpccDb, lm: &LockManager, transactions: u64) -> ParallelReport {
        self.run_inner(db, lm, transactions, None)
    }

    /// Like [`ParallelDriver::run`] with live windowed telemetry: each
    /// terminal records into its shard of `telemetry`, and windows
    /// flush per the hub's [`TelemetryConfig`](crate::TelemetryConfig)
    /// — inline on every-K-transactions boundaries, and/or from a
    /// flusher thread every N ms. The final partial window is flushed
    /// before this returns.
    pub fn run_timeseries(
        &self,
        db: &TpccDb,
        transactions: u64,
        telemetry: &Arc<Telemetry>,
    ) -> ParallelReport {
        let mut lm = LockManager::new();
        lm.set_obs(db.obs(), &SPACE_LABELS);
        let report = self.run_inner(db, &lm, transactions, Some(telemetry));
        telemetry.finish();
        report
    }

    fn run_inner(
        &self,
        db: &TpccDb,
        lm: &LockManager,
        transactions: u64,
        telemetry: Option<&Arc<Telemetry>>,
    ) -> ParallelReport {
        use std::sync::atomic::{AtomicBool, Ordering};
        let per_thread = transactions / self.threads;
        let remainder = transactions % self.threads;
        let partials: Mutex<Vec<ParallelReport>> = Mutex::new(Vec::new());
        // time-mode flusher: detached (Telemetry is 'static behind the
        // Arc), stopped and joined once the terminals finish
        let flusher = telemetry
            .filter(|tel| tel.config().every_ms > 0)
            .map(|tel| {
                let tel = Arc::clone(tel);
                let stop = Arc::new(AtomicBool::new(false));
                let stop2 = Arc::clone(&stop);
                let every = Duration::from_millis(tel.config().every_ms);
                let handle = std::thread::spawn(move || {
                    while !stop2.load(Ordering::Acquire) {
                        std::thread::sleep(every);
                        if stop2.load(Ordering::Acquire) {
                            break; // run_timeseries flushes the tail
                        }
                        tel.harvest();
                    }
                });
                (handle, stop)
            });
        let start = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..self.threads {
                let share = per_thread + u64::from(t < remainder);
                let partials = &partials;
                let shard = telemetry.map(|tel| (Arc::clone(tel), tel.shard(t as usize)));
                scope.spawn(move || {
                    let part = Terminal::new(db, lm, self.cfg, terminal_seed(self.seed, t), shard)
                        .run(share);
                    partials.lock().expect("partials").push(part);
                });
            }
        });
        if let Some((handle, stop)) = flusher {
            stop.store(true, Ordering::Release);
            handle.join().expect("telemetry flusher");
        }
        let mut report = ParallelReport {
            elapsed: start.elapsed(),
            ..ParallelReport::default()
        };
        for part in partials.into_inner().expect("partials") {
            report.absorb(&part);
        }
        report
    }
}

/// One homogeneous slice of a heterogeneous run: `terminals` threads
/// all drawing from `cfg`'s transaction mix. Used by
/// [`ParallelDriver::run_mixed`] to pin dedicated reader terminals
/// against a scaled writer population (the `snapshot_scaling` bench).
#[derive(Debug, Clone, Copy)]
pub struct TerminalGroup {
    /// The mix and knobs this group's terminals draw inputs from.
    pub cfg: DriverConfig,
    /// Threads in the group.
    pub terminals: u64,
    /// Transactions each thread executes.
    pub transactions_per_terminal: u64,
    /// Sleep between transactions (µs), outside the timed window — the
    /// spec's keying/think time (§5.2.5.7), collapsed to a constant.
    /// Keeps a sweep below CPU saturation so latency measures data
    /// contention, not run-queue depth. 0 = closed loop at full speed.
    pub think_us: u64,
}

impl ParallelDriver {
    /// Runs heterogeneous terminal groups concurrently against one
    /// database and lock manager, returning one merged report **per
    /// group** (group reports share the run's wall-clock `elapsed`).
    /// Terminal seeds are global across groups
    /// ([`terminal_seed`]`(seed, t)` for the t-th thread overall), so
    /// reshaping group sizes reshuffles streams deterministically.
    pub fn run_mixed(db: &TpccDb, groups: &[TerminalGroup], seed: u64) -> Vec<ParallelReport> {
        let mut lm = LockManager::new();
        lm.set_obs(db.obs(), &SPACE_LABELS);
        let partials: Vec<Mutex<Vec<ParallelReport>>> =
            groups.iter().map(|_| Mutex::new(Vec::new())).collect();
        let start = Instant::now();
        std::thread::scope(|scope| {
            let lm = &lm;
            let mut t = 0u64;
            for (slot, group) in partials.iter().zip(groups) {
                for _ in 0..group.terminals {
                    let term_seed = terminal_seed(seed, t);
                    t += 1;
                    scope.spawn(move || {
                        let mut term = Terminal::new(db, lm, group.cfg, term_seed, None);
                        term.think_us = group.think_us;
                        let part = term.run(group.transactions_per_terminal);
                        slot.lock().expect("partials").push(part);
                    });
                }
            }
        });
        let elapsed = start.elapsed();
        partials
            .into_iter()
            .map(|slot| {
                let mut report = ParallelReport {
                    elapsed,
                    ..ParallelReport::default()
                };
                for part in slot.into_inner().expect("partials") {
                    report.absorb(&part);
                }
                report
            })
            .collect()
    }
}

/// One terminal thread's execution context: its input stream, its
/// pre-resolved metric handles, and its running counts.
struct Terminal<'a> {
    db: &'a TpccDb,
    lm: &'a LockManager,
    gen: InputGen,
    report: ParallelReport,
    executed_c: [CounterHandle; 5],
    retries_c: [CounterHandle; 5],
    latency_h: [HistogramHandle; 5],
    rollback_c: CounterHandle,
    trace: TraceHandle,
    telemetry: Option<(Arc<Telemetry>, Arc<Mutex<WindowAccum>>)>,
    /// Post-transaction sleep (µs), outside the latency window.
    think_us: u64,
}

impl<'a> Terminal<'a> {
    fn new(
        db: &'a TpccDb,
        lm: &'a LockManager,
        cfg: DriverConfig,
        seed: u64,
        telemetry: Option<(Arc<Telemetry>, Arc<Mutex<WindowAccum>>)>,
    ) -> Self {
        let obs = db.obs().clone();
        Self {
            db,
            lm,
            gen: InputGen::new(db, cfg, seed),
            report: ParallelReport::default(),
            executed_c: std::array::from_fn(|t| {
                obs.counter_handle("txn_executed", Label::Name(TX_NAMES[t]))
            }),
            retries_c: std::array::from_fn(|t| {
                obs.counter_handle("txn_retries", Label::Name(TX_NAMES[t]))
            }),
            latency_h: std::array::from_fn(|t| {
                obs.histogram_handle("txn_latency_ns", Label::Name(TX_NAMES[t]))
            }),
            rollback_c: obs.counter_handle("txn_rollbacks", Label::Name(TX_NAMES[0])),
            trace: obs.trace_handle("txn"),
            telemetry,
            think_us: 0,
        }
    }

    fn run(mut self, transactions: u64) -> ParallelReport {
        for _ in 0..transactions {
            let input = self.gen.next_input();
            let t = input.type_index();
            self.report.executed[t] += 1;
            self.executed_c[t].add(1);
            let t0 = Instant::now();
            self.execute(input);
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            // latency lands only in this terminal's private sketch —
            // no shared-slot traffic on the hot path; the recorder
            // receives a lossless merge after the loop
            self.report.latency_ns[t].record(ns);
            self.trace.record(TX_NAMES[t], t0);
            if let Some((tel, shard)) = &self.telemetry {
                shard.lock().expect("telemetry shard").record(t, ns);
                tel.note_completion();
            }
            if self.think_us > 0 {
                std::thread::sleep(std::time::Duration::from_micros(self.think_us));
            }
        }
        for t in 0..5 {
            if !self.report.latency_ns[t].is_empty() {
                self.latency_h[t].merge(&self.report.latency_ns[t]);
            }
        }
        self.report
    }

    /// Acquires `lockset`, then runs `body` under it (strict 2PL: the
    /// lock context drops when `body` returns). Wounded attempts retry
    /// with the original timestamp.
    fn locked<R>(&mut self, t: usize, lockset: &[(LockKey, LockMode)], body: impl Fn() -> R) -> R {
        let mut ts: Option<Ts> = None;
        loop {
            let mut txn = match ts {
                None => self.lm.begin(),
                Some(t0) => self.lm.begin_at(t0),
            };
            ts = Some(txn.ts());
            if lockset
                .iter()
                .any(|&(key, mode)| txn.lock(key, mode).is_err())
            {
                self.note_retry(t);
                continue; // drop releases whatever was granted
            }
            return body();
        }
    }

    fn note_retry(&mut self, t: usize) {
        self.report.retries[t] += 1;
        self.retries_c[t].add(1);
        if let Some((_, shard)) = &self.telemetry {
            shard.lock().expect("telemetry shard").record_retry();
        }
    }

    fn execute(&mut self, input: TxnInput) {
        match input {
            TxnInput::NewOrder { w, d, c, lines } => {
                let mut lockset = vec![
                    (k(space::WAREHOUSE, keys::warehouse(w)), LockMode::Shared),
                    (
                        k(space::DISTRICT, keys::district(w, d)),
                        LockMode::Exclusive,
                    ),
                    (
                        k(space::CUSTOMER, keys::customer(w, d, c)),
                        LockMode::Exclusive,
                    ),
                ];
                let items = self.db.config().items;
                for line in lines.iter().filter(|l| l.item < items) {
                    lockset.push((
                        k(space::STOCK, keys::stock(line.supply_warehouse, line.item)),
                        LockMode::Exclusive,
                    ));
                }
                lockset.sort_by_key(|&(key, _)| key);
                lockset.dedup_by_key(|&mut (key, _)| key); // all stock locks are X
                let db = self.db;
                let placed = self.locked(0, &lockset, || db.new_order_checked(w, d, c, &lines));
                if placed.is_ok() {
                    self.report.new_orders += 1;
                } else {
                    self.report.rollbacks += 1;
                    self.rollback_c.add(1);
                }
            }
            TxnInput::Payment {
                w,
                d,
                cw,
                cd,
                selector,
                amount,
            } => {
                // by-name resolution is stable (immutable names), so the
                // customer to lock is known before acquiring anything
                let c_id = self.db.resolve_customer_id(cw, cd, selector);
                let lockset = [
                    (k(space::WAREHOUSE, keys::warehouse(w)), LockMode::Exclusive),
                    (
                        k(space::DISTRICT, keys::district(w, d)),
                        LockMode::Exclusive,
                    ),
                    (
                        k(space::CUSTOMER, keys::customer(cw, cd, c_id)),
                        LockMode::Exclusive,
                    ),
                ];
                let db = self.db;
                self.locked(1, &lockset, || db.payment(w, d, cw, cd, selector, amount));
            }
            TxnInput::OrderStatus { w, d, selector } => {
                if self.db.config().mvcc {
                    // lock-free: the snapshot pin is the whole isolation
                    let snap = self.db.snapshot();
                    self.db.order_status_at(&snap, w, d, selector);
                } else {
                    let c_id = self.db.resolve_customer_id(w, d, selector);
                    let lockset = [(
                        k(space::CUSTOMER, keys::customer(w, d, c_id)),
                        LockMode::Shared,
                    )];
                    let db = self.db;
                    self.locked(2, &lockset, || db.order_status(w, d, selector));
                }
            }
            TxnInput::Delivery { w, carrier } => {
                for d in 0..10 {
                    self.deliver_district(w, d, carrier);
                }
            }
            TxnInput::StockLevel { w, d, threshold } => {
                if self.db.config().mvcc {
                    let snap = self.db.snapshot();
                    self.db.stock_level_at(&snap, w, d, threshold);
                } else {
                    let lockset = [(k(space::DISTRICT, keys::district(w, d)), LockMode::Shared)];
                    let db = self.db;
                    self.locked(4, &lockset, || db.stock_level(w, d, threshold));
                }
            }
        }
    }

    /// One per-district delivery sub-transaction. The oldest-pending
    /// peek happens under the district X lock, so its result stays
    /// valid until commit; the order and customer locks are then added
    /// incrementally (wound-wait tolerates any acquisition order).
    fn deliver_district(&mut self, w: u64, d: u64, carrier: u8) {
        let mut ts: Option<Ts> = None;
        loop {
            let mut txn = match ts {
                None => self.lm.begin(),
                Some(t0) => self.lm.begin_at(t0),
            };
            ts = Some(txn.ts());
            if txn
                .lock(
                    k(space::DISTRICT, keys::district(w, d)),
                    LockMode::Exclusive,
                )
                .is_err()
            {
                self.note_retry(3);
                continue;
            }
            let Some((o_id, c_id)) = self.db.peek_oldest_pending(w, d) else {
                return; // empty queue: the spec's skipped delivery
            };
            let granted = txn
                .lock(
                    k(space::ORDER, keys::order(w, d, o_id)),
                    LockMode::Exclusive,
                )
                .and_then(|()| {
                    txn.lock(
                        k(space::CUSTOMER, keys::customer(w, d, c_id)),
                        LockMode::Exclusive,
                    )
                });
            if granted.is_err() {
                self.note_retry(3);
                continue;
            }
            // all locks held: open the undo context for this district's
            // sub-transaction (no-op with MVCC off)
            self.db.begin_write();
            let delivered = self.db.delivery_district(w, d, carrier);
            self.db.commit();
            self.report.deliveries += u64::from(delivered.is_some());
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::DbConfig;
    use crate::driver::Driver;
    use crate::loader;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn four_warehouse_cfg() -> DbConfig {
        let mut cfg = DbConfig::small();
        cfg.warehouses = 4;
        cfg.buffer_frames = 2048;
        cfg
    }

    #[test]
    fn one_terminal_run_is_byte_identical_to_the_serial_driver() {
        let dcfg = DriverConfig::default().with_spec_rollbacks();
        let mut serial_db = loader::load(DbConfig::small(), 51);
        let shared_db = loader::load(DbConfig::small(), 51);

        let serial = Driver::new(&serial_db, dcfg, 77).run(&mut serial_db, 600);
        let parallel = ParallelDriver::new(dcfg, 1, 77).run(&shared_db, 600);

        assert_eq!(parallel.executed, serial.executed, "same input stream");
        assert_eq!(parallel.new_orders, serial.new_orders);
        assert_eq!(parallel.deliveries, serial.deliveries);
        assert_eq!(parallel.rollbacks, serial.rollbacks);
        assert_eq!(parallel.retries, [0; 5], "one terminal never conflicts");

        serial_db.flush();
        shared_db.flush();
        assert!(
            serial_db.contents_equal(&shared_db),
            "final disk images diverge"
        );
    }

    #[test]
    fn terminal_zero_keeps_the_driver_seed() {
        assert_eq!(terminal_seed(42, 0), 42);
        assert_ne!(terminal_seed(42, 1), 42);
        assert_ne!(terminal_seed(42, 1), terminal_seed(42, 2));
    }

    /// The ISSUE's acceptance run: 8 terminals over 4 warehouses, all
    /// consistency checks pass afterwards, and a monitor thread
    /// cross-checks that wound-wait never leaves a wait-for cycle.
    #[test]
    fn eight_terminals_over_four_warehouses_stay_consistent_and_acyclic() {
        let db = loader::load(four_warehouse_cfg(), 61);
        let mut lm = LockManager::new();
        lm.set_obs(db.obs(), &SPACE_LABELS);
        let driver = ParallelDriver::new(DriverConfig::default(), 8, 62);

        let done = AtomicBool::new(false);
        let report = std::thread::scope(|scope| {
            let monitor = scope.spawn(|| {
                let mut checks = 0u64;
                while !done.load(Ordering::Acquire) {
                    let graph = lm.wait_for_snapshot();
                    assert!(
                        graph.find_cycle().is_none(),
                        "deadlock cycle under wound-wait: {:?}",
                        graph.find_cycle()
                    );
                    checks += 1;
                    std::thread::yield_now();
                }
                checks
            });
            let report = driver.run_on(&db, &lm, 2000);
            done.store(true, Ordering::Release);
            assert!(monitor.join().expect("monitor") > 0);
            report
        });

        assert_eq!(report.total(), 2000);
        assert!(lm.wait_for_snapshot().is_empty(), "all locks released");
        let consistency = db.verify_consistency();
        assert!(consistency.is_consistent(), "{consistency:?}");
    }

    #[test]
    fn concurrent_terminals_make_progress_on_one_warehouse() {
        // maximum contention: every terminal hammers the same districts
        let db = loader::load(DbConfig::small(), 71);
        let report = ParallelDriver::new(DriverConfig::default(), 4, 72).run(&db, 800);
        assert_eq!(report.total(), 800);
        assert!(report.throughput() > 0.0);
        assert!(report.abort_rate() < 1.0);
        let consistency = db.verify_consistency();
        assert!(consistency.is_consistent(), "{consistency:?}");
    }

    /// Group-commit liveness and durability property, seeded: eight
    /// terminals commit through a tight flush window and a small
    /// `max_batch` (constant cap pressure), and afterwards
    ///
    /// - the run completed — no waiter starved under batch pressure
    ///   (a starved terminal would hang the scoped join);
    /// - the quiesced durable watermark covers every appended entry
    ///   and commit — a woken terminal's commit is always inside the
    ///   durably flushed prefix, never the volatile tail;
    /// - the batcher flushed exactly the commits the terminals logged
    ///   (each exactly once), and every commit contributed one wait
    ///   sample — everyone who enqueued was woken.
    #[test]
    fn group_commit_wakes_only_durable_commits_and_starves_no_terminal() {
        let mut cfg = four_warehouse_cfg();
        cfg.enable_wal = true;
        cfg.group_commit = Some(tpcc_storage::GroupCommitConfig::new(150, 4, 30));
        let db = loader::load(cfg, 81);
        let report = ParallelDriver::new(DriverConfig::default(), 8, 82).run(&db, 1200);
        assert_eq!(report.total(), 1200);
        db.flush_log();

        let (entries, _, commits) = db.wal_stats().expect("WAL on");
        let (durable_len, durable_commits) = db.wal_durable_stats().expect("WAL on");
        assert_eq!(durable_len, entries, "quiesced: no volatile tail");
        assert_eq!(durable_commits, commits, "every commit is durable");

        let stats = db.group_commit_stats().expect("group commit on");
        assert_eq!(stats.commits_flushed, commits, "flushed exactly once each");
        assert!(stats.flushes > 0);
        assert!(
            stats.commits_per_flush() >= 1.0,
            "a flush never covers zero commits: {stats:?}"
        );

        let waits = db.commit_wait_sketch().expect("group commit on");
        assert_eq!(
            waits.count(),
            commits,
            "every enqueued committer was woken exactly once"
        );

        let consistency = db.verify_consistency();
        assert!(consistency.is_consistent(), "{consistency:?}");
    }

    fn mvcc_cfg() -> DbConfig {
        DbConfig {
            mvcc: true,
            ..DbConfig::small()
        }
    }

    /// The tentpole regression: the 1-terminal determinism contract
    /// survives MVCC — snapshot reads, undo recording, and the real
    /// rollback path produce the exact disk image of the serial driver
    /// executing the same seeded stream (rollbacks included).
    #[test]
    fn mvcc_one_terminal_run_is_byte_identical_to_the_serial_driver() {
        let dcfg = DriverConfig::default().with_spec_rollbacks();
        let mut serial_db = loader::load(mvcc_cfg(), 51);
        let shared_db = loader::load(mvcc_cfg(), 51);

        let serial = Driver::new(&serial_db, dcfg, 77).run(&mut serial_db, 600);
        let parallel = ParallelDriver::new(dcfg, 1, 77).run(&shared_db, 600);

        assert_eq!(parallel.executed, serial.executed, "same input stream");
        assert_eq!(parallel.new_orders, serial.new_orders);
        assert_eq!(parallel.deliveries, serial.deliveries);
        assert_eq!(parallel.rollbacks, serial.rollbacks);
        assert_eq!(parallel.retries, [0; 5], "one terminal never conflicts");

        serial_db.flush();
        shared_db.flush();
        assert!(
            serial_db.contents_equal(&shared_db),
            "final disk images diverge under MVCC"
        );
    }

    /// Clause 2.4.1.4 rollbacks are a property of the seeded input
    /// streams, not of thread interleaving: two identical multi-
    /// terminal runs abort exactly the same transactions.
    #[test]
    fn mvcc_rollbacks_are_deterministic_across_identical_runs() {
        let cfg = DbConfig {
            warehouses: 2,
            buffer_frames: 2048,
            ..mvcc_cfg()
        };
        let dcfg = DriverConfig::default().with_spec_rollbacks();
        let run = || {
            let db = loader::load(cfg, 33);
            let report = ParallelDriver::new(dcfg, 4, 34).run(&db, 1200);
            let consistency = db.verify_consistency();
            assert!(consistency.is_consistent(), "{consistency:?}");
            report.rollbacks
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "rollback draws live in the seeded input streams");
        assert!(a > 0, "1% of ~500 New-Orders fires at this seed");
    }

    /// The acceptance criterion, asserted structurally: with MVCC on,
    /// a pure read-only workload drives the lock manager not at all.
    #[test]
    fn mvcc_read_only_terminals_acquire_zero_locks() {
        let rec = Arc::new(tpcc_obs::MemoryRecorder::new());
        let mut db = loader::load(mvcc_cfg(), 91);
        db.set_obs(tpcc_obs::Obs::new(rec.clone()));
        let dcfg = DriverConfig {
            mix: [0.0, 0.0, 0.5, 0.0, 0.5], // Order-Status + Stock-Level
            ..DriverConfig::default()
        };
        let report = ParallelDriver::new(dcfg, 4, 92).run(&db, 400);
        assert_eq!(report.total(), 400);
        assert_eq!(
            report.executed[0] + report.executed[1] + report.executed[3],
            0,
            "readers only"
        );
        assert_eq!(
            rec.counter_total("lock_acquires"),
            0,
            "snapshot readers never touch the lock manager"
        );
        assert_eq!(rec.counter_total("lock_waits"), 0);
        assert_eq!(rec.counter_total("lock_wounds"), 0);
        assert!(
            rec.counter_total("snapshot_reads") > 0,
            "reads resolved through the version chains"
        );
    }

    /// Snapshot reads repeat exactly while a writer churns the same
    /// rows — the isolation the S-lock path bought with blocking, now
    /// lock-free.
    #[test]
    fn mvcc_snapshot_reads_repeat_under_a_concurrent_writer() {
        let db = loader::load(mvcc_cfg(), 13);
        let db = &db;
        let done = &AtomicBool::new(false);
        std::thread::scope(|scope| {
            let writer = scope.spawn(move || {
                for n in 0..400u64 {
                    db.new_order(
                        0,
                        n % 10,
                        n % 90,
                        &[crate::txns::OrderLineReq {
                            item: n % 300,
                            supply_warehouse: 0,
                            quantity: 5,
                        }],
                    );
                    if n % 7 == 0 {
                        db.payment(
                            0,
                            n % 10,
                            0,
                            n % 10,
                            crate::txns::CustomerSelector::ById(n % 90),
                            1.5,
                        );
                    }
                }
                done.store(true, Ordering::Release);
            });
            for _ in 0..3 {
                scope.spawn(move || {
                    while !done.load(Ordering::Acquire) {
                        let snap = db.snapshot();
                        let a = db.stock_level_at(&snap, 0, 3, 50);
                        let b = db.stock_level_at(&snap, 0, 3, 50);
                        assert_eq!(a.low_stock, b.low_stock, "repeatable join");
                        assert_eq!(a.lines_scanned, b.lines_scanned);
                        let s1 =
                            db.order_status_at(&snap, 0, 5, crate::txns::CustomerSelector::ById(5));
                        let s2 =
                            db.order_status_at(&snap, 0, 5, crate::txns::CustomerSelector::ById(5));
                        assert_eq!(s1.o_id, s2.o_id, "repeatable last-order");
                        assert_eq!(s1.lines, s2.lines);
                    }
                });
            }
            writer.join().expect("writer");
        });
        let consistency = db.verify_consistency();
        assert!(consistency.is_consistent(), "{consistency:?}");
    }

    /// `run_mixed` pins reader terminals against writer terminals and
    /// reports them separately; the reader group's latency sketches
    /// contain only read-only samples.
    #[test]
    fn mixed_groups_separate_reader_and_writer_reports() {
        let cfg = DbConfig {
            warehouses: 2,
            buffer_frames: 2048,
            ..mvcc_cfg()
        };
        let db = loader::load(cfg, 55);
        let writer = DriverConfig {
            mix: [0.47, 0.48, 0.0, 0.05, 0.0],
            ..DriverConfig::default()
        };
        let reader = DriverConfig {
            mix: [0.0, 0.0, 0.5, 0.0, 0.5],
            ..DriverConfig::default()
        };
        let reports = ParallelDriver::run_mixed(
            &db,
            &[
                TerminalGroup {
                    cfg: writer,
                    terminals: 2,
                    transactions_per_terminal: 300,
                    think_us: 0,
                },
                TerminalGroup {
                    cfg: reader,
                    terminals: 2,
                    transactions_per_terminal: 300,
                    think_us: 0,
                },
            ],
            56,
        );
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].total(), 600);
        assert_eq!(reports[1].total(), 600);
        assert_eq!(
            reports[1].executed[0] + reports[1].executed[1] + reports[1].executed[3],
            0,
            "reader group ran only read-only types"
        );
        assert_eq!(
            reports[1].latency_ns[2].count() + reports[1].latency_ns[4].count(),
            600,
            "every reader sample lands in the reader group's sketches"
        );
        assert_eq!(reports[1].retries, [0; 5], "lock-free readers never retry");
        let consistency = db.verify_consistency();
        assert!(consistency.is_consistent(), "{consistency:?}");
    }

    /// Release-mode stress variant (CI runs `--ignored stress` with a
    /// seed matrix via `TPCC_STRESS_SEED`).
    #[test]
    #[ignore = "stress: run with --ignored, seeded via TPCC_STRESS_SEED"]
    fn stress_parallel_driver_consistency() {
        let seed = std::env::var("TPCC_STRESS_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(42u64);
        let db = loader::load(four_warehouse_cfg(), seed);
        let mut lm = LockManager::new();
        lm.set_obs(db.obs(), &SPACE_LABELS);
        let driver = ParallelDriver::new(DriverConfig::default().with_spec_rollbacks(), 8, seed);

        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let monitor = scope.spawn(|| {
                while !done.load(Ordering::Acquire) {
                    assert!(lm.wait_for_snapshot().find_cycle().is_none());
                    std::thread::yield_now();
                }
            });
            let report = driver.run_on(&db, &lm, 20_000);
            done.store(true, Ordering::Release);
            monitor.join().expect("monitor");
            assert_eq!(report.total(), 20_000);
        });
        let consistency = db.verify_consistency();
        assert!(consistency.is_consistent(), "{consistency:?}");
    }

    /// Release-mode 8-thread scaling smoke: the scaling bench's shape
    /// (warmup run, then a measured run on the warmed database) must
    /// complete, populate the per-type latency histograms, and leave a
    /// consistent database. No throughput assertion — CI core counts
    /// vary; the scaling *curve* is checked by the bench's recorded
    /// results, not here.
    #[test]
    #[ignore = "stress: run with --ignored, seeded via TPCC_STRESS_SEED"]
    fn stress_scaling_smoke_eight_threads() {
        let seed = std::env::var("TPCC_STRESS_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(42u64);
        let mut cfg = four_warehouse_cfg();
        cfg.buffer_shards = 8;
        let db = loader::load(cfg, seed);
        let driver = ParallelDriver::new(DriverConfig::default(), 8, seed + 8);
        driver.run(&db, 2_000); // warmup, discarded
        let report = driver.run(&db, 20_000);
        assert_eq!(report.total(), 20_000);
        assert!(report.throughput() > 0.0);
        for t in 0..5 {
            assert_eq!(
                report.latency_ns[t].count(),
                report.executed[t],
                "every completed transaction contributes one latency sample"
            );
        }
        let consistency = db.verify_consistency();
        assert!(consistency.is_consistent(), "{consistency:?}");
    }
}
