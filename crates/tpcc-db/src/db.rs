//! The database instance: heap files, indexes, buffer pool, catalog.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tpcc_obs::Obs;
use tpcc_schema::relation::Relation;
use tpcc_storage::{
    BTree, BufferManager, BufferStats, DiskManager, FaultHook, FaultPlan, FaultStats,
    GroupCommitConfig, GroupCommitStats, HeapFile, RecordId, RecoveryError, Replacement, UndoStore,
    Wal,
};

/// Scale and resource configuration.
///
/// `paper()` is the full benchmark population; `small()` keeps tests
/// fast. District count is fixed at 10 (structural in TPC-C).
#[derive(Debug, Clone, Copy)]
pub struct DbConfig {
    /// Warehouses.
    pub warehouses: u64,
    /// Customers per district (spec: 3000).
    pub customers_per_district: u64,
    /// Items / stock rows per warehouse (spec: 100 000).
    pub items: u64,
    /// Orders pre-loaded per district (spec: 3000).
    pub initial_orders_per_district: u64,
    /// Of those, undelivered at load end (spec: 900).
    pub initial_pending_per_district: u64,
    /// Page size in bytes.
    pub page_size: usize,
    /// Buffer pool frames.
    pub buffer_frames: usize,
    /// Buffer replacement policy.
    pub replacement: Replacement,
    /// Enable redo logging (checkpoint taken after load; see
    /// [`TpccDb::crash_recovery_check`]).
    pub enable_wal: bool,
    /// Buffer-pool latch shards. 1 (the default) preserves the exact
    /// global LRU order the paper's single-stream figures assume;
    /// larger values trade that for less latch contention under a
    /// multi-terminal driver (per-shard approximate LRU).
    pub buffer_shards: usize,
    /// Simulated read-I/O service time in microseconds per page fault
    /// (0 = in-memory, the default). Applied after load; puts the
    /// workload in the paper's I/O-bound operating region, where
    /// multiple terminals overlap their I/O waits.
    pub io_delay_us: u64,
    /// Group-commit pipeline knobs (`None` = synchronous durability,
    /// the default). Requires `enable_wal`; applied after load like
    /// `io_delay_us`, so load-time traffic is not batched. See
    /// `tpcc_storage::logmgr` for the ticket/batcher protocol.
    pub group_commit: Option<GroupCommitConfig>,
    /// Enable MVCC snapshot reads (off by default, preserving the
    /// historical execution byte-for-byte). When on, writers stamp
    /// pre-images into undo version chains at commit, read-only
    /// transactions ([`TpccDb::order_status_at`],
    /// [`TpccDb::stock_level_at`]) run against a pinned snapshot with
    /// zero lock acquisitions, and `new_order_checked` rolls back via
    /// a real undo-backed abort instead of validate-then-apply. See
    /// `tpcc_storage::undo` and DESIGN.md §11.
    pub mvcc: bool,
}

impl DbConfig {
    /// Full spec-scale population for `warehouses` warehouses.
    #[must_use]
    pub fn paper(warehouses: u64, buffer_frames: usize) -> Self {
        Self {
            warehouses,
            customers_per_district: 3000,
            items: 100_000,
            initial_orders_per_district: 3000,
            initial_pending_per_district: 900,
            page_size: 4096,
            buffer_frames,
            replacement: Replacement::Lru,
            enable_wal: false,
            buffer_shards: 1,
            io_delay_us: 0,
            group_commit: None,
            mvcc: false,
        }
    }

    /// A miniature database for tests (1 warehouse, 90 customers and
    /// 300 items per district).
    #[must_use]
    pub fn small() -> Self {
        Self {
            warehouses: 1,
            customers_per_district: 90,
            items: 300,
            initial_orders_per_district: 60,
            initial_pending_per_district: 18,
            page_size: 4096,
            buffer_frames: 512,
            replacement: Replacement::Lru,
            enable_wal: false,
            buffer_shards: 1,
            io_delay_us: 0,
            group_commit: None,
            mvcc: false,
        }
    }

    /// Distinct last names in a district (spec: 1000; scaled down with
    /// the customer count so ~3 customers share a name).
    #[must_use]
    pub fn name_count(&self) -> u64 {
        (self.customers_per_district / 3).clamp(1, 1000)
    }
}

pub(crate) struct Heaps {
    pub warehouse: HeapFile,
    pub district: HeapFile,
    pub customer: HeapFile,
    pub stock: HeapFile,
    pub item: HeapFile,
    pub order: HeapFile,
    pub new_order: HeapFile,
    pub order_line: HeapFile,
    pub history: HeapFile,
}

impl Heaps {
    pub(crate) fn for_relation(&self, relation: Relation) -> &HeapFile {
        match relation {
            Relation::Warehouse => &self.warehouse,
            Relation::District => &self.district,
            Relation::Customer => &self.customer,
            Relation::Stock => &self.stock,
            Relation::Item => &self.item,
            Relation::Order => &self.order,
            Relation::NewOrder => &self.new_order,
            Relation::OrderLine => &self.order_line,
            Relation::History => &self.history,
        }
    }
}

pub(crate) struct Indexes {
    /// `(w)` → warehouse rid.
    pub warehouse: BTree,
    /// `(w, d)` → district rid.
    pub district: BTree,
    /// `(w, d, c)` → customer rid.
    pub customer: BTree,
    /// `(w, d, name, c)` → customer rid (the by-name access path).
    pub customer_name: BTree,
    /// `(w, i)` → stock rid.
    pub stock: BTree,
    /// `(i)` → item rid.
    pub item: BTree,
    /// `(w, d, o)` → order rid.
    pub order: BTree,
    /// `(w, d, o)` → new-order rid (min scan = oldest pending).
    pub new_order: BTree,
    /// `(w, d, o, line)` → order-line rid.
    pub order_line: BTree,
    /// `(w, d, c)` → last order number (the multi-key index behind the
    /// paper's one-call `Max(order-id)` assumption).
    pub last_order: BTree,
}

/// An open TPC-C database.
///
/// All transaction methods take `&self`: the storage layer is
/// internally latched, so a `TpccDb` can be shared across terminal
/// threads (see `parallel::ParallelDriver`, which adds the logical
/// locks that make concurrent execution serializable).
///
/// ```
/// use tpcc_db::{loader, DbConfig};
/// use tpcc_db::txns::OrderLineReq;
///
/// let mut db = loader::load(DbConfig::small(), 1);
/// let placed = db.new_order(0, 0, 5, &[OrderLineReq {
///     item: 7,
///     supply_warehouse: 0,
///     quantity: 3,
/// }]);
/// assert!(placed.total_amount > 0.0);
/// assert!(db.verify_consistency().is_consistent());
/// ```
pub struct TpccDb {
    pub(crate) bm: BufferManager,
    pub(crate) cfg: DbConfig,
    pub(crate) heaps: Heaps,
    pub(crate) idx: Indexes,
    /// Logical timestamp for entry/delivery dates.
    pub(crate) clock: AtomicU64,
    /// Post-load disk image for crash recovery (WAL mode only).
    pub(crate) checkpoint: Option<DiskManager>,
    /// MVCC undo version chains (unused unless `cfg.mvcc`).
    pub(crate) undo: UndoStore,
}

impl TpccDb {
    /// Creates an empty database (no rows; see `loader::load`).
    #[must_use]
    pub fn create(cfg: DbConfig) -> Self {
        let disk = DiskManager::new(cfg.page_size);
        let bm =
            BufferManager::new_sharded(disk, cfg.buffer_frames, cfg.replacement, cfg.buffer_shards);
        let heaps = Heaps {
            warehouse: HeapFile::create(&bm),
            district: HeapFile::create(&bm),
            customer: HeapFile::create(&bm),
            stock: HeapFile::create(&bm),
            item: HeapFile::create(&bm),
            order: HeapFile::create(&bm),
            new_order: HeapFile::create(&bm),
            order_line: HeapFile::create(&bm),
            history: HeapFile::create(&bm),
        };
        let idx = Indexes {
            warehouse: BTree::create(&bm),
            district: BTree::create(&bm),
            customer: BTree::create(&bm),
            customer_name: BTree::create(&bm),
            stock: BTree::create(&bm),
            item: BTree::create(&bm),
            order: BTree::create(&bm),
            new_order: BTree::create(&bm),
            order_line: BTree::create(&bm),
            last_order: BTree::create(&bm),
        };
        Self {
            bm,
            cfg,
            heaps,
            idx,
            clock: AtomicU64::new(0),
            checkpoint: None,
            undo: UndoStore::new(16),
        }
    }

    /// Marks a transaction boundary: appends a commit record when
    /// logging is enabled and, under group commit, blocks until the
    /// record is in the durably flushed prefix. Returns the
    /// nanoseconds spent waiting on the commit ticket (0 otherwise).
    pub(crate) fn commit(&self) -> u64 {
        let txn = self.clock.load(Ordering::Relaxed);
        let wait = self.bm.log_commit(txn);
        // durable first, visible second: the undo clock publishes this
        // transaction's versions only after its commit record is logged
        self.finish_write();
        wait
    }

    /// WAL-mode self-test: "crash" (pretend every unflushed dirty page
    /// is lost), recover by replaying the redo log over the post-load
    /// checkpoint, and compare byte-for-byte against what a clean flush
    /// of the live pool produces. Returns `true` when recovery is
    /// exact; the database remains usable afterwards with a fresh
    /// checkpoint.
    ///
    /// # Panics
    /// Panics if the database was not loaded with `enable_wal`, or if
    /// the log fails to apply (see
    /// [`TpccDb::try_crash_recovery_check`] for the non-panicking
    /// variant).
    pub fn crash_recovery_check(&mut self) -> bool {
        match self.try_crash_recovery_check() {
            Ok(equal) => equal,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`TpccDb::crash_recovery_check`], but a log that fails to
    /// apply (torn tail, mismatched checkpoint) surfaces as a typed
    /// [`RecoveryError`] instead of a panic deep inside replay.
    ///
    /// # Errors
    /// Returns the [`RecoveryError`] that stopped replay.
    ///
    /// # Panics
    /// Panics if the database was not loaded with `enable_wal`.
    pub fn try_crash_recovery_check(&mut self) -> Result<bool, RecoveryError> {
        // quiesce the group-commit tail first: the check compares
        // against a clean flush of the live pool, so every appended
        // commit must be inside the durable prefix
        self.bm.flush_log();
        let wal = self
            .bm
            .take_wal()
            .expect("crash_recovery_check requires enable_wal");
        let checkpoint = self
            .checkpoint
            .take()
            .expect("WAL mode always holds a checkpoint");
        let recovered = wal.try_recover(checkpoint)?;
        self.bm.flush_all();
        let equal = self.bm.with_disk(|disk| recovered.contents_equal(disk));
        // re-arm for continued use
        self.checkpoint = Some(self.bm.disk_snapshot());
        self.bm.enable_wal();
        Ok(equal)
    }

    /// Installs a fault-injection plan on the storage layer (WAL,
    /// disk, and buffer pool) and returns the shared hook for
    /// inspecting what fired. Install after `loader::load` so load-time
    /// I/O is not counted as fault sites; see [`crate::inject`] for the
    /// sweep harnesses built on top.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) -> Arc<FaultHook> {
        let hook = self.bm.install_fault_hook(plan);
        self.undo.set_fault_hook(hook.clone());
        hook
    }

    /// Fault counters from the installed hook (`None` when no plan has
    /// been installed).
    #[must_use]
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.bm.fault_hook().map(|h| h.stats())
    }

    /// Redo-log statistics, when logging is enabled: `(entries,
    /// delta bytes, commits)`.
    #[must_use]
    pub fn wal_stats(&self) -> Option<(usize, u64, u64)> {
        self.bm
            .with_wal(|w| (w.len(), w.delta_bytes(), w.commits()))
    }

    /// Durable-prefix statistics, when logging is enabled:
    /// `(durable entries, durable commits)`. Equal to the totals under
    /// synchronous durability; under group commit the volatile tail is
    /// excluded.
    #[must_use]
    pub fn wal_durable_stats(&self) -> Option<(usize, u64)> {
        self.bm.with_wal(|w| (w.durable_len(), w.durable_commits()))
    }

    /// Group-commit pipeline counters (`None` when group commit is
    /// off): flushes, commits flushed, cap-triggered flushes.
    #[must_use]
    pub fn group_commit_stats(&self) -> Option<GroupCommitStats> {
        self.bm.group_commit().map(|lm| lm.stats())
    }

    /// Clone of the cumulative commit-wait sketch in nanoseconds
    /// (`None` when group commit is off).
    #[must_use]
    pub fn commit_wait_sketch(&self) -> Option<tpcc_obs::QuantileSketch> {
        self.bm.group_commit().map(|lm| lm.commit_wait_sketch())
    }

    /// Flushes any pending group-commit tail (quiesce points; no-op
    /// under synchronous durability).
    pub fn flush_log(&self) {
        self.bm.flush_log();
    }

    /// Detaches and returns the redo log (fault harnesses recover from
    /// it offline; [`TpccDb::try_crash_recovery_check`] re-arms
    /// logging).
    pub fn take_wal(&mut self) -> Option<Wal> {
        self.bm.take_wal()
    }

    /// Detaches and returns the post-load checkpoint image (WAL mode
    /// only — the base recovery replays over).
    pub fn take_checkpoint(&mut self) -> Option<DiskManager> {
        self.checkpoint.take()
    }

    /// Clones the post-load checkpoint image without detaching it (WAL
    /// mode only) — the base a CDC subscriber's shadow replay starts
    /// from.
    #[must_use]
    pub fn checkpoint_snapshot(&self) -> Option<DiskManager> {
        self.checkpoint.as_ref().map(DiskManager::snapshot)
    }

    /// Runs `f` against the live WAL under its lock (`None` when WAL
    /// mode is off). CDC subscribers poll through this.
    pub fn with_wal<R>(&self, f: impl FnOnce(&Wal) -> R) -> Option<R> {
        self.bm.with_wal(f)
    }

    /// True when this database's flushed disk image equals `disk`
    /// (flush first; used to compare against a recovered image).
    #[must_use]
    pub fn disk_contents_equal(&self, disk: &DiskManager) -> bool {
        self.bm.with_disk(|d| d.contents_equal(disk))
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &DbConfig {
        &self.cfg
    }

    /// Advances and returns the logical clock.
    pub(crate) fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Writes every dirty buffered page back to the disk image.
    pub fn flush(&self) {
        self.bm.flush_all();
    }

    /// True when both databases' flushed disk images hold the same
    /// pages (used by tests to compare a parallel run against a serial
    /// one). Flush both sides first.
    #[must_use]
    pub fn contents_equal(&self, other: &TpccDb) -> bool {
        self.bm
            .with_disk(|a| other.bm.with_disk(|b| a.contents_equal(b)))
    }

    /// Buffer statistics for one relation's heap file.
    #[must_use]
    pub fn relation_stats(&self, relation: Relation) -> BufferStats {
        self.bm.stats(self.heaps.for_relation(relation).file())
    }

    /// Aggregate buffer statistics across all index files.
    #[must_use]
    pub fn index_stats(&self) -> BufferStats {
        [
            &self.idx.warehouse,
            &self.idx.district,
            &self.idx.customer,
            &self.idx.customer_name,
            &self.idx.stock,
            &self.idx.item,
            &self.idx.order,
            &self.idx.new_order,
            &self.idx.order_line,
            &self.idx.last_order,
        ]
        .iter()
        .map(|t| self.bm.stats(t.file()))
        .fold(BufferStats::default(), |a, s| a.merged(s))
    }

    /// Clears buffer statistics (between load/warm-up and measurement).
    pub fn reset_stats(&mut self) {
        self.bm.reset_stats();
    }

    /// Frame-latch acquisition/contention counters since the last
    /// [`TpccDb::reset_stats`].
    #[must_use]
    pub fn latch_stats(&self) -> tpcc_storage::LatchStats {
        self.bm.latch_stats()
    }

    /// Attaches an observability handle to the storage layer and
    /// registers every file's display name with it, so per-file
    /// metrics export as `buf_hits/stock` or `buf_misses/idx_customer`
    /// rather than raw file ids.
    pub fn set_obs(&mut self, obs: Obs) {
        for r in Relation::ALL {
            obs.register_index(self.heaps.for_relation(r).file().0, r.name());
        }
        let named_indexes: [(&BTree, &str); 10] = [
            (&self.idx.warehouse, "idx_warehouse"),
            (&self.idx.district, "idx_district"),
            (&self.idx.customer, "idx_customer"),
            (&self.idx.customer_name, "idx_customer_name"),
            (&self.idx.stock, "idx_stock"),
            (&self.idx.item, "idx_item"),
            (&self.idx.order, "idx_order"),
            (&self.idx.new_order, "idx_new_order"),
            (&self.idx.order_line, "idx_order_line"),
            (&self.idx.last_order, "idx_last_order"),
        ];
        for (tree, name) in named_indexes {
            obs.register_index(tree.file().0, name);
        }
        self.bm.set_obs(obs);
        // pre-resolve per-index counters against the new recorder
        let obs = self.bm.obs().clone();
        for tree in [
            &mut self.idx.warehouse,
            &mut self.idx.district,
            &mut self.idx.customer,
            &mut self.idx.customer_name,
            &mut self.idx.stock,
            &mut self.idx.item,
            &mut self.idx.order,
            &mut self.idx.new_order,
            &mut self.idx.order_line,
            &mut self.idx.last_order,
        ] {
            tree.attach_obs(&obs);
        }
        self.undo.attach_obs(&obs);
    }

    /// The attached observability handle (disabled unless
    /// [`TpccDb::set_obs`] was called).
    #[must_use]
    pub fn obs(&self) -> &Obs {
        self.bm.obs()
    }

    /// Pages in a relation's heap-file extent (high-water mark; never
    /// shrinks).
    #[must_use]
    pub fn relation_pages(&self, relation: Relation) -> u32 {
        self.heaps.for_relation(relation).pages(&self.bm)
    }

    /// Live pages of a relation's heap file (extent minus pages freed
    /// by drain deletes).
    #[must_use]
    pub fn relation_allocated_pages(&self, relation: Relation) -> u32 {
        self.heaps.for_relation(relation).allocated_pages(&self.bm)
    }

    /// Live pages and height of a relation's primary-key index — the
    /// steady-state footprint the Delivery soak asserts on.
    ///
    /// # Panics
    /// Panics for `History` (no index).
    #[must_use]
    pub fn index_footprint(&self, relation: Relation) -> (u32, usize) {
        let tree = self.pk_tree(relation);
        (tree.allocated_pages(&self.bm), tree.height(&self.bm))
    }

    /// Live pages summed across every heap and index file.
    #[must_use]
    pub fn total_allocated_pages(&self) -> u64 {
        self.bm.total_allocated_pages()
    }

    /// Pages returned to the free list over the run (leaf merges, root
    /// collapses, drained heap pages).
    #[must_use]
    pub fn pages_freed(&self) -> u64 {
        self.bm.pages_freed()
    }

    /// Freed pages later handed back out by the allocator.
    #[must_use]
    pub fn pages_reused(&self) -> u64 {
        self.bm.pages_reused()
    }

    fn pk_tree(&self, relation: Relation) -> &BTree {
        match relation {
            Relation::Warehouse => &self.idx.warehouse,
            Relation::District => &self.idx.district,
            Relation::Customer => &self.idx.customer,
            Relation::Stock => &self.idx.stock,
            Relation::Item => &self.idx.item,
            Relation::Order => &self.idx.order,
            Relation::NewOrder => &self.idx.new_order,
            Relation::OrderLine => &self.idx.order_line,
            Relation::History => panic!("history has no index"),
        }
    }

    /// Looks up one record rid by primary key in the relation's index.
    pub(crate) fn pk_lookup(&self, relation: Relation, key: u64) -> Option<RecordId> {
        let tree = self.pk_tree(relation);
        let _span = self.bm.obs().span("btree_lookup");
        tree.get(&self.bm, key).map(RecordId::from_u64)
    }

    /// Validates ids against the configured scale.
    pub(crate) fn check_scale(&self, w: u64, d: u64, c: Option<u64>, i: Option<u64>) {
        assert!(w < self.cfg.warehouses, "warehouse {w} beyond scale");
        assert!(d < 10, "district {d} beyond scale");
        if let Some(c) = c {
            assert!(
                c < self.cfg.customers_per_district,
                "customer {c} beyond scale"
            );
        }
        if let Some(i) = i {
            assert!(i < self.cfg.items, "item {i} beyond scale");
        }
    }
}
