//! The simulated disk: page files held in memory with per-file I/O
//! accounting, standing in for the 25 ms-per-I/O device of the paper's
//! throughput model.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::fault::{FaultHook, FaultSite};

/// Identifies one page file (one relation or index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// Per-file physical I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Pages read from the "device".
    pub reads: u64,
    /// Pages written back.
    pub writes: u64,
}

/// An in-memory collection of page files.
///
/// Each file keeps a free set of deallocated page numbers; allocation
/// reuses the lowest free page before growing the extent, so the file
/// footprint (`allocated_pages`) can shrink back to steady state under
/// delete-heavy workloads even though the extent (`pages`) never does.
#[derive(Debug)]
pub struct DiskManager {
    page_size: usize,
    files: Vec<Vec<Box<[u8]>>>,
    free: Vec<BTreeSet<u32>>,
    stats: Vec<IoStats>,
    pages_freed: u64,
    pages_reused: u64,
    /// Fault hook for the *live* disk only — [`DiskManager::snapshot`]
    /// drops it, so replaying a log over a checkpoint image never fires
    /// fault sites.
    fault: Option<Arc<FaultHook>>,
}

impl DiskManager {
    /// Creates a disk with the given page size.
    ///
    /// # Panics
    /// Panics if `page_size < 64`.
    #[must_use]
    pub fn new(page_size: usize) -> Self {
        assert!(page_size >= 64, "page size too small");
        Self {
            page_size,
            files: Vec::new(),
            free: Vec::new(),
            stats: Vec::new(),
            pages_freed: 0,
            pages_reused: 0,
            fault: None,
        }
    }

    /// Attaches a fault hook: every [`DiskManager::free_page`] becomes
    /// a [`FaultSite::PageFree`] fault site.
    pub fn set_fault_hook(&mut self, hook: Arc<FaultHook>) {
        self.fault = Some(hook);
    }

    /// Page size in bytes.
    #[must_use]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Creates an empty file.
    pub fn create_file(&mut self) -> FileId {
        self.files.push(Vec::new());
        self.free.push(BTreeSet::new());
        self.stats.push(IoStats::default());
        FileId((self.files.len() - 1) as u32)
    }

    /// Number of files created.
    #[must_use]
    pub fn file_count(&self) -> u32 {
        self.files.len() as u32
    }

    /// Allocates a page in `file`: reuses the lowest-numbered free page
    /// if the file has one, otherwise appends a zeroed page. Returns the
    /// page number.
    ///
    /// Reuse-lowest-first keeps allocation deterministic, which WAL
    /// replay depends on: `AllocPage` records assert the replayed
    /// allocation lands on the logged page number.
    ///
    /// # Panics
    /// Panics on an unknown file.
    pub fn allocate_page(&mut self, file: FileId) -> u32 {
        if let Some(page) = self.free[file.0 as usize].pop_first() {
            self.pages_reused += 1;
            return page;
        }
        let f = &mut self.files[file.0 as usize];
        f.push(vec![0u8; self.page_size].into_boxed_slice());
        (f.len() - 1) as u32
    }

    /// Returns `page` of `file` to the free set, zeroing its contents
    /// (so recovered and clean-run disks compare byte-identical, and a
    /// stale read of a freed page cannot see ghost records).
    ///
    /// # Panics
    /// Panics on an unknown file/page or a double free.
    pub fn free_page(&mut self, file: FileId, page: u32) {
        if let Some(hook) = &self.fault {
            // the in-memory free always proceeds; on a crash the hook
            // has frozen the WAL, so the matching FreePage record is
            // what gets lost
            let _ = hook.fire(FaultSite::PageFree);
        }
        let f = &mut self.files[file.0 as usize];
        assert!((page as usize) < f.len(), "freeing unallocated page");
        f[page as usize].fill(0);
        let inserted = self.free[file.0 as usize].insert(page);
        assert!(inserted, "double free of page {page} in file {}", file.0);
        self.pages_freed += 1;
    }

    /// True when `page` of `file` sits on the free set.
    ///
    /// # Panics
    /// Panics on an unknown file.
    #[must_use]
    pub fn is_free(&self, file: FileId, page: u32) -> bool {
        self.free[file.0 as usize].contains(&page)
    }

    /// Number of pages in `file`'s extent (high-water mark; never
    /// shrinks, includes freed pages).
    ///
    /// # Panics
    /// Panics on an unknown file.
    #[must_use]
    pub fn pages(&self, file: FileId) -> u32 {
        self.files[file.0 as usize].len() as u32
    }

    /// Number of live (allocated, not freed) pages in `file`.
    ///
    /// # Panics
    /// Panics on an unknown file.
    #[must_use]
    pub fn allocated_pages(&self, file: FileId) -> u32 {
        self.pages(file) - self.free[file.0 as usize].len() as u32
    }

    /// Live pages summed across all files.
    #[must_use]
    pub fn total_allocated_pages(&self) -> u64 {
        (0..self.files.len() as u32)
            .map(|f| u64::from(self.allocated_pages(FileId(f))))
            .sum()
    }

    /// Pages handed to `free_page` over this disk's lifetime.
    #[must_use]
    pub fn pages_freed(&self) -> u64 {
        self.pages_freed
    }

    /// Allocations served from the free set instead of extent growth.
    #[must_use]
    pub fn pages_reused(&self) -> u64 {
        self.pages_reused
    }

    /// Reads a page into `buf` (counted as one physical read).
    ///
    /// # Panics
    /// Panics on unknown file/page or a wrong-sized buffer.
    pub fn read_page(&mut self, file: FileId, page: u32, buf: &mut [u8]) {
        assert_eq!(buf.len(), self.page_size, "buffer size mismatch");
        let data = &self.files[file.0 as usize][page as usize];
        buf.copy_from_slice(data);
        self.stats[file.0 as usize].reads += 1;
    }

    /// Writes a page from `buf` (counted as one physical write).
    ///
    /// # Panics
    /// Panics on unknown file/page or a wrong-sized buffer.
    pub fn write_page(&mut self, file: FileId, page: u32, buf: &[u8]) {
        assert_eq!(buf.len(), self.page_size, "buffer size mismatch");
        self.files[file.0 as usize][page as usize].copy_from_slice(buf);
        self.stats[file.0 as usize].writes += 1;
    }

    /// A torn write: only the first `valid` bytes of `buf` reach the
    /// page; the tail keeps its previous contents. Counted as one
    /// physical write (the device attempted the full page). Used by the
    /// fault-injection layer to model a write interrupted at a 64-byte
    /// boundary; the buffer manager's retry loop re-issues the full
    /// write afterwards.
    ///
    /// # Panics
    /// Panics on unknown file/page, a wrong-sized buffer, or
    /// `valid > page_size`.
    pub fn write_page_prefix(&mut self, file: FileId, page: u32, buf: &[u8], valid: usize) {
        assert_eq!(buf.len(), self.page_size, "buffer size mismatch");
        assert!(valid <= self.page_size, "torn prefix exceeds the page");
        self.files[file.0 as usize][page as usize][..valid].copy_from_slice(&buf[..valid]);
        self.stats[file.0 as usize].writes += 1;
    }

    /// I/O counters for one file.
    ///
    /// # Panics
    /// Panics on an unknown file.
    #[must_use]
    pub fn stats(&self, file: FileId) -> IoStats {
        self.stats[file.0 as usize]
    }

    /// Total I/O counters across files.
    #[must_use]
    pub fn total_stats(&self) -> IoStats {
        self.stats.iter().fold(IoStats::default(), |a, s| IoStats {
            reads: a.reads + s.reads,
            writes: a.writes + s.writes,
        })
    }

    /// A deep copy of the disk's current contents with fresh counters —
    /// the checkpoint image crash recovery replays the WAL over.
    #[must_use]
    pub fn snapshot(&self) -> DiskManager {
        DiskManager {
            page_size: self.page_size,
            files: self.files.clone(),
            free: self.free.clone(),
            stats: vec![IoStats::default(); self.stats.len()],
            pages_freed: 0,
            pages_reused: 0,
            // never carried into a snapshot: recovery replay over a
            // checkpoint image must not fire fault sites
            fault: None,
        }
    }

    /// True when both disks hold byte-identical files *and* identical
    /// free sets (test helper for recovery equivalence — a page that is
    /// zeroed-but-allocated on one disk and free on the other would
    /// diverge on the next allocation).
    #[must_use]
    pub fn contents_equal(&self, other: &DiskManager) -> bool {
        self.page_size == other.page_size && self.files == other.files && self.free == other.free
    }

    /// Resets all I/O counters (e.g. after load, before measurement).
    pub fn reset_stats(&mut self) {
        for s in &mut self.stats {
            *s = IoStats::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_allocate_read_write() {
        let mut d = DiskManager::new(256);
        let f = d.create_file();
        let p0 = d.allocate_page(f);
        assert_eq!(p0, 0);
        assert_eq!(d.allocate_page(f), 1);
        assert_eq!(d.pages(f), 2);

        let mut buf = vec![7u8; 256];
        d.write_page(f, 0, &buf);
        buf.fill(0);
        d.read_page(f, 0, &mut buf);
        assert!(buf.iter().all(|&b| b == 7));
        assert_eq!(
            d.stats(f),
            IoStats {
                reads: 1,
                writes: 1
            }
        );
    }

    #[test]
    fn files_are_independent() {
        let mut d = DiskManager::new(128);
        let a = d.create_file();
        let b = d.create_file();
        d.allocate_page(a);
        d.allocate_page(b);
        d.write_page(a, 0, &[1u8; 128]);
        let mut buf = vec![9u8; 128];
        d.read_page(b, 0, &mut buf);
        assert!(buf.iter().all(|&x| x == 0), "file b untouched");
    }

    #[test]
    fn stats_reset() {
        let mut d = DiskManager::new(128);
        let f = d.create_file();
        d.allocate_page(f);
        let mut buf = vec![0u8; 128];
        d.read_page(f, 0, &mut buf);
        d.reset_stats();
        assert_eq!(d.total_stats(), IoStats::default());
    }

    #[test]
    fn freed_pages_are_reused_lowest_first() {
        let mut d = DiskManager::new(128);
        let f = d.create_file();
        for _ in 0..4 {
            d.allocate_page(f);
        }
        d.write_page(f, 2, &[7u8; 128]);
        d.free_page(f, 2);
        d.free_page(f, 1);
        assert_eq!(d.pages(f), 4, "extent never shrinks");
        assert_eq!(d.allocated_pages(f), 2);
        assert!(d.is_free(f, 1) && d.is_free(f, 2));

        // reuse lowest first, then grow once the free set is empty
        assert_eq!(d.allocate_page(f), 1);
        assert_eq!(d.allocate_page(f), 2);
        assert_eq!(d.allocate_page(f), 4);
        assert_eq!(d.pages_freed(), 2);
        assert_eq!(d.pages_reused(), 2);

        // the freed-then-reused page came back zeroed
        let mut buf = vec![1u8; 128];
        d.read_page(f, 2, &mut buf);
        assert!(buf.iter().all(|&b| b == 0), "freed page was zeroed");
    }

    #[test]
    fn torn_write_leaves_the_tail_intact() {
        let mut d = DiskManager::new(128);
        let f = d.create_file();
        d.allocate_page(f);
        d.write_page(f, 0, &[1u8; 128]);
        d.write_page_prefix(f, 0, &[2u8; 128], 64);
        let mut buf = vec![0u8; 128];
        d.read_page(f, 0, &mut buf);
        assert!(buf[..64].iter().all(|&b| b == 2), "prefix reached the page");
        assert!(buf[64..].iter().all(|&b| b == 1), "tail kept old contents");
        assert_eq!(d.stats(f).writes, 2, "the tear still cost a device write");
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut d = DiskManager::new(128);
        let f = d.create_file();
        d.allocate_page(f);
        d.free_page(f, 0);
        d.free_page(f, 0);
    }

    #[test]
    fn snapshot_carries_the_free_set() {
        let mut d = DiskManager::new(128);
        let f = d.create_file();
        d.allocate_page(f);
        d.allocate_page(f);
        d.free_page(f, 0);
        let mut snap = d.snapshot();
        assert!(d.contents_equal(&snap));
        assert_eq!(
            snap.allocate_page(f),
            0,
            "snapshot reuses like the original"
        );
        assert!(
            !d.contents_equal(&snap),
            "free sets now differ even though bytes match"
        );
    }

    #[test]
    #[should_panic]
    fn out_of_range_page_panics() {
        let mut d = DiskManager::new(128);
        let f = d.create_file();
        let mut buf = vec![0u8; 128];
        d.read_page(f, 3, &mut buf);
    }
}
