//! The simulated disk: page files held in memory with per-file I/O
//! accounting, standing in for the 25 ms-per-I/O device of the paper's
//! throughput model.

/// Identifies one page file (one relation or index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// Per-file physical I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Pages read from the "device".
    pub reads: u64,
    /// Pages written back.
    pub writes: u64,
}

/// An in-memory collection of page files.
#[derive(Debug)]
pub struct DiskManager {
    page_size: usize,
    files: Vec<Vec<Box<[u8]>>>,
    stats: Vec<IoStats>,
}

impl DiskManager {
    /// Creates a disk with the given page size.
    ///
    /// # Panics
    /// Panics if `page_size < 64`.
    #[must_use]
    pub fn new(page_size: usize) -> Self {
        assert!(page_size >= 64, "page size too small");
        Self {
            page_size,
            files: Vec::new(),
            stats: Vec::new(),
        }
    }

    /// Page size in bytes.
    #[must_use]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Creates an empty file.
    pub fn create_file(&mut self) -> FileId {
        self.files.push(Vec::new());
        self.stats.push(IoStats::default());
        FileId((self.files.len() - 1) as u32)
    }

    /// Appends a zeroed page to `file`, returning its page number.
    ///
    /// # Panics
    /// Panics on an unknown file.
    pub fn allocate_page(&mut self, file: FileId) -> u32 {
        let f = &mut self.files[file.0 as usize];
        f.push(vec![0u8; self.page_size].into_boxed_slice());
        (f.len() - 1) as u32
    }

    /// Number of pages in `file`.
    ///
    /// # Panics
    /// Panics on an unknown file.
    #[must_use]
    pub fn pages(&self, file: FileId) -> u32 {
        self.files[file.0 as usize].len() as u32
    }

    /// Reads a page into `buf` (counted as one physical read).
    ///
    /// # Panics
    /// Panics on unknown file/page or a wrong-sized buffer.
    pub fn read_page(&mut self, file: FileId, page: u32, buf: &mut [u8]) {
        assert_eq!(buf.len(), self.page_size, "buffer size mismatch");
        let data = &self.files[file.0 as usize][page as usize];
        buf.copy_from_slice(data);
        self.stats[file.0 as usize].reads += 1;
    }

    /// Writes a page from `buf` (counted as one physical write).
    ///
    /// # Panics
    /// Panics on unknown file/page or a wrong-sized buffer.
    pub fn write_page(&mut self, file: FileId, page: u32, buf: &[u8]) {
        assert_eq!(buf.len(), self.page_size, "buffer size mismatch");
        self.files[file.0 as usize][page as usize].copy_from_slice(buf);
        self.stats[file.0 as usize].writes += 1;
    }

    /// I/O counters for one file.
    ///
    /// # Panics
    /// Panics on an unknown file.
    #[must_use]
    pub fn stats(&self, file: FileId) -> IoStats {
        self.stats[file.0 as usize]
    }

    /// Total I/O counters across files.
    #[must_use]
    pub fn total_stats(&self) -> IoStats {
        self.stats.iter().fold(IoStats::default(), |a, s| IoStats {
            reads: a.reads + s.reads,
            writes: a.writes + s.writes,
        })
    }

    /// A deep copy of the disk's current contents with fresh counters —
    /// the checkpoint image crash recovery replays the WAL over.
    #[must_use]
    pub fn snapshot(&self) -> DiskManager {
        DiskManager {
            page_size: self.page_size,
            files: self.files.clone(),
            stats: vec![IoStats::default(); self.stats.len()],
        }
    }

    /// True when both disks hold byte-identical files (test helper for
    /// recovery equivalence).
    #[must_use]
    pub fn contents_equal(&self, other: &DiskManager) -> bool {
        self.page_size == other.page_size && self.files == other.files
    }

    /// Resets all I/O counters (e.g. after load, before measurement).
    pub fn reset_stats(&mut self) {
        for s in &mut self.stats {
            *s = IoStats::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_allocate_read_write() {
        let mut d = DiskManager::new(256);
        let f = d.create_file();
        let p0 = d.allocate_page(f);
        assert_eq!(p0, 0);
        assert_eq!(d.allocate_page(f), 1);
        assert_eq!(d.pages(f), 2);

        let mut buf = vec![7u8; 256];
        d.write_page(f, 0, &buf);
        buf.fill(0);
        d.read_page(f, 0, &mut buf);
        assert!(buf.iter().all(|&b| b == 7));
        assert_eq!(
            d.stats(f),
            IoStats {
                reads: 1,
                writes: 1
            }
        );
    }

    #[test]
    fn files_are_independent() {
        let mut d = DiskManager::new(128);
        let a = d.create_file();
        let b = d.create_file();
        d.allocate_page(a);
        d.allocate_page(b);
        d.write_page(a, 0, &[1u8; 128]);
        let mut buf = vec![9u8; 128];
        d.read_page(b, 0, &mut buf);
        assert!(buf.iter().all(|&x| x == 0), "file b untouched");
    }

    #[test]
    fn stats_reset() {
        let mut d = DiskManager::new(128);
        let f = d.create_file();
        d.allocate_page(f);
        let mut buf = vec![0u8; 128];
        d.read_page(f, 0, &mut buf);
        d.reset_stats();
        assert_eq!(d.total_stats(), IoStats::default());
    }

    #[test]
    #[should_panic]
    fn out_of_range_page_panics() {
        let mut d = DiskManager::new(128);
        let f = d.create_file();
        let mut buf = vec![0u8; 128];
        d.read_page(f, 3, &mut buf);
    }
}
