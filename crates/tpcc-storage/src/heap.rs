//! Heap files: unordered record storage over slotted pages.
//!
//! Inserts fill the most recent page and, via a free-space map, pages
//! that deletes have opened up — so a steady-state insert/delete
//! workload (TPC-C's New-Order relation) keeps a bounded file instead
//! of leaking one page per churn cycle. A delete that drains a page's
//! last live record hands the whole page back to the buffer manager's
//! free list (instead of parking it in the free-space map forever), so
//! the file's live footprint shrinks too. Reads, updates and deletes
//! address records by [`RecordId`].
//!
//! The free-space map is an in-memory side structure (a real engine
//! would persist an FSM fork alongside the file); it is conservative —
//! a page listed there may turn out full, in which case the insert
//! falls through to allocation.
//!
//! # Concurrency
//!
//! All operations take `&self`. Record-level integrity comes from the
//! buffer manager's per-page latches (each operation holds exactly one
//! page latch, so heap accesses can never form a latch cycle). The side
//! structures are latched independently: the free-space map behind a
//! mutex held only around map reads/updates (taken *after* a page
//! latch on the delete path, which is safe because no free-map holder
//! ever blocks on a page latch), an **atomic append cursor** tracking the newest page so
//! concurrent inserts race to distinct pages instead of queueing on a
//! table lock, and a grow mutex so only one thread extends the file at
//! a time while late arrivals retry the page it just added.

use crate::bufmgr::BufferManager;
use crate::disk::FileId;
use crate::page::SlottedPage;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

/// Physical record address: page number and slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId {
    /// Page within the heap file.
    pub page: u32,
    /// Slot within the page.
    pub slot: u16,
}

impl RecordId {
    /// Packs into a `u64` (for storage as a B+Tree value).
    #[must_use]
    pub fn to_u64(self) -> u64 {
        (u64::from(self.page) << 16) | u64::from(self.slot)
    }

    /// Unpacks from [`RecordId::to_u64`].
    #[must_use]
    pub fn from_u64(v: u64) -> Self {
        Self {
            page: (v >> 16) as u32,
            slot: (v & 0xFFFF) as u16,
        }
    }
}

/// How many free-map candidates one insert probes before giving up and
/// appending (bounds the worst-case insert cost).
const FSM_PROBES: usize = 4;

/// A heap file with a free-space map.
#[derive(Debug)]
pub struct HeapFile {
    file: FileId,
    /// Pages believed to have room (conservative).
    free: Mutex<BTreeSet<u32>>,
    /// The newest page — the append target. Kept out of the disk mutex
    /// so the hot insert path reads one atomic instead of locking the
    /// disk for a page count.
    last_page: AtomicU32,
    /// Serializes file growth; a thread that lost the race re-probes
    /// the winner's fresh page before allocating another.
    grow: Mutex<()>,
}

impl HeapFile {
    /// Creates a new heap file with one empty page.
    pub fn create(bm: &BufferManager) -> Self {
        let file = bm.create_file();
        let (page, ()) = bm.allocate_page(file, |data| {
            SlottedPage::init(data);
        });
        Self {
            file,
            free: Mutex::new(BTreeSet::new()),
            last_page: AtomicU32::new(page),
            grow: Mutex::new(()),
        }
    }

    /// The underlying file id (for buffer statistics).
    #[must_use]
    pub fn file(&self) -> FileId {
        self.file
    }

    /// Inserts a record, preferring pages the free-space map knows have
    /// room, then the newest page, then a fresh allocation.
    pub fn insert(&self, bm: &BufferManager, record: &[u8]) -> RecordId {
        // 1. free-map candidates (deletes happened there)
        let candidates: Vec<u32> = {
            let free = self.free.lock().expect("free map");
            free.iter().take(FSM_PROBES).copied().collect()
        };
        for page in candidates {
            if let Some(slot) = self.try_insert(bm, page, record) {
                return RecordId { page, slot };
            }
            // candidate turned out too full for this record
            self.free.lock().expect("free map").remove(&page);
        }
        // 2. the append page
        let last = self.last_page.load(Ordering::Acquire);
        if let Some(slot) = self.try_insert(bm, last, record) {
            return RecordId { page: last, slot };
        }
        // 3. grow the file — one thread at a time; losers of the race
        // retry the page the winner just added before growing again
        let _grow = self.grow.lock().expect("grow latch");
        let current = self.last_page.load(Ordering::Acquire);
        if current != last {
            if let Some(slot) = self.try_insert(bm, current, record) {
                return RecordId {
                    page: current,
                    slot,
                };
            }
        }
        let (page, slot) = bm.allocate_page(self.file, |data| {
            SlottedPage::init(data)
                .insert(record)
                .expect("record fits an empty page")
        });
        self.last_page.store(page, Ordering::Release);
        RecordId { page, slot }
    }

    fn try_insert(&self, bm: &BufferManager, page: u32, record: &[u8]) -> Option<u16> {
        bm.with_page_mut(self.file, page, |data| {
            // a stale free-map candidate may have been deallocated (and
            // zeroed) out from under us — never insert into one
            if !SlottedPage::is_formatted(data) {
                return None;
            }
            SlottedPage::attach(data).insert(record)
        })
    }

    /// Reads a record into an owned buffer; `None` for a dead record.
    pub fn get(&self, bm: &BufferManager, rid: RecordId) -> Option<Vec<u8>> {
        bm.with_page(self.file, rid.page, |data| {
            read_slot(data, rid.slot).map(<[u8]>::to_vec)
        })
    }

    /// Reads a record and passes it to `f` without copying the page.
    pub fn read_with<R>(
        &self,
        bm: &BufferManager,
        rid: RecordId,
        f: impl FnOnce(Option<&[u8]>) -> R,
    ) -> R {
        bm.with_page(self.file, rid.page, |data| f(read_slot(data, rid.slot)))
    }

    /// Updates a record in place (same length); `false` if dead.
    pub fn update(&self, bm: &BufferManager, rid: RecordId, record: &[u8]) -> bool {
        bm.with_page_mut(self.file, rid.page, |data| {
            SlottedPage::attach(data).update(rid.slot, record)
        })
    }

    /// Deletes a record; `false` if already dead.
    ///
    /// A page still holding live records is remembered in the
    /// free-space map for reuse; a page drained of its *last* live
    /// record is deallocated outright through
    /// [`BufferManager::free_fixed`] (unless it is the current append
    /// target), so drained pages return to the file's free list
    /// instead of idling half-claimed in the map forever.
    pub fn delete(&self, bm: &BufferManager, rid: RecordId) -> bool {
        let mut guard = bm.fix_exclusive(self.file, rid.page);
        let (deleted, emptied) = {
            let mut page = SlottedPage::attach(&mut guard);
            let deleted = page.delete(rid.slot);
            (deleted, deleted && page.live_records() == 0)
        };
        if !deleted {
            return false;
        }
        if emptied && rid.page != self.last_page.load(Ordering::Acquire) {
            // unlist before the page vanishes so a concurrent insert
            // cannot re-probe it (and the formatted-page check catches
            // any candidate captured before this line)
            self.free.lock().expect("free map").remove(&rid.page);
            bm.free_fixed(guard);
        } else {
            drop(guard);
            self.free.lock().expect("free map").insert(rid.page);
        }
        true
    }

    /// Number of pages in the file's extent (high-water mark).
    #[must_use]
    pub fn pages(&self, bm: &BufferManager) -> u32 {
        bm.file_pages(self.file)
    }

    /// Live pages of the file (extent minus pages freed by drain
    /// deletes) — the footprint the soak tests assert on.
    #[must_use]
    pub fn allocated_pages(&self, bm: &BufferManager) -> u32 {
        bm.allocated_pages(self.file)
    }

    /// Pages currently tracked as having free space.
    #[must_use]
    pub fn free_map_len(&self) -> usize {
        self.free.lock().expect("free map").len()
    }
}

/// Reads one slot from an immutable page image.
fn read_slot(data: &[u8], slot: u16) -> Option<&[u8]> {
    let n = u16::from_le_bytes([data[0], data[1]]) as usize;
    let i = slot as usize;
    if i >= n {
        return None;
    }
    let base = 6 + i * 4;
    let off = u16::from_le_bytes([data[base], data[base + 1]]);
    let len = u16::from_le_bytes([data[base + 2], data[base + 3]]);
    if off == u16::MAX {
        return None;
    }
    Some(&data[off as usize..off as usize + len as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bufmgr::Replacement;
    use crate::disk::DiskManager;

    fn setup() -> (BufferManager, HeapFile) {
        let disk = DiskManager::new(256);
        let bm = BufferManager::new(disk, 8, Replacement::Lru);
        let heap = HeapFile::create(&bm);
        (bm, heap)
    }

    #[test]
    fn record_id_round_trips() {
        let rid = RecordId {
            page: 123_456,
            slot: 789,
        };
        assert_eq!(RecordId::from_u64(rid.to_u64()), rid);
    }

    #[test]
    fn insert_spills_to_new_pages() {
        let (bm, heap) = setup();
        let rids: Vec<RecordId> = (0..40u8).map(|i| heap.insert(&bm, &[i; 30])).collect();
        assert!(heap.pages(&bm) > 1, "records spill past one 256B page");
        for (i, rid) in rids.iter().enumerate() {
            let rec = heap.get(&bm, *rid).expect("live");
            assert_eq!(rec, vec![i as u8; 30]);
        }
    }

    #[test]
    fn update_and_delete() {
        let (bm, heap) = setup();
        let rid = heap.insert(&bm, &[1u8; 16]);
        assert!(heap.update(&bm, rid, &[2u8; 16]));
        assert_eq!(heap.get(&bm, rid).expect("live"), vec![2u8; 16]);
        assert!(heap.delete(&bm, rid));
        assert!(heap.get(&bm, rid).is_none());
        assert!(!heap.update(&bm, rid, &[3u8; 16]));
    }

    #[test]
    fn read_with_avoids_copy_semantics() {
        let (bm, heap) = setup();
        let rid = heap.insert(&bm, b"zero-copy read");
        let len = heap.read_with(&bm, rid, |r| r.map(<[u8]>::len));
        assert_eq!(len, Some(14));
        let dead = RecordId { page: 0, slot: 99 };
        assert!(heap.read_with(&bm, dead, |r| r.is_none()));
    }

    #[test]
    fn records_survive_buffer_pressure() {
        let disk = DiskManager::new(256);
        let bm = BufferManager::new(disk, 2, Replacement::Lru);
        let heap = HeapFile::create(&bm);
        let rids: Vec<RecordId> = (0..60u8).map(|i| heap.insert(&bm, &[i; 30])).collect();
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(
                heap.get(&bm, *rid).expect("live"),
                vec![i as u8; 30],
                "record {i} lost under eviction"
            );
        }
    }

    #[test]
    fn deleted_space_is_reused() {
        let (bm, heap) = setup();
        // fill a few pages
        let rids: Vec<RecordId> = (0..30u8).map(|i| heap.insert(&bm, &[i; 30])).collect();
        let pages_before = heap.pages(&bm);
        // delete everything, then insert the same volume again
        for rid in rids {
            assert!(heap.delete(&bm, rid));
        }
        assert!(heap.free_map_len() > 0);
        for i in 0..30u8 {
            heap.insert(&bm, &[i; 30]);
        }
        assert_eq!(
            heap.pages(&bm),
            pages_before,
            "reinserting into freed space must not grow the file"
        );
    }

    #[test]
    fn fifo_churn_keeps_file_bounded() {
        // the New-Order pattern: insert at the tail, delete the oldest
        let (bm, heap) = setup();
        let mut queue = std::collections::VecDeque::new();
        for i in 0..2000u32 {
            queue.push_back(heap.insert(&bm, &(i.to_le_bytes().repeat(5))));
            if queue.len() > 20 {
                let old = queue.pop_front().expect("nonempty");
                assert!(heap.delete(&bm, old));
            }
        }
        // 20 live × 20 bytes fits in a handful of 256-byte pages; without
        // the free-space map this would be ~200 pages
        assert!(
            heap.pages(&bm) < 20,
            "file leaked to {} pages under churn",
            heap.pages(&bm)
        );
        // all queued records still readable
        for rid in queue {
            assert!(heap.get(&bm, rid).is_some());
        }
    }

    #[test]
    fn drained_pages_are_deallocated_and_reused() {
        let (bm, heap) = setup();
        let rids: Vec<RecordId> = (0..30u8).map(|i| heap.insert(&bm, &[i; 30])).collect();
        let extent = heap.pages(&bm);
        assert!(extent > 2);
        for rid in rids {
            assert!(heap.delete(&bm, rid));
        }
        // every page except the append target was drained and freed
        assert!(
            heap.allocated_pages(&bm) <= 2,
            "drained pages still allocated: {}",
            heap.allocated_pages(&bm)
        );
        assert!(bm.pages_freed() > 0);
        // reinsertion reuses the freed pages without growing the extent
        for i in 0..30u8 {
            let rid = heap.insert(&bm, &[i; 30]);
            assert_eq!(heap.get(&bm, rid).expect("live"), vec![i; 30]);
        }
        assert_eq!(heap.pages(&bm), extent, "extent unchanged by the cycle");
    }

    #[test]
    fn fifo_churn_keeps_live_footprint_flat() {
        // the Delivery pattern with footprint accounting: live pages
        // must plateau, not just the extent
        let (bm, heap) = setup();
        let mut queue = std::collections::VecDeque::new();
        let mut plateau = Vec::new();
        for i in 0..3000u32 {
            queue.push_back(heap.insert(&bm, &(i.to_le_bytes().repeat(5))));
            if queue.len() > 20 {
                let old = queue.pop_front().expect("nonempty");
                assert!(heap.delete(&bm, old));
            }
            if i >= 1000 && i % 200 == 0 {
                plateau.push(heap.allocated_pages(&bm));
            }
        }
        let (lo, hi) = (
            *plateau.iter().min().expect("samples"),
            *plateau.iter().max().expect("samples"),
        );
        assert!(hi - lo <= 1, "live pages must be flat: {plateau:?}");
        for rid in queue {
            assert!(heap.get(&bm, rid).is_some());
        }
    }

    #[test]
    fn full_free_candidates_are_pruned() {
        let (bm, heap) = setup();
        let rid = heap.insert(&bm, &[1u8; 8]);
        heap.delete(&bm, rid);
        assert_eq!(heap.free_map_len(), 1);
        // an oversized record cannot reuse the freed slot's page if the
        // page lacks room; map self-heals by pruning the candidate
        for i in 0..40u8 {
            heap.insert(&bm, &[i; 60]);
        }
        // no stale full pages accumulate beyond the probe window
        assert!(heap.free_map_len() <= FSM_PROBES + 1);
    }

    #[test]
    fn concurrent_inserts_land_without_loss() {
        let disk = DiskManager::new(256);
        let bm = BufferManager::new_sharded(disk, 64, Replacement::Lru, 8);
        let heap = HeapFile::create(&bm);
        let rids: Vec<Vec<RecordId>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4u8)
                .map(|t| {
                    let (heap, bm) = (&heap, &bm);
                    scope.spawn(move || {
                        (0..200u8)
                            .map(|i| heap.insert(bm, &[t.wrapping_mul(200).wrapping_add(i); 24]))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // every record readable, all rids distinct
        let mut all: Vec<RecordId> = rids.iter().flatten().copied().collect();
        all.sort_unstable();
        let before = all.len();
        all.dedup();
        assert_eq!(all.len(), before, "two inserts returned the same rid");
        for (t, per_thread) in rids.iter().enumerate() {
            for (i, rid) in per_thread.iter().enumerate() {
                let expect = (t as u8).wrapping_mul(200).wrapping_add(i as u8);
                assert_eq!(heap.get(&bm, *rid).expect("live"), vec![expect; 24]);
            }
        }
    }
}
