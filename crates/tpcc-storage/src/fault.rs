//! Deterministic fault injection: every durability-relevant action in
//! the storage engine is a numbered **fault site**, and a seeded
//! [`FaultPlan`] can trip a simulated crash or a soft I/O fault at any
//! of them.
//!
//! # Site taxonomy
//!
//! | site | fires at | crash consequence |
//! |------|----------|-------------------|
//! | [`FaultSite::WalAppend`] | top of [`Wal::append`], before the record lands | the in-flight record is lost |
//! | [`FaultSite::PageFree`]  | [`DiskManager::free_page`] on the live disk | the following `FreePage` record is lost |
//! | [`FaultSite::WriteBack`] | each dirty-page write-back (eviction or flush) | the log freezes mid-flush |
//! | [`FaultSite::MissLoad`]  | each buffer-pool miss, before the disk read | the log freezes mid-read |
//! | [`FaultSite::WalFlush`]  | top of [`Wal::flush`], before the device write | the whole unflushed tail is lost |
//! | [`FaultSite::UndoAppend`] | [`UndoStore::record`], before the pre-image lands | none durable — undo chains are volatile; the site sweeps the instants *between* a writer's page mutations |
//! | [`FaultSite::TwoPcPrepare`] | a 2PC `Prepare` record is about to land ([`Wal::append`]) | the participant never prepared — presumed abort |
//! | [`FaultSite::TwoPcDecide`]  | a 2PC `Decide` record is about to land ([`Wal::append`]) | the decision is lost; a durable `Prepare` with no decision is **in doubt** until recovery asks the coordinator |
//! | [`FaultSite::CdcCheckpoint`] | a CDC subscriber is about to persist its cursor checkpoint | the checkpoint is lost; the view must rebuild from the previous surviving checkpoint + WAL replay |
//!
//! [`UndoStore::record`]: crate::undo::UndoStore::record
//!
//! # Crash model
//!
//! Recovery in this engine is redo-only over a checkpoint snapshot: it
//! replays the committed prefix of the WAL and **never reads the
//! crashed disk image**. The only durable state a crash can influence
//! is therefore *how much of the WAL survived*. Tripping a crash does
//! not unwind the process (that would poison every mutex in the pool);
//! instead the hook latches a `crashed` flag and [`Wal::append`]
//! silently drops every later record — the durable log is frozen at
//! the crash instant while the in-memory run continues harmlessly.
//! `take_wal` afterwards yields exactly the log a real crash at that
//! site would have left behind.
//!
//! # Determinism
//!
//! Sites fire in execution order and receive consecutive global
//! sequence numbers from one atomic counter; on a serial workload the
//! numbering is identical run to run, so `FaultPlan::crash_at(seed, k)`
//! reproduces the *k*-th site of a recording run exactly. Soft faults
//! are keyed off the per-site ordinal and a `splitmix64` of the plan
//! seed — no wall clock, no OS randomness.
//!
//! With no hook installed every site is a single `Option` check —
//! measured at well under 1% of workload throughput (see
//! `EXPERIMENTS.md`).
//!
//! [`Wal::append`]: crate::wal::Wal::append
//! [`DiskManager::free_page`]: crate::disk::DiskManager::free_page

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// One class of fault site (see the module-level taxonomy table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A WAL record is about to be appended.
    WalAppend,
    /// A page is about to be returned to its file's free set.
    PageFree,
    /// A dirty page is about to be written back to the device.
    WriteBack,
    /// A buffer-pool miss is about to read a page from the device.
    MissLoad,
    /// A group-commit flush is about to push the WAL tail to the log
    /// device ([`Wal::flush`]). Only fires under deferred durability.
    WalFlush,
    /// A writer is about to stamp a pre-image into the MVCC undo store
    /// ([`crate::undo::UndoStore::record`]) — one site per versioned
    /// write, firing between a transaction's page mutations. Undo
    /// chains are volatile, so a crash here loses no durable state;
    /// the site exists to *enumerate* mid-transaction crash instants
    /// on the MVCC write path.
    UndoAppend,
    /// A two-phase-commit `Prepare` record is about to be appended to
    /// a participant's WAL. A crash here means the participant never
    /// prepared: presumed abort, the coordinator aborts the global
    /// transaction.
    TwoPcPrepare,
    /// A two-phase-commit `Decide` record is about to be appended
    /// (coordinator decision or participant acknowledgement). A crash
    /// here leaves any durable `Prepare` without a decision — the
    /// in-doubt window recovery must resolve through the coordinator.
    TwoPcDecide,
    /// A CDC subscriber is about to persist a cursor checkpoint
    /// ([`crate::cdc::CdcSubscriber::checkpoint`]). Checkpoints carry
    /// no base-table state, so a crash here loses nothing durable —
    /// the derived view simply rebuilds from the previous surviving
    /// checkpoint plus WAL replay, which the crashpoint sweep proves.
    CdcCheckpoint,
}

/// Number of distinct fault-site classes ([`FaultSite::ALL`] length).
pub const FAULT_SITES: usize = 9;

impl FaultSite {
    /// Every site class, in display order.
    pub const ALL: [FaultSite; FAULT_SITES] = [
        FaultSite::WalAppend,
        FaultSite::PageFree,
        FaultSite::WriteBack,
        FaultSite::MissLoad,
        FaultSite::WalFlush,
        FaultSite::UndoAppend,
        FaultSite::TwoPcPrepare,
        FaultSite::TwoPcDecide,
        FaultSite::CdcCheckpoint,
    ];

    /// Dense index (for per-site counter arrays).
    #[must_use]
    pub fn idx(self) -> usize {
        match self {
            FaultSite::WalAppend => 0,
            FaultSite::PageFree => 1,
            FaultSite::WriteBack => 2,
            FaultSite::MissLoad => 3,
            FaultSite::WalFlush => 4,
            FaultSite::UndoAppend => 5,
            FaultSite::TwoPcPrepare => 6,
            FaultSite::TwoPcDecide => 7,
            FaultSite::CdcCheckpoint => 8,
        }
    }

    /// Stable lower-snake name (for JSON output).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::WalAppend => "wal_append",
            FaultSite::PageFree => "page_free",
            FaultSite::WriteBack => "write_back",
            FaultSite::MissLoad => "miss_load",
            FaultSite::WalFlush => "wal_flush",
            FaultSite::UndoAppend => "undo_append",
            FaultSite::TwoPcPrepare => "twopc_prepare",
            FaultSite::TwoPcDecide => "twopc_decide",
            FaultSite::CdcCheckpoint => "cdc_checkpoint",
        }
    }
}

/// A soft (recoverable) write-back fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SoftFault {
    /// The write failed transiently; nothing reached the device.
    IoError,
    /// The write tore: only the first `valid` bytes (a multiple of 64)
    /// reached the device.
    Torn {
        /// Bytes that made it to the device before the tear.
        valid: usize,
    },
}

/// What a seeded run should inject. Install with
/// `BufferManager::install_fault_hook` (or `TpccDb::install_fault_plan`
/// one layer up).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for every pseudo-random choice the plan makes.
    pub seed: u64,
    /// Trip a simulated crash when the global site counter reaches this
    /// value (`None` = never).
    pub crash_at: Option<u64>,
    /// Fail every n-th write-back transiently (0 = never). The failure
    /// clears within [`FaultPlan::max_retries`] attempts.
    pub io_error_every: u64,
    /// Tear every n-th write-back at a 64-byte boundary (0 = never);
    /// successive tears march through every boundary of the page.
    pub torn_write_every: u64,
    /// Upper bound on retries a transient fault may consume before the
    /// write succeeds.
    pub max_retries: u32,
    /// Record every site firing (sequence, class, durable WAL length) —
    /// the enumeration pass of the crash-point sweep.
    pub record_sites: bool,
}

impl FaultPlan {
    /// Pure enumeration: no faults, every site recorded.
    #[must_use]
    pub fn observe(seed: u64) -> Self {
        Self {
            seed,
            crash_at: None,
            io_error_every: 0,
            torn_write_every: 0,
            max_retries: 4,
            record_sites: true,
        }
    }

    /// Simulated crash at global site `seq` (numbering from a prior
    /// [`FaultPlan::observe`] run of the same workload).
    #[must_use]
    pub fn crash_at(seed: u64, seq: u64) -> Self {
        Self {
            seed,
            crash_at: Some(seq),
            io_error_every: 0,
            torn_write_every: 0,
            max_retries: 4,
            record_sites: false,
        }
    }

    /// Soft faults only: transient I/O errors every `io_error_every`-th
    /// write-back and torn writes every `torn_write_every`-th (0
    /// disables either).
    #[must_use]
    pub fn soft(seed: u64, io_error_every: u64, torn_write_every: u64) -> Self {
        Self {
            seed,
            crash_at: None,
            io_error_every,
            torn_write_every,
            max_retries: 4,
            record_sites: false,
        }
    }
}

/// One site firing observed by a recording run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteRecord {
    /// Global site sequence number (0-based, execution order).
    pub seq: u64,
    /// Site class.
    pub site: FaultSite,
    /// Durable WAL length (entries) at the instant the site fired — the
    /// log a crash tripped here would leave behind.
    pub wal_len: usize,
}

/// Result of consulting the hook at one site.
#[derive(Debug, Clone, Copy)]
pub struct SiteOutcome {
    /// True when the run is (now) crashed: the caller's durable effect
    /// must not happen.
    pub crash: bool,
    /// Global sequence number assigned to this firing (`u64::MAX` when
    /// the run had already crashed and the site was not numbered).
    pub seq: u64,
    /// Per-class ordinal of this firing (`u64::MAX` after a crash).
    pub nth: u64,
}

/// Counter snapshot of everything a hook observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Firings per site class, indexed by [`FaultSite::idx`].
    pub fired: [u64; FAULT_SITES],
    /// Global sequence number the crash tripped at, if one did.
    pub crashed_at: Option<u64>,
    /// Transient write-back failures injected.
    pub io_errors: u64,
    /// Torn write-backs injected.
    pub torn_writes: u64,
    /// Retry attempts the buffer manager spent clearing soft faults.
    pub retries: u64,
}

impl FaultStats {
    /// Total site firings across all classes.
    #[must_use]
    pub fn sites_total(&self) -> u64 {
        self.fired.iter().sum()
    }
}

const NO_CRASH: u64 = u64::MAX;

/// The shared injection state threaded through `DiskManager`,
/// `BufferManager` and `Wal` (one `Arc<FaultHook>` per database).
#[derive(Debug)]
pub struct FaultHook {
    plan: FaultPlan,
    seq: AtomicU64,
    fired: [AtomicU64; FAULT_SITES],
    crashed: AtomicBool,
    crashed_at: AtomicU64,
    /// Durable WAL length — maintained by `Wal::append` (synchronous
    /// durability) or `Wal::flush` (deferred durability) so non-WAL
    /// sites can capture it without touching the WAL mutex (which would
    /// invert the wal → disk lock order).
    wal_len: AtomicU64,
    io_errors: AtomicU64,
    torn_writes: AtomicU64,
    retries: AtomicU64,
    records: Mutex<Vec<SiteRecord>>,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FaultHook {
    /// A hook executing `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            seq: AtomicU64::new(0),
            fired: std::array::from_fn(|_| AtomicU64::new(0)),
            crashed: AtomicBool::new(false),
            crashed_at: AtomicU64::new(NO_CRASH),
            wal_len: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
            torn_writes: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            records: Mutex::new(Vec::new()),
        }
    }

    /// The plan this hook executes.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Fires one site: numbers it, counts it, records it when the plan
    /// asks, and trips the crash when the plan says so. Storage-layer
    /// call sites consult the returned [`SiteOutcome::crash`] to decide
    /// whether their durable effect may proceed.
    pub fn fire(&self, site: FaultSite) -> SiteOutcome {
        if self.crashed.load(Ordering::Acquire) {
            return SiteOutcome {
                crash: true,
                seq: u64::MAX,
                nth: u64::MAX,
            };
        }
        let seq = self.seq.fetch_add(1, Ordering::AcqRel);
        let nth = self.fired[site.idx()].fetch_add(1, Ordering::AcqRel);
        if self.plan.record_sites {
            let wal_len = self.wal_len.load(Ordering::Acquire) as usize;
            self.records
                .lock()
                .expect("fault records")
                .push(SiteRecord { seq, site, wal_len });
        }
        let crash = self.plan.crash_at == Some(seq);
        if crash {
            self.crashed_at.store(seq, Ordering::Release);
            self.crashed.store(true, Ordering::Release);
        }
        SiteOutcome { crash, seq, nth }
    }

    /// True once a crash has tripped (the durable log is frozen).
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::Acquire)
    }

    /// Called by `Wal::append` after a record durably lands
    /// (synchronous durability only).
    pub(crate) fn note_durable_append(&self) {
        self.wal_len.fetch_add(1, Ordering::AcqRel);
    }

    /// Called by `Wal::flush` after a flush advances the durable
    /// watermark (deferred durability): the durable length jumps to the
    /// flushed prefix in one step.
    pub(crate) fn note_durable_flush(&self, len: usize) {
        self.wal_len.store(len as u64, Ordering::Release);
    }

    /// Called by the buffer manager for each retry a soft fault costs.
    pub(crate) fn note_retry(&self) {
        self.retries.fetch_add(1, Ordering::AcqRel);
    }

    /// Retry bound the buffer manager must respect.
    #[must_use]
    pub fn max_retries(&self) -> u32 {
        self.plan.max_retries
    }

    /// Decides whether write-back number `nth` (per-class ordinal from
    /// [`FaultHook::fire`]) fails on `attempt` (0-based). Deterministic
    /// in `(seed, nth, attempt)`; always returns `None` within
    /// [`FaultPlan::max_retries`]` + 1` attempts, so a bounded retry
    /// loop always converges.
    #[must_use]
    pub fn writeback_fault(&self, nth: u64, attempt: u32, page_size: usize) -> Option<SoftFault> {
        let p = &self.plan;
        let torn_now = p.torn_write_every != 0 && nth.is_multiple_of(p.torn_write_every);
        if attempt == 0 && torn_now {
            self.torn_writes.fetch_add(1, Ordering::AcqRel);
            let boundaries = (page_size / 64).max(1) as u64;
            // march through every 64-byte boundary of the page, phase
            // shifted by the seed, so a long run tears at all of them
            let k = (splitmix64(p.seed) + nth / p.torn_write_every) % boundaries;
            return Some(SoftFault::Torn {
                valid: (k * 64) as usize,
            });
        }
        if p.io_error_every != 0 && nth.is_multiple_of(p.io_error_every) {
            // fail for a seeded number of attempts in 1..=max_retries
            // (after any tear), then let the write through
            let span = u64::from(p.max_retries.max(1));
            let fails = 1 + (splitmix64(p.seed ^ nth.rotate_left(17)) % span) as u32;
            if attempt < fails + u32::from(torn_now) {
                self.io_errors.fetch_add(1, Ordering::AcqRel);
                return Some(SoftFault::IoError);
            }
        }
        None
    }

    /// Drains the recorded site firings (enumeration pass).
    #[must_use]
    pub fn take_records(&self) -> Vec<SiteRecord> {
        std::mem::take(&mut *self.records.lock().expect("fault records"))
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        let crashed_at = self.crashed_at.load(Ordering::Acquire);
        FaultStats {
            fired: std::array::from_fn(|i| self.fired[i].load(Ordering::Acquire)),
            crashed_at: (crashed_at != NO_CRASH).then_some(crashed_at),
            io_errors: self.io_errors.load(Ordering::Acquire),
            torn_writes: self.torn_writes.load(Ordering::Acquire),
            retries: self.retries.load(Ordering::Acquire),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sites_number_in_execution_order_and_record() {
        let h = FaultHook::new(FaultPlan::observe(7));
        let a = h.fire(FaultSite::WalAppend);
        let b = h.fire(FaultSite::MissLoad);
        let c = h.fire(FaultSite::WalAppend);
        assert_eq!((a.seq, b.seq, c.seq), (0, 1, 2));
        assert_eq!((a.nth, c.nth), (0, 1), "per-class ordinals are dense");
        assert!(!a.crash && !b.crash && !c.crash);
        let recs = h.take_records();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[1].site, FaultSite::MissLoad);
        assert_eq!(h.stats().sites_total(), 3);
    }

    #[test]
    fn crash_trips_exactly_once_and_latches() {
        let h = FaultHook::new(FaultPlan::crash_at(7, 1));
        assert!(!h.fire(FaultSite::WalAppend).crash);
        let o = h.fire(FaultSite::WriteBack);
        assert!(o.crash, "site 1 trips the crash");
        assert!(h.crashed());
        let later = h.fire(FaultSite::WalAppend);
        assert!(later.crash, "every later site sees the crashed state");
        assert_eq!(later.seq, u64::MAX, "post-crash sites are not numbered");
        assert_eq!(h.stats().crashed_at, Some(1));
        assert_eq!(h.stats().sites_total(), 2);
    }

    #[test]
    fn writeback_faults_are_deterministic_and_bounded() {
        let plan = FaultPlan::soft(42, 3, 5);
        let h = FaultHook::new(plan);
        let g = FaultHook::new(plan);
        for nth in 0..40u64 {
            let mut attempts = 0u32;
            loop {
                let a = h.writeback_fault(nth, attempts, 256);
                let b = g.writeback_fault(nth, attempts, 256);
                assert_eq!(a, b, "same plan, same decisions");
                if a.is_none() {
                    break;
                }
                if let Some(SoftFault::Torn { valid }) = a {
                    assert_eq!(valid % 64, 0, "tears land on 64-byte boundaries");
                    assert!(valid < 256);
                }
                attempts += 1;
                assert!(attempts <= plan.max_retries + 1, "faults must clear");
            }
        }
        assert!(h.stats().io_errors > 0);
        assert!(h.stats().torn_writes > 0);
    }

    #[test]
    fn torn_writes_march_through_every_boundary() {
        let h = FaultHook::new(FaultPlan::soft(9, 0, 1));
        let mut seen = std::collections::BTreeSet::new();
        for nth in 0..8u64 {
            match h.writeback_fault(nth, 0, 256) {
                Some(SoftFault::Torn { valid }) => {
                    seen.insert(valid);
                }
                other => panic!("every write tears under torn_write_every=1, got {other:?}"),
            }
        }
        assert_eq!(
            seen.into_iter().collect::<Vec<_>>(),
            vec![0, 64, 128, 192],
            "all four boundaries of a 256-byte page get exercised"
        );
    }
}
