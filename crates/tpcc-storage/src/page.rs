//! Slotted-page layout for variable-length records.
//!
//! ```text
//! +-------------------+----------------------+------------------+
//! | header (6 bytes)  | slot directory ----> |  <---- records   |
//! +-------------------+----------------------+------------------+
//! header: [n_slots: u16][free_end: u16][record_bytes: u16]
//! slot:   [offset: u16][len: u16]   (offset == 0xFFFF => dead)
//! ```
//!
//! Records grow from the page end towards the directory; deletes mark
//! the slot dead and [`SlottedPage::compact`] reclaims the space.
//! All operations work in place on a borrowed byte slice, so the buffer
//! manager's frames can be manipulated without copies.

const HEADER: usize = 6;
const SLOT: usize = 4;
const DEAD: u16 = u16::MAX;

/// A view over one page's bytes, interpreted as a slotted page.
#[derive(Debug)]
pub struct SlottedPage<'a> {
    data: &'a mut [u8],
}

impl<'a> SlottedPage<'a> {
    /// Formats `data` as an empty slotted page and returns the view.
    ///
    /// # Panics
    /// Panics if the page is smaller than 64 bytes or larger than 64 KiB
    /// (offsets are 16-bit).
    pub fn init(data: &'a mut [u8]) -> Self {
        assert!(data.len() >= 64, "page too small");
        assert!(
            data.len() <= u16::MAX as usize + 1,
            "page too large for u16 offsets"
        );
        let len = data.len() as u16;
        data[0..2].copy_from_slice(&0u16.to_le_bytes());
        data[2..4].copy_from_slice(&len.to_le_bytes());
        data[4..6].copy_from_slice(&0u16.to_le_bytes());
        Self { data }
    }

    /// Wraps bytes already formatted by [`SlottedPage::init`].
    pub fn attach(data: &'a mut [u8]) -> Self {
        Self { data }
    }

    /// True when `data` carries a formatted slotted page. A deallocated
    /// page is all zeros, and a `free_end` of 0 can never occur on a
    /// formatted page ([`SlottedPage::init`] sets it to the page
    /// length, and records only ever move it down to the directory
    /// end, which is ≥ the 6-byte header). Guards insert paths against
    /// racing onto a page that was freed out from under a stale
    /// free-space-map candidate: without this check, `insert` would
    /// happily treat the zero header as "0 slots" and resurrect the
    /// dead page.
    #[must_use]
    pub fn is_formatted(data: &[u8]) -> bool {
        u16::from_le_bytes([data[2], data[3]]) != 0
    }

    fn n_slots(&self) -> usize {
        u16::from_le_bytes([self.data[0], self.data[1]]) as usize
    }

    fn free_end(&self) -> usize {
        u16::from_le_bytes([self.data[2], self.data[3]]) as usize
    }

    fn record_bytes(&self) -> usize {
        u16::from_le_bytes([self.data[4], self.data[5]]) as usize
    }

    fn set_n_slots(&mut self, n: usize) {
        self.data[0..2].copy_from_slice(&(n as u16).to_le_bytes());
    }

    fn set_free_end(&mut self, v: usize) {
        self.data[2..4].copy_from_slice(&(v as u16).to_le_bytes());
    }

    fn set_record_bytes(&mut self, v: usize) {
        self.data[4..6].copy_from_slice(&(v as u16).to_le_bytes());
    }

    fn slot(&self, i: usize) -> (u16, u16) {
        let base = HEADER + i * SLOT;
        (
            u16::from_le_bytes([self.data[base], self.data[base + 1]]),
            u16::from_le_bytes([self.data[base + 2], self.data[base + 3]]),
        )
    }

    fn set_slot(&mut self, i: usize, offset: u16, len: u16) {
        let base = HEADER + i * SLOT;
        self.data[base..base + 2].copy_from_slice(&offset.to_le_bytes());
        self.data[base + 2..base + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Number of live records.
    #[must_use]
    pub fn live_records(&self) -> usize {
        (0..self.n_slots())
            .filter(|&i| self.slot(i).0 != DEAD)
            .count()
    }

    /// Contiguous free bytes available for one more record (including
    /// its slot entry).
    #[must_use]
    pub fn free_space(&self) -> usize {
        let dir_end = HEADER + self.n_slots() * SLOT;
        self.free_end().saturating_sub(dir_end)
    }

    /// The first dead (reusable) slot, if any.
    fn dead_slot(&self) -> Option<usize> {
        (0..self.n_slots()).find(|&i| self.slot(i).0 == DEAD)
    }

    /// True if a record of `len` bytes fits (possibly after compaction
    /// and/or by recycling a dead slot's directory entry).
    #[must_use]
    pub fn fits(&self, len: usize) -> bool {
        // space if we compacted: everything except live records + dirs;
        // a dead slot means the directory does not need to grow
        let new_dir_entries = usize::from(self.dead_slot().is_none());
        let dir = HEADER + (self.n_slots() + new_dir_entries) * SLOT;
        let live: usize = (0..self.n_slots())
            .filter_map(|i| {
                let (off, l) = self.slot(i);
                (off != DEAD).then_some(l as usize)
            })
            .sum();
        self.data.len() >= dir + live + len
    }

    /// Inserts a record, recycling a dead slot when one exists and
    /// compacting first if fragmentation requires it; returns the slot
    /// id, or `None` if it cannot fit.
    ///
    /// Slot ids of deleted records may be reused — stale [`RecordId`]s
    /// must not be dereferenced after a delete, as in any slotted-page
    /// heap.
    ///
    /// [`RecordId`]: crate::heap::RecordId
    ///
    /// # Panics
    /// Panics on empty records or records that could never fit a page.
    pub fn insert(&mut self, record: &[u8]) -> Option<u16> {
        assert!(!record.is_empty(), "empty records are not supported");
        assert!(
            record.len() <= self.data.len() - HEADER - SLOT,
            "record larger than page"
        );
        if !self.fits(record.len()) {
            return None;
        }
        let reuse = self.dead_slot();
        let dir_growth = if reuse.is_some() { 0 } else { SLOT };
        if self.free_space() < record.len() + dir_growth {
            self.compact();
        }
        let end = self.free_end();
        let start = end - record.len();
        self.data[start..end].copy_from_slice(record);
        let slot = match reuse {
            Some(i) => i,
            None => {
                let n = self.n_slots();
                self.set_n_slots(n + 1);
                n
            }
        };
        self.set_slot(slot, start as u16, record.len() as u16);
        self.set_free_end(start);
        self.set_record_bytes(self.record_bytes() + record.len());
        Some(slot as u16)
    }

    /// Reads a live record.
    #[must_use]
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        let i = slot as usize;
        if i >= self.n_slots() {
            return None;
        }
        let (off, len) = self.slot(i);
        if off == DEAD {
            return None;
        }
        Some(&self.data[off as usize..off as usize + len as usize])
    }

    /// Overwrites a live record in place. Only same-length updates are
    /// supported (TPC-C tuples are fixed-length); returns `false` for a
    /// dead slot.
    ///
    /// # Panics
    /// Panics if the new record's length differs from the stored one.
    pub fn update(&mut self, slot: u16, record: &[u8]) -> bool {
        let i = slot as usize;
        if i >= self.n_slots() {
            return false;
        }
        let (off, len) = self.slot(i);
        if off == DEAD {
            return false;
        }
        assert_eq!(
            len as usize,
            record.len(),
            "in-place update must preserve record length"
        );
        self.data[off as usize..off as usize + len as usize].copy_from_slice(record);
        true
    }

    /// Deletes a record (marks its slot dead); `false` if already dead
    /// or out of range.
    pub fn delete(&mut self, slot: u16) -> bool {
        let i = slot as usize;
        if i >= self.n_slots() {
            return false;
        }
        let (off, len) = self.slot(i);
        if off == DEAD {
            return false;
        }
        self.set_slot(i, DEAD, 0);
        self.set_record_bytes(self.record_bytes() - len as usize);
        true
    }

    /// Rewrites live records contiguously at the page end, reclaiming
    /// dead space. Slot ids are stable.
    pub fn compact(&mut self) {
        let n = self.n_slots();
        let mut records: Vec<(usize, Vec<u8>)> = Vec::with_capacity(n);
        for i in 0..n {
            let (off, len) = self.slot(i);
            if off != DEAD {
                records.push((i, self.data[off as usize..(off + len) as usize].to_vec()));
            }
        }
        let mut end = self.data.len();
        for (i, rec) in records {
            let start = end - rec.len();
            self.data[start..end].copy_from_slice(&rec);
            self.set_slot(i, start as u16, rec.len() as u16);
            end = start;
        }
        self.set_free_end(end);
    }

    /// Iterates `(slot, record)` over live records.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> + '_ {
        (0..self.n_slots()).filter_map(move |i| {
            let (off, len) = self.slot(i);
            (off != DEAD).then(|| (i as u16, &self.data[off as usize..(off + len) as usize]))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> Vec<u8> {
        vec![0u8; 4096]
    }

    #[test]
    fn insert_get_round_trip() {
        let mut buf = page();
        let mut p = SlottedPage::init(&mut buf);
        let a = p.insert(b"hello").expect("fits");
        let b = p.insert(b"world!").expect("fits");
        assert_eq!(p.get(a), Some(&b"hello"[..]));
        assert_eq!(p.get(b), Some(&b"world!"[..]));
        assert_eq!(p.live_records(), 2);
    }

    #[test]
    fn delete_then_get_none() {
        let mut buf = page();
        let mut p = SlottedPage::init(&mut buf);
        let a = p.insert(b"abc").expect("fits");
        assert!(p.delete(a));
        assert!(!p.delete(a), "double delete");
        assert_eq!(p.get(a), None);
        assert_eq!(p.live_records(), 0);
    }

    #[test]
    fn update_in_place() {
        let mut buf = page();
        let mut p = SlottedPage::init(&mut buf);
        let a = p.insert(b"aaaa").expect("fits");
        assert!(p.update(a, b"bbbb"));
        assert_eq!(p.get(a), Some(&b"bbbb"[..]));
    }

    #[test]
    #[should_panic(expected = "preserve record length")]
    fn update_length_change_rejected() {
        let mut buf = page();
        let mut p = SlottedPage::init(&mut buf);
        let a = p.insert(b"aaaa").expect("fits");
        let _ = p.update(a, b"toolong");
    }

    #[test]
    fn fills_until_capacity_then_rejects() {
        let mut buf = vec![0u8; 256];
        let mut p = SlottedPage::init(&mut buf);
        let mut n = 0;
        while p.insert(&[7u8; 20]).is_some() {
            n += 1;
        }
        // 256 - 6 header; each record needs 24 bytes
        assert!(n >= 9, "inserted {n}");
        assert!(!p.fits(20));
        assert!(p.fits(1) || p.free_space() < 1 + SLOT);
    }

    #[test]
    fn compaction_reclaims_dead_space() {
        let mut buf = vec![0u8; 256];
        let mut p = SlottedPage::init(&mut buf);
        let slots: Vec<u16> = (0..8).filter_map(|_| p.insert(&[1u8; 20])).collect();
        assert!(p.insert(&[2u8; 20]).is_none() || p.free_space() >= 24);
        for &s in &slots {
            p.delete(s);
        }
        // all dead: a new insert must succeed via compaction
        let s = p.insert(&[3u8; 100]).expect("fits after compaction");
        assert_eq!(p.get(s).expect("live")[0], 3);
    }

    #[test]
    fn survives_attach_round_trip() {
        let mut buf = page();
        let a;
        {
            let mut p = SlottedPage::init(&mut buf);
            a = p.insert(b"persistent").expect("fits");
        }
        let p = SlottedPage::attach(&mut buf);
        assert_eq!(p.get(a), Some(&b"persistent"[..]));
    }

    #[test]
    fn dead_slots_are_recycled() {
        let mut buf = vec![0u8; 256];
        let mut p = SlottedPage::init(&mut buf);
        let a = p.insert(&[1u8; 20]).expect("fits");
        let b = p.insert(&[2u8; 20]).expect("fits");
        p.delete(a);
        let c = p.insert(&[3u8; 20]).expect("fits");
        assert_eq!(c, a, "dead slot id recycled");
        assert_eq!(p.get(c), Some(&[3u8; 20][..]));
        assert_eq!(p.get(b), Some(&[2u8; 20][..]));
        // the directory did not grow
        assert_eq!(p.live_records(), 2);
    }

    #[test]
    fn churn_on_one_page_never_degrades_capacity() {
        let mut buf = vec![0u8; 256];
        let mut p = SlottedPage::init(&mut buf);
        let mut live = std::collections::VecDeque::new();
        for i in 0..500u32 {
            let rec = [(i % 251) as u8; 24];
            let slot = p.insert(&rec).expect("steady-state insert must fit");
            live.push_back(slot);
            if live.len() > 5 {
                let old = live.pop_front().expect("nonempty");
                assert!(p.delete(old));
            }
        }
        assert_eq!(p.live_records(), live.len());
    }

    #[test]
    fn iter_skips_dead() {
        let mut buf = page();
        let mut p = SlottedPage::init(&mut buf);
        let a = p.insert(b"a").expect("fits");
        let _b = p.insert(b"b").expect("fits");
        p.delete(a);
        let live: Vec<u16> = p.iter().map(|(s, _)| s).collect();
        assert_eq!(live, vec![1]);
    }
}
