//! Redo-only write-ahead logging and crash recovery.
//!
//! The paper assumes durability away ("we assume that there is a
//! separate log disk"); the engine can actually provide it. The buffer
//! manager, when logging is enabled, records a byte-range delta of
//! every page mutation *before* the dirty page can reach disk — the WAL
//! protocol — plus file-creation and page-allocation events. Recovery
//! replays the log over a checkpoint snapshot of the disk and
//! reconstructs the exact post-crash committed state.
//!
//! Redo-only (no undo) is sound for this workload because every
//! transaction is validate-then-apply: no transaction writes a page
//! unless it is certain to commit (see `tpcc-db`'s New-Order rollback,
//! which aborts before its first write).

use std::fmt;
use std::sync::Arc;

use crate::disk::{DiskManager, FileId};
use crate::fault::{FaultHook, FaultSite};

/// Why a log failed to apply to a checkpoint image.
///
/// A torn or short log (crash mid-write), or a log paired with the
/// wrong checkpoint, surfaces here as a typed error instead of a panic,
/// so callers can refuse the recovery rather than die inside it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// A `CreateFile` replayed onto a different file id than logged.
    FileIdMismatch {
        /// Id in the log.
        logged: FileId,
        /// Id the checkpoint handed out.
        created: FileId,
    },
    /// An `AllocPage` replayed onto a different page number than
    /// logged (checkpoint extent or free set diverges from the log).
    PageMismatch {
        /// File being grown.
        file: FileId,
        /// Page number in the log.
        logged: u32,
        /// Page number the checkpoint handed out.
        allocated: u32,
    },
    /// An entry names a file the checkpoint does not have.
    UnknownFile {
        /// The missing file.
        file: FileId,
    },
    /// An entry names a page past its file's extent.
    UnknownPage {
        /// File the page should live in.
        file: FileId,
        /// The out-of-range page number.
        page: u32,
    },
    /// A `PageDelta` extends past the end of its page.
    DeltaOutOfBounds {
        /// File containing the page.
        file: FileId,
        /// Page number.
        page: u32,
        /// First byte of the delta.
        offset: u32,
        /// Delta length in bytes.
        len: usize,
    },
    /// A `FreePage` names a page that is already free.
    DoubleFree {
        /// File owning the page.
        file: FileId,
        /// The already-free page.
        page: u32,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::FileIdMismatch { logged, created } => write!(
                f,
                "log/checkpoint divergence: file id mismatch (logged {}, created {})",
                logged.0, created.0
            ),
            Self::PageMismatch {
                file,
                logged,
                allocated,
            } => write!(
                f,
                "log/checkpoint divergence: page number mismatch \
                 (file {}, logged {logged}, allocated {allocated})",
                file.0
            ),
            Self::UnknownFile { file } => {
                write!(f, "log names unknown file {}", file.0)
            }
            Self::UnknownPage { file, page } => {
                write!(f, "log names unknown page {page} in file {}", file.0)
            }
            Self::DeltaOutOfBounds {
                file,
                page,
                offset,
                len,
            } => write!(
                f,
                "delta out of bounds: file {} page {page} offset {offset} len {len}",
                file.0
            ),
            Self::DoubleFree { file, page } => {
                write!(f, "double free of page {page} in file {}", file.0)
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

/// One logged event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalEntry {
    /// A file came into existence (`create_file`).
    CreateFile {
        /// The id the file received.
        file: FileId,
    },
    /// A zeroed page was appended to a file.
    AllocPage {
        /// File grown.
        file: FileId,
        /// The page number it received.
        page: u32,
    },
    /// A page was deallocated (leaf merge, emptied heap page) and
    /// returned to its file's free set. Replay re-frees it, so a
    /// recovered disk reuses the same page numbers a clean run would.
    FreePage {
        /// File owning the page.
        file: FileId,
        /// The page number returned to the free set.
        page: u32,
    },
    /// Bytes `offset .. offset + data.len()` of a page changed.
    PageDelta {
        /// File containing the page.
        file: FileId,
        /// Page number.
        page: u32,
        /// First changed byte.
        offset: u32,
        /// The new bytes.
        data: Vec<u8>,
    },
    /// A transaction committed. Recovery replays the log only up to
    /// (and including) the **last** commit marker: anything after it
    /// belongs to a transaction that was still in flight at the crash
    /// and is discarded.
    Commit {
        /// Logical transaction timestamp.
        txn: u64,
    },
    /// Two-phase commit, phase one: this node durably promises it can
    /// commit global transaction `txn` (its deltas precede this record
    /// in the log). A durable `Prepare` with no later [`WalEntry::Decide`]
    /// is **in doubt**: plain recovery excludes it (presumed abort),
    /// and [`Wal::try_recover_resolved`] consults the coordinator's
    /// decision to replay or discard it.
    Prepare {
        /// Global (coordinator-issued) transaction timestamp.
        txn: u64,
    },
    /// Two-phase commit, phase two: the decision for global transaction
    /// `txn`. On the coordinator this record *is* the commit point; on
    /// a participant it closes the in-doubt window. `commit == false`
    /// is still a valid replay boundary — an aborting node logs its
    /// compensating deltas *before* the decision, so replaying up to it
    /// nets the transaction out to a no-op (compensation by redo).
    Decide {
        /// Global transaction timestamp.
        txn: u64,
        /// True to commit, false to abort.
        commit: bool,
    },
}

impl WalEntry {
    /// Serialized size of this record under the log's framing model:
    /// an 8-byte header (type tag, payload length, checksum) followed
    /// by the fixed fields and any delta payload. The log lives in
    /// memory, but the torn-tail sweep enumerates crash points in this
    /// byte space — a prefix that ends inside a record loses it (the
    /// length/checksum check fails on read-back), so every byte offset
    /// maps to a whole number of surviving records.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        const HEADER: usize = 8;
        HEADER
            + match self {
                WalEntry::CreateFile { .. } => 4,
                WalEntry::AllocPage { .. } | WalEntry::FreePage { .. } => 8,
                WalEntry::PageDelta { data, .. } => 12 + data.len(),
                WalEntry::Commit { .. } | WalEntry::Prepare { .. } => 8,
                WalEntry::Decide { .. } => 9,
            }
    }
}

/// An in-memory redo log.
///
/// # Durability modes
///
/// In the default **synchronous** mode every append is immediately
/// durable — the historical behaviour, where `committed_len()` is the
/// last commit marker *in memory*. Under **deferred** durability
/// ([`Wal::set_deferred`], the group-commit regime) appends land only
/// in the volatile tail; [`Wal::flush`] pushes the whole tail through
/// the simulated log device and advances the **durable watermark**
/// ([`Wal::durable_len`]). Recovery then replays only the committed
/// prefix *of the durable watermark*: a crash between an append and the
/// next flush loses the tail, never a flushed commit.
#[derive(Debug, Clone, Default)]
pub struct Wal {
    entries: Vec<WalEntry>,
    delta_bytes: u64,
    commit_count: u64,
    /// Deferred durability (group commit) on?
    deferred: bool,
    /// Durable watermark: entries `[..durable_len]` survived the last
    /// flush. Synchronous mode keeps it pinned to `entries.len()`.
    durable_len: usize,
    /// Commit markers inside the durable watermark.
    durable_commits: u64,
    hook: Option<Arc<FaultHook>>,
}

impl Wal {
    /// Empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a fault hook: every append becomes a
    /// [`FaultSite::WalAppend`] fault site (and under deferred
    /// durability every flush a [`FaultSite::WalFlush`] site), and once
    /// the hook's crash trips, appends are silently dropped and flushes
    /// stop advancing the watermark — the durable log is frozen at the
    /// crash instant (see the `fault` module's crash model).
    pub fn set_fault_hook(&mut self, hook: Arc<FaultHook>) {
        self.hook = Some(hook);
    }

    /// Switches between synchronous (`false`, the default) and deferred
    /// (`true`, group-commit) durability. Leaving deferred mode
    /// promotes the current tail to durable in one step — callers
    /// should [`Wal::flush`] first if they want the promotion counted
    /// as a flush.
    pub fn set_deferred(&mut self, deferred: bool) {
        self.deferred = deferred;
        if !deferred {
            self.durable_len = self.entries.len();
            self.durable_commits = self.commit_count;
        }
    }

    /// True when running under deferred (group-commit) durability.
    #[must_use]
    pub fn is_deferred(&self) -> bool {
        self.deferred
    }

    /// Appends an entry. 2PC records fire their own fault sites
    /// ([`FaultSite::TwoPcPrepare`] / [`FaultSite::TwoPcDecide`]) so a
    /// crash sweep can target the prepare/decide instants by class;
    /// every other entry fires [`FaultSite::WalAppend`].
    pub fn append(&mut self, entry: WalEntry) {
        if let Some(hook) = &self.hook {
            let site = match &entry {
                WalEntry::Prepare { .. } => FaultSite::TwoPcPrepare,
                WalEntry::Decide { .. } => FaultSite::TwoPcDecide,
                _ => FaultSite::WalAppend,
            };
            if hook.fire(site).crash {
                return; // the record never reached the durable log
            }
        }
        match &entry {
            WalEntry::PageDelta { data, .. } => self.delta_bytes += data.len() as u64,
            WalEntry::Commit { .. } | WalEntry::Decide { commit: true, .. } => {
                self.commit_count += 1;
            }
            _ => {}
        }
        self.entries.push(entry);
        if self.deferred {
            return; // volatile tail: durable only after the next flush
        }
        self.durable_len = self.entries.len();
        self.durable_commits = self.commit_count;
        if let Some(hook) = &self.hook {
            hook.note_durable_append();
        }
    }

    /// Pushes the volatile tail to the log device, advancing the
    /// durable watermark to the current end of the log. Fires a
    /// [`FaultSite::WalFlush`] fault site *before* the device write: a
    /// crash tripped there loses the whole unflushed tail. Returns
    /// `false` when the crash (this one or an earlier one) kept the
    /// watermark where it was. A flush with nothing pending is a no-op
    /// (no fault site, returns `true`).
    pub fn flush(&mut self) -> bool {
        if self.durable_len == self.entries.len() {
            return true;
        }
        if let Some(hook) = &self.hook {
            if hook.fire(FaultSite::WalFlush).crash {
                return false; // tail lost: watermark frozen
            }
        }
        self.durable_len = self.entries.len();
        self.durable_commits = self.commit_count;
        if let Some(hook) = &self.hook {
            hook.note_durable_flush(self.durable_len);
        }
        true
    }

    /// Durable watermark: number of entries that survived the last
    /// flush (equals [`Wal::len`] under synchronous durability).
    #[must_use]
    pub fn durable_len(&self) -> usize {
        self.durable_len
    }

    /// Commit markers inside the durable watermark (equals
    /// [`Wal::commits`] under synchronous durability).
    #[must_use]
    pub fn durable_commits(&self) -> u64 {
        self.durable_commits
    }

    /// Entries appended but not yet flushed (always 0 under synchronous
    /// durability).
    #[must_use]
    pub fn unflushed(&self) -> usize {
        self.entries.len() - self.durable_len
    }

    /// Entries logged.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been logged.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total payload bytes across all page deltas.
    #[must_use]
    pub fn delta_bytes(&self) -> u64 {
        self.delta_bytes
    }

    /// Commit markers logged (maintained counter — O(1), the
    /// fault-injection oracle polls it per transaction).
    #[must_use]
    pub fn commits(&self) -> u64 {
        self.commit_count
    }

    /// The raw entries (for inspection / tests).
    #[must_use]
    pub fn entries(&self) -> &[WalEntry] {
        &self.entries
    }

    /// Discards every entry past the first `keep` (crash injection for
    /// atomicity tests: a log truncated mid-transaction must recover
    /// to the last complete commit, never a partial one).
    ///
    /// `keep > len` is a caller bug — a crash cannot preserve records
    /// that were never written. It debug-asserts, and clamps to the
    /// full log (a no-op) in release builds.
    pub fn truncate(&mut self, keep: usize) {
        debug_assert!(
            keep <= self.entries.len(),
            "Wal::truncate past the end (keep {keep} > len {})",
            self.entries.len()
        );
        if keep >= self.entries.len() {
            return;
        }
        for entry in &self.entries[keep..] {
            match entry {
                WalEntry::PageDelta { data, .. } => self.delta_bytes -= data.len() as u64,
                WalEntry::Commit { .. } | WalEntry::Decide { commit: true, .. } => {
                    self.commit_count -= 1;
                }
                _ => {}
            }
        }
        self.entries.truncate(keep);
        if !self.deferred || self.durable_len > keep {
            // sync mode pins the watermark to the log end; deferred mode
            // only pulls it back when the cut removed durable entries
            self.durable_len = keep;
            self.durable_commits = self.commit_count;
        }
    }

    /// Length of the committed prefix: the index just past the last
    /// [`WalEntry::Commit`] or [`WalEntry::Decide`] marker inside the
    /// **durable watermark** (0 when no transaction durably committed).
    /// Recovery replays exactly `entries()[..committed_len()]`. Under
    /// synchronous durability the watermark is the whole log, so this
    /// is the historical "last commit marker in memory"; under deferred
    /// durability commits in the unflushed tail do not count.
    ///
    /// A `Decide` is a boundary whichever way it went: an abort logs
    /// its compensating deltas before the decision, so the prefix nets
    /// out. A durable [`WalEntry::Prepare`] past the last decision is
    /// **not** a boundary here — presumed abort; use
    /// [`Wal::committed_len_resolved`] to include prepares the
    /// coordinator durably decided to commit.
    #[must_use]
    pub fn committed_len(&self) -> usize {
        self.entries[..self.durable_len]
            .iter()
            .rposition(|e| matches!(e, WalEntry::Commit { .. } | WalEntry::Decide { .. }))
            .map_or(0, |i| i + 1)
    }

    /// Like [`Wal::committed_len`], but an in-doubt
    /// [`WalEntry::Prepare`] extends the replay boundary past itself
    /// when `resolver(txn)` reports the coordinator durably decided
    /// **commit** for that global transaction. An unresolved or
    /// aborted prepare stays outside the boundary (presumed abort).
    #[must_use]
    pub fn committed_len_resolved(&self, resolver: impl Fn(u64) -> bool) -> usize {
        let mut boundary = 0;
        for (i, entry) in self.entries[..self.durable_len].iter().enumerate() {
            match entry {
                WalEntry::Commit { .. } | WalEntry::Decide { .. } => boundary = i + 1,
                WalEntry::Prepare { txn } if resolver(*txn) => boundary = i + 1,
                _ => {}
            }
        }
        boundary
    }

    /// Global transactions this log durably prepared but never durably
    /// decided — the in-doubt set a recovering participant must resolve
    /// through its coordinators before opening for business.
    #[must_use]
    pub fn in_doubt(&self) -> Vec<u64> {
        let mut open = Vec::new();
        for entry in &self.entries[..self.durable_len] {
            match entry {
                WalEntry::Prepare { txn } => open.push(*txn),
                WalEntry::Decide { txn, .. } => open.retain(|t| t != txn),
                _ => {}
            }
        }
        open
    }

    /// The durable 2PC decision for global transaction `txn`, if this
    /// log (the coordinator's) carries one: `Some(true)` commit,
    /// `Some(false)` abort, `None` when no decision survived — in
    /// which case presumed abort applies.
    #[must_use]
    pub fn durable_decision(&self, txn: u64) -> Option<bool> {
        self.entries[..self.durable_len]
            .iter()
            .rev()
            .find_map(|e| match e {
                WalEntry::Decide { txn: t, commit } if *t == txn => Some(*commit),
                _ => None,
            })
    }

    /// Replays the log over a checkpoint image of the disk, producing
    /// the crash-recovered state.
    ///
    /// Only the **committed prefix** is replayed: entries after the
    /// last [`WalEntry::Commit`] marker belong to a transaction that
    /// never committed, and redo-only recovery must not apply them (a
    /// log with no commit marker at all replays nothing).
    ///
    /// # Panics
    /// Panics if the log does not apply (wrong checkpoint: file/page
    /// ids diverge) — recovering from a mismatched checkpoint must be
    /// loud, never silent corruption. Use [`Wal::try_recover`] for the
    /// non-panicking variant.
    #[must_use]
    pub fn recover(&self, checkpoint: DiskManager) -> DiskManager {
        match self.try_recover(checkpoint) {
            Ok(disk) => disk,
            Err(e) => panic!("{e}"),
        }
    }

    /// Replays the committed prefix over a checkpoint image, returning
    /// a [`RecoveryError`] instead of panicking when the log does not
    /// apply. Every entry is validated against the evolving checkpoint
    /// *before* it mutates anything, so a torn/mismatched log is
    /// rejected cleanly.
    ///
    /// # Errors
    /// Returns a [`RecoveryError`] when an entry names an unknown file
    /// or page, a delta overruns its page, an allocation lands on a
    /// different page number than logged, or a free is a double free.
    pub fn try_recover(&self, mut checkpoint: DiskManager) -> Result<DiskManager, RecoveryError> {
        let mut scratch = vec![0u8; checkpoint.page_size()];
        for entry in &self.entries[..self.committed_len()] {
            apply_entry(&mut checkpoint, &mut scratch, entry)?;
        }
        checkpoint.reset_stats();
        Ok(checkpoint)
    }

    /// [`Wal::try_recover`] with 2PC in-doubt resolution: replays up to
    /// [`Wal::committed_len_resolved`]`(resolver)`, so a durable
    /// `Prepare` whose coordinator durably decided commit is applied,
    /// and every other in-doubt tail is discarded (presumed abort).
    ///
    /// # Errors
    /// The same [`RecoveryError`]s as [`Wal::try_recover`].
    pub fn try_recover_resolved(
        &self,
        mut checkpoint: DiskManager,
        resolver: impl Fn(u64) -> bool,
    ) -> Result<DiskManager, RecoveryError> {
        let mut scratch = vec![0u8; checkpoint.page_size()];
        for entry in &self.entries[..self.committed_len_resolved(resolver)] {
            apply_entry(&mut checkpoint, &mut scratch, entry)?;
        }
        checkpoint.reset_stats();
        Ok(checkpoint)
    }

    /// Serialized size of the whole log under the framing model of
    /// [`WalEntry::encoded_len`] — the byte space a torn-tail sweep
    /// enumerates.
    #[must_use]
    pub fn encoded_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.encoded_len() as u64).sum()
    }

    /// Number of *complete* records inside the first `bytes` bytes of
    /// the serialized log. A record torn mid-encoding fails its length
    /// / checksum check on read-back and is discarded along with
    /// everything after it, so a crash after `bytes` durable log bytes
    /// recovers exactly the first `records_within(bytes)` entries.
    #[must_use]
    pub fn records_within(&self, bytes: u64) -> usize {
        let mut used = 0u64;
        for (i, entry) in self.entries.iter().enumerate() {
            used += entry.encoded_len() as u64;
            if used > bytes {
                return i;
            }
        }
        self.entries.len()
    }
}

/// Applies one log entry to an evolving checkpoint image — the single
/// replay step shared by [`Wal::try_recover`] and the fault-injection
/// harness's incremental prefix verifier (`tpcc-db`'s `inject` module),
/// so both replay paths cannot drift apart. Every entry is validated
/// against the image *before* it mutates anything.
///
/// `scratch` is a reusable page buffer; it is resized to the image's
/// page size as needed.
///
/// # Errors
/// The same [`RecoveryError`]s as [`Wal::try_recover`], whose replay
/// loop is exactly this function folded over the committed prefix.
pub fn apply_entry(
    checkpoint: &mut DiskManager,
    scratch: &mut Vec<u8>,
    entry: &WalEntry,
) -> Result<(), RecoveryError> {
    let page_size = checkpoint.page_size();
    match entry {
        WalEntry::CreateFile { file } => {
            let created = checkpoint.create_file();
            if created != *file {
                return Err(RecoveryError::FileIdMismatch {
                    logged: *file,
                    created,
                });
            }
        }
        WalEntry::AllocPage { file, page } => {
            if file.0 >= checkpoint.file_count() {
                return Err(RecoveryError::UnknownFile { file: *file });
            }
            let allocated = checkpoint.allocate_page(*file);
            if allocated != *page {
                return Err(RecoveryError::PageMismatch {
                    file: *file,
                    logged: *page,
                    allocated,
                });
            }
        }
        WalEntry::FreePage { file, page } => {
            if file.0 >= checkpoint.file_count() {
                return Err(RecoveryError::UnknownFile { file: *file });
            }
            if *page >= checkpoint.pages(*file) {
                return Err(RecoveryError::UnknownPage {
                    file: *file,
                    page: *page,
                });
            }
            if checkpoint.is_free(*file, *page) {
                return Err(RecoveryError::DoubleFree {
                    file: *file,
                    page: *page,
                });
            }
            checkpoint.free_page(*file, *page);
        }
        WalEntry::PageDelta {
            file,
            page,
            offset,
            data,
        } => {
            if file.0 >= checkpoint.file_count() {
                return Err(RecoveryError::UnknownFile { file: *file });
            }
            if *page >= checkpoint.pages(*file) {
                return Err(RecoveryError::UnknownPage {
                    file: *file,
                    page: *page,
                });
            }
            let start = *offset as usize;
            if start + data.len() > page_size {
                return Err(RecoveryError::DeltaOutOfBounds {
                    file: *file,
                    page: *page,
                    offset: *offset,
                    len: data.len(),
                });
            }
            scratch.resize(page_size, 0);
            checkpoint.read_page(*file, *page, scratch);
            scratch[start..start + data.len()].copy_from_slice(data);
            checkpoint.write_page(*file, *page, scratch);
        }
        WalEntry::Commit { .. } | WalEntry::Prepare { .. } | WalEntry::Decide { .. } => {}
    }
    Ok(())
}

/// Computes the minimal contiguous byte range that differs between two
/// page images; `None` when identical.
#[must_use]
pub fn page_delta(before: &[u8], after: &[u8]) -> Option<(u32, Vec<u8>)> {
    debug_assert_eq!(before.len(), after.len());
    let first = before.iter().zip(after).position(|(a, b)| a != b)?;
    let last = before
        .iter()
        .zip(after)
        .rposition(|(a, b)| a != b)
        .expect("a first difference implies a last");
    Some((first as u32, after[first..=last].to_vec()))
}

/// Minimum run of unchanged bytes that splits one page mutation into
/// two `PageDelta` records. A record costs 20 bytes of framing, so
/// carrying an unchanged gap shorter than this inline is cheaper than
/// a second record.
pub const DELTA_SPLIT_GAP: usize = 32;

/// Computes the changed byte ranges between two page images as
/// `(offset, bytes)` segments, splitting wherever at least
/// [`DELTA_SPLIT_GAP`] unchanged bytes separate two changes. A slotted
/// page mutates its slot directory near the front and the record bytes
/// near the back; a single spanning delta would log the untouched
/// middle of the page — on TPC-C heaps that dead weight is an order of
/// magnitude over the live bytes. Empty when the images are identical.
#[must_use]
pub fn page_deltas(before: &[u8], after: &[u8]) -> Vec<(u32, Vec<u8>)> {
    debug_assert_eq!(before.len(), after.len());
    let n = before.len();
    let mut segments = Vec::new();
    let mut i = 0;
    while i < n {
        if before[i] == after[i] {
            i += 1;
            continue;
        }
        // a changed run starts here; absorb unchanged gaps shorter
        // than the split threshold, stop at a long gap or page end
        let start = i;
        let mut end = i + 1;
        let mut j = i + 1;
        while j < n {
            if before[j] != after[j] {
                j += 1;
                end = j;
            } else {
                let gap_start = j;
                while j < n && before[j] == after[j] {
                    j += 1;
                    if j - gap_start >= DELTA_SPLIT_GAP {
                        break;
                    }
                }
                if j - gap_start >= DELTA_SPLIT_GAP || j == n {
                    break;
                }
            }
        }
        segments.push((start as u32, after[start..end].to_vec()));
        i = j;
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_delta_finds_minimal_range() {
        let before = vec![0u8; 64];
        let mut after = before.clone();
        after[10] = 1;
        after[20] = 2;
        let (offset, data) = page_delta(&before, &after).expect("differs");
        assert_eq!(offset, 10);
        assert_eq!(data.len(), 11);
        assert_eq!(data[0], 1);
        assert_eq!(data[10], 2);
        assert!(page_delta(&before, &before).is_none());
    }

    #[test]
    fn page_deltas_split_on_long_gaps_only() {
        let before = vec![0u8; 512];

        // two changes separated by less than the split gap: one segment
        let mut after = before.clone();
        after[10] = 1;
        after[10 + DELTA_SPLIT_GAP] = 2;
        let segs = page_deltas(&before, &after);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].0, 10);
        assert_eq!(segs[0].1.len(), DELTA_SPLIT_GAP + 1);

        // slot directory at the front, record at the back: two segments
        // that skip the untouched middle
        let mut after = before.clone();
        after[4..8].fill(7);
        after[400..460].fill(9);
        let segs = page_deltas(&before, &after);
        assert_eq!(segs.len(), 2);
        assert_eq!((segs[0].0, segs[0].1.len()), (4, 4));
        assert_eq!((segs[1].0, segs[1].1.len()), (400, 60));

        // replaying the segments reconstructs the after-image
        let mut replayed = before.clone();
        for (off, data) in &segs {
            replayed[*off as usize..*off as usize + data.len()].copy_from_slice(data);
        }
        assert_eq!(replayed, after);

        assert!(page_deltas(&before, &before).is_empty());

        // change running to the page end terminates cleanly
        let mut after = before.clone();
        after[508..].fill(3);
        let segs = page_deltas(&before, &after);
        assert_eq!(segs.len(), 1);
        assert_eq!((segs[0].0, segs[0].1.len()), (508, 4));
    }

    #[test]
    fn replay_reconstructs_pages() {
        let mut disk = DiskManager::new(64);
        let mut wal = Wal::new();

        // checkpoint first: an empty disk. Everything after is logged.
        let checkpoint = disk.snapshot();

        let f = disk.create_file();
        wal.append(WalEntry::CreateFile { file: f });
        let p = disk.allocate_page(f);
        wal.append(WalEntry::AllocPage { file: f, page: p });
        let mut buf = vec![0u8; 64];
        buf[5] = 42;
        disk.write_page(f, p, &buf);
        wal.append(WalEntry::PageDelta {
            file: f,
            page: p,
            offset: 5,
            data: vec![42],
        });
        wal.append(WalEntry::Commit { txn: 1 });

        let recovered = wal.recover(checkpoint);
        let mut out = vec![0u8; 64];
        let mut recovered = recovered;
        recovered.read_page(f, p, &mut out);
        assert_eq!(out[5], 42);
        assert_eq!(wal.commits(), 1);
        assert_eq!(wal.delta_bytes(), 1);
    }

    #[test]
    #[should_panic(expected = "page number mismatch")]
    fn mismatched_checkpoint_is_loud() {
        let mut wal = Wal::new();
        wal.append(WalEntry::AllocPage {
            file: FileId(0),
            page: 0,
        });
        wal.append(WalEntry::Commit { txn: 1 });
        // checkpoint already has that page: replay would double-allocate
        let mut checkpoint = DiskManager::new(64);
        let f = checkpoint.create_file();
        checkpoint.allocate_page(f);
        let _ = wal.recover(checkpoint);
    }

    #[test]
    fn recovery_ignores_entries_after_the_last_commit() {
        let mut disk = DiskManager::new(64);
        let f = disk.create_file();
        let p = disk.allocate_page(f);
        let checkpoint = disk.snapshot();

        let mut wal = Wal::new();
        wal.append(WalEntry::PageDelta {
            file: f,
            page: p,
            offset: 0,
            data: vec![1],
        });
        wal.append(WalEntry::Commit { txn: 1 });
        // a second transaction crashes mid-flight: delta logged, no commit
        wal.append(WalEntry::PageDelta {
            file: f,
            page: p,
            offset: 1,
            data: vec![2],
        });
        wal.append(WalEntry::AllocPage { file: f, page: 1 });

        let mut recovered = wal.recover(checkpoint);
        let mut buf = vec![0u8; 64];
        recovered.read_page(f, p, &mut buf);
        assert_eq!(buf[0], 1, "committed transaction replayed");
        assert_eq!(buf[1], 0, "uncommitted delta discarded");
        assert_eq!(recovered.pages(f), 1, "uncommitted allocation discarded");
    }

    #[test]
    fn log_with_no_commit_replays_nothing() {
        let mut disk = DiskManager::new(64);
        let f = disk.create_file();
        let p = disk.allocate_page(f);
        let checkpoint = disk.snapshot();

        let mut wal = Wal::new();
        wal.append(WalEntry::PageDelta {
            file: f,
            page: p,
            offset: 0,
            data: vec![9],
        });
        let mut recovered = wal.recover(checkpoint);
        let mut buf = vec![0u8; 64];
        recovered.read_page(f, p, &mut buf);
        assert_eq!(buf[0], 0, "no commit marker, nothing applies");
    }

    #[test]
    fn free_and_realloc_replay_deterministically() {
        let mut disk = DiskManager::new(64);
        let mut wal = Wal::new();
        let checkpoint = disk.snapshot();

        let f = disk.create_file();
        wal.append(WalEntry::CreateFile { file: f });
        for i in 0..3 {
            let p = disk.allocate_page(f);
            assert_eq!(p, i);
            wal.append(WalEntry::AllocPage { file: f, page: p });
        }
        disk.write_page(f, 1, &[5u8; 64]);
        wal.append(WalEntry::PageDelta {
            file: f,
            page: 1,
            offset: 0,
            data: vec![5u8; 64],
        });
        disk.free_page(f, 1);
        wal.append(WalEntry::FreePage { file: f, page: 1 });
        // reallocation lands on the freed page, and replay must agree
        let p = disk.allocate_page(f);
        assert_eq!(p, 1, "allocation reuses the freed page");
        wal.append(WalEntry::AllocPage { file: f, page: p });
        wal.append(WalEntry::Commit { txn: 1 });

        let recovered = wal.recover(checkpoint);
        assert!(
            recovered.contents_equal(&disk.snapshot()),
            "replayed free/realloc converges to the live disk"
        );
    }

    #[test]
    fn try_recover_rejects_torn_logs_without_panicking() {
        let checkpoint = DiskManager::new(64);

        // unknown file
        let mut wal = Wal::new();
        wal.append(WalEntry::AllocPage {
            file: FileId(3),
            page: 0,
        });
        wal.append(WalEntry::Commit { txn: 1 });
        assert_eq!(
            wal.try_recover(checkpoint.snapshot()).unwrap_err(),
            RecoveryError::UnknownFile { file: FileId(3) }
        );

        // delta past the end of the page
        let mut wal = Wal::new();
        wal.append(WalEntry::CreateFile { file: FileId(0) });
        wal.append(WalEntry::AllocPage {
            file: FileId(0),
            page: 0,
        });
        wal.append(WalEntry::PageDelta {
            file: FileId(0),
            page: 0,
            offset: 60,
            data: vec![0u8; 8],
        });
        wal.append(WalEntry::Commit { txn: 1 });
        let err = wal.try_recover(checkpoint.snapshot()).unwrap_err();
        assert!(matches!(err, RecoveryError::DeltaOutOfBounds { .. }));

        // double free
        let mut wal = Wal::new();
        wal.append(WalEntry::CreateFile { file: FileId(0) });
        wal.append(WalEntry::AllocPage {
            file: FileId(0),
            page: 0,
        });
        wal.append(WalEntry::FreePage {
            file: FileId(0),
            page: 0,
        });
        wal.append(WalEntry::FreePage {
            file: FileId(0),
            page: 0,
        });
        wal.append(WalEntry::Commit { txn: 1 });
        assert_eq!(
            wal.try_recover(checkpoint.snapshot()).unwrap_err(),
            RecoveryError::DoubleFree {
                file: FileId(0),
                page: 0
            }
        );
    }

    #[test]
    fn truncate_simulates_a_torn_log_tail() {
        let mut wal = Wal::new();
        wal.append(WalEntry::PageDelta {
            file: FileId(0),
            page: 0,
            offset: 0,
            data: vec![1, 2, 3],
        });
        wal.append(WalEntry::Commit { txn: 1 });
        wal.append(WalEntry::PageDelta {
            file: FileId(0),
            page: 0,
            offset: 4,
            data: vec![4, 5],
        });
        assert_eq!(wal.delta_bytes(), 5);
        wal.truncate(2);
        assert_eq!(wal.len(), 2);
        assert_eq!(wal.delta_bytes(), 3, "accounting follows the truncation");
        assert_eq!(wal.commits(), 1);
    }

    fn two_entry_log() -> Wal {
        let mut wal = Wal::new();
        wal.append(WalEntry::PageDelta {
            file: FileId(0),
            page: 0,
            offset: 0,
            data: vec![1, 2, 3],
        });
        wal.append(WalEntry::Commit { txn: 1 });
        wal
    }

    #[test]
    fn truncate_at_exact_len_is_a_noop() {
        let mut wal = two_entry_log();
        wal.truncate(2); // keep == len: the boundary is legal
        assert_eq!(wal.len(), 2);
        assert_eq!(wal.delta_bytes(), 3);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "truncate past the end")]
    fn truncate_past_len_debug_asserts() {
        let mut wal = two_entry_log();
        wal.truncate(3);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn truncate_past_len_clamps_in_release() {
        let mut wal = two_entry_log();
        wal.truncate(usize::MAX);
        assert_eq!(wal.len(), 2, "clamped to the full log");
        assert_eq!(wal.delta_bytes(), 3, "accounting untouched");
    }

    #[test]
    fn committed_len_tracks_the_last_marker() {
        let mut wal = Wal::new();
        assert_eq!(wal.committed_len(), 0);
        wal.append(WalEntry::CreateFile { file: FileId(0) });
        assert_eq!(wal.committed_len(), 0, "no commit yet");
        wal.append(WalEntry::Commit { txn: 1 });
        assert_eq!(wal.committed_len(), 2);
        wal.append(WalEntry::AllocPage {
            file: FileId(0),
            page: 0,
        });
        assert_eq!(wal.committed_len(), 2, "in-flight tail excluded");
    }

    // --- one unit per RecoveryError variant, each from the minimal
    // --- hand-built corrupt log, asserting the exact variant

    #[test]
    fn recovery_error_file_id_mismatch() {
        // checkpoint already owns file 0, so the logged CreateFile
        // replays onto id 1
        let mut checkpoint = DiskManager::new(64);
        checkpoint.create_file();
        let mut wal = Wal::new();
        wal.append(WalEntry::CreateFile { file: FileId(0) });
        wal.append(WalEntry::Commit { txn: 1 });
        assert_eq!(
            wal.try_recover(checkpoint).unwrap_err(),
            RecoveryError::FileIdMismatch {
                logged: FileId(0),
                created: FileId(1),
            }
        );
    }

    #[test]
    fn recovery_error_page_mismatch() {
        // checkpoint's file already has a page: replay allocates 1, log says 0
        let mut checkpoint = DiskManager::new(64);
        let f = checkpoint.create_file();
        checkpoint.allocate_page(f);
        let mut wal = Wal::new();
        wal.append(WalEntry::AllocPage { file: f, page: 0 });
        wal.append(WalEntry::Commit { txn: 1 });
        assert_eq!(
            wal.try_recover(checkpoint).unwrap_err(),
            RecoveryError::PageMismatch {
                file: f,
                logged: 0,
                allocated: 1,
            }
        );
    }

    #[test]
    fn recovery_error_unknown_file() {
        let mut wal = Wal::new();
        wal.append(WalEntry::FreePage {
            file: FileId(5),
            page: 0,
        });
        wal.append(WalEntry::Commit { txn: 1 });
        assert_eq!(
            wal.try_recover(DiskManager::new(64)).unwrap_err(),
            RecoveryError::UnknownFile { file: FileId(5) }
        );
    }

    #[test]
    fn recovery_error_unknown_page() {
        let mut checkpoint = DiskManager::new(64);
        let f = checkpoint.create_file();
        let mut wal = Wal::new();
        wal.append(WalEntry::PageDelta {
            file: f,
            page: 9,
            offset: 0,
            data: vec![1],
        });
        wal.append(WalEntry::Commit { txn: 1 });
        assert_eq!(
            wal.try_recover(checkpoint).unwrap_err(),
            RecoveryError::UnknownPage { file: f, page: 9 }
        );
    }

    #[test]
    fn recovery_error_delta_out_of_bounds() {
        let mut checkpoint = DiskManager::new(64);
        let f = checkpoint.create_file();
        checkpoint.allocate_page(f);
        let mut wal = Wal::new();
        wal.append(WalEntry::PageDelta {
            file: f,
            page: 0,
            offset: 60,
            data: vec![0u8; 8],
        });
        wal.append(WalEntry::Commit { txn: 1 });
        assert_eq!(
            wal.try_recover(checkpoint).unwrap_err(),
            RecoveryError::DeltaOutOfBounds {
                file: f,
                page: 0,
                offset: 60,
                len: 8,
            }
        );
    }

    #[test]
    fn recovery_error_double_free() {
        let mut checkpoint = DiskManager::new(64);
        let f = checkpoint.create_file();
        checkpoint.allocate_page(f);
        let mut wal = Wal::new();
        wal.append(WalEntry::FreePage { file: f, page: 0 });
        wal.append(WalEntry::FreePage { file: f, page: 0 });
        wal.append(WalEntry::Commit { txn: 1 });
        assert_eq!(
            wal.try_recover(checkpoint).unwrap_err(),
            RecoveryError::DoubleFree { file: f, page: 0 }
        );
    }

    #[test]
    fn crashed_hook_freezes_the_log() {
        use crate::fault::{FaultHook, FaultPlan};

        let mut wal = Wal::new();
        let hook = Arc::new(FaultHook::new(FaultPlan::crash_at(7, 1)));
        wal.set_fault_hook(Arc::clone(&hook));
        wal.append(WalEntry::CreateFile { file: FileId(0) }); // site 0: survives
        wal.append(WalEntry::Commit { txn: 1 }); // site 1: the crash, dropped
        wal.append(WalEntry::Commit { txn: 2 }); // post-crash, dropped
        assert_eq!(wal.len(), 1, "log frozen at the crash instant");
        assert_eq!(wal.commits(), 0);
        assert!(hook.crashed());
        assert_eq!(hook.stats().crashed_at, Some(1));
    }

    #[test]
    fn deferred_durability_gates_committed_len_on_flush() {
        let mut wal = Wal::new();
        wal.set_deferred(true);
        wal.append(WalEntry::CreateFile { file: FileId(0) });
        wal.append(WalEntry::Commit { txn: 1 });
        assert_eq!(wal.len(), 2);
        assert_eq!(wal.durable_len(), 0, "nothing flushed yet");
        assert_eq!(wal.unflushed(), 2);
        assert_eq!(
            wal.committed_len(),
            0,
            "a commit in the volatile tail is not recoverable"
        );
        assert!(wal.flush());
        assert_eq!(wal.durable_len(), 2);
        assert_eq!(wal.durable_commits(), 1);
        assert_eq!(wal.committed_len(), 2, "flushed commit is recoverable");
        // a second transaction stays volatile until the next flush
        wal.append(WalEntry::Commit { txn: 2 });
        assert_eq!(wal.committed_len(), 2);
        assert!(wal.flush());
        assert_eq!(wal.committed_len(), 3);
        assert!(wal.flush(), "empty flush is a no-op");
    }

    #[test]
    fn crash_at_flush_loses_the_tail_never_a_flushed_commit() {
        use crate::fault::{FaultHook, FaultPlan};

        let mut wal = Wal::new();
        wal.set_deferred(true);
        // sites: 0,1 appends · 2 flush · 3,4 appends · 5 flush (crash)
        let hook = Arc::new(FaultHook::new(FaultPlan::crash_at(7, 5)));
        wal.set_fault_hook(Arc::clone(&hook));
        wal.append(WalEntry::CreateFile { file: FileId(0) });
        wal.append(WalEntry::Commit { txn: 1 });
        assert!(wal.flush(), "first flush survives");
        wal.append(WalEntry::AllocPage {
            file: FileId(0),
            page: 0,
        });
        wal.append(WalEntry::Commit { txn: 2 });
        assert!(!wal.flush(), "second flush trips the crash");
        assert!(hook.crashed());
        assert_eq!(wal.durable_len(), 2, "watermark frozen at the last flush");
        assert_eq!(wal.durable_commits(), 1, "txn 2's commit is lost");
        assert_eq!(wal.committed_len(), 2);
        // post-crash traffic changes nothing durable
        wal.append(WalEntry::Commit { txn: 3 });
        assert!(!wal.flush());
        assert_eq!(wal.durable_len(), 2);
        assert_eq!(hook.stats().fired[FaultSite::WalFlush.idx()], 2);
    }

    #[test]
    fn deferred_truncate_clamps_the_watermark() {
        let mut wal = Wal::new();
        wal.set_deferred(true);
        wal.append(WalEntry::Commit { txn: 1 });
        wal.flush();
        wal.append(WalEntry::Commit { txn: 2 });
        wal.append(WalEntry::Commit { txn: 3 });
        // cut inside the volatile tail: watermark untouched
        wal.truncate(2);
        assert_eq!(wal.durable_len(), 1);
        assert_eq!(wal.durable_commits(), 1);
        // cut below the watermark: watermark follows
        wal.truncate(0);
        assert_eq!(wal.durable_len(), 0);
        assert_eq!(wal.durable_commits(), 0);
    }

    #[test]
    fn prepare_is_not_a_replay_boundary_but_decide_is() {
        let mut wal = Wal::new();
        wal.append(WalEntry::PageDelta {
            file: FileId(0),
            page: 0,
            offset: 0,
            data: vec![1],
        });
        wal.append(WalEntry::Commit { txn: 1 });
        // a distributed participant: deltas + prepare, crash before decide
        wal.append(WalEntry::PageDelta {
            file: FileId(0),
            page: 0,
            offset: 1,
            data: vec![2],
        });
        wal.append(WalEntry::Prepare { txn: 9 });
        assert_eq!(wal.committed_len(), 2, "in-doubt tail excluded");
        assert_eq!(wal.in_doubt(), vec![9]);
        // coordinator says commit: the tail replays through the prepare
        assert_eq!(wal.committed_len_resolved(|t| t == 9), 4);
        // coordinator says abort (or no decision survived): presumed abort
        assert_eq!(wal.committed_len_resolved(|_| false), 2);
        // the decision closes the in-doubt window either way
        wal.append(WalEntry::Decide {
            txn: 9,
            commit: true,
        });
        assert_eq!(wal.committed_len(), 5);
        assert!(wal.in_doubt().is_empty());
        assert_eq!(wal.durable_decision(9), Some(true));
        assert_eq!(wal.durable_decision(1), None, "plain commits are not 2PC");
        assert_eq!(wal.commits(), 2, "Decide{{commit}} counts as a commit");
    }

    #[test]
    fn abort_decide_bounds_compensated_prefixes() {
        let mut disk = DiskManager::new(64);
        let f = disk.create_file();
        let p = disk.allocate_page(f);
        let checkpoint = disk.snapshot();

        let mut wal = Wal::new();
        // forward delta, prepare, then compensation + abort decision
        wal.append(WalEntry::PageDelta {
            file: f,
            page: p,
            offset: 0,
            data: vec![7],
        });
        wal.append(WalEntry::Prepare { txn: 4 });
        wal.append(WalEntry::PageDelta {
            file: f,
            page: p,
            offset: 0,
            data: vec![0],
        });
        wal.append(WalEntry::Decide {
            txn: 4,
            commit: false,
        });
        assert_eq!(wal.committed_len(), 4, "abort decision is a boundary");
        assert_eq!(wal.commits(), 0, "an abort is not a commit");
        let mut recovered = wal.recover(checkpoint);
        let mut buf = vec![0u8; 64];
        recovered.read_page(f, p, &mut buf);
        assert_eq!(buf[0], 0, "compensation nets the abort to a no-op");
    }

    #[test]
    fn try_recover_resolved_replays_a_committed_in_doubt_tail() {
        let mut disk = DiskManager::new(64);
        let f = disk.create_file();
        let p = disk.allocate_page(f);
        let checkpoint = disk.snapshot();

        let mut wal = Wal::new();
        wal.append(WalEntry::PageDelta {
            file: f,
            page: p,
            offset: 3,
            data: vec![42],
        });
        wal.append(WalEntry::Prepare { txn: 11 });
        // crash here: durable prepare, no decision on this node

        let mut committed = wal
            .try_recover_resolved(checkpoint.snapshot(), |t| t == 11)
            .expect("applies");
        let mut buf = vec![0u8; 64];
        committed.read_page(f, p, &mut buf);
        assert_eq!(buf[3], 42, "coordinator-committed prepare replayed");

        let mut aborted = wal
            .try_recover_resolved(checkpoint.snapshot(), |_| false)
            .expect("applies");
        aborted.read_page(f, p, &mut buf);
        assert_eq!(buf[3], 0, "presumed abort discards the tail");
    }

    #[test]
    fn twopc_records_fire_their_own_fault_sites() {
        use crate::fault::{FaultHook, FaultPlan, FaultSite};

        let mut wal = Wal::new();
        let hook = Arc::new(FaultHook::new(FaultPlan::observe(7)));
        wal.set_fault_hook(Arc::clone(&hook));
        wal.append(WalEntry::Prepare { txn: 1 });
        wal.append(WalEntry::Decide {
            txn: 1,
            commit: true,
        });
        wal.append(WalEntry::Commit { txn: 2 });
        let stats = hook.stats();
        assert_eq!(stats.fired[FaultSite::TwoPcPrepare.idx()], 1);
        assert_eq!(stats.fired[FaultSite::TwoPcDecide.idx()], 1);
        assert_eq!(stats.fired[FaultSite::WalAppend.idx()], 1);

        // a crash at the decide site loses the decision, leaving the
        // prepare in doubt
        let mut wal = Wal::new();
        let hook = Arc::new(FaultHook::new(FaultPlan::crash_at(7, 1)));
        wal.set_fault_hook(hook);
        wal.append(WalEntry::Prepare { txn: 5 }); // site 0: survives
        wal.append(WalEntry::Decide {
            txn: 5,
            commit: true,
        }); // site 1: dropped
        assert_eq!(wal.in_doubt(), vec![5]);
        assert_eq!(wal.durable_decision(5), None);
    }

    #[test]
    fn byte_framing_maps_offsets_to_whole_records() {
        let mut wal = Wal::new();
        wal.append(WalEntry::CreateFile { file: FileId(0) }); // 12 bytes
        wal.append(WalEntry::PageDelta {
            file: FileId(0),
            page: 0,
            offset: 0,
            data: vec![7; 10],
        }); // 30 bytes
        wal.append(WalEntry::Commit { txn: 1 }); // 16 bytes
        assert_eq!(wal.encoded_bytes(), 12 + 30 + 16);
        assert_eq!(wal.records_within(0), 0);
        assert_eq!(wal.records_within(11), 0, "torn inside the first record");
        assert_eq!(wal.records_within(12), 1);
        assert_eq!(wal.records_within(41), 1, "torn inside the delta");
        assert_eq!(wal.records_within(42), 2);
        assert_eq!(wal.records_within(57), 2, "torn inside the commit");
        assert_eq!(wal.records_within(58), 3);
        assert_eq!(wal.records_within(u64::MAX), 3);
    }
}
