//! A small page-based storage engine — the substrate the paper's
//! "typical DBMS" assumptions presuppose but never build.
//!
//! Components:
//!
//! * [`page`] — slotted pages with insert / read / update / delete of
//!   variable-length records.
//! * [`disk`] — an in-memory "disk" of page files with per-file I/O
//!   accounting (the simulated device under the buffer pool).
//! * [`bufmgr`] — a buffer manager: fixed frame pool, clock or LRU
//!   replacement, dirty-page write-back, hit/miss statistics.
//! * [`heap`] — heap files of records over slotted pages.
//! * [`btree`] — a page-based B+Tree mapping `u64` keys to `u64`
//!   values (record ids / encoded payloads), with range scans.
//! * [`fault`] — deterministic fault injection: numbered fault sites
//!   at every WAL append, page free, write-back, miss-load and WAL
//!   flush, with seeded crash and soft-fault plans (zero-cost when
//!   uninstalled).
//! * [`logmgr`] — group-commit log manager: commit tickets, a
//!   window/batch flush pipeline over a simulated log device, and
//!   deferred (flushed-prefix) durability semantics.
//! * [`cdc`] — change-data-capture over the WAL: a subscription API
//!   that decodes the durable committed prefix into typed row changes
//!   (insert/update/delete with before/after images) via a shadow
//!   replay disk, with per-subscriber cursors, bounded-lag
//!   backpressure and resumable checkpoints.
//! * [`undo`] — MVCC undo version chains: volatile pre-image chains
//!   keyed by a global commit timestamp, giving read-only
//!   transactions lock-free consistent snapshots and writers an
//!   in-transaction rollback path, with GC at the oldest-active-
//!   snapshot watermark.
//!
//! `tpcc-db` builds the executable TPC-C database on top; its measured
//! buffer behaviour cross-validates the abstract trace model in
//! `tpcc-workload`/`tpcc-buffer`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod btree;
pub mod bufmgr;
pub mod cdc;
pub mod disk;
pub mod fault;
pub mod heap;
pub mod logmgr;
pub mod page;
pub mod undo;
pub mod wal;

pub use btree::BTree;
pub use bufmgr::{
    BufferManager, BufferStats, LatchStats, PageReadGuard, PageWriteGuard, Replacement,
};
pub use cdc::{CdcCheckpoint, CdcLag, CdcStats, CdcSubscriber, ChangeBatch, RowChange, RowOp};
pub use disk::{DiskManager, FileId};
pub use fault::{FaultHook, FaultPlan, FaultSite, FaultStats, SiteRecord, SoftFault, FAULT_SITES};
pub use heap::{HeapFile, RecordId};
pub use logmgr::{CommitReceipt, GroupCommitConfig, GroupCommitStats, LogManager};
pub use page::SlottedPage;
pub use undo::{Snapshot, UndoStore, VersionKey};
pub use wal::{apply_entry, page_delta, page_deltas, RecoveryError, Wal, WalEntry};
