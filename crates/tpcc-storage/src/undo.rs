//! MVCC undo version chains: volatile pre-image chains that give
//! read-only transactions a consistent snapshot with **zero lock
//! acquisitions**, and writers an in-transaction rollback path.
//!
//! # Model
//!
//! Every versioned row (or index value) is identified by a
//! [`VersionKey`] — `(file, key)` where `key` is a heap record id or a
//! B+Tree key. A writer, before mutating the live bytes, calls
//! [`UndoStore::record`] with the current bytes; the pre-image is
//! pushed onto the key's chain as a *pending* entry owned by the
//! writer's token. At commit, [`UndoStore::commit`] — under one commit
//! mutex — assigns the next global timestamp, stamps every pending
//! entry of the transaction, and only then publishes the timestamp as
//! the new global clock. A reader that pins a snapshot therefore never
//! observes a half-stamped transaction: if it sees commit timestamp
//! `S`, all entries stamped `≤ S` are stamped before `S` was published.
//!
//! # Snapshot rule
//!
//! A reader pins `S =` the clock at begin ([`UndoStore::pin`], RAII
//! [`Snapshot`]). For each versioned read it walks the chain
//! newest→oldest starting from the live bytes:
//!
//! * entry pending or stamped `> S` → the entry's pre-image replaces
//!   the candidate, keep walking (the write is invisible);
//! * entry stamped `≤ S` → stop, the candidate is the visible version
//!   (that committed write produced it).
//!
//! The live bytes must be read **before** the chain is consulted (the
//! chain shard mutex plus the storage layer's frame latches give the
//! required happens-before edge: if the reader saw a writer's new
//! bytes, it also sees that writer's chain entry).
//!
//! # GC watermark
//!
//! Chains are pruned at the **oldest-active-snapshot watermark**: any
//! entry stamped `≤ min(active pins)` (or `≤ clock` when nothing is
//! pinned) can never be consumed — every current pin stops at it
//! without reading its pre-image, and every future pin is `≥ clock ≥`
//! its stamp. Commit prunes the chains it touched; chains that empty
//! are removed from the map, so the store's footprint is bounded by
//! the write working set between the oldest snapshot and now.
//!
//! # Durability
//!
//! Chains are *volatile by design*: snapshots do not survive a crash,
//! and the redo WAL never references undo records (a writer rollback
//! re-applies pre-images through the ordinary logged write path, so
//! replaying forward + compensating deltas reproduces the abort).
//! [`UndoStore::record`] still fires a
//! [`FaultSite::UndoAppend`](crate::fault::FaultSite) so crash sweeps
//! enumerate the instants between a versioned writer's page mutations.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::disk::FileId;
use crate::fault::{FaultHook, FaultSite};
use tpcc_obs::{CounterHandle, Label, Obs};

/// Identifies one versioned row or index value: the owning file plus a
/// heap record id (`RecordId::to_u64`) or B+Tree key.
pub type VersionKey = (FileId, u64);

/// Timestamp marking a chain entry as pending (owner not committed).
const PENDING: u64 = u64::MAX;

/// One pre-image on a version chain.
#[derive(Debug, Clone)]
struct UndoEntry {
    /// Commit timestamp of the write this entry is the pre-image of
    /// ([`PENDING`] until the owner commits).
    ts: u64,
    /// Owning transaction token while pending.
    txn: u64,
    /// Bytes before the write (`None` = the key did not exist).
    before: Option<Box<[u8]>>,
}

/// A pinned snapshot timestamp (RAII: dropping unpins, letting the GC
/// watermark advance past it).
#[derive(Debug)]
pub struct Snapshot<'a> {
    store: &'a UndoStore,
    ts: u64,
}

impl Snapshot<'_> {
    /// The pinned timestamp: writes stamped `≤ ts` are visible.
    #[must_use]
    pub fn ts(&self) -> u64 {
        self.ts
    }
}

impl Drop for Snapshot<'_> {
    fn drop(&mut self) {
        self.store.unpin(self.ts);
    }
}

/// The shared undo store for one database (see the module docs for the
/// protocol).
#[derive(Debug)]
pub struct UndoStore {
    shards: Vec<Mutex<HashMap<VersionKey, Vec<UndoEntry>>>>,
    /// Last published commit timestamp.
    clock: AtomicU64,
    /// Next writer token.
    next_txn: AtomicU64,
    /// Serializes stamp-then-publish so a published timestamp implies
    /// fully stamped entries.
    commit_mu: Mutex<()>,
    /// Active snapshot pins: timestamp → pin count.
    active: Mutex<BTreeMap<u64, usize>>,
    /// Live pre-image bytes currently held by chains.
    live_bytes: AtomicU64,
    fault: Option<Arc<FaultHook>>,
    snapshot_reads: CounterHandle,
    versions_traversed: CounterHandle,
    undo_bytes: CounterHandle,
    aborts: CounterHandle,
}

impl UndoStore {
    /// An empty store with `shards` chain shards (clamped to ≥ 1).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            clock: AtomicU64::new(0),
            next_txn: AtomicU64::new(1),
            commit_mu: Mutex::new(()),
            active: Mutex::new(BTreeMap::new()),
            live_bytes: AtomicU64::new(0),
            fault: None,
            snapshot_reads: CounterHandle::disabled(),
            versions_traversed: CounterHandle::disabled(),
            undo_bytes: CounterHandle::disabled(),
            aborts: CounterHandle::disabled(),
        }
    }

    /// Pre-resolves the store's telemetry counters against `obs`.
    pub fn attach_obs(&mut self, obs: &Obs) {
        self.snapshot_reads = obs.counter_handle("snapshot_reads", Label::None);
        self.versions_traversed = obs.counter_handle("versions_traversed", Label::None);
        self.undo_bytes = obs.counter_handle("undo_bytes", Label::None);
        self.aborts = obs.counter_handle("aborts", Label::None);
    }

    /// Routes [`UndoStore::record`] through `hook`'s
    /// [`FaultSite::UndoAppend`] site.
    pub fn set_fault_hook(&mut self, hook: Arc<FaultHook>) {
        self.fault = Some(hook);
    }

    fn shard(&self, key: VersionKey) -> &Mutex<HashMap<VersionKey, Vec<UndoEntry>>> {
        let h = (key.0 .0 as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(key.1)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        &self.shards[(h >> 33) as usize % self.shards.len()]
    }

    /// Begins a writer: returns its token for [`UndoStore::record`] /
    /// [`UndoStore::commit`] / [`UndoStore::abort`].
    pub fn begin(&self) -> u64 {
        self.next_txn.fetch_add(1, Ordering::Relaxed)
    }

    /// Appends the pre-image of one versioned write as a pending entry
    /// owned by `txn`. Call **before** mutating the live bytes, while
    /// holding the logical lock that serializes writers of this key.
    pub fn record(&self, txn: u64, key: VersionKey, before: Option<&[u8]>) {
        if let Some(hook) = &self.fault {
            // volatile store: a tripped crash freezes the WAL, not us
            let _ = hook.fire(FaultSite::UndoAppend);
        }
        let bytes = before.map_or(0, <[u8]>::len) as u64;
        self.live_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.undo_bytes.add(bytes);
        let mut shard = self.shard(key).lock().expect("undo shard");
        shard.entry(key).or_default().push(UndoEntry {
            ts: PENDING,
            txn,
            before: before.map(Box::from),
        });
    }

    /// Commits writer `txn`: stamps every pending entry it owns on the
    /// chains in `keys` with the next global timestamp, publishes that
    /// timestamp, prunes the touched chains at the GC watermark, and
    /// returns the timestamp.
    pub fn commit(&self, txn: u64, keys: &[VersionKey]) -> u64 {
        let guard = self.commit_mu.lock().expect("undo commit");
        let ts = self.clock.load(Ordering::Relaxed) + 1;
        for &key in keys {
            let mut shard = self.shard(key).lock().expect("undo shard");
            if let Some(chain) = shard.get_mut(&key) {
                for entry in chain.iter_mut().rev() {
                    if entry.ts == PENDING && entry.txn == txn {
                        entry.ts = ts;
                    }
                }
            }
        }
        // publish only after every entry is stamped: a reader pinning
        // `ts` must never see one of this transaction's entries pending
        self.clock.store(ts, Ordering::Release);
        drop(guard);
        let watermark = self.watermark();
        for &key in keys {
            self.prune_chain(key, watermark);
        }
        ts
    }

    /// Aborts writer `txn`: removes its pending entries from the chains
    /// in `keys`. The caller restores the live bytes (through the
    /// ordinary logged write path) **before** calling this, so readers
    /// traversing mid-abort still resolve to the committed pre-images.
    pub fn abort(&self, txn: u64, keys: &[VersionKey]) {
        for &key in keys {
            let mut shard = self.shard(key).lock().expect("undo shard");
            if let Some(chain) = shard.get_mut(&key) {
                let mut freed = 0u64;
                chain.retain(|e| {
                    let mine = e.ts == PENDING && e.txn == txn;
                    if mine {
                        freed += e.before.as_ref().map_or(0, |b| b.len() as u64);
                    }
                    !mine
                });
                if chain.is_empty() {
                    shard.remove(&key);
                }
                self.live_bytes.fetch_sub(freed, Ordering::Relaxed);
            }
        }
        self.aborts.add(1);
    }

    /// Pins a snapshot at the current clock. Taking the pin under the
    /// active-set mutex closes the race with a concurrent commit's GC:
    /// either the pin registers first (the watermark respects it) or
    /// the GC runs first (everything it pruned is `≤` the pin and
    /// unreachable anyway).
    #[must_use]
    pub fn pin(&self) -> Snapshot<'_> {
        let mut active = self.active.lock().expect("undo pins");
        let ts = self.clock.load(Ordering::Acquire);
        *active.entry(ts).or_insert(0) += 1;
        Snapshot { store: self, ts }
    }

    fn unpin(&self, ts: u64) {
        let mut active = self.active.lock().expect("undo pins");
        if let Some(count) = active.get_mut(&ts) {
            *count -= 1;
            if *count == 0 {
                active.remove(&ts);
            }
        }
    }

    /// The GC watermark: the oldest active snapshot, or the clock when
    /// nothing is pinned.
    #[must_use]
    pub fn watermark(&self) -> u64 {
        let active = self.active.lock().expect("undo pins");
        let clock = self.clock.load(Ordering::Acquire);
        active.keys().next().copied().unwrap_or(clock).min(clock)
    }

    fn prune_chain(&self, key: VersionKey, watermark: u64) {
        let mut shard = self.shard(key).lock().expect("undo shard");
        if let Some(chain) = shard.get_mut(&key) {
            let keep = chain
                .iter()
                .position(|e| e.ts > watermark || e.ts == PENDING)
                .unwrap_or(chain.len());
            if keep > 0 {
                let freed: u64 = chain[..keep]
                    .iter()
                    .map(|e| e.before.as_ref().map_or(0, |b| b.len() as u64))
                    .sum();
                chain.drain(..keep);
                self.live_bytes.fetch_sub(freed, Ordering::Relaxed);
            }
            if chain.is_empty() {
                shard.remove(&key);
            }
        }
    }

    /// Resolves the version of `key` visible at `snapshot_ts`, given
    /// the already-read live bytes (`None` = the key does not currently
    /// exist). Walks the chain newest→oldest per the snapshot rule.
    #[must_use]
    pub fn visible(
        &self,
        key: VersionKey,
        snapshot_ts: u64,
        live: Option<Vec<u8>>,
    ) -> Option<Vec<u8>> {
        self.snapshot_reads.add(1);
        let shard = self.shard(key).lock().expect("undo shard");
        let Some(chain) = shard.get(&key) else {
            return live;
        };
        let mut candidate = live;
        let mut traversed = 0u64;
        for entry in chain.iter().rev() {
            if entry.ts == PENDING || entry.ts > snapshot_ts {
                candidate = entry.before.as_ref().map(|b| b.to_vec());
                traversed += 1;
            } else {
                break;
            }
        }
        drop(shard);
        self.versions_traversed.add(traversed);
        candidate
    }

    /// Pre-image bytes currently held by chains (the store's live
    /// footprint, net of GC and aborts).
    #[must_use]
    pub fn live_undo_bytes(&self) -> u64 {
        self.live_bytes.load(Ordering::Relaxed)
    }

    /// Version chains currently held (keys with at least one entry).
    #[must_use]
    pub fn chains(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("undo shard").len())
            .sum()
    }

    /// The last published commit timestamp.
    #[must_use]
    pub fn clock(&self) -> u64 {
        self.clock.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: FileId = FileId(3);

    fn bytes(s: &str) -> Option<Vec<u8>> {
        Some(s.as_bytes().to_vec())
    }

    #[test]
    fn pending_writes_are_invisible_and_committed_ones_visible() {
        let store = UndoStore::new(4);
        let key = (F, 9);
        let snap = store.pin();

        let t = store.begin();
        store.record(t, key, bytes("v0").as_deref());
        // live bytes are now "v1"; the pin predates the commit
        assert_eq!(store.visible(key, snap.ts(), bytes("v1")), bytes("v0"));
        store.commit(t, &[key]);
        assert_eq!(
            store.visible(key, snap.ts(), bytes("v1")),
            bytes("v0"),
            "still invisible to the old snapshot after commit"
        );

        let newer = store.pin();
        assert_eq!(store.visible(key, newer.ts(), bytes("v1")), bytes("v1"));
    }

    #[test]
    fn chain_walk_resolves_across_multiple_versions() {
        let store = UndoStore::new(1);
        let key = (F, 1);
        // three committed writes: v0 -> v1 -> v2 -> v3 (live)
        let mut pins = Vec::new();
        for v in ["v0", "v1", "v2"] {
            pins.push(store.pin());
            let t = store.begin();
            store.record(t, key, bytes(v).as_deref());
            store.commit(t, &[key]);
        }
        let after = store.pin();
        assert_eq!(store.visible(key, pins[0].ts(), bytes("v3")), bytes("v0"));
        assert_eq!(store.visible(key, pins[1].ts(), bytes("v3")), bytes("v1"));
        assert_eq!(store.visible(key, pins[2].ts(), bytes("v3")), bytes("v2"));
        assert_eq!(store.visible(key, after.ts(), bytes("v3")), bytes("v3"));
    }

    #[test]
    fn double_update_in_one_transaction_resolves_to_the_oldest_pre_image() {
        let store = UndoStore::new(2);
        let key = (F, 5);
        let snap = store.pin();
        let t = store.begin();
        store.record(t, key, bytes("orig").as_deref());
        store.record(t, key, bytes("mid").as_deref());
        assert_eq!(
            store.visible(key, snap.ts(), bytes("new")),
            bytes("orig"),
            "both pending entries must be skipped"
        );
        store.commit(t, &[key]);
        assert_eq!(store.visible(key, snap.ts(), bytes("new")), bytes("orig"));
    }

    #[test]
    fn abort_removes_pending_entries_only() {
        let store = UndoStore::new(2);
        let key = (F, 2);
        let snap = store.pin(); // ts 0: keeps t0's committed entry alive past GC
        let t0 = store.begin();
        store.record(t0, key, bytes("v0").as_deref());
        store.commit(t0, &[key]);
        let before = store.live_undo_bytes();

        let t1 = store.begin();
        store.record(t1, key, bytes("v1").as_deref());
        store.abort(t1, &[key]);
        assert_eq!(store.live_undo_bytes(), before);
        // the committed entry is untouched: an old snapshot still works
        let old = store.visible(key, 0, bytes("v1"));
        assert_eq!(old, bytes("v0"));
        drop(snap);
    }

    #[test]
    fn gc_prunes_at_the_oldest_active_snapshot_watermark() {
        let store = UndoStore::new(1);
        let key = (F, 7);
        let pin = store.pin(); // ts 0
        for v in ["a", "b", "c"] {
            let t = store.begin();
            store.record(t, key, bytes(v).as_deref());
            store.commit(t, &[key]);
        }
        assert_eq!(store.watermark(), 0, "pin holds the watermark down");
        assert!(store.live_undo_bytes() >= 3, "all three pre-images held");
        drop(pin);
        assert_eq!(store.watermark(), store.clock());
        // next commit on the chain prunes everything now unreachable
        let t = store.begin();
        store.record(t, key, bytes("d").as_deref());
        store.commit(t, &[key]);
        assert_eq!(store.live_undo_bytes(), 0, "all entries pruned");
        assert_eq!(store.chains(), 0, "empty chain removed from the map");
    }

    /// 2PC in-doubt regression: a writer that has *prepared* but not
    /// yet learned its coordinator's decision still owns a `PENDING`
    /// chain entry. When the last pinned reader releases, the GC
    /// watermark jumps to the clock — past the position a stamped
    /// entry would occupy at the pending entry's chain index — and the
    /// next commit-triggered prune sweeps the chain. The prune
    /// predicate (`ts > watermark || ts == PENDING`) must treat
    /// `PENDING` as unprunable: losing the pre-image would make the
    /// in-doubt write visible to every reader before the decision
    /// arrives.
    #[test]
    fn gc_never_prunes_a_pending_entry_even_after_the_watermark_passes() {
        let store = UndoStore::new(1);
        let key = (F, 21);
        let other = (F, 22);

        let pin = store.pin(); // ts 0: holds the watermark down
        let a = store.begin();
        store.record(a, key, bytes("v0").as_deref());
        store.commit(a, &[key]); // chain: [ts=1 "v0"]

        // the 2PC writer: prepared (pre-image recorded, live bytes
        // updated to "v2"), decision not yet durable — stays pending
        let b = store.begin();
        store.record(b, key, bytes("v1").as_deref());

        // the pinned reader releases; the watermark passes the stamped
        // entry *and* the pending entry's chain position
        drop(pin);
        assert_eq!(store.watermark(), store.clock());

        // an unrelated commit prunes both chains it names
        let c = store.begin();
        store.record(c, other, bytes("x").as_deref());
        store.commit(c, &[other, key]);

        // the stamped, unreachable entry was pruned...
        assert_eq!(
            store.visible(key, store.clock(), bytes("v2")),
            bytes("v1"),
            "the PENDING pre-image must survive GC: readers resolve the \
             in-doubt write to its pre-image until the decision lands"
        );
        // ...and the pending one survived to serve both outcomes
        store.commit(b, &[key]);
        let after = store.pin();
        assert_eq!(store.visible(key, after.ts(), bytes("v2")), bytes("v2"));
    }

    #[test]
    fn nonexistent_before_images_resolve_to_none() {
        let store = UndoStore::new(1);
        let key = (F, 11);
        let snap = store.pin();
        let t = store.begin();
        store.record(t, key, None); // insert: no prior version
        store.commit(t, &[key]);
        assert_eq!(store.visible(key, snap.ts(), bytes("row")), None);
        let newer = store.pin();
        assert_eq!(store.visible(key, newer.ts(), bytes("row")), bytes("row"));
    }

    #[test]
    fn commit_timestamps_are_monotone_and_published_after_stamping() {
        let store = UndoStore::new(2);
        let a = store.begin();
        let b = store.begin();
        store.record(a, (F, 1), bytes("x").as_deref());
        store.record(b, (F, 2), bytes("y").as_deref());
        let ta = store.commit(a, &[(F, 1)]);
        let tb = store.commit(b, &[(F, 2)]);
        assert!(tb > ta);
        assert_eq!(store.clock(), tb);
    }

    #[test]
    fn concurrent_readers_see_stable_snapshots_under_writers() {
        let store = UndoStore::new(8);
        let key = (F, 42);
        // the shared "live bytes": incremented by the writer after each
        // pre-image lands, exactly as a page write follows record()
        let live = AtomicU64::new(0);
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                let mut v = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let t = store.begin();
                    let cur = v.to_le_bytes();
                    store.record(t, key, Some(&cur));
                    v += 1;
                    live.store(v, Ordering::Relaxed);
                    store.commit(t, &[key]);
                }
                v
            });
            for _ in 0..4 {
                scope.spawn(|| {
                    while !stop.load(Ordering::Acquire) {
                        let snap = store.pin();
                        let seen = live.load(Ordering::Relaxed).to_le_bytes().to_vec();
                        let a = store.visible(key, snap.ts(), Some(seen.clone()));
                        let b = store.visible(key, snap.ts(), Some(seen));
                        assert_eq!(a, b, "one snapshot, one answer");
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(30));
            stop.store(true, Ordering::Release);
            assert!(writer.join().expect("writer") > 0);
        });
    }
}
