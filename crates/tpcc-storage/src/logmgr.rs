//! Group-commit log manager: asynchronous durable WAL with a flush
//! pipeline.
//!
//! The paper's §5 log-disk model prices durability per *flush*, not per
//! commit: a log device with service time `log_io_delay_us` saturates
//! at `1 / delay` flushes per second, and throughput beyond that is
//! only possible when each flush carries more than one commit. The
//! synchronous WAL (every append immediately durable) makes that cost
//! invisible. This module inserts the pipeline stage that makes it
//! real:
//!
//! 1. A committing terminal appends its `Commit` record under the WAL
//!    mutex and receives a **commit ticket** — the total number of
//!    commit records appended so far, which is also the count that must
//!    become durable before the terminal may report success.
//! 2. The terminal blocks on the ticket. A background **batcher**
//!    thread wakes, waits up to `flush_window_us` for more commits to
//!    pile in (short-circuiting as soon as `max_batch` are pending),
//!    then performs one flush: it sleeps `log_io_delay_us` (the
//!    simulated device write), advances the WAL's durable watermark
//!    over everything appended so far ([`Wal::flush`]), and wakes every
//!    waiter whose ticket falls inside the flushed prefix.
//! 3. Recovery replays the committed prefix of the **durable
//!    watermark**: a crash between an append and the next flush loses
//!    the volatile tail, never a flushed commit. Each flush is a
//!    [`FaultSite::WalFlush`](crate::fault::FaultSite::WalFlush) fault
//!    site, so the crashpoint sweep proves convergence at every flush
//!    boundary.
//!
//! # Ticket protocol invariant
//!
//! Tickets are assigned under the WAL mutex, *after* the append, as the
//! running commit count — so ticket order equals log order, and
//! `durable_commits() >= ticket` is exactly "my commit record is inside
//! the durable prefix". A flush always covers the whole tail, so the
//! durable commit count never skips a ticket: wakeups cannot reorder a
//! waiter past its own record.
//!
//! # Deterministic inline mode
//!
//! [`GroupCommitConfig::inline_every`] runs without the batcher thread:
//! the committing thread itself flushes once every `max_batch` commits.
//! On a serial workload the fault-site numbering is then identical run
//! to run, which is what the crashpoint sweep needs to enumerate
//! `wal_flush` sites reproducibly. Inline commits never block (the
//! committer is the flusher), so the mode is a durability *schedule*,
//! not a wait protocol.
//!
//! # Lock order
//!
//! Both the commit path and the batcher acquire `wal → state`, never
//! the reverse, and neither touches a buffer-pool shard mutex or frame
//! latch — the batcher sits strictly *below* the pool in the existing
//! `shard → wal → disk` hierarchy (see `bufmgr`'s module docs and
//! DESIGN.md §10).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tpcc_obs::{CounterHandle, HistogramHandle, Label, Obs, QuantileSketch, TraceHandle};

use crate::wal::{Wal, WalEntry};

/// Knobs for the group-commit pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommitConfig {
    /// How long the batcher waits for more commits before flushing a
    /// non-full group, in microseconds. 0 flushes as soon as the
    /// batcher sees any pending commit.
    pub flush_window_us: u64,
    /// Flush immediately once this many commits are pending, regardless
    /// of the window. Also the inline-mode flush period.
    pub max_batch: usize,
    /// Simulated log-device service time per flush, in microseconds —
    /// the log-disk sibling of the buffer pool's `io_delay_us`.
    pub log_io_delay_us: u64,
    /// Deterministic inline mode: no batcher thread, the committer
    /// flushes every `max_batch` commits itself (crashpoint sweeps).
    pub inline: bool,
}

impl GroupCommitConfig {
    /// Threaded batcher with the given window/batch/device knobs.
    #[must_use]
    pub fn new(flush_window_us: u64, max_batch: usize, log_io_delay_us: u64) -> Self {
        Self {
            flush_window_us,
            max_batch: max_batch.max(1),
            log_io_delay_us,
            inline: false,
        }
    }

    /// Deterministic inline mode: flush every `max_batch` commits on
    /// the committing thread, no batcher, no device latency.
    #[must_use]
    pub fn inline_every(max_batch: usize) -> Self {
        Self {
            flush_window_us: 0,
            max_batch: max_batch.max(1),
            log_io_delay_us: 0,
            inline: true,
        }
    }
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        Self::new(100, 32, 100)
    }
}

/// What one durable commit observed on its way out — the property the
/// wakeup test asserts: `durable_at_wake >= ticket` for every commit.
#[derive(Debug, Clone, Copy)]
pub struct CommitReceipt {
    /// This commit's ticket: the commit count including it.
    pub ticket: u64,
    /// Durable commit count when the waiter was released (0 when the
    /// run crashed or shut down before durability).
    pub durable_at_wake: u64,
    /// Nanoseconds spent blocked on the ticket (0 in inline mode).
    pub wait_ns: u64,
}

/// Counter snapshot of the pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupCommitStats {
    /// Flushes performed (watermark advances).
    pub flushes: u64,
    /// Commit records those flushes made durable.
    pub commits_flushed: u64,
    /// Flushes triggered by `max_batch` pressure rather than the window
    /// timer.
    pub cap_flushes: u64,
    /// WAL entries (all record types) made durable by flushes.
    pub entries_flushed: u64,
}

impl GroupCommitStats {
    /// Mean commits per flush (0 when nothing flushed).
    #[must_use]
    pub fn commits_per_flush(&self) -> f64 {
        if self.flushes == 0 {
            0.0
        } else {
            self.commits_flushed as f64 / self.flushes as f64
        }
    }
}

/// Waiter/batcher shared state, guarded by one mutex. `appended` and
/// `durable` are commit *counts* (tickets), not entry indexes.
#[derive(Debug, Default)]
struct GcState {
    /// Commit tickets issued (commit records appended).
    appended: u64,
    /// Tickets durably flushed.
    durable: u64,
    /// Inline mode: commits since the last inline flush.
    since_flush: u64,
    /// The fault hook tripped; waiters drain without durability.
    crashed: bool,
    /// Batcher asked to exit (manager drop).
    shutdown: bool,
}

/// Observability handles, re-resolvable when the recorder changes
/// (`set_obs` after enabling group commit).
#[derive(Debug, Default)]
struct GcObs {
    flushes: CounterHandle,
    group_commits: CounterHandle,
    commit_wait: HistogramHandle,
    flush_trace: TraceHandle,
}

#[derive(Debug)]
struct GcShared {
    cfg: GroupCommitConfig,
    wal: Arc<Mutex<Option<Wal>>>,
    state: Mutex<GcState>,
    /// Terminals wait here for `durable >= ticket`.
    commit_cv: Condvar,
    /// The batcher waits here for pending commits.
    work_cv: Condvar,
    flushes: AtomicU64,
    commits_flushed: AtomicU64,
    cap_flushes: AtomicU64,
    entries_flushed: AtomicU64,
    /// Cumulative commit-wait sketch (nanoseconds), mergeable into
    /// window deltas by telemetry readers.
    wait_ns: Mutex<QuantileSketch>,
    obs: Mutex<GcObs>,
}

impl GcShared {
    /// One flush: simulated device latency, watermark advance, waiter
    /// wakeup. `cap` records whether `max_batch` pressure (rather than
    /// the window timer) forced it.
    fn do_flush(&self, cap: bool) {
        if self.cfg.log_io_delay_us > 0 {
            std::thread::sleep(Duration::from_micros(self.cfg.log_io_delay_us));
        }
        let trace_start = self.obs.lock().expect("gc obs").flush_trace.now();
        let flushed = {
            let mut wal = self.wal.lock().expect("wal lock");
            let Some(wal) = wal.as_mut() else {
                return; // WAL detached (quiesced take_wal): nothing to flush
            };
            let before_entries = wal.durable_len();
            let before_commits = wal.durable_commits();
            wal.flush().then(|| {
                (
                    wal.durable_commits(),
                    wal.durable_commits() - before_commits,
                    (wal.durable_len() - before_entries) as u64,
                )
            })
        };
        let mut st = self.state.lock().expect("gc state");
        // a durable commit was necessarily appended: a committer that
        // has released the WAL lock but not yet taken the state lock
        // may lag `st.appended` behind the log, so catch it up here
        // rather than let `appended - durable` underflow
        if let Some((durable, _, _)) = flushed {
            st.appended = st.appended.max(durable);
        }
        match flushed {
            // an already-durable tail is not a flush: don't let quiesce
            // calls dilute the commits-per-flush batching statistics
            Some((durable, 0, 0)) => st.durable = durable,
            Some((durable, commits, entries)) => {
                st.durable = durable;
                self.flushes.fetch_add(1, Ordering::Relaxed);
                self.commits_flushed.fetch_add(commits, Ordering::Relaxed);
                self.entries_flushed.fetch_add(entries, Ordering::Relaxed);
                if cap {
                    self.cap_flushes.fetch_add(1, Ordering::Relaxed);
                }
                let obs = self.obs.lock().expect("gc obs");
                obs.flushes.add(1);
                obs.group_commits.add(commits);
                obs.flush_trace.record_opt("wal_flush", trace_start);
            }
            None => st.crashed = true, // the crash froze the watermark
        }
        drop(st);
        self.commit_cv.notify_all();
    }

    fn batcher_loop(&self) {
        let mut st = self.state.lock().expect("gc state");
        loop {
            // park until there is work (and the run is still live)
            while st.appended == st.durable || st.crashed {
                if st.shutdown {
                    return;
                }
                st = self.work_cv.wait(st).expect("gc state");
            }
            if !st.shutdown && self.cfg.flush_window_us > 0 {
                // group window: gather commits until the cap fills,
                // the window expires, or shutdown asks for a last flush
                let deadline = Instant::now() + Duration::from_micros(self.cfg.flush_window_us);
                while (st.appended - st.durable) < self.cfg.max_batch as u64
                    && !st.shutdown
                    && !st.crashed
                {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, _timeout) = self
                        .work_cv
                        .wait_timeout(st, deadline - now)
                        .expect("gc state");
                    st = guard;
                }
            }
            if st.crashed {
                continue;
            }
            let cap = (st.appended - st.durable) >= self.cfg.max_batch as u64;
            let leaving = st.shutdown;
            drop(st);
            self.do_flush(cap);
            st = self.state.lock().expect("gc state");
            if leaving && st.appended == st.durable {
                return;
            }
        }
    }
}

/// The group-commit pipeline: ticket issue on the commit path, plus
/// (in threaded mode) the batcher thread it owns. Dropping the manager
/// shuts the batcher down after a final flush of any pending commits.
#[derive(Debug)]
pub struct LogManager {
    shared: Arc<GcShared>,
    batcher: Option<JoinHandle<()>>,
}

impl LogManager {
    /// Builds the pipeline over the shared WAL slot. The WAL must
    /// already be in deferred-durability mode ([`Wal::set_deferred`]) —
    /// `BufferManager::enable_group_commit` arranges both.
    #[must_use]
    pub fn new(cfg: GroupCommitConfig, wal: Arc<Mutex<Option<Wal>>>) -> Self {
        let shared = Arc::new(GcShared {
            cfg,
            wal,
            state: Mutex::new(GcState::default()),
            commit_cv: Condvar::new(),
            work_cv: Condvar::new(),
            flushes: AtomicU64::new(0),
            commits_flushed: AtomicU64::new(0),
            cap_flushes: AtomicU64::new(0),
            entries_flushed: AtomicU64::new(0),
            wait_ns: Mutex::new(QuantileSketch::default()),
            obs: Mutex::new(GcObs::default()),
        });
        let batcher = (!cfg.inline).then(|| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("wal-batcher".into())
                .spawn(move || shared.batcher_loop())
                .expect("spawn wal-batcher")
        });
        Self { shared, batcher }
    }

    /// The configured knobs.
    #[must_use]
    pub fn config(&self) -> GroupCommitConfig {
        self.shared.cfg
    }

    /// Resolves observability handles against `obs` (call again after
    /// the recorder changes): `wal_flushes` / `group_commits` counters,
    /// the `commit_wait_ns` histogram, and `log`-category flush trace
    /// events.
    pub fn set_obs(&self, obs: &Obs) {
        let mut h = self.shared.obs.lock().expect("gc obs");
        h.flushes = obs.counter_handle("wal_flushes", Label::None);
        h.group_commits = obs.counter_handle("group_commits", Label::None);
        h.commit_wait = obs.histogram_handle("commit_wait_ns", Label::None);
        h.flush_trace = obs.trace_handle("log");
    }

    /// Appends the commit record for `txn` and blocks until it is in
    /// the durably flushed prefix (threaded mode) or applies the inline
    /// flush schedule (inline mode). Never blocks after a crash or
    /// shutdown — waiters drain with `durable_at_wake = 0`.
    pub fn commit(&self, txn: u64) -> CommitReceipt {
        let ticket = {
            let mut wal = self.shared.wal.lock().expect("wal lock");
            let Some(wal) = wal.as_mut() else {
                return CommitReceipt {
                    ticket: 0,
                    durable_at_wake: 0,
                    wait_ns: 0,
                };
            };
            let before = wal.commits();
            wal.append(WalEntry::Commit { txn });
            if wal.commits() == before {
                // the crash dropped the record: no ticket, no waiting
                let mut st = self.shared.state.lock().expect("gc state");
                st.crashed = true;
                drop(st);
                self.shared.commit_cv.notify_all();
                self.shared.work_cv.notify_all();
                return CommitReceipt {
                    ticket: 0,
                    durable_at_wake: 0,
                    wait_ns: 0,
                };
            }
            wal.commits()
        };
        if self.shared.cfg.inline {
            let flush = {
                let mut st = self.shared.state.lock().expect("gc state");
                st.appended = st.appended.max(ticket);
                st.since_flush += 1;
                let due = st.since_flush >= self.shared.cfg.max_batch as u64;
                if due {
                    st.since_flush = 0;
                }
                due
            };
            if flush {
                self.shared.do_flush(true);
            }
            let durable = self.shared.state.lock().expect("gc state").durable;
            return CommitReceipt {
                ticket,
                durable_at_wake: durable,
                wait_ns: 0,
            };
        }
        let start = Instant::now();
        let mut st = self.shared.state.lock().expect("gc state");
        st.appended = st.appended.max(ticket);
        self.shared.work_cv.notify_one();
        while st.durable < ticket && !st.crashed && !st.shutdown {
            st = self.shared.commit_cv.wait(st).expect("gc state");
        }
        let durable_at_wake = if st.durable >= ticket { st.durable } else { 0 };
        drop(st);
        let wait_ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        self.shared
            .wait_ns
            .lock()
            .expect("gc wait sketch")
            .record(wait_ns);
        self.shared
            .obs
            .lock()
            .expect("gc obs")
            .commit_wait
            .record(wait_ns);
        CommitReceipt {
            ticket,
            durable_at_wake,
            wait_ns,
        }
    }

    /// Forces a flush of whatever is pending (quiesce points: sweeps,
    /// benchmarks, shutdown). No-op when the tail is empty.
    pub fn flush_now(&self) {
        self.shared.do_flush(false);
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> GroupCommitStats {
        GroupCommitStats {
            flushes: self.shared.flushes.load(Ordering::Relaxed),
            commits_flushed: self.shared.commits_flushed.load(Ordering::Relaxed),
            cap_flushes: self.shared.cap_flushes.load(Ordering::Relaxed),
            entries_flushed: self.shared.entries_flushed.load(Ordering::Relaxed),
        }
    }

    /// Clone of the cumulative commit-wait sketch (nanoseconds;
    /// threaded mode only — inline commits never wait).
    #[must_use]
    pub fn commit_wait_sketch(&self) -> QuantileSketch {
        self.shared.wait_ns.lock().expect("gc wait sketch").clone()
    }
}

impl Drop for LogManager {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("gc state");
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        self.shared.commit_cv.notify_all();
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared_wal(deferred: bool) -> Arc<Mutex<Option<Wal>>> {
        let mut wal = Wal::new();
        wal.set_deferred(deferred);
        Arc::new(Mutex::new(Some(wal)))
    }

    #[test]
    fn threaded_commit_blocks_until_its_ticket_is_durable() {
        let wal = shared_wal(true);
        let lm = LogManager::new(GroupCommitConfig::new(50, 4, 0), Arc::clone(&wal));
        for txn in 1..=10u64 {
            let r = lm.commit(txn);
            assert_eq!(r.ticket, txn);
            assert!(
                r.durable_at_wake >= r.ticket,
                "woken commit must be durable (ticket {}, durable {})",
                r.ticket,
                r.durable_at_wake
            );
        }
        let w = wal.lock().expect("wal");
        let w = w.as_ref().expect("present");
        assert_eq!(w.durable_commits(), 10);
        drop(lm);
    }

    #[test]
    fn max_batch_pressure_short_circuits_the_window() {
        let wal = shared_wal(true);
        // an hour-long window: only cap pressure can release a flush
        let lm = LogManager::new(
            GroupCommitConfig::new(3_600_000_000, 1, 0),
            Arc::clone(&wal),
        );
        let r = lm.commit(1);
        assert_eq!(r.durable_at_wake, 1, "cap of 1: every commit flushes");
        let stats = lm.stats();
        assert_eq!(stats.flushes, 1);
        assert_eq!(stats.cap_flushes, 1);
        drop(lm);
    }

    #[test]
    fn inline_mode_flushes_every_max_batch_commits() {
        let wal = shared_wal(true);
        let lm = LogManager::new(GroupCommitConfig::inline_every(3), Arc::clone(&wal));
        for txn in 1..=7u64 {
            lm.commit(txn);
        }
        let stats = lm.stats();
        assert_eq!(stats.flushes, 2, "7 commits at period 3 → flushes at 3, 6");
        assert_eq!(stats.commits_flushed, 6);
        assert_eq!(
            wal.lock()
                .expect("wal")
                .as_ref()
                .expect("present")
                .durable_commits(),
            6,
            "the 7th commit is still volatile"
        );
        lm.flush_now();
        assert_eq!(lm.stats().commits_flushed, 7);
    }

    #[test]
    fn flush_now_drains_the_pending_tail() {
        let wal = shared_wal(true);
        let lm = LogManager::new(GroupCommitConfig::inline_every(100), Arc::clone(&wal));
        lm.commit(1);
        assert_eq!(
            wal.lock()
                .expect("wal")
                .as_ref()
                .expect("present")
                .durable_commits(),
            0
        );
        lm.flush_now();
        assert_eq!(
            wal.lock()
                .expect("wal")
                .as_ref()
                .expect("present")
                .durable_commits(),
            1
        );
    }

    #[test]
    fn commits_per_flush_exceeds_one_under_concurrency() {
        let wal = shared_wal(true);
        let lm = Arc::new(LogManager::new(
            GroupCommitConfig::new(200, 64, 50),
            Arc::clone(&wal),
        ));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let lm = Arc::clone(&lm);
                std::thread::spawn(move || {
                    for i in 0..25u64 {
                        let r = lm.commit(t * 1000 + i);
                        assert!(r.durable_at_wake >= r.ticket);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("terminal");
        }
        let stats = lm.stats();
        assert_eq!(stats.commits_flushed, 200);
        assert!(
            stats.commits_per_flush() > 1.0,
            "8 concurrent terminals with a 50µs device must batch: {stats:?}"
        );
    }
}
