//! A page-based B+Tree mapping `u64` keys to `u64` values.
//!
//! TPC-C's composite keys — `(warehouse, district, customer)`,
//! `(item, warehouse)`, `(warehouse, district, order)` — all pack into
//! 64 bits, and values are packed [`crate::heap::RecordId`]s, so
//! fixed-width entries keep the node layout simple and dense.
//!
//! Node layout (one page each):
//!
//! ```text
//! [kind: u8][pad: u8][n: u16][next_leaf: u32]
//! leaf:     n × (key: u64, value: u64)
//! internal: child₀: u32, then n × (key: u64, childᵢ₊₁: u32)
//! ```
//!
//! Internal separator `kᵢ` bounds its left child: subtree `i` holds keys
//! `< kᵢ`. Deletes are *lazy* (no rebalancing): entries are removed and
//! leaves may underflow, which is harmless for lookups and scans and
//! matches the benchmark's delete pattern (oldest New-Order rows only).
//!
//! # Latching (crabbing)
//!
//! All operations take `&self`; concurrency control is per-page latch
//! **crabbing** over [`BufferManager`] page guards, in the discipline of
//! Bayer & Schkolnick (1977):
//!
//! * **Reads** (`get`, `scan_range`) descend with shared coupling —
//!   latch the child, then release the parent — and scans crab
//!   left-to-right along the leaf chain.
//! * **`delete`** and the common-case `insert` descend shared and take
//!   only the *leaf* exclusively. The parent stays share-latched while
//!   the leaf latch is upgraded, so the leaf cannot be split between
//!   the shared and exclusive fix (splits require the parent latched
//!   exclusively). Deletes are lazy and never restructure, so this
//!   path never restarts.
//! * **`insert` into a full leaf** restarts as a *pessimistic* descent
//!   with exclusive coupling that splits any full node top-down while
//!   holding only parent + child (at most three page latches with the
//!   transient sibling allocation), so the parent always has room for
//!   the separator and splits never propagate upward.
//!
//! The `root` field is the **structure latch**: a `RwLock` around the
//! root page number. Every descent acquires it shared just long enough
//! to latch the root page; only a root split takes it exclusively (and
//! acquires it *before* any page latch, preserving the
//! structure-before-page order that keeps the hierarchy acyclic). See
//! DESIGN.md §8 for the deadlock-freedom argument.

use crate::bufmgr::{BufferManager, PageWriteGuard};
use crate::disk::FileId;
use std::sync::RwLock;
use tpcc_obs::{CounterHandle, Label, Obs};

const HEADER: usize = 8;
const LEAF: u8 = 0;
const INTERNAL: u8 = 1;
const NO_LEAF: u32 = u32::MAX;

/// A B+Tree handle (root page may move as the tree grows).
#[derive(Debug)]
pub struct BTree {
    file: FileId,
    /// Structure latch: guards the root page *number*. Shared by every
    /// descent until the root page itself is latched; exclusive only
    /// while a root split swaps the pointer.
    root: RwLock<u32>,
    leaf_cap: usize,
    internal_cap: usize,
    /// Pre-resolved structure-event counters (disabled until
    /// [`BTree::attach_obs`]); avoids a recorder map lookup per node
    /// visit on the hot path.
    visits: CounterHandle,
    splits: CounterHandle,
    restarts: CounterHandle,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        keys: Vec<u64>,
        vals: Vec<u64>,
        next: u32,
    },
    Internal {
        keys: Vec<u64>,
        children: Vec<u32>,
    },
}

impl BTree {
    /// Creates an empty tree in a fresh file.
    pub fn create(bm: &BufferManager) -> Self {
        let page_size = bm.page_size();
        let file = bm.create_file();
        let leaf_cap = (page_size - HEADER) / 16;
        let internal_cap = (page_size - HEADER - 4) / 12;
        assert!(
            leaf_cap >= 3 && internal_cap >= 3,
            "page too small for a B+Tree"
        );
        let (root, ()) = bm.allocate_page(file, |data| {
            encode(
                data,
                &Node::Leaf {
                    keys: Vec::new(),
                    vals: Vec::new(),
                    next: NO_LEAF,
                },
            );
        });
        Self {
            file,
            root: RwLock::new(root),
            leaf_cap,
            internal_cap,
            visits: CounterHandle::disabled(),
            splits: CounterHandle::disabled(),
            restarts: CounterHandle::disabled(),
        }
    }

    /// Resolves per-tree structure-event counters against `obs`
    /// (`btree_node_visits` / `btree_splits` / `btree_restarts`,
    /// labelled by file id).
    pub fn attach_obs(&mut self, obs: &Obs) {
        self.visits = obs.counter_handle("btree_node_visits", Label::Idx(self.file.0));
        self.splits = obs.counter_handle("btree_splits", Label::Idx(self.file.0));
        self.restarts = obs.counter_handle("btree_restarts", Label::Idx(self.file.0));
    }

    /// The index file id (for buffer statistics).
    #[must_use]
    pub fn file(&self) -> FileId {
        self.file
    }

    /// Looks up a key (shared latch coupling down the tree).
    pub fn get(&self, bm: &BufferManager, key: u64) -> Option<u64> {
        let root = self.root.read().expect("root latch");
        let mut guard = bm.fix_shared(self.file, *root);
        drop(root);
        self.visits.add(1);
        while !is_leaf(&guard) {
            let (_, child) = internal_lookup(&guard, key);
            guard = bm.fix_shared(self.file, child); // crab: child, then drop parent
            self.visits.add(1);
        }
        leaf_search(&guard, key).ok().map(|i| leaf_val(&guard, i))
    }

    /// Inserts or overwrites; returns the previous value if any.
    ///
    /// Optimistic first: shared descent with an exclusive leaf latch.
    /// Only a full leaf (a real split) restarts into the pessimistic
    /// exclusive-coupled descent.
    pub fn insert(&self, bm: &BufferManager, key: u64, value: u64) -> Option<u64> {
        {
            let mut leaf = self.leaf_exclusive(bm, key);
            match leaf_search(&leaf, key) {
                Ok(i) => {
                    let old = leaf_val(&leaf, i);
                    leaf_set_val(&mut leaf, i, value);
                    return Some(old);
                }
                Err(i) => {
                    if entry_count(&leaf) < self.leaf_cap {
                        leaf_insert_at(&mut leaf, i, key, value);
                        return None;
                    }
                }
            }
            // full leaf: a split is needed — release every latch first
        }
        self.restarts.add(1);
        self.insert_pessimistic(bm, key, value)
    }

    /// Removes a key; returns its value if it was present. Lazy: leaves
    /// are never rebalanced or merged, so a delete never restructures
    /// and the optimistic descent always suffices.
    pub fn delete(&self, bm: &BufferManager, key: u64) -> Option<u64> {
        let mut leaf = self.leaf_exclusive(bm, key);
        match leaf_search(&leaf, key) {
            Ok(i) => {
                let old = leaf_val(&leaf, i);
                leaf_remove_at(&mut leaf, i);
                Some(old)
            }
            Err(_) => None,
        }
    }

    /// Visits `(key, value)` pairs with `lo <= key < hi` in ascending
    /// key order; stop early by returning `false` from the visitor.
    ///
    /// The visitor runs with the current leaf share-latched: it must
    /// not re-enter this tree (or fix pages that would violate the
    /// top-down / left-to-right latch order).
    pub fn scan_range(
        &self,
        bm: &BufferManager,
        lo: u64,
        hi: u64,
        mut visit: impl FnMut(u64, u64) -> bool,
    ) {
        let root = self.root.read().expect("root latch");
        let mut guard = bm.fix_shared(self.file, *root);
        drop(root);
        self.visits.add(1);
        // descend to the leaf that would hold `lo`
        while !is_leaf(&guard) {
            let (_, child) = internal_lookup(&guard, lo);
            guard = bm.fix_shared(self.file, child);
            self.visits.add(1);
        }
        loop {
            for i in 0..entry_count(&guard) {
                let k = leaf_key(&guard, i);
                if k < lo {
                    continue;
                }
                if k >= hi {
                    return;
                }
                if !visit(k, leaf_val(&guard, i)) {
                    return;
                }
            }
            let next = leaf_next(&guard);
            if next == NO_LEAF {
                return;
            }
            guard = bm.fix_shared(self.file, next); // crab along the chain
            self.visits.add(1);
        }
    }

    /// The smallest `(key, value)` with `key >= lo` (e.g. the oldest
    /// pending order of a district when keys are `(w, d, order-no)`).
    pub fn min_at_or_after(&self, bm: &BufferManager, lo: u64) -> Option<(u64, u64)> {
        let mut found = None;
        self.scan_range(bm, lo, u64::MAX, |k, v| {
            found = Some((k, v));
            false
        });
        found
    }

    /// Total live entries (full scan; test/diagnostic helper).
    pub fn len(&self, bm: &BufferManager) -> usize {
        let mut n = 0;
        self.scan_range(bm, 0, u64::MAX, |_, _| {
            n += 1;
            true
        });
        n
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self, bm: &BufferManager) -> bool {
        self.min_at_or_after(bm, 0).is_none()
    }

    /// Descends with shared coupling and returns the target leaf
    /// write-latched. The parent (or, for a leaf root, the structure
    /// latch) stays share-held across the leaf's shared→exclusive
    /// re-fix: a split of that leaf would need the parent exclusively
    /// (or the structure latch exclusively), so the leaf located by the
    /// descent is still the right one when the write latch lands.
    fn leaf_exclusive<'b>(&self, bm: &'b BufferManager, key: u64) -> PageWriteGuard<'b> {
        let root = self.root.read().expect("root latch");
        let root_page = *root;
        let first = bm.fix_shared(self.file, root_page);
        self.visits.add(1);
        if is_leaf(&first) {
            drop(first);
            return bm.fix_exclusive(self.file, root_page); // root lock still read-held
        }
        drop(root);
        let mut parent = first;
        loop {
            let (_, child_page) = internal_lookup(&parent, key);
            let child = bm.fix_shared(self.file, child_page);
            self.visits.add(1);
            if is_leaf(&child) {
                drop(child);
                return bm.fix_exclusive(self.file, child_page); // parent still read-held
            }
            parent = child;
        }
    }

    /// Exclusive-coupled descent with preemptive top-down splits: any
    /// full node on the path is split while its (non-full, by
    /// induction) parent is still write-latched, so separators always
    /// have room and nothing propagates back up. At most parent + child
    /// + one freshly allocated sibling are latched at any moment.
    fn insert_pessimistic(&self, bm: &BufferManager, key: u64, value: u64) -> Option<u64> {
        let mut root_lock = self.root.write().expect("root latch");
        let mut node = bm.fix_exclusive(self.file, *root_lock);
        self.visits.add(1);
        if self.node_full(&node) {
            // grow the tree while holding the structure latch exclusively
            let (sep, right_page, right, left) = self.split_node(bm, node);
            let left_page = left.page();
            let (new_root, mut root_guard) = bm.allocate_fixed(self.file);
            encode(
                &mut root_guard,
                &Node::Internal {
                    keys: vec![sep],
                    children: vec![left_page, right_page],
                },
            );
            drop(root_guard);
            *root_lock = new_root;
            node = if key >= sep {
                drop(left);
                right
            } else {
                drop(right);
                left
            };
        }
        drop(root_lock);
        loop {
            if is_leaf(&node) {
                let mut leaf = node;
                return match leaf_search(&leaf, key) {
                    Ok(i) => {
                        let old = leaf_val(&leaf, i);
                        leaf_set_val(&mut leaf, i, value);
                        Some(old)
                    }
                    Err(i) => {
                        leaf_insert_at(&mut leaf, i, key, value);
                        None
                    }
                };
            }
            let (child_idx, child_page) = internal_lookup(&node, key);
            let mut child = bm.fix_exclusive(self.file, child_page);
            self.visits.add(1);
            if self.node_full(&child) {
                let (sep, right_page, right, left) = self.split_node(bm, child);
                let Node::Internal {
                    mut keys,
                    mut children,
                } = decode(&node)
                else {
                    unreachable!("descent parent is internal");
                };
                keys.insert(child_idx, sep);
                children.insert(child_idx + 1, right_page);
                encode(&mut node, &Node::Internal { keys, children });
                child = if key >= sep {
                    drop(left);
                    right
                } else {
                    drop(right);
                    left
                };
            }
            node = child; // crab: drop the parent, descend
        }
    }

    fn node_full(&self, data: &[u8]) -> bool {
        let cap = if is_leaf(data) {
            self.leaf_cap
        } else {
            self.internal_cap
        };
        entry_count(data) >= cap
    }

    /// Splits a full node in place: the upper half moves to a freshly
    /// allocated right sibling. Returns `(separator, right page, right
    /// guard, left guard)` — both halves still write-latched so the
    /// caller can link them before anyone can observe the split.
    fn split_node<'b>(
        &self,
        bm: &'b BufferManager,
        mut left: PageWriteGuard<'b>,
    ) -> (u64, u32, PageWriteGuard<'b>, PageWriteGuard<'b>) {
        self.splits.add(1);
        let node = decode(&left);
        let (right_page, mut right) = bm.allocate_fixed(self.file);
        let sep = match node {
            Node::Leaf {
                mut keys,
                mut vals,
                next,
            } => {
                let mid = keys.len() / 2;
                let right_keys = keys.split_off(mid);
                let right_vals = vals.split_off(mid);
                let sep = right_keys[0];
                encode(
                    &mut right,
                    &Node::Leaf {
                        keys: right_keys,
                        vals: right_vals,
                        next,
                    },
                );
                encode(
                    &mut left,
                    &Node::Leaf {
                        keys,
                        vals,
                        next: right_page,
                    },
                );
                sep
            }
            Node::Internal {
                mut keys,
                mut children,
            } => {
                let mid = keys.len() / 2;
                let promoted = keys[mid];
                let right_keys = keys.split_off(mid + 1);
                keys.pop(); // remove promoted
                let right_children = children.split_off(mid + 1);
                encode(
                    &mut right,
                    &Node::Internal {
                        keys: right_keys,
                        children: right_children,
                    },
                );
                encode(&mut left, &Node::Internal { keys, children });
                promoted
            }
        };
        (sep, right_page, right, left)
    }
}

// ---- raw page accessors (allocation-free hot paths) ----

fn is_leaf(data: &[u8]) -> bool {
    data[0] == LEAF
}

fn entry_count(data: &[u8]) -> usize {
    u16::from_le_bytes([data[2], data[3]]) as usize
}

fn set_entry_count(data: &mut [u8], n: usize) {
    data[2..4].copy_from_slice(&(n as u16).to_le_bytes());
}

fn leaf_next(data: &[u8]) -> u32 {
    u32::from_le_bytes(data[4..8].try_into().expect("header"))
}

fn leaf_key(data: &[u8], i: usize) -> u64 {
    let off = HEADER + i * 16;
    u64::from_le_bytes(data[off..off + 8].try_into().expect("key"))
}

fn leaf_val(data: &[u8], i: usize) -> u64 {
    let off = HEADER + i * 16 + 8;
    u64::from_le_bytes(data[off..off + 8].try_into().expect("val"))
}

fn leaf_set_val(data: &mut [u8], i: usize, value: u64) {
    let off = HEADER + i * 16 + 8;
    data[off..off + 8].copy_from_slice(&value.to_le_bytes());
}

/// Binary search over a leaf's keys.
fn leaf_search(data: &[u8], key: u64) -> Result<usize, usize> {
    let (mut lo, mut hi) = (0usize, entry_count(data));
    while lo < hi {
        let mid = (lo + hi) / 2;
        let k = leaf_key(data, mid);
        if k < key {
            lo = mid + 1;
        } else if k > key {
            hi = mid;
        } else {
            return Ok(mid);
        }
    }
    Err(lo)
}

/// Inserts `(key, value)` at position `i`, shifting later entries.
fn leaf_insert_at(data: &mut [u8], i: usize, key: u64, value: u64) {
    let n = entry_count(data);
    let start = HEADER + i * 16;
    data.copy_within(start..HEADER + n * 16, start + 16);
    data[start..start + 8].copy_from_slice(&key.to_le_bytes());
    data[start + 8..start + 16].copy_from_slice(&value.to_le_bytes());
    set_entry_count(data, n + 1);
}

/// Removes the entry at position `i`, shifting later entries down.
fn leaf_remove_at(data: &mut [u8], i: usize) {
    let n = entry_count(data);
    let start = HEADER + i * 16;
    data.copy_within(start + 16..HEADER + n * 16, start);
    set_entry_count(data, n - 1);
}

fn internal_key(data: &[u8], i: usize) -> u64 {
    let off = HEADER + 4 + i * 12;
    u64::from_le_bytes(data[off..off + 8].try_into().expect("key"))
}

fn internal_child_at(data: &[u8], i: usize) -> u32 {
    let off = if i == 0 {
        HEADER
    } else {
        HEADER + 4 + (i - 1) * 12 + 8
    };
    u32::from_le_bytes(data[off..off + 4].try_into().expect("child"))
}

/// The child subtree holding `key`: index of the first separator
/// `> key`, and that child's page number.
fn internal_lookup(data: &[u8], key: u64) -> (usize, u32) {
    let (mut lo, mut hi) = (0usize, entry_count(data));
    while lo < hi {
        let mid = (lo + hi) / 2;
        if internal_key(data, mid) <= key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    (lo, internal_child_at(data, lo))
}

fn encode(data: &mut [u8], node: &Node) {
    match node {
        Node::Leaf { keys, vals, next } => {
            data[0] = LEAF;
            data[2..4].copy_from_slice(&(keys.len() as u16).to_le_bytes());
            data[4..8].copy_from_slice(&next.to_le_bytes());
            let mut off = HEADER;
            for (k, v) in keys.iter().zip(vals) {
                data[off..off + 8].copy_from_slice(&k.to_le_bytes());
                data[off + 8..off + 16].copy_from_slice(&v.to_le_bytes());
                off += 16;
            }
        }
        Node::Internal { keys, children } => {
            data[0] = INTERNAL;
            data[2..4].copy_from_slice(&(keys.len() as u16).to_le_bytes());
            data[4..8].copy_from_slice(&NO_LEAF.to_le_bytes());
            data[HEADER..HEADER + 4].copy_from_slice(&children[0].to_le_bytes());
            let mut off = HEADER + 4;
            for (k, c) in keys.iter().zip(children.iter().skip(1)) {
                data[off..off + 8].copy_from_slice(&k.to_le_bytes());
                data[off + 8..off + 12].copy_from_slice(&c.to_le_bytes());
                off += 12;
            }
        }
    }
}

fn decode(data: &[u8]) -> Node {
    let kind = data[0];
    let n = u16::from_le_bytes([data[2], data[3]]) as usize;
    if kind == LEAF {
        let next = u32::from_le_bytes(data[4..8].try_into().expect("header"));
        let mut keys = Vec::with_capacity(n);
        let mut vals = Vec::with_capacity(n);
        let mut off = HEADER;
        for _ in 0..n {
            keys.push(u64::from_le_bytes(
                data[off..off + 8].try_into().expect("key"),
            ));
            vals.push(u64::from_le_bytes(
                data[off + 8..off + 16].try_into().expect("val"),
            ));
            off += 16;
        }
        Node::Leaf { keys, vals, next }
    } else {
        let mut children = Vec::with_capacity(n + 1);
        children.push(u32::from_le_bytes(
            data[HEADER..HEADER + 4].try_into().expect("child0"),
        ));
        let mut keys = Vec::with_capacity(n);
        let mut off = HEADER + 4;
        for _ in 0..n {
            keys.push(u64::from_le_bytes(
                data[off..off + 8].try_into().expect("key"),
            ));
            children.push(u32::from_le_bytes(
                data[off + 8..off + 12].try_into().expect("child"),
            ));
            off += 12;
        }
        Node::Internal { keys, children }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bufmgr::Replacement;
    use crate::disk::DiskManager;
    use tpcc_rand::Xoshiro256;

    fn setup(page_size: usize, frames: usize) -> (BufferManager, BTree) {
        let disk = DiskManager::new(page_size);
        let bm = BufferManager::new(disk, frames, Replacement::Lru);
        let tree = BTree::create(&bm);
        (bm, tree)
    }

    #[test]
    fn insert_get_small() {
        let (bm, t) = setup(256, 16);
        assert_eq!(t.insert(&bm, 5, 50), None);
        assert_eq!(t.insert(&bm, 3, 30), None);
        assert_eq!(t.insert(&bm, 9, 90), None);
        assert_eq!(t.get(&bm, 5), Some(50));
        assert_eq!(t.get(&bm, 3), Some(30));
        assert_eq!(t.get(&bm, 9), Some(90));
        assert_eq!(t.get(&bm, 4), None);
    }

    #[test]
    fn overwrite_returns_old() {
        let (bm, t) = setup(256, 16);
        t.insert(&bm, 7, 1);
        assert_eq!(t.insert(&bm, 7, 2), Some(1));
        assert_eq!(t.get(&bm, 7), Some(2));
        assert_eq!(t.len(&bm), 1);
    }

    #[test]
    fn many_inserts_with_splits_sequential() {
        // small pages force deep trees
        let (bm, t) = setup(256, 64);
        let n = 5000u64;
        for k in 0..n {
            t.insert(&bm, k, k * 2);
        }
        for k in 0..n {
            assert_eq!(t.get(&bm, k), Some(k * 2), "key {k}");
        }
        assert_eq!(t.len(&bm), n as usize);
    }

    #[test]
    fn many_inserts_random_order() {
        let (bm, t) = setup(256, 64);
        let mut rng = Xoshiro256::seed_from_u64(42);
        let mut keys: Vec<u64> = (0..4000).map(|_| rng.next_u64() >> 16).collect();
        keys.sort_unstable();
        keys.dedup();
        // shuffle
        for i in (1..keys.len()).rev() {
            let j = rng.uniform_inclusive(0, i as u64) as usize;
            keys.swap(i, j);
        }
        for &k in &keys {
            t.insert(&bm, k, !k);
        }
        for &k in &keys {
            assert_eq!(t.get(&bm, k), Some(!k));
        }
    }

    #[test]
    fn scan_range_is_sorted_and_bounded() {
        let (bm, t) = setup(256, 64);
        for k in (0..1000u64).rev() {
            t.insert(&bm, k * 3, k);
        }
        let mut seen = Vec::new();
        t.scan_range(&bm, 90, 150, |k, _| {
            seen.push(k);
            true
        });
        assert_eq!(
            seen,
            vec![
                90, 93, 96, 99, 102, 105, 108, 111, 114, 117, 120, 123, 126, 129, 132, 135, 138,
                141, 144, 147
            ]
        );
    }

    #[test]
    fn scan_early_stop() {
        let (bm, t) = setup(256, 64);
        for k in 0..100u64 {
            t.insert(&bm, k, k);
        }
        let mut count = 0;
        t.scan_range(&bm, 0, u64::MAX, |_, _| {
            count += 1;
            count < 5
        });
        assert_eq!(count, 5);
    }

    #[test]
    fn min_at_or_after_finds_oldest() {
        let (bm, t) = setup(256, 32);
        for k in [50u64, 20, 80, 35] {
            t.insert(&bm, k, k + 1);
        }
        assert_eq!(t.min_at_or_after(&bm, 0), Some((20, 21)));
        assert_eq!(t.min_at_or_after(&bm, 21), Some((35, 36)));
        assert_eq!(t.min_at_or_after(&bm, 81), None);
    }

    #[test]
    fn delete_removes_and_scan_skips() {
        let (bm, t) = setup(256, 64);
        for k in 0..500u64 {
            t.insert(&bm, k, k);
        }
        for k in (0..500).step_by(2) {
            assert_eq!(t.delete(&bm, k), Some(k));
        }
        assert_eq!(t.delete(&bm, 0), None, "double delete");
        for k in 0..500u64 {
            let expect = (k % 2 == 1).then_some(k);
            assert_eq!(t.get(&bm, k), expect, "key {k}");
        }
        assert_eq!(t.len(&bm), 250);
    }

    #[test]
    fn fifo_queue_pattern_like_new_order() {
        // insert at the tail, delete at the head — the New-Order usage
        let (bm, t) = setup(256, 32);
        let mut head = 0u64;
        let mut tail = 0u64;
        for _ in 0..2000 {
            t.insert(&bm, tail, tail);
            tail += 1;
            if tail - head > 30 {
                let (k, _) = t.min_at_or_after(&bm, 0).expect("nonempty");
                assert_eq!(k, head);
                t.delete(&bm, k);
                head += 1;
            }
        }
        assert_eq!(t.len(&bm), (tail - head) as usize);
    }

    #[test]
    fn survives_tiny_buffer_pool() {
        // 4 frames, tree of thousands of keys: exercises write-back
        let (bm, t) = setup(256, 4);
        for k in 0..3000u64 {
            t.insert(&bm, k, k ^ 0xAB);
        }
        for k in (0..3000u64).step_by(97) {
            assert_eq!(t.get(&bm, k), Some(k ^ 0xAB));
        }
    }

    #[test]
    fn concurrent_disjoint_writers_and_readers() {
        // four threads own disjoint key stripes; a scan thread sweeps
        // the whole range concurrently. Crabbing must keep every stripe
        // intact with no lost inserts.
        let disk = DiskManager::new(256);
        let bm = BufferManager::new_sharded(disk, 256, Replacement::Lru, 8);
        let t = BTree::create(&bm);
        const PER: u64 = 2000;
        std::thread::scope(|scope| {
            for stripe in 0..4u64 {
                let (t, bm) = (&t, &bm);
                scope.spawn(move || {
                    for i in 0..PER {
                        let k = stripe * 1_000_000 + i;
                        t.insert(bm, k, !k);
                    }
                });
            }
            let (t, bm) = (&t, &bm);
            scope.spawn(move || {
                for _ in 0..50 {
                    let mut last = 0;
                    t.scan_range(bm, 0, u64::MAX, |k, _| {
                        assert!(k >= last, "scan out of order");
                        last = k;
                        true
                    });
                }
            });
        });
        for stripe in 0..4u64 {
            for i in 0..PER {
                let k = stripe * 1_000_000 + i;
                assert_eq!(t.get(&bm, k), Some(!k), "stripe {stripe} key {i}");
            }
        }
        assert_eq!(t.len(&bm), 4 * PER as usize);
    }
}
