//! A page-based B+Tree mapping `u64` keys to `u64` values.
//!
//! TPC-C's composite keys — `(warehouse, district, customer)`,
//! `(item, warehouse)`, `(warehouse, district, order)` — all pack into
//! 64 bits, and values are packed [`crate::heap::RecordId`]s, so
//! fixed-width entries keep the node layout simple and dense.
//!
//! Node layout (one page each):
//!
//! ```text
//! [kind: u8][pad: u8][n: u16][next_leaf: u32]
//! leaf:     n × (key: u64, value: u64)
//! internal: child₀: u32, then n × (key: u64, childᵢ₊₁: u32)
//! ```
//!
//! Internal separator `kᵢ` bounds its left child: subtree `i` holds keys
//! `< kᵢ`. Deletes are *lazy* (no rebalancing): entries are removed and
//! leaves may underflow, which is harmless for lookups and scans and
//! matches the benchmark's delete pattern (oldest New-Order rows only).

use crate::bufmgr::BufferManager;
use crate::disk::FileId;
use tpcc_obs::{CounterHandle, Label, Obs};

const HEADER: usize = 8;
const LEAF: u8 = 0;
const INTERNAL: u8 = 1;
const NO_LEAF: u32 = u32::MAX;

/// A B+Tree handle (root page may move as the tree grows).
#[derive(Debug)]
pub struct BTree {
    file: FileId,
    root: u32,
    leaf_cap: usize,
    internal_cap: usize,
    /// Pre-resolved structure-event counters (disabled until
    /// [`BTree::attach_obs`]); avoids a recorder map lookup per node
    /// visit on the hot path.
    visits: CounterHandle,
    splits: CounterHandle,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        keys: Vec<u64>,
        vals: Vec<u64>,
        next: u32,
    },
    Internal {
        keys: Vec<u64>,
        children: Vec<u32>,
    },
}

impl BTree {
    /// Creates an empty tree in a fresh file.
    pub fn create(bm: &BufferManager) -> Self {
        let page_size = bm.page_size();
        let file = bm.create_file();
        let leaf_cap = (page_size - HEADER) / 16;
        let internal_cap = (page_size - HEADER - 4) / 12;
        assert!(
            leaf_cap >= 3 && internal_cap >= 3,
            "page too small for a B+Tree"
        );
        let (root, ()) = bm.allocate_page(file, |data| {
            encode(
                data,
                &Node::Leaf {
                    keys: Vec::new(),
                    vals: Vec::new(),
                    next: NO_LEAF,
                },
            );
        });
        Self {
            file,
            root,
            leaf_cap,
            internal_cap,
            visits: CounterHandle::disabled(),
            splits: CounterHandle::disabled(),
        }
    }

    /// Resolves per-tree structure-event counters against `obs`
    /// (`btree_node_visits` / `btree_splits`, labelled by file id).
    pub fn attach_obs(&mut self, obs: &Obs) {
        self.visits = obs.counter_handle("btree_node_visits", Label::Idx(self.file.0));
        self.splits = obs.counter_handle("btree_splits", Label::Idx(self.file.0));
    }

    /// The index file id (for buffer statistics).
    #[must_use]
    pub fn file(&self) -> FileId {
        self.file
    }

    /// Looks up a key.
    pub fn get(&self, bm: &BufferManager, key: u64) -> Option<u64> {
        let mut page = self.root;
        loop {
            match self.read(bm, page) {
                Node::Internal { keys, children } => {
                    page = children[child_index(&keys, key)];
                }
                Node::Leaf { keys, vals, .. } => {
                    return keys.binary_search(&key).ok().map(|i| vals[i]);
                }
            }
        }
    }

    /// Inserts or overwrites; returns the previous value if any.
    pub fn insert(&mut self, bm: &BufferManager, key: u64, value: u64) -> Option<u64> {
        let (old, split) = self.insert_rec(bm, self.root, key, value);
        if let Some((sep, right)) = split {
            let old_root = self.root;
            let (new_root, ()) = bm.allocate_page(self.file, |data| {
                encode(
                    data,
                    &Node::Internal {
                        keys: vec![sep],
                        children: vec![old_root, right],
                    },
                );
            });
            self.root = new_root;
        }
        old
    }

    /// Removes a key; returns its value if it was present. Lazy: leaves
    /// are never rebalanced or merged.
    pub fn delete(&mut self, bm: &BufferManager, key: u64) -> Option<u64> {
        let mut page = self.root;
        loop {
            match self.read(bm, page) {
                Node::Internal { keys, children } => {
                    page = children[child_index(&keys, key)];
                }
                Node::Leaf {
                    mut keys,
                    mut vals,
                    next,
                } => {
                    let Ok(i) = keys.binary_search(&key) else {
                        return None;
                    };
                    keys.remove(i);
                    let old = vals.remove(i);
                    self.write(bm, page, &Node::Leaf { keys, vals, next });
                    return Some(old);
                }
            }
        }
    }

    /// Visits `(key, value)` pairs with `lo <= key < hi` in ascending
    /// key order; stop early by returning `false` from the visitor.
    pub fn scan_range(
        &self,
        bm: &BufferManager,
        lo: u64,
        hi: u64,
        mut visit: impl FnMut(u64, u64) -> bool,
    ) {
        let mut page = self.root;
        // descend to the leaf that would hold `lo`
        while let Node::Internal { keys, children } = self.read(bm, page) {
            page = children[child_index(&keys, lo)];
        }
        loop {
            let Node::Leaf { keys, vals, next } = self.read(bm, page) else {
                unreachable!("leaf chain only contains leaves");
            };
            for (k, v) in keys.iter().zip(&vals) {
                if *k < lo {
                    continue;
                }
                if *k >= hi {
                    return;
                }
                if !visit(*k, *v) {
                    return;
                }
            }
            if next == NO_LEAF {
                return;
            }
            page = next;
        }
    }

    /// The smallest `(key, value)` with `key >= lo` (e.g. the oldest
    /// pending order of a district when keys are `(w, d, order-no)`).
    pub fn min_at_or_after(&self, bm: &BufferManager, lo: u64) -> Option<(u64, u64)> {
        let mut found = None;
        self.scan_range(bm, lo, u64::MAX, |k, v| {
            found = Some((k, v));
            false
        });
        found
    }

    /// Total live entries (full scan; test/diagnostic helper).
    pub fn len(&self, bm: &BufferManager) -> usize {
        let mut n = 0;
        self.scan_range(bm, 0, u64::MAX, |_, _| {
            n += 1;
            true
        });
        n
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self, bm: &BufferManager) -> bool {
        self.min_at_or_after(bm, 0).is_none()
    }

    fn insert_rec(
        &mut self,
        bm: &BufferManager,
        page: u32,
        key: u64,
        value: u64,
    ) -> (Option<u64>, Option<(u64, u32)>) {
        match self.read(bm, page) {
            Node::Leaf {
                mut keys,
                mut vals,
                next,
            } => {
                let old = match keys.binary_search(&key) {
                    Ok(i) => {
                        let old = vals[i];
                        vals[i] = value;
                        self.write(bm, page, &Node::Leaf { keys, vals, next });
                        return (Some(old), None);
                    }
                    Err(i) => {
                        keys.insert(i, key);
                        vals.insert(i, value);
                        None
                    }
                };
                if keys.len() <= self.leaf_cap {
                    self.write(bm, page, &Node::Leaf { keys, vals, next });
                    return (old, None);
                }
                // split: upper half to a fresh right sibling
                self.note_split();
                let mid = keys.len() / 2;
                let right_keys = keys.split_off(mid);
                let right_vals = vals.split_off(mid);
                let sep = right_keys[0];
                let (right_page, ()) = bm.allocate_page(self.file, |data| {
                    encode(
                        data,
                        &Node::Leaf {
                            keys: right_keys,
                            vals: right_vals,
                            next,
                        },
                    );
                });
                self.write(
                    bm,
                    page,
                    &Node::Leaf {
                        keys,
                        vals,
                        next: right_page,
                    },
                );
                (old, Some((sep, right_page)))
            }
            Node::Internal {
                mut keys,
                mut children,
            } => {
                let idx = child_index(&keys, key);
                let (old, split) = self.insert_rec(bm, children[idx], key, value);
                let Some((sep, right)) = split else {
                    return (old, None);
                };
                keys.insert(idx, sep);
                children.insert(idx + 1, right);
                if keys.len() <= self.internal_cap {
                    self.write(bm, page, &Node::Internal { keys, children });
                    return (old, None);
                }
                // split internal: middle key promotes
                self.note_split();
                let mid = keys.len() / 2;
                let promoted = keys[mid];
                let right_keys = keys.split_off(mid + 1);
                keys.pop(); // remove promoted
                let right_children = children.split_off(mid + 1);
                let (right_page, ()) = bm.allocate_page(self.file, |data| {
                    encode(
                        data,
                        &Node::Internal {
                            keys: right_keys,
                            children: right_children,
                        },
                    );
                });
                self.write(bm, page, &Node::Internal { keys, children });
                (old, Some((promoted, right_page)))
            }
        }
    }

    fn read(&self, bm: &BufferManager, page: u32) -> Node {
        self.visits.add(1);
        bm.with_page(self.file, page, decode)
    }

    fn write(&self, bm: &BufferManager, page: u32, node: &Node) {
        bm.with_page_mut(self.file, page, |data| encode(data, node));
    }

    fn note_split(&self) {
        self.splits.add(1);
    }
}

/// Index of the child subtree that holds `key`: first separator > key.
fn child_index(keys: &[u64], key: u64) -> usize {
    keys.partition_point(|&k| k <= key)
}

fn encode(data: &mut [u8], node: &Node) {
    match node {
        Node::Leaf { keys, vals, next } => {
            data[0] = LEAF;
            data[2..4].copy_from_slice(&(keys.len() as u16).to_le_bytes());
            data[4..8].copy_from_slice(&next.to_le_bytes());
            let mut off = HEADER;
            for (k, v) in keys.iter().zip(vals) {
                data[off..off + 8].copy_from_slice(&k.to_le_bytes());
                data[off + 8..off + 16].copy_from_slice(&v.to_le_bytes());
                off += 16;
            }
        }
        Node::Internal { keys, children } => {
            data[0] = INTERNAL;
            data[2..4].copy_from_slice(&(keys.len() as u16).to_le_bytes());
            data[4..8].copy_from_slice(&NO_LEAF.to_le_bytes());
            data[HEADER..HEADER + 4].copy_from_slice(&children[0].to_le_bytes());
            let mut off = HEADER + 4;
            for (k, c) in keys.iter().zip(children.iter().skip(1)) {
                data[off..off + 8].copy_from_slice(&k.to_le_bytes());
                data[off + 8..off + 12].copy_from_slice(&c.to_le_bytes());
                off += 12;
            }
        }
    }
}

fn decode(data: &[u8]) -> Node {
    let kind = data[0];
    let n = u16::from_le_bytes([data[2], data[3]]) as usize;
    if kind == LEAF {
        let next = u32::from_le_bytes(data[4..8].try_into().expect("header"));
        let mut keys = Vec::with_capacity(n);
        let mut vals = Vec::with_capacity(n);
        let mut off = HEADER;
        for _ in 0..n {
            keys.push(u64::from_le_bytes(
                data[off..off + 8].try_into().expect("key"),
            ));
            vals.push(u64::from_le_bytes(
                data[off + 8..off + 16].try_into().expect("val"),
            ));
            off += 16;
        }
        Node::Leaf { keys, vals, next }
    } else {
        let mut children = Vec::with_capacity(n + 1);
        children.push(u32::from_le_bytes(
            data[HEADER..HEADER + 4].try_into().expect("child0"),
        ));
        let mut keys = Vec::with_capacity(n);
        let mut off = HEADER + 4;
        for _ in 0..n {
            keys.push(u64::from_le_bytes(
                data[off..off + 8].try_into().expect("key"),
            ));
            children.push(u32::from_le_bytes(
                data[off + 8..off + 12].try_into().expect("child"),
            ));
            off += 12;
        }
        Node::Internal { keys, children }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bufmgr::Replacement;
    use crate::disk::DiskManager;
    use tpcc_rand::Xoshiro256;

    fn setup(page_size: usize, frames: usize) -> (BufferManager, BTree) {
        let disk = DiskManager::new(page_size);
        let bm = BufferManager::new(disk, frames, Replacement::Lru);
        let tree = BTree::create(&bm);
        (bm, tree)
    }

    #[test]
    fn insert_get_small() {
        let (bm, mut t) = setup(256, 16);
        assert_eq!(t.insert(&bm, 5, 50), None);
        assert_eq!(t.insert(&bm, 3, 30), None);
        assert_eq!(t.insert(&bm, 9, 90), None);
        assert_eq!(t.get(&bm, 5), Some(50));
        assert_eq!(t.get(&bm, 3), Some(30));
        assert_eq!(t.get(&bm, 9), Some(90));
        assert_eq!(t.get(&bm, 4), None);
    }

    #[test]
    fn overwrite_returns_old() {
        let (bm, mut t) = setup(256, 16);
        t.insert(&bm, 7, 1);
        assert_eq!(t.insert(&bm, 7, 2), Some(1));
        assert_eq!(t.get(&bm, 7), Some(2));
        assert_eq!(t.len(&bm), 1);
    }

    #[test]
    fn many_inserts_with_splits_sequential() {
        // small pages force deep trees
        let (bm, mut t) = setup(256, 64);
        let n = 5000u64;
        for k in 0..n {
            t.insert(&bm, k, k * 2);
        }
        for k in 0..n {
            assert_eq!(t.get(&bm, k), Some(k * 2), "key {k}");
        }
        assert_eq!(t.len(&bm), n as usize);
    }

    #[test]
    fn many_inserts_random_order() {
        let (bm, mut t) = setup(256, 64);
        let mut rng = Xoshiro256::seed_from_u64(42);
        let mut keys: Vec<u64> = (0..4000).map(|_| rng.next_u64() >> 16).collect();
        keys.sort_unstable();
        keys.dedup();
        // shuffle
        for i in (1..keys.len()).rev() {
            let j = rng.uniform_inclusive(0, i as u64) as usize;
            keys.swap(i, j);
        }
        for &k in &keys {
            t.insert(&bm, k, !k);
        }
        for &k in &keys {
            assert_eq!(t.get(&bm, k), Some(!k));
        }
    }

    #[test]
    fn scan_range_is_sorted_and_bounded() {
        let (bm, mut t) = setup(256, 64);
        for k in (0..1000u64).rev() {
            t.insert(&bm, k * 3, k);
        }
        let mut seen = Vec::new();
        t.scan_range(&bm, 90, 150, |k, _| {
            seen.push(k);
            true
        });
        assert_eq!(
            seen,
            vec![
                90, 93, 96, 99, 102, 105, 108, 111, 114, 117, 120, 123, 126, 129, 132, 135, 138,
                141, 144, 147
            ]
        );
    }

    #[test]
    fn scan_early_stop() {
        let (bm, mut t) = setup(256, 64);
        for k in 0..100u64 {
            t.insert(&bm, k, k);
        }
        let mut count = 0;
        t.scan_range(&bm, 0, u64::MAX, |_, _| {
            count += 1;
            count < 5
        });
        assert_eq!(count, 5);
    }

    #[test]
    fn min_at_or_after_finds_oldest() {
        let (bm, mut t) = setup(256, 32);
        for k in [50u64, 20, 80, 35] {
            t.insert(&bm, k, k + 1);
        }
        assert_eq!(t.min_at_or_after(&bm, 0), Some((20, 21)));
        assert_eq!(t.min_at_or_after(&bm, 21), Some((35, 36)));
        assert_eq!(t.min_at_or_after(&bm, 81), None);
    }

    #[test]
    fn delete_removes_and_scan_skips() {
        let (bm, mut t) = setup(256, 64);
        for k in 0..500u64 {
            t.insert(&bm, k, k);
        }
        for k in (0..500).step_by(2) {
            assert_eq!(t.delete(&bm, k), Some(k));
        }
        assert_eq!(t.delete(&bm, 0), None, "double delete");
        for k in 0..500u64 {
            let expect = (k % 2 == 1).then_some(k);
            assert_eq!(t.get(&bm, k), expect, "key {k}");
        }
        assert_eq!(t.len(&bm), 250);
    }

    #[test]
    fn fifo_queue_pattern_like_new_order() {
        // insert at the tail, delete at the head — the New-Order usage
        let (bm, mut t) = setup(256, 32);
        let mut head = 0u64;
        let mut tail = 0u64;
        for _ in 0..2000 {
            t.insert(&bm, tail, tail);
            tail += 1;
            if tail - head > 30 {
                let (k, _) = t.min_at_or_after(&bm, 0).expect("nonempty");
                assert_eq!(k, head);
                t.delete(&bm, k);
                head += 1;
            }
        }
        assert_eq!(t.len(&bm), (tail - head) as usize);
    }

    #[test]
    fn survives_tiny_buffer_pool() {
        // 4 frames, tree of thousands of keys: exercises write-back
        let (bm, mut t) = setup(256, 4);
        for k in 0..3000u64 {
            t.insert(&bm, k, k ^ 0xAB);
        }
        for k in (0..3000u64).step_by(97) {
            assert_eq!(t.get(&bm, k), Some(k ^ 0xAB));
        }
    }
}
