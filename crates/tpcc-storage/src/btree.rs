//! A page-based B+Tree mapping `u64` keys to `u64` values.
//!
//! TPC-C's composite keys — `(warehouse, district, customer)`,
//! `(item, warehouse)`, `(warehouse, district, order)` — all pack into
//! 64 bits, and values are packed [`crate::heap::RecordId`]s, so
//! fixed-width entries keep the node layout simple and dense.
//!
//! Node layout (one page each):
//!
//! ```text
//! [kind: u8][pad: u8][n: u16][next_leaf: u32]
//! leaf:     n × (key: u64, value: u64)
//! internal: child₀: u32, then n × (key: u64, childᵢ₊₁: u32)
//! ```
//!
//! Internal separator `kᵢ` bounds its left child: subtree `i` holds keys
//! `< kᵢ`. Deletes *rebalance*: when a removal drops a non-root leaf
//! below half occupancy, the delete restarts as a pessimistic top-down
//! descent that merges the deficient node with an adjacent sibling
//! (when the combined entries fit on one page, freeing the emptied
//! page back to the buffer manager) or borrows from it (balancing the
//! two evenly), so the benchmark's FIFO delete pattern (oldest
//! New-Order rows) returns its pages instead of leaking half-empty
//! leaves forever.
//!
//! # Latching (crabbing)
//!
//! All operations take `&self`; concurrency control is per-page latch
//! **crabbing** over [`BufferManager`] page guards, in the discipline of
//! Bayer & Schkolnick (1977):
//!
//! * **Reads** (`get`, `scan_range`) descend with shared coupling —
//!   latch the child, then release the parent — and scans crab
//!   left-to-right along the leaf chain.
//! * **`delete`** and the common-case `insert` descend shared and take
//!   only the *leaf* exclusively. The parent stays share-latched while
//!   the leaf latch is upgraded, so the leaf cannot be split or merged
//!   between the shared and exclusive fix (both require the parent
//!   latched exclusively). A delete that leaves the leaf at least half
//!   full ends here.
//! * **`insert` into a full leaf** restarts as a *pessimistic* descent
//!   with exclusive coupling that splits any full node top-down while
//!   holding only parent + child (at most three page latches with the
//!   transient sibling allocation), so the parent always has room for
//!   the separator and splits never propagate upward.
//! * **`delete` that underflows the leaf** restarts symmetrically: a
//!   pessimistic exclusive-coupled descent fixes any deficient node
//!   top-down by merging it with, or borrowing from, an adjacent
//!   sibling while the parent is still write-latched (at most three
//!   page latches: parent + both siblings; sibling latches are taken
//!   left-to-right), so deficiencies never propagate upward either. A
//!   single-child internal root is collapsed under the exclusive
//!   structure latch, shrinking the tree.
//!
//! The `root` field is the **structure latch**: a `RwLock` around the
//! root page number. Every descent acquires it shared just long enough
//! to latch the root page; only a root split takes it exclusively (and
//! acquires it *before* any page latch, preserving the
//! structure-before-page order that keeps the hierarchy acyclic). See
//! DESIGN.md §8 for the deadlock-freedom argument.

use crate::bufmgr::{BufferManager, PageWriteGuard};
use crate::disk::FileId;
use std::sync::RwLock;
use tpcc_obs::{CounterHandle, Label, Obs};

const HEADER: usize = 8;
const LEAF: u8 = 0;
const INTERNAL: u8 = 1;
const NO_LEAF: u32 = u32::MAX;

/// A B+Tree handle (root page may move as the tree grows).
#[derive(Debug)]
pub struct BTree {
    file: FileId,
    /// Structure latch: guards the root page *number*. Shared by every
    /// descent until the root page itself is latched; exclusive only
    /// while a root split swaps the pointer.
    root: RwLock<u32>,
    leaf_cap: usize,
    internal_cap: usize,
    /// Underflow threshold: a non-root leaf with fewer entries is
    /// merged or rebalanced.
    min_leaf: usize,
    /// Underflow threshold for non-root internal nodes (in separator
    /// keys; chosen so two merging siblings plus the pulled-down
    /// separator always fit).
    min_internal: usize,
    /// Pre-resolved structure-event counters (disabled until
    /// [`BTree::attach_obs`]); avoids a recorder map lookup per node
    /// visit on the hot path.
    visits: CounterHandle,
    splits: CounterHandle,
    restarts: CounterHandle,
    merges: CounterHandle,
    borrows: CounterHandle,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        keys: Vec<u64>,
        vals: Vec<u64>,
        next: u32,
    },
    Internal {
        keys: Vec<u64>,
        children: Vec<u32>,
    },
}

impl BTree {
    /// Creates an empty tree in a fresh file.
    pub fn create(bm: &BufferManager) -> Self {
        let page_size = bm.page_size();
        let file = bm.create_file();
        let leaf_cap = (page_size - HEADER) / 16;
        let internal_cap = (page_size - HEADER - 4) / 12;
        assert!(
            leaf_cap >= 3 && internal_cap >= 3,
            "page too small for a B+Tree"
        );
        let (root, ()) = bm.allocate_page(file, |data| {
            encode(
                data,
                &Node::Leaf {
                    keys: Vec::new(),
                    vals: Vec::new(),
                    next: NO_LEAF,
                },
            );
        });
        Self {
            file,
            root: RwLock::new(root),
            leaf_cap,
            internal_cap,
            min_leaf: leaf_cap / 2,
            min_internal: (internal_cap - 1) / 2,
            visits: CounterHandle::disabled(),
            splits: CounterHandle::disabled(),
            restarts: CounterHandle::disabled(),
            merges: CounterHandle::disabled(),
            borrows: CounterHandle::disabled(),
        }
    }

    /// Resolves per-tree structure-event counters against `obs`
    /// (`btree_node_visits` / `btree_splits` / `btree_restarts` /
    /// `btree_merges` / `btree_borrows`, labelled by file id).
    pub fn attach_obs(&mut self, obs: &Obs) {
        self.visits = obs.counter_handle("btree_node_visits", Label::Idx(self.file.0));
        self.splits = obs.counter_handle("btree_splits", Label::Idx(self.file.0));
        self.restarts = obs.counter_handle("btree_restarts", Label::Idx(self.file.0));
        self.merges = obs.counter_handle("btree_merges", Label::Idx(self.file.0));
        self.borrows = obs.counter_handle("btree_borrows", Label::Idx(self.file.0));
    }

    /// The index file id (for buffer statistics).
    #[must_use]
    pub fn file(&self) -> FileId {
        self.file
    }

    /// Looks up a key (shared latch coupling down the tree).
    pub fn get(&self, bm: &BufferManager, key: u64) -> Option<u64> {
        let root = self.root.read().expect("root latch");
        let mut guard = bm.fix_shared(self.file, *root);
        drop(root);
        self.visits.add(1);
        while !is_leaf(&guard) {
            let (_, child) = internal_lookup(&guard, key);
            guard = bm.fix_shared(self.file, child); // crab: child, then drop parent
            self.visits.add(1);
        }
        leaf_search(&guard, key).ok().map(|i| leaf_val(&guard, i))
    }

    /// Inserts or overwrites; returns the previous value if any.
    ///
    /// Optimistic first: shared descent with an exclusive leaf latch.
    /// Only a full leaf (a real split) restarts into the pessimistic
    /// exclusive-coupled descent.
    pub fn insert(&self, bm: &BufferManager, key: u64, value: u64) -> Option<u64> {
        {
            let (mut leaf, _) = self.leaf_exclusive(bm, key);
            match leaf_search(&leaf, key) {
                Ok(i) => {
                    let old = leaf_val(&leaf, i);
                    leaf_set_val(&mut leaf, i, value);
                    return Some(old);
                }
                Err(i) => {
                    if entry_count(&leaf) < self.leaf_cap {
                        leaf_insert_at(&mut leaf, i, key, value);
                        return None;
                    }
                }
            }
            // full leaf: a split is needed — release every latch first
        }
        self.restarts.add(1);
        self.insert_pessimistic(bm, key, value)
    }

    /// Removes a key; returns its value if it was present.
    ///
    /// Optimistic first: shared descent with an exclusive leaf latch.
    /// If the removal drops a non-root leaf below half occupancy the
    /// delete restarts into the pessimistic rebalancing descent, which
    /// merges or rebalances deficient nodes top-down and returns freed
    /// pages to the buffer manager.
    pub fn delete(&self, bm: &BufferManager, key: u64) -> Option<u64> {
        let old = {
            let (mut leaf, is_root) = self.leaf_exclusive(bm, key);
            match leaf_search(&leaf, key) {
                Ok(i) => {
                    let old = leaf_val(&leaf, i);
                    leaf_remove_at(&mut leaf, i);
                    if is_root || entry_count(&leaf) >= self.min_leaf {
                        return Some(old);
                    }
                    old
                }
                Err(_) => return None,
            }
            // leaf underflow: rebalancing is needed — release every
            // latch first, then restart pessimistically
        };
        self.restarts.add(1);
        self.rebalance(bm, key);
        Some(old)
    }

    /// Visits `(key, value)` pairs with `lo <= key < hi` in ascending
    /// key order; stop early by returning `false` from the visitor.
    ///
    /// The visitor runs with the current leaf share-latched: it must
    /// not re-enter this tree (or fix pages that would violate the
    /// top-down / left-to-right latch order).
    pub fn scan_range(
        &self,
        bm: &BufferManager,
        lo: u64,
        hi: u64,
        mut visit: impl FnMut(u64, u64) -> bool,
    ) {
        let root = self.root.read().expect("root latch");
        let mut guard = bm.fix_shared(self.file, *root);
        drop(root);
        self.visits.add(1);
        // descend to the leaf that would hold `lo`
        while !is_leaf(&guard) {
            let (_, child) = internal_lookup(&guard, lo);
            guard = bm.fix_shared(self.file, child);
            self.visits.add(1);
        }
        loop {
            for i in 0..entry_count(&guard) {
                let k = leaf_key(&guard, i);
                if k < lo {
                    continue;
                }
                if k >= hi {
                    return;
                }
                if !visit(k, leaf_val(&guard, i)) {
                    return;
                }
            }
            let next = leaf_next(&guard);
            if next == NO_LEAF {
                return;
            }
            guard = bm.fix_shared(self.file, next); // crab along the chain
            self.visits.add(1);
        }
    }

    /// The smallest `(key, value)` with `key >= lo` (e.g. the oldest
    /// pending order of a district when keys are `(w, d, order-no)`).
    pub fn min_at_or_after(&self, bm: &BufferManager, lo: u64) -> Option<(u64, u64)> {
        let mut found = None;
        self.scan_range(bm, lo, u64::MAX, |k, v| {
            found = Some((k, v));
            false
        });
        found
    }

    /// Total live entries (full scan; test/diagnostic helper).
    pub fn len(&self, bm: &BufferManager) -> usize {
        let mut n = 0;
        self.scan_range(bm, 0, u64::MAX, |_, _| {
            n += 1;
            true
        });
        n
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self, bm: &BufferManager) -> bool {
        self.min_at_or_after(bm, 0).is_none()
    }

    /// Tree height in levels (1 = a lone leaf root), following the
    /// leftmost spine with shared coupling.
    pub fn height(&self, bm: &BufferManager) -> usize {
        let root = self.root.read().expect("root latch");
        let mut guard = bm.fix_shared(self.file, *root);
        drop(root);
        let mut h = 1;
        while !is_leaf(&guard) {
            let child = internal_child_at(&guard, 0);
            guard = bm.fix_shared(self.file, child);
            h += 1;
        }
        h
    }

    /// Live pages of the index file: allocated minus freed-by-merges.
    /// The steady-state footprint the soak tests assert on.
    #[must_use]
    pub fn allocated_pages(&self, bm: &BufferManager) -> u32 {
        bm.allocated_pages(self.file)
    }

    /// Descends with shared coupling and returns the target leaf
    /// write-latched, plus whether that leaf is the root. The parent
    /// (or, for a leaf root, the structure latch) stays share-held
    /// across the leaf's shared→exclusive re-fix: a split or merge of
    /// that leaf would need the parent exclusively (or the structure
    /// latch exclusively), so the leaf located by the descent is still
    /// the right one when the write latch lands.
    fn leaf_exclusive<'b>(&self, bm: &'b BufferManager, key: u64) -> (PageWriteGuard<'b>, bool) {
        let root = self.root.read().expect("root latch");
        let root_page = *root;
        let first = bm.fix_shared(self.file, root_page);
        self.visits.add(1);
        if is_leaf(&first) {
            drop(first);
            // root lock still read-held
            return (bm.fix_exclusive(self.file, root_page), true);
        }
        drop(root);
        let mut parent = first;
        loop {
            let (_, child_page) = internal_lookup(&parent, key);
            let child = bm.fix_shared(self.file, child_page);
            self.visits.add(1);
            if is_leaf(&child) {
                drop(child);
                // parent still read-held
                return (bm.fix_exclusive(self.file, child_page), false);
            }
            parent = child;
        }
    }

    /// Exclusive-coupled descent with preemptive top-down splits: any
    /// full node on the path is split while its (non-full, by
    /// induction) parent is still write-latched, so separators always
    /// have room and nothing propagates back up. At most parent + child
    /// + one freshly allocated sibling are latched at any moment.
    fn insert_pessimistic(&self, bm: &BufferManager, key: u64, value: u64) -> Option<u64> {
        let mut root_lock = self.root.write().expect("root latch");
        let mut node = bm.fix_exclusive(self.file, *root_lock);
        self.visits.add(1);
        if self.node_full(&node) {
            // grow the tree while holding the structure latch exclusively
            let (sep, right_page, right, left) = self.split_node(bm, node);
            let left_page = left.page();
            let (new_root, mut root_guard) = bm.allocate_fixed(self.file);
            encode(
                &mut root_guard,
                &Node::Internal {
                    keys: vec![sep],
                    children: vec![left_page, right_page],
                },
            );
            drop(root_guard);
            *root_lock = new_root;
            node = if key >= sep {
                drop(left);
                right
            } else {
                drop(right);
                left
            };
        }
        drop(root_lock);
        loop {
            if is_leaf(&node) {
                let mut leaf = node;
                return match leaf_search(&leaf, key) {
                    Ok(i) => {
                        let old = leaf_val(&leaf, i);
                        leaf_set_val(&mut leaf, i, value);
                        Some(old)
                    }
                    Err(i) => {
                        leaf_insert_at(&mut leaf, i, key, value);
                        None
                    }
                };
            }
            let (child_idx, child_page) = internal_lookup(&node, key);
            let mut child = bm.fix_exclusive(self.file, child_page);
            self.visits.add(1);
            if self.node_full(&child) {
                let (sep, right_page, right, left) = self.split_node(bm, child);
                let Node::Internal {
                    mut keys,
                    mut children,
                } = decode(&node)
                else {
                    unreachable!("descent parent is internal");
                };
                keys.insert(child_idx, sep);
                children.insert(child_idx + 1, right_page);
                encode(&mut node, &Node::Internal { keys, children });
                child = if key >= sep {
                    drop(left);
                    right
                } else {
                    drop(right);
                    left
                };
            }
            node = child; // crab: drop the parent, descend
        }
    }

    /// Exclusive-coupled descent with top-down rebalancing: any
    /// deficient node on the path is merged with or borrows from an
    /// adjacent sibling while its parent is still write-latched, so
    /// deficiencies never propagate back up. Mirrors
    /// [`BTree::insert_pessimistic`]; at most parent + two siblings
    /// (three page latches) are held at any moment, acquired top-down
    /// and left-to-right.
    ///
    /// The structure latch is held exclusively while the root can
    /// still change: a single-child internal root is collapsed (its
    /// page freed) and, while the root has exactly one separator, a
    /// child merge could empty it — so the latch is kept until the
    /// descent is past every root-changing case.
    fn rebalance(&self, bm: &BufferManager, key: u64) {
        let mut root_lock = self.root.write().expect("root latch");
        let mut node = bm.fix_exclusive(self.file, *root_lock);
        self.visits.add(1);
        let mut node = loop {
            if is_leaf(&node) {
                // a root leaf may hold any entry count
                return;
            }
            if entry_count(&node) == 0 {
                // single-child internal root: the child takes over
                let child = internal_child_at(&node, 0);
                bm.free_fixed(node);
                *root_lock = child;
                node = bm.fix_exclusive(self.file, child);
                self.visits.add(1);
                continue;
            }
            if entry_count(&node) >= 2 {
                break node; // no merge below can empty this root
            }
            // exactly one separator: fixing a deficient child may merge
            // the root's two children and empty it
            let (child_idx, child_page) = internal_lookup(&node, key);
            let mut child = bm.fix_exclusive(self.file, child_page);
            self.visits.add(1);
            if self.node_deficient(&child) {
                child = self.fix_deficient(bm, &mut node, child_idx, child, key);
            }
            if entry_count(&node) == 0 {
                let merged = child.page();
                bm.free_fixed(node);
                *root_lock = merged;
                node = child;
                continue; // the new root may itself need collapsing
            }
            break child; // root settled at ≥1 separator: descend
        };
        drop(root_lock);
        while !is_leaf(&node) {
            let (child_idx, child_page) = internal_lookup(&node, key);
            let mut child = bm.fix_exclusive(self.file, child_page);
            self.visits.add(1);
            // a parent merge can (at tiny fan-outs) leave this node
            // with zero separators and thus no sibling to fix the
            // child with; leave the deficiency for a later descent
            if self.node_deficient(&child) && entry_count(&node) >= 1 {
                child = self.fix_deficient(bm, &mut node, child_idx, child, key);
            }
            node = child; // crab: drop the parent, descend
        }
    }

    /// Restores occupancy of the `child_idx`-th child of the
    /// write-latched `parent` by merging it with an adjacent sibling
    /// (when the combined entries fit on one page; the emptied right
    /// page is freed) or borrowing from it (the two split their
    /// entries evenly and the parent separator is updated). Prefers
    /// the left sibling; to honour the left-to-right latch order the
    /// child latch is dropped and re-taken after the sibling's — safe
    /// because the write-latched parent excludes every other descent
    /// into either page. Returns the surviving guard covering `key`'s
    /// search path.
    ///
    /// The parent must have at least one separator (a sibling exists).
    fn fix_deficient<'b>(
        &self,
        bm: &'b BufferManager,
        parent: &mut PageWriteGuard<'b>,
        child_idx: usize,
        child: PageWriteGuard<'b>,
        key: u64,
    ) -> PageWriteGuard<'b> {
        let child_page = child.page();
        let use_left = child_idx > 0;
        let (sep_idx, left, right) = if use_left {
            let left_page = internal_child_at(parent, child_idx - 1);
            drop(child); // re-acquire in left-to-right order
            let left = bm.fix_exclusive(self.file, left_page);
            let right = bm.fix_exclusive(self.file, child_page);
            (child_idx - 1, left, right)
        } else {
            let right_page = internal_child_at(parent, child_idx + 1);
            let right = bm.fix_exclusive(self.file, right_page);
            (child_idx, child, right)
        };
        self.visits.add(1);
        let (mut left, mut right) = (left, right);
        let sep = internal_key(parent, sep_idx);
        match (decode(&left), decode(&right)) {
            (
                Node::Leaf {
                    keys: mut lk,
                    vals: mut lv,
                    ..
                },
                Node::Leaf {
                    keys: rk,
                    vals: rv,
                    next: rnext,
                },
            ) => {
                if lk.len() + rk.len() <= self.leaf_cap {
                    self.merges.add(1);
                    lk.extend(rk);
                    lv.extend(rv);
                    encode(
                        &mut left,
                        &Node::Leaf {
                            keys: lk,
                            vals: lv,
                            next: rnext,
                        },
                    );
                    internal_remove_entry(parent, sep_idx);
                    bm.free_fixed(right);
                    left
                } else {
                    self.borrows.add(1);
                    let mut all_k = lk;
                    let mut all_v = lv;
                    all_k.extend(rk);
                    all_v.extend(rv);
                    let keep = all_k.len() / 2;
                    let rk = all_k.split_off(keep);
                    let rv = all_v.split_off(keep);
                    let new_sep = rk[0];
                    encode(
                        &mut left,
                        &Node::Leaf {
                            keys: all_k,
                            vals: all_v,
                            next: right.page(),
                        },
                    );
                    encode(
                        &mut right,
                        &Node::Leaf {
                            keys: rk,
                            vals: rv,
                            next: rnext,
                        },
                    );
                    internal_set_key(parent, sep_idx, new_sep);
                    if key < new_sep {
                        left
                    } else {
                        right
                    }
                }
            }
            (
                Node::Internal {
                    keys: mut lk,
                    children: mut lc,
                },
                Node::Internal {
                    keys: rk,
                    children: rc,
                },
            ) => {
                // the merged node holds both key sets plus the
                // pulled-down separator
                if lk.len() + rk.len() < self.internal_cap {
                    // merge: the separator is pulled down between the halves
                    self.merges.add(1);
                    lk.push(sep);
                    lk.extend(rk);
                    lc.extend(rc);
                    encode(
                        &mut left,
                        &Node::Internal {
                            keys: lk,
                            children: lc,
                        },
                    );
                    internal_remove_entry(parent, sep_idx);
                    bm.free_fixed(right);
                    left
                } else {
                    // borrow: rotate entries through the separator
                    self.borrows.add(1);
                    let mut all_k = lk;
                    let mut all_c = lc;
                    all_k.push(sep);
                    all_k.extend(rk);
                    all_c.extend(rc);
                    let keep = all_k.len() / 2;
                    let mut rk = all_k.split_off(keep);
                    let new_sep = rk.remove(0);
                    let rc = all_c.split_off(keep + 1);
                    encode(
                        &mut left,
                        &Node::Internal {
                            keys: all_k,
                            children: all_c,
                        },
                    );
                    encode(
                        &mut right,
                        &Node::Internal {
                            keys: rk,
                            children: rc,
                        },
                    );
                    internal_set_key(parent, sep_idx, new_sep);
                    if key < new_sep {
                        left
                    } else {
                        right
                    }
                }
            }
            _ => unreachable!("siblings at one level share a kind"),
        }
    }

    fn node_deficient(&self, data: &[u8]) -> bool {
        let min = if is_leaf(data) {
            self.min_leaf
        } else {
            self.min_internal
        };
        entry_count(data) < min
    }

    fn node_full(&self, data: &[u8]) -> bool {
        let cap = if is_leaf(data) {
            self.leaf_cap
        } else {
            self.internal_cap
        };
        entry_count(data) >= cap
    }

    /// Splits a full node in place: the upper half moves to a freshly
    /// allocated right sibling. Returns `(separator, right page, right
    /// guard, left guard)` — both halves still write-latched so the
    /// caller can link them before anyone can observe the split.
    fn split_node<'b>(
        &self,
        bm: &'b BufferManager,
        mut left: PageWriteGuard<'b>,
    ) -> (u64, u32, PageWriteGuard<'b>, PageWriteGuard<'b>) {
        self.splits.add(1);
        let node = decode(&left);
        let (right_page, mut right) = bm.allocate_fixed(self.file);
        let sep = match node {
            Node::Leaf {
                mut keys,
                mut vals,
                next,
            } => {
                let mid = keys.len() / 2;
                let right_keys = keys.split_off(mid);
                let right_vals = vals.split_off(mid);
                let sep = right_keys[0];
                encode(
                    &mut right,
                    &Node::Leaf {
                        keys: right_keys,
                        vals: right_vals,
                        next,
                    },
                );
                encode(
                    &mut left,
                    &Node::Leaf {
                        keys,
                        vals,
                        next: right_page,
                    },
                );
                sep
            }
            Node::Internal {
                mut keys,
                mut children,
            } => {
                let mid = keys.len() / 2;
                let promoted = keys[mid];
                let right_keys = keys.split_off(mid + 1);
                keys.pop(); // remove promoted
                let right_children = children.split_off(mid + 1);
                encode(
                    &mut right,
                    &Node::Internal {
                        keys: right_keys,
                        children: right_children,
                    },
                );
                encode(&mut left, &Node::Internal { keys, children });
                promoted
            }
        };
        (sep, right_page, right, left)
    }
}

// ---- raw page accessors (allocation-free hot paths) ----

fn is_leaf(data: &[u8]) -> bool {
    data[0] == LEAF
}

fn entry_count(data: &[u8]) -> usize {
    u16::from_le_bytes([data[2], data[3]]) as usize
}

fn set_entry_count(data: &mut [u8], n: usize) {
    data[2..4].copy_from_slice(&(n as u16).to_le_bytes());
}

fn leaf_next(data: &[u8]) -> u32 {
    u32::from_le_bytes(data[4..8].try_into().expect("header"))
}

fn leaf_key(data: &[u8], i: usize) -> u64 {
    let off = HEADER + i * 16;
    u64::from_le_bytes(data[off..off + 8].try_into().expect("key"))
}

fn leaf_val(data: &[u8], i: usize) -> u64 {
    let off = HEADER + i * 16 + 8;
    u64::from_le_bytes(data[off..off + 8].try_into().expect("val"))
}

fn leaf_set_val(data: &mut [u8], i: usize, value: u64) {
    let off = HEADER + i * 16 + 8;
    data[off..off + 8].copy_from_slice(&value.to_le_bytes());
}

/// Binary search over a leaf's keys.
fn leaf_search(data: &[u8], key: u64) -> Result<usize, usize> {
    let (mut lo, mut hi) = (0usize, entry_count(data));
    while lo < hi {
        let mid = (lo + hi) / 2;
        let k = leaf_key(data, mid);
        if k < key {
            lo = mid + 1;
        } else if k > key {
            hi = mid;
        } else {
            return Ok(mid);
        }
    }
    Err(lo)
}

/// Inserts `(key, value)` at position `i`, shifting later entries.
fn leaf_insert_at(data: &mut [u8], i: usize, key: u64, value: u64) {
    let n = entry_count(data);
    let start = HEADER + i * 16;
    data.copy_within(start..HEADER + n * 16, start + 16);
    data[start..start + 8].copy_from_slice(&key.to_le_bytes());
    data[start + 8..start + 16].copy_from_slice(&value.to_le_bytes());
    set_entry_count(data, n + 1);
}

/// Removes the entry at position `i`, shifting later entries down.
fn leaf_remove_at(data: &mut [u8], i: usize) {
    let n = entry_count(data);
    let start = HEADER + i * 16;
    data.copy_within(start + 16..HEADER + n * 16, start);
    set_entry_count(data, n - 1);
}

fn internal_key(data: &[u8], i: usize) -> u64 {
    let off = HEADER + 4 + i * 12;
    u64::from_le_bytes(data[off..off + 8].try_into().expect("key"))
}

/// Overwrites separator `i` in place.
fn internal_set_key(data: &mut [u8], i: usize, key: u64) {
    let off = HEADER + 4 + i * 12;
    data[off..off + 8].copy_from_slice(&key.to_le_bytes());
}

/// Removes separator `i` and child `i + 1` (one 12-byte entry),
/// shifting later entries down — the post-merge parent update.
fn internal_remove_entry(data: &mut [u8], i: usize) {
    let n = entry_count(data);
    let start = HEADER + 4 + i * 12;
    data.copy_within(start + 12..HEADER + 4 + n * 12, start);
    set_entry_count(data, n - 1);
}

fn internal_child_at(data: &[u8], i: usize) -> u32 {
    let off = if i == 0 {
        HEADER
    } else {
        HEADER + 4 + (i - 1) * 12 + 8
    };
    u32::from_le_bytes(data[off..off + 4].try_into().expect("child"))
}

/// The child subtree holding `key`: index of the first separator
/// `> key`, and that child's page number.
fn internal_lookup(data: &[u8], key: u64) -> (usize, u32) {
    let (mut lo, mut hi) = (0usize, entry_count(data));
    while lo < hi {
        let mid = (lo + hi) / 2;
        if internal_key(data, mid) <= key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    (lo, internal_child_at(data, lo))
}

fn encode(data: &mut [u8], node: &Node) {
    match node {
        Node::Leaf { keys, vals, next } => {
            data[0] = LEAF;
            data[2..4].copy_from_slice(&(keys.len() as u16).to_le_bytes());
            data[4..8].copy_from_slice(&next.to_le_bytes());
            let mut off = HEADER;
            for (k, v) in keys.iter().zip(vals) {
                data[off..off + 8].copy_from_slice(&k.to_le_bytes());
                data[off + 8..off + 16].copy_from_slice(&v.to_le_bytes());
                off += 16;
            }
        }
        Node::Internal { keys, children } => {
            data[0] = INTERNAL;
            data[2..4].copy_from_slice(&(keys.len() as u16).to_le_bytes());
            data[4..8].copy_from_slice(&NO_LEAF.to_le_bytes());
            data[HEADER..HEADER + 4].copy_from_slice(&children[0].to_le_bytes());
            let mut off = HEADER + 4;
            for (k, c) in keys.iter().zip(children.iter().skip(1)) {
                data[off..off + 8].copy_from_slice(&k.to_le_bytes());
                data[off + 8..off + 12].copy_from_slice(&c.to_le_bytes());
                off += 12;
            }
        }
    }
}

fn decode(data: &[u8]) -> Node {
    let kind = data[0];
    let n = u16::from_le_bytes([data[2], data[3]]) as usize;
    if kind == LEAF {
        let next = u32::from_le_bytes(data[4..8].try_into().expect("header"));
        let mut keys = Vec::with_capacity(n);
        let mut vals = Vec::with_capacity(n);
        let mut off = HEADER;
        for _ in 0..n {
            keys.push(u64::from_le_bytes(
                data[off..off + 8].try_into().expect("key"),
            ));
            vals.push(u64::from_le_bytes(
                data[off + 8..off + 16].try_into().expect("val"),
            ));
            off += 16;
        }
        Node::Leaf { keys, vals, next }
    } else {
        let mut children = Vec::with_capacity(n + 1);
        children.push(u32::from_le_bytes(
            data[HEADER..HEADER + 4].try_into().expect("child0"),
        ));
        let mut keys = Vec::with_capacity(n);
        let mut off = HEADER + 4;
        for _ in 0..n {
            keys.push(u64::from_le_bytes(
                data[off..off + 8].try_into().expect("key"),
            ));
            children.push(u32::from_le_bytes(
                data[off + 8..off + 12].try_into().expect("child"),
            ));
            off += 12;
        }
        Node::Internal { keys, children }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bufmgr::Replacement;
    use crate::disk::DiskManager;
    use tpcc_rand::Xoshiro256;

    fn setup(page_size: usize, frames: usize) -> (BufferManager, BTree) {
        let disk = DiskManager::new(page_size);
        let bm = BufferManager::new(disk, frames, Replacement::Lru);
        let tree = BTree::create(&bm);
        (bm, tree)
    }

    #[test]
    fn insert_get_small() {
        let (bm, t) = setup(256, 16);
        assert_eq!(t.insert(&bm, 5, 50), None);
        assert_eq!(t.insert(&bm, 3, 30), None);
        assert_eq!(t.insert(&bm, 9, 90), None);
        assert_eq!(t.get(&bm, 5), Some(50));
        assert_eq!(t.get(&bm, 3), Some(30));
        assert_eq!(t.get(&bm, 9), Some(90));
        assert_eq!(t.get(&bm, 4), None);
    }

    #[test]
    fn overwrite_returns_old() {
        let (bm, t) = setup(256, 16);
        t.insert(&bm, 7, 1);
        assert_eq!(t.insert(&bm, 7, 2), Some(1));
        assert_eq!(t.get(&bm, 7), Some(2));
        assert_eq!(t.len(&bm), 1);
    }

    #[test]
    fn many_inserts_with_splits_sequential() {
        // small pages force deep trees
        let (bm, t) = setup(256, 64);
        let n = 5000u64;
        for k in 0..n {
            t.insert(&bm, k, k * 2);
        }
        for k in 0..n {
            assert_eq!(t.get(&bm, k), Some(k * 2), "key {k}");
        }
        assert_eq!(t.len(&bm), n as usize);
    }

    #[test]
    fn many_inserts_random_order() {
        let (bm, t) = setup(256, 64);
        let mut rng = Xoshiro256::seed_from_u64(42);
        let mut keys: Vec<u64> = (0..4000).map(|_| rng.next_u64() >> 16).collect();
        keys.sort_unstable();
        keys.dedup();
        // shuffle
        for i in (1..keys.len()).rev() {
            let j = rng.uniform_inclusive(0, i as u64) as usize;
            keys.swap(i, j);
        }
        for &k in &keys {
            t.insert(&bm, k, !k);
        }
        for &k in &keys {
            assert_eq!(t.get(&bm, k), Some(!k));
        }
    }

    #[test]
    fn scan_range_is_sorted_and_bounded() {
        let (bm, t) = setup(256, 64);
        for k in (0..1000u64).rev() {
            t.insert(&bm, k * 3, k);
        }
        let mut seen = Vec::new();
        t.scan_range(&bm, 90, 150, |k, _| {
            seen.push(k);
            true
        });
        assert_eq!(
            seen,
            vec![
                90, 93, 96, 99, 102, 105, 108, 111, 114, 117, 120, 123, 126, 129, 132, 135, 138,
                141, 144, 147
            ]
        );
    }

    #[test]
    fn scan_early_stop() {
        let (bm, t) = setup(256, 64);
        for k in 0..100u64 {
            t.insert(&bm, k, k);
        }
        let mut count = 0;
        t.scan_range(&bm, 0, u64::MAX, |_, _| {
            count += 1;
            count < 5
        });
        assert_eq!(count, 5);
    }

    #[test]
    fn min_at_or_after_finds_oldest() {
        let (bm, t) = setup(256, 32);
        for k in [50u64, 20, 80, 35] {
            t.insert(&bm, k, k + 1);
        }
        assert_eq!(t.min_at_or_after(&bm, 0), Some((20, 21)));
        assert_eq!(t.min_at_or_after(&bm, 21), Some((35, 36)));
        assert_eq!(t.min_at_or_after(&bm, 81), None);
    }

    #[test]
    fn delete_removes_and_scan_skips() {
        let (bm, t) = setup(256, 64);
        for k in 0..500u64 {
            t.insert(&bm, k, k);
        }
        for k in (0..500).step_by(2) {
            assert_eq!(t.delete(&bm, k), Some(k));
        }
        assert_eq!(t.delete(&bm, 0), None, "double delete");
        for k in 0..500u64 {
            let expect = (k % 2 == 1).then_some(k);
            assert_eq!(t.get(&bm, k), expect, "key {k}");
        }
        assert_eq!(t.len(&bm), 250);
    }

    #[test]
    fn fifo_queue_pattern_like_new_order() {
        // insert at the tail, delete at the head — the New-Order usage
        let (bm, t) = setup(256, 32);
        let mut head = 0u64;
        let mut tail = 0u64;
        for _ in 0..2000 {
            t.insert(&bm, tail, tail);
            tail += 1;
            if tail - head > 30 {
                let (k, _) = t.min_at_or_after(&bm, 0).expect("nonempty");
                assert_eq!(k, head);
                t.delete(&bm, k);
                head += 1;
            }
        }
        assert_eq!(t.len(&bm), (tail - head) as usize);
    }

    #[test]
    fn fifo_churn_keeps_the_footprint_bounded() {
        // The Delivery leak in miniature: without merges the head
        // leaves of the FIFO queue stay allocated forever and the
        // index grows without bound. With them the footprint must
        // plateau near the live-entry working set.
        let (bm, t) = setup(256, 64);
        let mut head = 0u64;
        let mut tail = 0u64;
        let mut plateau = Vec::new();
        for round in 0..40_000u64 {
            t.insert(&bm, tail, tail);
            tail += 1;
            if tail - head > 30 {
                assert_eq!(t.delete(&bm, head), Some(head));
                head += 1;
            }
            if round >= 10_000 && round % 2_000 == 0 {
                plateau.push(t.allocated_pages(&bm));
            }
        }
        let (lo, hi) = (
            *plateau.iter().min().expect("samples"),
            *plateau.iter().max().expect("samples"),
        );
        assert!(
            hi - lo <= 1,
            "footprint must be flat in steady state: {plateau:?}"
        );
        // 30 live entries fit in a handful of 15-entry leaves + spine
        assert!(hi <= 8, "steady-state footprint too large: {hi} pages");
        assert!(t.height(&bm) <= 3);
        assert_eq!(t.len(&bm), (tail - head) as usize);
    }

    #[test]
    fn delete_everything_collapses_the_tree() {
        let (bm, t) = setup(256, 64);
        let n = 3000u64;
        for k in 0..n {
            t.insert(&bm, k, k);
        }
        let grown = t.allocated_pages(&bm);
        assert!(grown > 100, "tree grew: {grown} pages");
        assert!(t.height(&bm) >= 3);
        for k in 0..n {
            assert_eq!(t.delete(&bm, k), Some(k), "key {k}");
        }
        assert!(t.is_empty(&bm));
        assert_eq!(t.height(&bm), 1, "root collapsed back to a lone leaf");
        assert!(
            t.allocated_pages(&bm) <= 2,
            "pages returned: {} still allocated",
            t.allocated_pages(&bm)
        );
        // the tree is still fully usable after total collapse
        for k in 0..200u64 {
            t.insert(&bm, k, !k);
        }
        for k in 0..200u64 {
            assert_eq!(t.get(&bm, k), Some(!k));
        }
    }

    #[test]
    fn random_delete_heavy_churn_matches_model() {
        // interleaved inserts/deletes against a BTreeMap oracle, with
        // scans — exercises borrow (balance) paths, not just the
        // FIFO merge pattern
        use std::collections::BTreeMap;
        let (bm, t) = setup(256, 64);
        let mut oracle = BTreeMap::new();
        let mut rng = Xoshiro256::seed_from_u64(7);
        for _ in 0..30_000 {
            let k = rng.uniform_inclusive(0, 999);
            if rng.uniform_inclusive(0, 99) < 55 {
                // delete-heavy mix drives occupancy down into the
                // rebalance threshold constantly
                assert_eq!(t.delete(&bm, k), oracle.remove(&k), "delete {k}");
            } else {
                let v = rng.next_u64();
                assert_eq!(t.insert(&bm, k, v), oracle.insert(k, v), "insert {k}");
            }
        }
        let mut actual = Vec::new();
        t.scan_range(&bm, 0, u64::MAX, |k, v| {
            actual.push((k, v));
            true
        });
        let expected: Vec<(u64, u64)> = oracle.into_iter().collect();
        assert_eq!(actual, expected, "contents diverge from oracle");
    }

    #[test]
    fn merges_free_pages_and_log_replays() {
        // grow, shrink, and crash-recover: the WAL must replay the
        // merge-driven frees to the same image a clean run produced
        let disk = DiskManager::new(256);
        let mut bm = BufferManager::new(disk, 64, Replacement::Lru);
        bm.enable_wal();
        let checkpoint = bm.disk_snapshot();
        let t = BTree::create(&bm);
        for k in 0..1500u64 {
            t.insert(&bm, k, k);
        }
        for k in 0..1400u64 {
            t.delete(&bm, k);
        }
        bm.log_commit(1);
        bm.flush_all();
        assert!(bm.pages_freed() > 0, "merges freed pages");

        let wal = bm.take_wal().expect("enabled");
        let clean = bm.disk_snapshot();
        let recovered = wal.recover(checkpoint);
        assert!(
            recovered.contents_equal(&clean),
            "recovery replays merges and frees identically"
        );
    }

    #[test]
    fn survives_tiny_buffer_pool() {
        // 4 frames, tree of thousands of keys: exercises write-back
        let (bm, t) = setup(256, 4);
        for k in 0..3000u64 {
            t.insert(&bm, k, k ^ 0xAB);
        }
        for k in (0..3000u64).step_by(97) {
            assert_eq!(t.get(&bm, k), Some(k ^ 0xAB));
        }
    }

    #[test]
    fn concurrent_disjoint_writers_and_readers() {
        // four threads own disjoint key stripes; a scan thread sweeps
        // the whole range concurrently. Crabbing must keep every stripe
        // intact with no lost inserts.
        let disk = DiskManager::new(256);
        let bm = BufferManager::new_sharded(disk, 256, Replacement::Lru, 8);
        let t = BTree::create(&bm);
        const PER: u64 = 2000;
        std::thread::scope(|scope| {
            for stripe in 0..4u64 {
                let (t, bm) = (&t, &bm);
                scope.spawn(move || {
                    for i in 0..PER {
                        let k = stripe * 1_000_000 + i;
                        t.insert(bm, k, !k);
                    }
                });
            }
            let (t, bm) = (&t, &bm);
            scope.spawn(move || {
                for _ in 0..50 {
                    let mut last = 0;
                    t.scan_range(bm, 0, u64::MAX, |k, _| {
                        assert!(k >= last, "scan out of order");
                        last = k;
                        true
                    });
                }
            });
        });
        for stripe in 0..4u64 {
            for i in 0..PER {
                let k = stripe * 1_000_000 + i;
                assert_eq!(t.get(&bm, k), Some(!k), "stripe {stripe} key {i}");
            }
        }
        assert_eq!(t.len(&bm), 4 * PER as usize);
    }
}
