//! Change-data-capture over the redo log: a subscription API that
//! turns the WAL's durable committed prefix into a stream of typed
//! **row changes** (insert / update / delete with full before/after
//! images), decoded from physical page-delta records.
//!
//! # How decoding works
//!
//! A [`CdcSubscriber`] owns a **shadow disk**: a checkpoint image
//! advanced by the same [`apply_entry`] replay step recovery uses, so
//! the decoder and crash recovery cannot drift apart. Page deltas are
//! *physical* (a logical insert writes the slot directory and the
//! record bytes as separate segmented deltas), so the subscriber never
//! diffs per delta. Instead it captures each watched page's before
//! image at first touch after a commit boundary and diffs the slotted
//! page's **live slots** only when the next [`WalEntry::Commit`] /
//! [`WalEntry::Decide`] marker lands. The per-marker diffs telescope:
//! their composition over any WAL prefix equals the total change of
//! that prefix, which is what the replay-equivalence tests assert.
//!
//! # Consistency gates
//!
//! * **Group commit** — the subscriber consumes only
//!   `entries[cursor .. committed_len())`, and [`Wal::committed_len`]
//!   is computed within the *durable watermark*: an unflushed tail is
//!   invisible, so no event is ever emitted for a commit that a crash
//!   could still lose.
//! * **MVCC rollbacks** — an abort replays its undo images through
//!   ordinary logged page writes (compensation by redo), so a rolled-
//!   back transaction's forward and compensating deltas both precede
//!   the next marker and its page diffs net to zero: no events.
//! * **2PC** — a durable [`WalEntry::Prepare`] is not a boundary:
//!   prepared-but-undecided deltas stay pending until the
//!   coordinator's [`WalEntry::Decide`] lands (presumed abort, exactly
//!   the recovery rule). An abort decision is preceded by compensating
//!   deltas, so its batch is empty. [`CdcSubscriber::poll_resolved`]
//!   mirrors [`Wal::try_recover_resolved`] for in-doubt resolution.
//!
//! # Backpressure and checkpoints
//!
//! A bounded-lag subscriber gets a typed [`CdcLag`] error when the
//! committed prefix runs more than `max_lag` entries ahead of its
//! cursor; the cursor does not move, so it can always resume without
//! missing events (the log is retained). A [`CdcCheckpoint`] is a
//! (cursor, shadow-disk) pair: re-attaching to any WAL whose prefix
//! contains that cursor resumes the stream exactly. Taking one fires
//! the [`FaultSite::CdcCheckpoint`] fault site so the crashpoint
//! harness can enumerate checkpoint loss.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::disk::{DiskManager, FileId};
use crate::fault::{FaultHook, FaultSite};
use crate::wal::{apply_entry, Wal, WalEntry};

/// One row-level change, attributed to a slot of a watched page file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowChange {
    /// Page file the row lives in.
    pub file: FileId,
    /// Page number.
    pub page: u32,
    /// Slot within the page (stable across in-page compaction).
    pub slot: u16,
    /// What happened to the row.
    pub op: RowOp,
}

/// The change kind, with full record images.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowOp {
    /// The slot went live.
    Insert {
        /// Record bytes after the change.
        after: Vec<u8>,
    },
    /// The slot stayed live but its bytes changed.
    Update {
        /// Record bytes before the change.
        before: Vec<u8>,
        /// Record bytes after the change.
        after: Vec<u8>,
    },
    /// The slot went dead (or its page was freed).
    Delete {
        /// Record bytes before the change.
        before: Vec<u8>,
    },
}

impl RowOp {
    /// Stable lower-snake name (for JSON export).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            RowOp::Insert { .. } => "insert",
            RowOp::Update { .. } => "update",
            RowOp::Delete { .. } => "delete",
        }
    }
}

/// All row changes between two consecutive durable commit boundaries.
///
/// On a serial workload this is exactly one transaction's write set;
/// under a concurrent workload markers interleave with other
/// transactions' deltas, so a batch is the *physical* change between
/// boundaries — the composition over a prefix is identical either way.
#[derive(Debug, Clone, PartialEq)]
pub struct ChangeBatch {
    /// Logical transaction timestamp of the boundary marker.
    pub txn: u64,
    /// False when the boundary is an abort [`WalEntry::Decide`]
    /// (whose compensated batch is empty on a serial workload).
    pub committed: bool,
    /// WAL index one past the boundary marker — the subscriber's
    /// cursor after consuming this batch.
    pub upto: usize,
    /// Row changes, ordered by (file, page, slot).
    pub changes: Vec<RowChange>,
}

/// Typed backpressure error: the subscriber's cursor lags the durable
/// committed prefix by more than its configured bound. The cursor has
/// **not** moved — a later poll (or [`CdcSubscriber::poll_unbounded`])
/// resumes from it with no events missed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CdcLag {
    /// The subscriber's cursor (WAL entries already consumed).
    pub cursor: usize,
    /// The durable committed prefix it failed to keep up with.
    pub committed_len: usize,
    /// The configured bound the lag exceeded.
    pub max_lag: usize,
}

impl std::fmt::Display for CdcLag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cdc subscriber lagging: cursor {} is {} entries behind committed prefix {} (bound {})",
            self.cursor,
            self.committed_len - self.cursor,
            self.committed_len,
            self.max_lag
        )
    }
}

impl std::error::Error for CdcLag {}

/// A durable resume point: the cursor plus the shadow disk at that
/// cursor. [`CdcSubscriber::resume`] rebuilds a subscriber that
/// continues the stream exactly where this checkpoint stopped.
#[derive(Debug)]
pub struct CdcCheckpoint {
    /// WAL entries consumed when the checkpoint was taken.
    pub cursor: usize,
    /// Shadow disk image at `cursor`.
    pub disk: DiskManager,
}

impl CdcCheckpoint {
    /// A deep copy, so one stored checkpoint can seed many resumed
    /// subscribers (the crashpoint sweep rebuilds from the same
    /// checkpoint once per verified prefix).
    #[must_use]
    pub fn snapshot(&self) -> Self {
        Self {
            cursor: self.cursor,
            disk: self.disk.snapshot(),
        }
    }
}

/// Counters a subscriber accumulates (throughput telemetry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CdcStats {
    /// WAL entries consumed.
    pub entries_consumed: u64,
    /// Change batches emitted.
    pub batches: u64,
    /// Row-change events emitted.
    pub events: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
}

/// A change-stream subscriber over one database's WAL.
pub struct CdcSubscriber {
    shadow: DiskManager,
    cursor: usize,
    watched: Vec<FileId>,
    max_lag: Option<usize>,
    hook: Option<Arc<FaultHook>>,
    scratch: Vec<u8>,
    stats: CdcStats,
}

impl std::fmt::Debug for CdcSubscriber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CdcSubscriber")
            .field("cursor", &self.cursor)
            .field("watched", &self.watched)
            .field("max_lag", &self.max_lag)
            .field("stats", &self.stats)
            .finish()
    }
}

impl CdcSubscriber {
    /// A subscriber whose shadow starts from `base` — the same
    /// checkpoint image recovery replays over (cursor 0).
    #[must_use]
    pub fn new(base: DiskManager) -> Self {
        Self {
            shadow: base,
            cursor: 0,
            watched: Vec::new(),
            max_lag: None,
            hook: None,
            scratch: Vec::new(),
            stats: CdcStats::default(),
        }
    }

    /// Resumes from a checkpoint: the stream continues at
    /// `checkpoint.cursor` as if never detached.
    #[must_use]
    pub fn resume(checkpoint: CdcCheckpoint) -> Self {
        let mut s = Self::new(checkpoint.disk);
        s.cursor = checkpoint.cursor;
        s
    }

    /// Subscribes to row changes of one page file (a heap). Deltas to
    /// unwatched files still advance the shadow but emit nothing.
    pub fn watch(&mut self, file: FileId) {
        if !self.watched.contains(&file) {
            self.watched.push(file);
        }
    }

    /// Bounds the lag [`CdcSubscriber::poll`] tolerates (`None` =
    /// unbounded, the default).
    pub fn set_max_lag(&mut self, max_lag: Option<usize>) {
        self.max_lag = max_lag;
    }

    /// Routes checkpoint-taking through a fault hook
    /// ([`FaultSite::CdcCheckpoint`]).
    pub fn set_fault_hook(&mut self, hook: Arc<FaultHook>) {
        self.hook = Some(hook);
    }

    /// WAL entries consumed so far.
    #[must_use]
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> CdcStats {
        self.stats
    }

    /// Entries the durable committed prefix is ahead of this cursor.
    #[must_use]
    pub fn lag(&self, wal: &Wal) -> usize {
        wal.committed_len().saturating_sub(self.cursor)
    }

    /// Read-only access to the shadow disk (the materialized-view
    /// layer scans it to seed initial view state at the cursor).
    #[must_use]
    pub fn shadow(&self) -> &DiskManager {
        &self.shadow
    }

    /// Takes a checkpoint of the current cursor. Fires the
    /// [`FaultSite::CdcCheckpoint`] site first; under a crash plan the
    /// checkpoint is lost (`None`) — exactly what a crash between
    /// "decide to checkpoint" and "checkpoint durable" leaves behind.
    #[must_use]
    pub fn checkpoint(&mut self) -> Option<CdcCheckpoint> {
        if let Some(hook) = &self.hook {
            if hook.fire(FaultSite::CdcCheckpoint).crash {
                return None;
            }
        }
        self.stats.checkpoints += 1;
        Some(CdcCheckpoint {
            cursor: self.cursor,
            disk: self.shadow.snapshot(),
        })
    }

    /// Consumes every change batch in the durable committed prefix,
    /// enforcing the configured lag bound *before* consuming anything.
    ///
    /// # Errors
    /// [`CdcLag`] when the committed prefix is more than `max_lag`
    /// entries ahead of the cursor; the cursor does not move.
    pub fn poll(&mut self, wal: &Wal) -> Result<Vec<ChangeBatch>, CdcLag> {
        let committed_len = wal.committed_len();
        if let Some(max_lag) = self.max_lag {
            let lag = committed_len.saturating_sub(self.cursor);
            if lag > max_lag {
                return Err(CdcLag {
                    cursor: self.cursor,
                    committed_len,
                    max_lag,
                });
            }
        }
        Ok(self.decode_to(wal, committed_len, None))
    }

    /// [`CdcSubscriber::poll`] ignoring the lag bound — the catch-up
    /// path after a [`CdcLag`] error.
    pub fn poll_unbounded(&mut self, wal: &Wal) -> Vec<ChangeBatch> {
        self.decode_to(wal, wal.committed_len(), None)
    }

    /// Consumes entries up to `upto`, which must be a committed batch
    /// boundary at or before the durable committed prefix. This is the
    /// crashpoint-sweep rebuild path: it replays "the WAL as frozen at
    /// a crash" without cloning and truncating the log.
    pub fn poll_upto(&mut self, wal: &Wal, upto: usize) -> Vec<ChangeBatch> {
        debug_assert!(
            upto <= wal.committed_len(),
            "poll_upto past the durable committed prefix"
        );
        self.decode_to(wal, upto, None)
    }

    /// Polls with 2PC in-doubt resolution, mirroring
    /// [`Wal::try_recover_resolved`]: a durable `Prepare` whose
    /// coordinator durably decided commit extends the consumable
    /// prefix past itself and closes a (committed) batch, exactly as
    /// that prefix would replay on recovery.
    pub fn poll_resolved(&mut self, wal: &Wal, resolver: impl Fn(u64) -> bool) -> Vec<ChangeBatch> {
        let upto = wal.committed_len_resolved(&resolver);
        self.decode_to(wal, upto, Some(&resolver))
    }

    /// Replays `entries[cursor..upto]` into the shadow, diffing watched
    /// pages at each Commit/Decide marker (plus each resolver-committed
    /// Prepare when polling resolved). `upto` always lands on such a
    /// boundary (it comes from `committed_len*`), so no before-image is
    /// left dangling.
    fn decode_to(
        &mut self,
        wal: &Wal,
        upto: usize,
        resolver: Option<&dyn Fn(u64) -> bool>,
    ) -> Vec<ChangeBatch> {
        let entries = wal.entries();
        let upto = upto.min(entries.len());
        if upto <= self.cursor {
            return Vec::new();
        }
        let mut batches = Vec::new();
        // watched pages touched since the last boundary → before image
        let mut pending: BTreeMap<(FileId, u32), Vec<u8>> = BTreeMap::new();
        let page_size = self.shadow.page_size();
        for (i, entry) in entries.iter().enumerate().take(upto).skip(self.cursor) {
            match entry {
                WalEntry::PageDelta { file, page, .. } | WalEntry::FreePage { file, page }
                    if self.watched.contains(file) =>
                {
                    pending.entry((*file, *page)).or_insert_with(|| {
                        let mut buf = vec![0u8; page_size];
                        self.shadow.read_page(*file, *page, &mut buf);
                        buf
                    });
                }
                _ => {}
            }
            apply_entry(&mut self.shadow, &mut self.scratch, entry)
                .expect("a durable committed prefix must replay cleanly");
            let boundary = match entry {
                WalEntry::Commit { txn } | WalEntry::Decide { txn, .. } => Some(*txn),
                WalEntry::Prepare { txn } => match resolver {
                    Some(r) if r(*txn) => Some(*txn),
                    _ => None,
                },
                _ => None,
            };
            if let Some(txn) = boundary {
                let committed = !matches!(entry, WalEntry::Decide { commit: false, .. });
                let changes = self.diff_pending(&mut pending);
                self.stats.batches += 1;
                self.stats.events += changes.len() as u64;
                batches.push(ChangeBatch {
                    txn,
                    committed,
                    upto: i + 1,
                    changes,
                });
            }
        }
        debug_assert!(
            pending.is_empty(),
            "committed_len ends on a marker, so no before-image dangles"
        );
        self.stats.entries_consumed += (upto - self.cursor) as u64;
        self.cursor = upto;
        batches
    }

    /// Diffs each pending page's live slots against its current shadow
    /// image and drains the map.
    fn diff_pending(&mut self, pending: &mut BTreeMap<(FileId, u32), Vec<u8>>) -> Vec<RowChange> {
        let page_size = self.shadow.page_size();
        let mut changes = Vec::new();
        for ((file, page), before_img) in std::mem::take(pending) {
            let mut after_img = vec![0u8; page_size];
            // a freed page reads back as zeros (unformatted): every
            // previously live slot becomes a delete
            if !self.shadow.is_free(file, page) {
                self.shadow.read_page(file, page, &mut after_img);
            }
            let before = live_slots(&before_img);
            let after = live_slots(&after_img);
            for (&slot, &(boff, blen)) in &before {
                let b = &before_img[boff..boff + blen];
                match after.get(&slot) {
                    Some(&(aoff, alen)) => {
                        let a = &after_img[aoff..aoff + alen];
                        if a != b {
                            changes.push(RowChange {
                                file,
                                page,
                                slot,
                                op: RowOp::Update {
                                    before: b.to_vec(),
                                    after: a.to_vec(),
                                },
                            });
                        }
                    }
                    None => changes.push(RowChange {
                        file,
                        page,
                        slot,
                        op: RowOp::Delete { before: b.to_vec() },
                    }),
                }
            }
            for (&slot, &(aoff, alen)) in &after {
                if !before.contains_key(&slot) {
                    changes.push(RowChange {
                        file,
                        page,
                        slot,
                        op: RowOp::Insert {
                            after: after_img[aoff..aoff + alen].to_vec(),
                        },
                    });
                }
            }
        }
        changes.sort_by_key(|c| (c.file, c.page, c.slot));
        changes
    }
}

/// Live slots of a slotted-page image: slot id → (offset, len). Empty
/// for an unformatted (freed / never-initialized) page. Public so view
/// rescans can enumerate a raw disk image's records the same way the
/// decoder does.
#[must_use]
pub fn live_slots(data: &[u8]) -> BTreeMap<u16, (usize, usize)> {
    const HEADER: usize = 6;
    const SLOT: usize = 4;
    const DEAD: u16 = u16::MAX;
    let mut slots = BTreeMap::new();
    if data.len() < HEADER || u16::from_le_bytes([data[2], data[3]]) == 0 {
        return slots; // unformatted
    }
    let n = u16::from_le_bytes([data[0], data[1]]) as usize;
    for i in 0..n {
        let base = HEADER + i * SLOT;
        let off = u16::from_le_bytes([data[base], data[base + 1]]);
        let len = u16::from_le_bytes([data[base + 2], data[base + 3]]);
        if off != DEAD {
            slots.insert(i as u16, (off as usize, len as usize));
        }
    }
    slots
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::page::SlottedPage;

    /// A tiny WAL-producing fixture: one file, one page, logical
    /// inserts/updates/deletes logged as whole-page deltas.
    struct Fixture {
        disk: DiskManager,
        wal: Wal,
        file: FileId,
        txn: u64,
    }

    impl Fixture {
        fn new() -> Self {
            let mut disk = DiskManager::new(256);
            let mut wal = Wal::new();
            let file = disk.create_file();
            wal.append(WalEntry::CreateFile { file });
            let page = disk.allocate_page(file);
            wal.append(WalEntry::AllocPage { file, page });
            let mut buf = vec![0u8; 256];
            SlottedPage::init(&mut buf);
            Self::log_page(&mut disk, &mut wal, file, page, &buf);
            let mut fx = Self {
                disk,
                wal,
                file,
                txn: 0,
            };
            fx.commit();
            fx
        }

        fn log_page(disk: &mut DiskManager, wal: &mut Wal, file: FileId, page: u32, after: &[u8]) {
            let mut before = vec![0u8; after.len()];
            disk.read_page(file, page, &mut before);
            for (offset, data) in crate::wal::page_deltas(&before, after) {
                wal.append(WalEntry::PageDelta {
                    file,
                    page,
                    offset,
                    data,
                });
            }
            disk.write_page(file, page, after);
        }

        fn mutate(&mut self, f: impl FnOnce(&mut SlottedPage<'_>)) {
            let mut buf = vec![0u8; 256];
            self.disk.read_page(self.file, 0, &mut buf);
            {
                let mut page = SlottedPage::attach(&mut buf);
                f(&mut page);
            }
            Self::log_page(&mut self.disk, &mut self.wal, self.file, 0, &buf);
        }

        fn commit(&mut self) {
            self.txn += 1;
            self.wal.append(WalEntry::Commit { txn: self.txn });
        }

        fn subscriber(&self) -> CdcSubscriber {
            // base = empty disk with the same page size (cursor 0
            // replays file creation itself)
            let mut s = CdcSubscriber::new(DiskManager::new(256));
            s.watch(self.file);
            s
        }
    }

    #[test]
    fn insert_update_delete_decode_as_typed_row_changes() {
        let mut fx = Fixture::new();
        fx.mutate(|p| {
            p.insert(b"alpha").unwrap();
        });
        fx.commit();
        fx.mutate(|p| {
            p.update(0, b"beta!");
        });
        fx.commit();
        fx.mutate(|p| {
            p.delete(0);
        });
        fx.commit();

        let mut sub = fx.subscriber();
        let batches = sub.poll(&fx.wal).unwrap();
        assert_eq!(batches.len(), 4, "init + three mutations");
        assert!(batches[0].changes.is_empty(), "formatting is not a row");
        assert_eq!(
            batches[1].changes,
            vec![RowChange {
                file: fx.file,
                page: 0,
                slot: 0,
                op: RowOp::Insert {
                    after: b"alpha".to_vec()
                },
            }]
        );
        assert_eq!(
            batches[2].changes[0].op,
            RowOp::Update {
                before: b"alpha".to_vec(),
                after: b"beta!".to_vec()
            }
        );
        assert_eq!(
            batches[3].changes[0].op,
            RowOp::Delete {
                before: b"beta!".to_vec()
            },
            "delete carries the pre-delete image"
        );
        assert_eq!(sub.cursor(), fx.wal.len());
        assert_eq!(sub.stats().events, 3);
    }

    #[test]
    fn delete_carries_last_committed_image() {
        let mut fx = Fixture::new();
        fx.mutate(|p| {
            p.insert(b"gamma").unwrap();
        });
        fx.commit();
        fx.mutate(|p| {
            p.delete(0);
        });
        fx.commit();
        let mut sub = fx.subscriber();
        let batches = sub.poll(&fx.wal).unwrap();
        let last = batches.last().unwrap();
        assert_eq!(
            last.changes[0].op,
            RowOp::Delete {
                before: b"gamma".to_vec()
            }
        );
    }

    #[test]
    fn uncommitted_tail_is_invisible_until_its_marker() {
        let mut fx = Fixture::new();
        fx.mutate(|p| {
            p.insert(b"tail!").unwrap();
        });
        // no commit yet
        let mut sub = fx.subscriber();
        let batches = sub.poll(&fx.wal).unwrap();
        assert_eq!(batches.len(), 1, "only the init commit");
        let cursor_before = sub.cursor();
        fx.commit();
        let batches = sub.poll(&fx.wal).unwrap();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].changes[0].op.name(), "insert");
        assert!(sub.cursor() > cursor_before);
    }

    #[test]
    fn compensated_mutations_net_to_zero_events() {
        // forward insert + compensating delete inside one boundary —
        // the shape an MVCC rollback leaves in the log
        let mut fx = Fixture::new();
        fx.mutate(|p| {
            p.insert(b"undo!").unwrap();
        });
        fx.mutate(|p| {
            p.delete(0);
        });
        fx.wal.append(WalEntry::Decide {
            txn: 99,
            commit: false,
        });
        let mut sub = fx.subscriber();
        let batches = sub.poll(&fx.wal).unwrap();
        let abort = batches.last().unwrap();
        assert!(!abort.committed);
        assert!(
            abort.changes.is_empty(),
            "compensated batch must emit nothing: {:?}",
            abort.changes
        );
    }

    #[test]
    fn prepare_gates_emission_until_decide() {
        let mut fx = Fixture::new();
        fx.mutate(|p| {
            p.insert(b"two-pc").unwrap();
        });
        fx.wal.append(WalEntry::Prepare { txn: 7 });
        let mut sub = fx.subscriber();
        let batches = sub.poll(&fx.wal).unwrap();
        assert_eq!(batches.len(), 1, "prepare is not a boundary");
        assert!(batches[0].changes.is_empty());

        // resolver says the coordinator committed: the prepared batch
        // becomes consumable without waiting for the local Decide
        let mut resolved = fx.subscriber();
        let batches = resolved.poll_resolved(&fx.wal, |txn| txn == 7);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[1].changes[0].op.name(), "insert");

        fx.wal.append(WalEntry::Decide {
            txn: 7,
            commit: true,
        });
        let batches = sub.poll(&fx.wal).unwrap();
        assert_eq!(batches.len(), 1, "decide releases the prepared batch");
        assert!(batches[0].committed);
        assert_eq!(batches[0].changes[0].op.name(), "insert");
    }

    #[test]
    fn lag_bound_returns_typed_error_and_resumes_without_loss() {
        let mut fx = Fixture::new();
        let mut sub = fx.subscriber();
        sub.set_max_lag(Some(4));
        let _ = sub.poll(&fx.wal).unwrap();
        for i in 0..6u8 {
            fx.mutate(|p| {
                p.insert(&[b'x', i]).unwrap();
            });
            fx.commit();
        }
        let err = sub.poll(&fx.wal).expect_err("lag bound exceeded");
        assert_eq!(err.max_lag, 4);
        assert!(err.committed_len - err.cursor > 4);
        assert_eq!(
            sub.cursor(),
            err.cursor,
            "the cursor must not move on a lag error"
        );
        // catch-up drains everything a never-lagging subscriber saw
        let drained = sub.poll_unbounded(&fx.wal);
        let mut fresh = fx.subscriber();
        let all = fresh.poll(&fx.wal).unwrap();
        let tail: Vec<_> = all
            .iter()
            .filter(|b| b.upto > err.cursor)
            .cloned()
            .collect();
        assert_eq!(drained, tail, "no events silently missed");
    }

    #[test]
    fn checkpoint_resume_continues_the_stream_exactly() {
        let mut fx = Fixture::new();
        fx.mutate(|p| {
            p.insert(b"one..").unwrap();
        });
        fx.commit();
        let mut sub = fx.subscriber();
        let first = sub.poll(&fx.wal).unwrap();
        let ckpt = sub.checkpoint().expect("no fault hook");
        fx.mutate(|p| {
            p.update(0, b"two..");
        });
        fx.commit();
        let live_rest = sub.poll(&fx.wal).unwrap();

        let mut resumed = CdcSubscriber::resume(ckpt);
        resumed.watch(fx.file);
        let resumed_rest = resumed.poll(&fx.wal).unwrap();
        assert_eq!(resumed_rest, live_rest, "resume = exact continuation");
        assert!(!first.is_empty());
    }

    #[test]
    fn checkpoint_fires_fault_site_and_crash_loses_it() {
        let fx = Fixture::new();
        let mut sub = fx.subscriber();
        let hook = Arc::new(FaultHook::new(FaultPlan::crash_at(1, 1)));
        sub.set_fault_hook(Arc::clone(&hook));
        assert!(sub.checkpoint().is_some(), "site 0: no crash yet");
        assert!(
            sub.checkpoint().is_none(),
            "site 1 trips the crash: the checkpoint is lost"
        );
        assert_eq!(hook.stats().fired[FaultSite::CdcCheckpoint.idx()], 2);
        assert_eq!(sub.stats().checkpoints, 1);
    }
}
