//! The buffer manager: a fixed pool of frames over the simulated disk
//! with pluggable replacement (LRU as the paper assumes, or Clock),
//! dirty-page write-back and hit/miss accounting per file.
//!
//! Access is closure-scoped (`with_page` / `with_page_mut`), which
//! makes pinning implicit: a frame can only be replaced between
//! accesses, never during one.

use crate::disk::{DiskManager, FileId};
use crate::wal::{page_delta, Wal, WalEntry};
use tpcc_buffer::fxhash::FxHashMap;
use tpcc_obs::{Label, Obs};

/// Replacement policy for the frame pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replacement {
    /// Exact least-recently-used (the paper's assumption).
    Lru,
    /// Clock / second chance.
    Clock,
}

/// Buffer traffic counters for one file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Accesses served from the pool.
    pub hits: u64,
    /// Accesses that had to read from disk.
    pub misses: u64,
    /// Pages of this file evicted to make room.
    pub evictions: u64,
    /// Dirty pages of this file written back to disk (eviction or
    /// [`BufferManager::flush_all`]).
    pub writebacks: u64,
}

impl BufferStats {
    /// Miss ratio; NaN when nothing was accessed — an undefined ratio
    /// must not masquerade as a perfect hit rate. Render it as "n/a".
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            f64::NAN
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Component-wise sum.
    #[must_use]
    pub fn merged(self, other: BufferStats) -> BufferStats {
        BufferStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
            writebacks: self.writebacks + other.writebacks,
        }
    }
}

#[derive(Debug)]
struct Frame {
    key: Option<(FileId, u32)>,
    data: Box<[u8]>,
    dirty: bool,
    ref_bit: bool,
    /// LRU timestamp (monotone counter).
    last_used: u64,
}

/// The frame pool.
#[derive(Debug)]
pub struct BufferManager {
    disk: DiskManager,
    frames: Vec<Frame>,
    table: FxHashMap<(FileId, u32), u32>,
    policy: Replacement,
    hand: usize,
    tick: u64,
    per_file: FxHashMap<FileId, BufferStats>,
    wal: Option<Wal>,
    wal_scratch: Vec<u8>,
    obs: Obs,
}

impl BufferManager {
    /// Creates a pool of `capacity` frames over `disk`.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(disk: DiskManager, capacity: usize, policy: Replacement) -> Self {
        assert!(capacity > 0, "need at least one frame");
        let page_size = disk.page_size();
        let frames = (0..capacity)
            .map(|_| Frame {
                key: None,
                data: vec![0u8; page_size].into_boxed_slice(),
                dirty: false,
                ref_bit: false,
                last_used: 0,
            })
            .collect();
        Self {
            disk,
            frames,
            table: FxHashMap::default(),
            policy,
            hand: 0,
            tick: 0,
            per_file: FxHashMap::default(),
            wal: None,
            wal_scratch: vec![0u8; page_size],
            obs: Obs::disabled(),
        }
    }

    /// Attaches an observability handle; buffer traffic, WAL volume
    /// and B+Tree structure events are recorded through it (per file,
    /// labelled by [`FileId`] — register display names on the recorder
    /// to get relation names in exports).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The attached observability handle (disabled by default).
    #[must_use]
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Turns on redo logging: from now on every page mutation, file
    /// creation (via [`BufferManager::create_logged_file`]) and page
    /// allocation is recorded, upholding the WAL protocol (the delta is
    /// logged while the dirty page is still pinned in the pool, before
    /// it can reach disk).
    pub fn enable_wal(&mut self) {
        if self.wal.is_none() {
            self.wal = Some(Wal::new());
        }
    }

    /// The live log, when enabled.
    #[must_use]
    pub fn wal(&self) -> Option<&Wal> {
        self.wal.as_ref()
    }

    /// Detaches and returns the log (e.g. to run recovery).
    pub fn take_wal(&mut self) -> Option<Wal> {
        self.wal.take()
    }

    /// Appends a commit marker for logical transaction `txn`.
    pub fn log_commit(&mut self, txn: u64) {
        if let Some(wal) = &mut self.wal {
            wal.append(WalEntry::Commit { txn });
        }
    }

    /// Creates a file through the log (so recovery can recreate it).
    pub fn create_logged_file(&mut self) -> FileId {
        let file = self.disk.create_file();
        if let Some(wal) = &mut self.wal {
            wal.append(WalEntry::CreateFile { file });
        }
        file
    }

    /// The underlying disk (for file creation / allocation).
    pub fn disk_mut(&mut self) -> &mut DiskManager {
        &mut self.disk
    }

    /// The underlying disk, read-only.
    #[must_use]
    pub fn disk(&self) -> &DiskManager {
        &self.disk
    }

    /// Frame capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Buffer statistics for one file.
    #[must_use]
    pub fn stats(&self, file: FileId) -> BufferStats {
        self.per_file.get(&file).copied().unwrap_or_default()
    }

    /// Aggregate statistics over all files.
    #[must_use]
    pub fn total_stats(&self) -> BufferStats {
        self.per_file
            .values()
            .fold(BufferStats::default(), |a, s| a.merged(*s))
    }

    /// Clears hit/miss counters (keeps pool contents — useful between
    /// warm-up and measurement).
    pub fn reset_stats(&mut self) {
        self.per_file.clear();
    }

    /// Reads page `(file, page)` through the pool.
    pub fn with_page<R>(&mut self, file: FileId, page: u32, f: impl FnOnce(&[u8]) -> R) -> R {
        let frame = self.fault_in(file, page);
        f(&self.frames[frame].data)
    }

    /// Reads and modifies page `(file, page)`, marking it dirty. With
    /// logging enabled, the byte-range delta of the mutation is
    /// appended to the WAL.
    pub fn with_page_mut<R>(
        &mut self,
        file: FileId,
        page: u32,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> R {
        let frame = self.fault_in(file, page);
        self.frames[frame].dirty = true;
        if self.wal.is_none() {
            return f(&mut self.frames[frame].data);
        }
        self.wal_scratch.copy_from_slice(&self.frames[frame].data);
        let r = f(&mut self.frames[frame].data);
        if let Some((offset, data)) = page_delta(&self.wal_scratch, &self.frames[frame].data) {
            self.obs
                .counter("wal_bytes_appended", Label::None, data.len() as u64);
            self.obs.counter("wal_records", Label::None, 1);
            if let Some(wal) = &mut self.wal {
                wal.append(WalEntry::PageDelta {
                    file,
                    page,
                    offset,
                    data,
                });
            }
        }
        r
    }

    /// Allocates a fresh page in `file` and runs `f` on its (zeroed,
    /// resident, dirty) bytes; returns the page number and `f`'s result.
    pub fn allocate_page<R>(&mut self, file: FileId, f: impl FnOnce(&mut [u8]) -> R) -> (u32, R) {
        let page = self.disk.allocate_page(file);
        if let Some(wal) = &mut self.wal {
            wal.append(WalEntry::AllocPage { file, page });
        }
        let r = self.with_page_mut(file, page, f);
        (page, r)
    }

    /// Writes every dirty frame back to disk.
    pub fn flush_all(&mut self) {
        for i in 0..self.frames.len() {
            if self.frames[i].dirty {
                if let Some((file, page)) = self.frames[i].key {
                    self.disk.write_page(file, page, &self.frames[i].data);
                    self.per_file.entry(file).or_default().writebacks += 1;
                    self.obs.counter("buf_writebacks", Label::Idx(file.0), 1);
                }
                self.frames[i].dirty = false;
            }
        }
    }

    fn fault_in(&mut self, file: FileId, page: u32) -> usize {
        self.tick += 1;
        let stats = self.per_file.entry(file).or_default();
        if let Some(&idx) = self.table.get(&(file, page)) {
            stats.hits += 1;
            self.obs.counter("buf_hits", Label::Idx(file.0), 1);
            let frame = &mut self.frames[idx as usize];
            frame.ref_bit = true;
            frame.last_used = self.tick;
            return idx as usize;
        }
        stats.misses += 1;
        self.obs.counter("buf_misses", Label::Idx(file.0), 1);
        let victim = self.pick_victim();
        if self.frames[victim].dirty {
            if let Some((vf, vp)) = self.frames[victim].key {
                self.disk.write_page(vf, vp, &self.frames[victim].data);
                self.per_file.entry(vf).or_default().writebacks += 1;
                self.obs.counter("buf_writebacks", Label::Idx(vf.0), 1);
            }
        }
        if let Some(old) = self.frames[victim].key.take() {
            self.table.remove(&old);
            self.per_file.entry(old.0).or_default().evictions += 1;
            self.obs.counter("buf_evictions", Label::Idx(old.0 .0), 1);
        }
        self.disk
            .read_page(file, page, &mut self.frames[victim].data);
        let f = &mut self.frames[victim];
        f.key = Some((file, page));
        f.dirty = false;
        f.ref_bit = true;
        f.last_used = self.tick;
        self.table.insert((file, page), victim as u32);
        victim
    }

    fn pick_victim(&mut self) -> usize {
        // prefer an empty frame
        if self.table.len() < self.frames.len() {
            if let Some(i) = self.frames.iter().position(|f| f.key.is_none()) {
                return i;
            }
        }
        match self.policy {
            Replacement::Lru => self
                .frames
                .iter()
                .enumerate()
                .min_by_key(|(_, f)| f.last_used)
                .map(|(i, _)| i)
                .expect("nonempty pool"),
            Replacement::Clock => loop {
                let i = self.hand;
                self.hand = (self.hand + 1) % self.frames.len();
                if self.frames[i].ref_bit {
                    self.frames[i].ref_bit = false;
                } else {
                    break i;
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager(frames: usize, policy: Replacement) -> (BufferManager, FileId) {
        let mut disk = DiskManager::new(128);
        let f = disk.create_file();
        for _ in 0..16 {
            disk.allocate_page(f);
        }
        (BufferManager::new(disk, frames, policy), f)
    }

    #[test]
    fn hit_after_miss() {
        let (mut bm, f) = manager(4, Replacement::Lru);
        bm.with_page(f, 0, |_| ());
        bm.with_page(f, 0, |_| ());
        let s = bm.stats(f);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        assert!((s.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn writes_survive_eviction() {
        let (mut bm, f) = manager(2, Replacement::Lru);
        bm.with_page_mut(f, 0, |d| d[10] = 42);
        // evict page 0 by touching 2 others
        bm.with_page(f, 1, |_| ());
        bm.with_page(f, 2, |_| ());
        // fault it back in
        let v = bm.with_page(f, 0, |d| d[10]);
        assert_eq!(v, 42, "dirty page must be written back before eviction");
    }

    #[test]
    fn lru_evicts_oldest() {
        let (mut bm, f) = manager(2, Replacement::Lru);
        bm.with_page(f, 0, |_| ());
        bm.with_page(f, 1, |_| ());
        bm.with_page(f, 0, |_| ()); // 1 is now LRU
        bm.with_page(f, 2, |_| ()); // evicts 1
        bm.with_page(f, 0, |_| ()); // should still be resident
        let s = bm.stats(f);
        assert_eq!(s.misses, 3, "0, 1, 2 faulted once each");
    }

    #[test]
    fn flush_all_persists_dirty_pages() {
        let (mut bm, f) = manager(4, Replacement::Clock);
        bm.with_page_mut(f, 3, |d| d[0] = 9);
        bm.flush_all();
        let mut buf = vec![0u8; 128];
        bm.disk_mut().read_page(f, 3, &mut buf);
        assert_eq!(buf[0], 9);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let (mut bm, f) = manager(4, Replacement::Lru);
        bm.with_page(f, 0, |_| ());
        bm.reset_stats();
        bm.with_page(f, 0, |_| ());
        let s = bm.stats(f);
        assert_eq!(s.misses, 0, "page stayed resident through reset");
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn allocate_page_is_resident_and_dirty() {
        let (mut bm, f) = manager(4, Replacement::Lru);
        let (page, ()) = bm.allocate_page(f, |d| d[0] = 5);
        let v = bm.with_page(f, page, |d| d[0]);
        assert_eq!(v, 5);
    }

    #[test]
    fn wal_crash_recovery_reproduces_flushed_state() {
        // timeline: checkpoint, then logged mutations, then "crash"
        // (drop the pool without flushing). Recovery over the
        // checkpoint must equal what a clean flush would have produced.
        let mut disk = DiskManager::new(128);
        let f = disk.create_file();
        for _ in 0..4 {
            disk.allocate_page(f);
        }
        let checkpoint = disk.snapshot();

        let mut bm = BufferManager::new(disk, 2, Replacement::Lru);
        bm.enable_wal();
        bm.with_page_mut(f, 0, |d| d[7] = 1);
        bm.with_page_mut(f, 3, |d| d[9] = 2);
        let (p4, ()) = bm.allocate_page(f, |d| d[0] = 3);
        bm.with_page_mut(f, 0, |d| d[8] = 4);
        bm.log_commit(1);

        // the reference: what the disk looks like after a clean flush
        let mut reference = BufferManager::new(bm.disk().snapshot(), 2, Replacement::Lru);
        let _ = &mut reference; // reference disk lacks unflushed frames…
        let wal = bm.take_wal().expect("enabled");
        // crash: bm dropped here WITHOUT flush_all
        let some_dirty_lost = {
            let mut probe = vec![0u8; 128];
            let mut crashed = bm;
            crashed.disk_mut().read_page(f, 0, &mut probe);
            // page 0 was re-dirtied and (depending on eviction) may not
            // be on disk; recovery must not depend on that
            drop(crashed);
            probe[8] != 4
        };
        let _ = some_dirty_lost;

        let mut recovered = wal.recover(checkpoint);
        let mut buf = vec![0u8; 128];
        recovered.read_page(f, 0, &mut buf);
        assert_eq!((buf[7], buf[8]), (1, 4));
        recovered.read_page(f, 3, &mut buf);
        assert_eq!(buf[9], 2);
        recovered.read_page(f, p4, &mut buf);
        assert_eq!(buf[0], 3);
        assert_eq!(wal.commits(), 1);
    }

    #[test]
    fn wal_skips_noop_mutations() {
        let (mut bm, f) = manager(4, Replacement::Lru);
        bm.enable_wal();
        bm.with_page_mut(f, 0, |_| ()); // touches nothing
        bm.with_page_mut(f, 1, |d| d[0] = 9);
        let wal = bm.take_wal().expect("enabled");
        let deltas = wal
            .entries()
            .iter()
            .filter(|e| matches!(e, crate::wal::WalEntry::PageDelta { .. }))
            .count();
        assert_eq!(deltas, 1, "no-op mutation must not be logged");
    }

    #[test]
    fn clock_replacement_bounded() {
        let (mut bm, f) = manager(3, Replacement::Clock);
        for round in 0..50u32 {
            bm.with_page(f, round % 8, |_| ());
        }
        let s = bm.stats(f);
        assert_eq!(s.hits + s.misses, 50);
        assert!(s.misses >= 8, "at least cold misses");
    }
}
